//! Survey of all eleven DVB-S2 code rates: the Table 1 / Table 2 structural
//! parameters and the Eq. 8 throughput at the paper's 270 MHz clock.
//!
//! Run with: `cargo run --release --example rate_survey`

use dvbs2::hardware::{ThroughputModel, ST_0_13_UM};
use dvbs2::ldpc::{CodeParams, CodeRate, DvbS2Code, FrameSize};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("DVB-S2 LDPC normal frames (N = 64800), 30 iterations @ 270 MHz\n");
    println!(
        "{:>6} {:>8} {:>8} {:>4} {:>4} {:>8} {:>8} {:>6} {:>10}",
        "rate", "K", "N-K", "j", "k", "E_IN", "E_PN", "Addr", "T [Mbit/s]"
    );

    let model = ThroughputModel::paper(&ST_0_13_UM);
    for rate in CodeRate::ALL {
        let p = CodeParams::new(rate, FrameSize::Normal)?;
        // Verify the generated code actually matches the parameters.
        let code = DvbS2Code::new(rate, FrameSize::Normal)?;
        code.table().validate(&p)?;
        let t = model.throughput_mbps(&p);
        println!(
            "{:>6} {:>8} {:>8} {:>4} {:>4} {:>8} {:>8} {:>6} {:>10.1}",
            rate.to_string(),
            p.k,
            p.n_check,
            p.hi.degree,
            p.check_degree,
            p.e_in(),
            p.e_pn(),
            p.addr_entries(),
            t
        );
    }

    println!("\nShort frames (N = 16200, extension beyond the paper):\n");
    println!("{:>6} {:>8} {:>8} {:>4} {:>4} {:>8}", "rate", "K", "N-K", "j", "k", "E_IN");
    for p in CodeParams::all(FrameSize::Short) {
        println!(
            "{:>6} {:>8} {:>8} {:>4} {:>4} {:>8}",
            p.rate.to_string(),
            p.k,
            p.n_check,
            p.hi.degree,
            p.check_degree,
            p.e_in()
        );
    }
    Ok(())
}
