//! Drive the cycle-accurate IP-core model end to end: anneal the memory
//! schedule, decode a noisy frame, and print the measured cycles against
//! the paper's Eq. 8 model plus the Table 3 area report.
//!
//! Run with: `cargo run --release --example hardware_sim`

use dvbs2::hardware::{
    optimize_schedule, AnnealOptions, AreaModel, ConnectivityRom, CoreConfig, HardwareDecoder,
    MemoryConfig, ThroughputModel, ST_0_13_UM,
};
use dvbs2::ldpc::{CodeRate, DvbS2Code, FrameSize};
use dvbs2::{Dvbs2System, SystemConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rate = CodeRate::R1_2;
    let frame = FrameSize::Normal;
    let code = DvbS2Code::new(rate, frame)?;
    let params = *code.params();
    println!("Cycle-accurate IP core, rate {} {} frame", rate, frame);

    // 1. Anneal the check-phase schedule against the 4-bank memory.
    let rom = ConnectivityRom::build(&params, code.table());
    let anneal = optimize_schedule(&rom, MemoryConfig::default(), AnnealOptions::default());
    println!(
        "\nSchedule annealing:  buffer {} -> {} wide words, drain {} -> {} cycles",
        anneal.baseline.max_buffer,
        anneal.optimized.max_buffer,
        anneal.baseline.total_cycles - anneal.baseline.read_cycles,
        anneal.optimized.total_cycles - anneal.optimized.read_cycles,
    );

    // 2. Decode one noisy frame on the timed core.
    let system = Dvbs2System::new(SystemConfig { rate, frame, ..SystemConfig::default() })?;
    let mut rng = SmallRng::seed_from_u64(42);
    let tx = system.transmit_frame(&mut rng, 1.4);
    let mut hw = HardwareDecoder::new(&code, anneal.schedule, CoreConfig::default());
    let out = hw.decode(&tx.llrs);
    let errors = out.result.bits.hamming_distance(&tx.codeword);
    println!(
        "\nDecoded frame: {} iterations, {} bit errors, converged: {}",
        out.result.iterations, errors, out.result.converged
    );
    println!(
        "Measured cycles: {} total = {} I/O + {} info-phase + {} check-phase (max buffer {})",
        out.cycles.total_cycles,
        out.cycles.io_cycles,
        out.cycles.info_phase_cycles,
        out.cycles.check_phase_cycles,
        out.cycles.max_buffer
    );

    // 3. Compare against the analytic Eq. 8 model at 270 MHz.
    let model = ThroughputModel::paper(&ST_0_13_UM);
    println!(
        "\nThroughput @ {} MHz: measured {:.1} Mbit/s, Eq. 8 model {:.1} Mbit/s \
         (paper requirement: 255 Mbit/s)",
        model.clock_mhz,
        out.cycles.throughput_mbps(model.clock_mhz, params.k),
        model.throughput_mbps(&params)
    );

    // 4. Table 3: the area report of the multi-rate core.
    println!("\nArea report ({}):", ST_0_13_UM.name);
    print!("{}", AreaModel::paper().report(frame));
    Ok(())
}
