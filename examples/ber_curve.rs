//! A small BER/FER waterfall for the rate-1/2 short-frame code, with the
//! gap to the binary-input AWGN Shannon limit — the communications
//! performance framing of the paper's introduction.
//!
//! Run with: `cargo run --release --example ber_curve`
//! (Pass `--normal` for 64 800-bit frames; slower.)

use dvbs2::channel::{default_threads, shannon_limit_biawgn_db, StopRule};
use dvbs2::ldpc::{CodeRate, FrameSize};
use dvbs2::{DecoderKind, Dvbs2System, SystemConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let normal = std::env::args().any(|a| a == "--normal");
    let frame = if normal { FrameSize::Normal } else { FrameSize::Short };
    let rate = CodeRate::R1_2;
    let system = Dvbs2System::new(SystemConfig {
        rate,
        frame,
        decoder: DecoderKind::Zigzag,
        ..SystemConfig::default()
    })?;

    // Short frames have a lower true rate than the nominal one
    // (K = 7200 / N = 16200 is rate 4/9); measure the gap against the
    // true rate's limit.
    let p = system.params();
    let true_rate = p.k as f64 / p.n as f64;
    let limit = shannon_limit_biawgn_db(true_rate);
    println!("Rate {} {} frames, zigzag sum-product, 30 iterations", rate, frame);
    println!("True code rate {true_rate:.3}; BI-AWGN Shannon limit: {limit:.3} dB\n");
    println!(
        "{:>9} {:>9} {:>10} {:>10} {:>8} {:>7}",
        "Eb/N0[dB]", "gap[dB]", "BER", "FER", "frames", "iters"
    );

    let points: &[f64] = if normal { &[0.7, 0.9, 1.1] } else { &[0.2, 0.5, 0.8, 1.1] };
    let max_frames = if normal { 20 } else { 60 };
    for &ebn0 in points {
        let est = system.simulate_ber(
            ebn0,
            StopRule { max_frames, target_frame_errors: 15 },
            default_threads(),
        );
        println!(
            "{:>9.2} {:>9.2} {:>10.2e} {:>10.2e} {:>8} {:>7.1}",
            ebn0,
            ebn0 - limit,
            est.ber(),
            est.fer(),
            est.frames,
            est.avg_iterations()
        );
    }
    println!("\n(The paper quotes ~0.7 dB to Shannon for the N = 64800 codes.)");
    Ok(())
}
