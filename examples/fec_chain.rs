//! The complete DVB-S2 FEC chain: outer BCH + inner LDPC, as the standard
//! deploys the paper's decoder. Near the LDPC threshold, frames that leave
//! the iterative decoder with a handful of residual bit errors are cleaned
//! by the algebraic BCH stage.
//!
//! Run with: `cargo run --release --example fec_chain`

use dvbs2::channel::{noise_sigma, AwgnChannel, Modulation};
use dvbs2::ldpc::{CodeRate, FrameSize};
use dvbs2::{FecChain, SystemConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut chain = FecChain::new(SystemConfig {
        rate: CodeRate::R1_2,
        frame: FrameSize::Short,
        ..SystemConfig::default()
    })?;
    println!(
        "DVB-S2 FEC chain: {} data bits -> BCH({}, {}) t={} -> LDPC({}, {})",
        chain.data_len(),
        chain.ldpc().params().k,
        chain.data_len(),
        12,
        chain.frame_len(),
        chain.ldpc().params().k,
    );
    println!("Overall rate: {:.4}\n", chain.rate());

    let ebn0_db = 1.05; // just above the LDPC threshold
    let mut rng = SmallRng::seed_from_u64(22);
    let mut stats = (0usize, 0usize, 0usize, 0usize); // clean, bch-fixed, fail-flagged, wrong
    let frames = 40;
    for _ in 0..frames {
        let data = chain.random_data(&mut rng);
        let frame = chain.encode(&data)?;
        let mut samples = Modulation::Bpsk.modulate(&frame);
        let sigma = noise_sigma(ebn0_db, chain.rate());
        AwgnChannel::new(sigma).corrupt(&mut rng, &mut samples);
        let llrs = Modulation::Bpsk.demap(&samples, sigma);

        let out = chain.decode(&llrs);
        match out.bch_corrected {
            Some(0) if out.data == data => stats.0 += 1,
            Some(_) if out.data == data => stats.1 += 1,
            None => stats.2 += 1,
            _ => stats.3 += 1,
        }
    }
    println!("At Eb/N0 = {ebn0_db} dB over {frames} frames:");
    println!("  clean after LDPC:          {}", stats.0);
    println!("  rescued by BCH (1..=12 errors): {}", stats.1);
    println!("  flagged uncorrectable:     {}", stats.2);
    println!("  undetected wrong:          {}", stats.3);
    println!(
        "\nThe outer BCH code converts near-threshold residual errors into either clean \
         frames or flagged failures — the quasi-error-free behaviour DVB-S2 requires."
    );
    Ok(())
}
