//! Exports the synthesizable RTL artifacts of the IP core: the shuffle
//! network, per-rate connectivity ROM packages, a self-checking rotator
//! testbench, and golden test vectors for full-decoder verification.
//!
//! Run with: `cargo run --release --example export_rtl [output_dir]`

use dvbs2::decoder::Quantizer;
use dvbs2::hardware::{ConnectivityRom, TestVectorSet, VhdlGenerator};
use dvbs2::ldpc::{CodeRate, DvbS2Code, FrameSize};
use std::fs;
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = PathBuf::from(std::env::args().nth(1).unwrap_or_else(|| "rtl".into()));
    fs::create_dir_all(&out_dir)?;
    let generator = VhdlGenerator::default();

    let shuffle = out_dir.join("shuffle_network.vhd");
    fs::write(&shuffle, generator.shuffle_network())?;
    println!("wrote {}", shuffle.display());

    let tb = out_dir.join("shuffle_network_tb.vhd");
    fs::write(&tb, generator.shuffle_testbench(&[0, 1, 45, 180, 359]))?;
    println!("wrote {}", tb.display());

    for rate in [CodeRate::R1_2, CodeRate::R3_5, CodeRate::R9_10] {
        let code = DvbS2Code::new(rate, FrameSize::Normal)?;
        let rom = ConnectivityRom::build(code.params(), code.table());
        let name = format!("rom_r{}", rate.to_string().replace('/', "_"));
        let path = out_dir.join(format!("{name}.vhd"));
        fs::write(&path, generator.connectivity_rom(&rom, &name))?;
        println!("wrote {} ({} entries)", path.display(), rom.words());
    }

    let vectors = TestVectorSet::generate(
        CodeRate::R1_2,
        FrameSize::Short,
        Quantizer::paper_6bit(),
        3,
        3.0,
        2005,
    );
    let vec_path = out_dir.join("golden_vectors_r1_2_short.txt");
    fs::write(&vec_path, vectors.to_text())?;
    println!("wrote {} ({} frames)", vec_path.display(), vectors.frames.len());

    println!("\nRTL export complete; feed the testbench and vectors to your simulator.");
    Ok(())
}
