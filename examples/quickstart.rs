//! Quickstart: encode one DVB-S2 frame, push it through an AWGN channel and
//! decode it with the paper's zigzag-schedule decoder.
//!
//! Run with: `cargo run --release --example quickstart`

use dvbs2::prelude::*;
use dvbs2::{DecoderKind, Dvbs2System, SystemConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's headline configuration: rate 1/2, 64 800-bit frames,
    // 30 iterations of the optimized (zigzag) schedule.
    let system = Dvbs2System::new(SystemConfig {
        rate: CodeRate::R1_2,
        frame: FrameSize::Normal,
        decoder: DecoderKind::Zigzag,
        ..SystemConfig::default()
    })?;

    let p = system.params();
    println!("DVB-S2 LDPC code  rate {}  N = {}  K = {}", p.rate, p.n, p.k);
    println!(
        "Tanner graph      {} info edges, {} parity edges, check degree {}",
        p.e_in(),
        p.e_pn(),
        p.check_degree
    );

    let ebn0_db = 1.2;
    println!(
        "\nTransmitting one frame at Eb/N0 = {ebn0_db} dB \
         (Shannon limit for R = 1/2: {:.3} dB)",
        shannon_limit_biawgn_db(0.5)
    );

    let mut rng = SmallRng::seed_from_u64(2005);
    let frame = system.transmit_frame(&mut rng, ebn0_db);

    // How many channel hard decisions are wrong before decoding?
    let raw_errors =
        frame.llrs.iter().enumerate().filter(|&(i, &l)| (l < 0.0) != frame.codeword.get(i)).count();
    println!("Channel hard decisions wrong before decoding: {raw_errors} / {}", p.n);

    let mut decoder = system.make_decoder();
    let out = decoder.decode(&frame.llrs);
    let errors = out.bits.hamming_distance(&frame.codeword);

    println!(
        "Decoded with {} in {} iterations (converged: {})",
        decoder.name(),
        out.iterations,
        out.converged
    );
    println!("Bit errors after decoding: {errors}");
    assert_eq!(errors, 0, "the frame should decode cleanly at this SNR");
    println!("\nFrame decoded correctly.");
    Ok(())
}
