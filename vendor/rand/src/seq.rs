//! Sequence-related sampling helpers.

/// Index sampling (`rand::seq::index`).
pub mod index {
    use crate::Rng;

    /// A set of sampled indices.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct IndexVec(Vec<usize>);

    impl IndexVec {
        /// Number of sampled indices.
        pub fn len(&self) -> usize {
            self.0.len()
        }

        /// `true` when no indices were sampled.
        pub fn is_empty(&self) -> bool {
            self.0.is_empty()
        }

        /// Iterates over the sampled indices.
        pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
            self.0.iter().copied()
        }

        /// Consumes into the underlying vector.
        pub fn into_vec(self) -> Vec<usize> {
            self.0
        }
    }

    impl IntoIterator for IndexVec {
        type Item = usize;
        type IntoIter = std::vec::IntoIter<usize>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Samples `amount` distinct indices from `0..length`, in random order
    /// (partial Fisher–Yates shuffle).
    ///
    /// # Panics
    ///
    /// Panics if `amount > length`.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
        assert!(amount <= length, "cannot sample {amount} distinct indices from {length}");
        let mut indices: Vec<usize> = (0..length).collect();
        for i in 0..amount {
            let j = rng.random_range(i..length);
            indices.swap(i, j);
        }
        indices.truncate(amount);
        IndexVec(indices)
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::rngs::SmallRng;
        use crate::SeedableRng;

        #[test]
        fn samples_are_distinct_and_in_range() {
            let mut rng = SmallRng::seed_from_u64(5);
            for amount in [0, 1, 7, 50, 100] {
                let idx = sample(&mut rng, 100, amount);
                assert_eq!(idx.len(), amount);
                let mut seen = std::collections::HashSet::new();
                for i in idx {
                    assert!(i < 100);
                    assert!(seen.insert(i), "duplicate index {i}");
                }
            }
        }

        #[test]
        #[should_panic(expected = "cannot sample")]
        fn oversampling_panics() {
            let mut rng = SmallRng::seed_from_u64(1);
            let _ = sample(&mut rng, 3, 4);
        }
    }
}
