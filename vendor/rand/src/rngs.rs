//! Deterministic small-state generators.

use crate::{Rng, SeedableRng};

/// SplitMix64 step — used to expand seeds into generator state.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A small, fast, non-cryptographic generator (xoshiro256++).
///
/// Statistically solid for simulation workloads; seeded through SplitMix64
/// as the xoshiro authors recommend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        SmallRng { s }
    }
}

impl Rng for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Alias kept for code written against `rand`'s `StdRng`.
pub type StdRng = SmallRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_is_never_all_zero() {
        // xoshiro256++ is ill-defined from an all-zero state; SplitMix64
        // seeding never produces one.
        for seed in 0..64 {
            let rng = SmallRng::seed_from_u64(seed);
            assert_ne!(rng.s, [0; 4], "seed {seed}");
        }
    }

    #[test]
    fn successive_outputs_are_not_constant() {
        let mut rng = SmallRng::seed_from_u64(0);
        let first = rng.next_u64();
        assert!((0..100).any(|_| rng.next_u64() != first));
    }
}
