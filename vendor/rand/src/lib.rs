//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment of this repository has no network access, so the
//! workspace vendors the small API subset it actually uses: the [`Rng`] and
//! [`SeedableRng`] traits, [`rngs::SmallRng`], [`rng()`], and
//! [`seq::index::sample`]. Generators are deterministic per seed
//! (xoshiro256++ seeded through SplitMix64), which is all the Monte-Carlo
//! harness and the property tests rely on.
//!
//! This is **not** a cryptographic RNG and does not aim for value
//! compatibility with upstream `rand`; it aims for the same trait surface
//! and equivalent statistical quality for simulation workloads.

// Vendored stand-in: exempt from the workspace lint wall.
#![allow(clippy::all)]
pub mod rngs;
pub mod seq;

/// Types that can be sampled uniformly from an entropy source.
///
/// The stand-in for upstream's `StandardUniform` distribution support.
pub trait Random: Sized {
    /// Draws one uniformly distributed value.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Random for bool {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> bool {
        // Use the high bit: low bits of some generators are weaker.
        rng.next_u64() >> 63 == 1
    }
}

impl Random for f64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Random for f32 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: Rng + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::random(rng) * (self.end - self.start)
    }
}

/// A random number generator.
///
/// Mirrors the `rand` 0.9 method names (`random`, `random_range`).
pub trait Rng {
    /// The core entropy source: one uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniformly distributed value of type `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
        f64::random(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator seedable from a `u64` for reproducible streams.
pub trait SeedableRng: Sized {
    /// Builds a generator whose output is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// A fresh non-reproducible generator (seeded from the clock and a process
/// counter). Use [`SeedableRng::seed_from_u64`] for reproducible streams.
pub fn rng() -> rngs::SmallRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.subsec_nanos() as u64 ^ d.as_secs());
    let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
    rngs::SmallRng::seed_from_u64(nanos ^ unique.rotate_left(32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_samples_are_unit_interval_and_uniform_ish() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bool_samples_are_balanced() {
        let mut rng = SmallRng::seed_from_u64(9);
        let trues = (0..100_000).filter(|_| rng.random::<bool>()).count();
        assert!((trues as f64 / 100_000.0 - 0.5).abs() < 0.01, "{trues}");
    }

    #[test]
    fn ranges_cover_and_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let x = rng.random_range(-31i32..=31);
            assert!((-31..=31).contains(&x));
        }
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> bool {
            rng.random::<bool>()
        }
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = draw(&mut rng);
    }
}
