//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access, so the workspace vendors the
//! subset it uses: [`Criterion`], [`BenchmarkGroup`], `criterion_group!` /
//! `criterion_main!`, and [`black_box`].
//!
//! Measurement model: each benchmark is calibrated with a few probe runs,
//! then timed over `sample_size` samples whose per-sample iteration count is
//! sized so all samples together fill roughly `measurement_time`. The
//! reported statistics are min / median / mean nanoseconds per iteration.
//! Passing `--test` (as `cargo bench -- --test` does) runs every benchmark
//! body exactly once as a smoke test, without timing.

// Vendored stand-in: exempt from the workspace lint wall.
#![allow(clippy::all)]
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Times one benchmark body for a caller-chosen number of iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` `iters` times and records the total elapsed wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level harness state (run mode + defaults for new groups).
pub struct Criterion {
    test_mode: bool,
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { test_mode: false, sample_size: 100, measurement_time: Duration::from_secs(5) }
    }
}

impl Criterion {
    /// Applies command-line flags (`--test` switches to one-shot smoke mode;
    /// everything else criterion accepts is ignored).
    pub fn configure_from_args(mut self) -> Self {
        self.test_mode = std::env::args().any(|a| a == "--test");
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            test_mode: self.test_mode,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _criterion: self,
        }
    }

    #[doc(hidden)]
    pub fn final_summary(&self) {}
}

/// A named set of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    test_mode: bool,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Runs one benchmark and prints its per-iteration statistics.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        if self.test_mode {
            let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
            f(&mut b);
            println!("{}/{}: ok (smoke test)", self.name, id);
            return self;
        }

        // Calibration: grow the iteration count until one probe takes a
        // measurable slice of time, so short bodies are not timer-noise.
        let mut probe_iters: u64 = 1;
        let per_iter = loop {
            let mut b = Bencher { iters: probe_iters, elapsed: Duration::ZERO };
            f(&mut b);
            if b.elapsed >= Duration::from_millis(2) || probe_iters >= 1 << 24 {
                break b.elapsed.as_secs_f64() / probe_iters as f64;
            }
            probe_iters = probe_iters.saturating_mul(4);
        };

        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / per_iter.max(1e-12)) as u64).max(1);

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher { iters: iters_per_sample, elapsed: Duration::ZERO };
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{}/{}: min {} median {} mean {} ({} samples x {} iters)",
            self.name,
            id,
            fmt_time(min),
            fmt_time(median),
            fmt_time(mean),
            self.sample_size,
            iters_per_sample,
        );
        self
    }

    /// Ends the group (upstream writes reports here; the stub only prints).
    pub fn finish(self) {}
}

fn fmt_time(seconds: f64) -> String {
    let ns = seconds * 1e9;
    if ns < 1_000.0 {
        format!("{ns:.1}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2}us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2}ms", ns / 1_000_000.0)
    } else {
        format!("{:.2}s", seconds)
    }
}

/// Declares a benchmark group runner, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut calls = 0u64;
        let mut b = Bencher { iters: 17, elapsed: Duration::ZERO };
        b.iter(|| calls += 1);
        assert_eq!(calls, 17);
        assert!(b.elapsed >= Duration::ZERO);
    }

    #[test]
    fn group_runs_benchmarks_in_test_mode() {
        let mut c = Criterion { test_mode: true, ..Criterion::default() };
        let mut group = c.benchmark_group("g");
        let mut calls = 0u64;
        group.sample_size(10).measurement_time(Duration::from_millis(10));
        group.bench_function("one_shot", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 1, "--test mode runs the body exactly once");
    }

    #[test]
    fn timed_mode_produces_samples() {
        let mut c = Criterion {
            test_mode: false,
            sample_size: 3,
            measurement_time: Duration::from_millis(6),
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(3).measurement_time(Duration::from_millis(6));
        group.bench_function("spin", |b| b.iter(|| black_box(3u64).wrapping_mul(5)));
        group.finish();
    }

    #[test]
    fn time_formatting_scales() {
        assert!(fmt_time(5e-9).ends_with("ns"));
        assert!(fmt_time(5e-6).ends_with("us"));
        assert!(fmt_time(5e-3).ends_with("ms"));
        assert!(fmt_time(5.0).ends_with('s'));
    }
}
