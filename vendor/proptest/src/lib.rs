//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset it uses: the [`proptest!`] macro, `prop_assert!` /
//! `prop_assert_eq!`, numeric range strategies, [`any`],
//! `prop::sample::select` and `prop::collection::vec`.
//!
//! Differences from upstream, by design:
//!
//! * cases are generated from a deterministic per-test seed (hash of the
//!   test's module path and name), so failures reproduce without a
//!   persistence file;
//! * there is **no shrinking** — a failing case reports its inputs as-is.

// Vendored stand-in: exempt from the workspace lint wall.
#![allow(clippy::all)]
pub mod strategy;
pub mod test_runner;

/// `prop::…` namespace mirroring upstream's module layout.
pub mod prop {
    /// Strategies drawing from explicit value sets.
    pub mod sample {
        pub use crate::strategy::select;
    }
    /// Strategies producing collections.
    pub mod collection {
        pub use crate::strategy::vec;
    }
}

pub use strategy::{any, Arbitrary, Strategy};
pub use test_runner::{Config as ProptestConfig, TestCaseError, TestRng};

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...)` runs the
/// body for `Config::cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $config;
                let mut __rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                // Bind each strategy once; the loop shadows the binding with
                // a generated value, restoring the strategy every iteration.
                $( let $arg = $strategy; )+
                for __case in 0..__config.cases {
                    $( let $arg = $crate::strategy::Strategy::generate(&$arg, &mut __rng); )+
                    let __case_desc = format!("{:?}", ($(&$arg,)+));
                    let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = __outcome {
                        panic!(
                            "proptest '{}' failed at case {}/{} with inputs {}: {}",
                            stringify!($name), __case + 1, __config.cases, __case_desc, e,
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body, reporting the failing
/// inputs instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*), __l, __r
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -2i32..=2, z in 0.5..1.5f64) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2..=2).contains(&y));
            prop_assert!((0.5..1.5).contains(&z));
        }

        #[test]
        fn select_draws_from_the_set(v in prop::sample::select(vec![2u32, 4, 8])) {
            prop_assert!(v == 2 || v == 4 || v == 8);
        }

        #[test]
        fn collections_respect_size(v in prop::collection::vec(0u64..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
            return Ok(()); // early return must compile
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(seed in any::<u64>(), flag in any::<bool>()) {
            let _ = (seed, flag);
        }
    }

    #[test]
    fn failing_case_reports_inputs() {
        let result = std::panic::catch_unwind(|| {
            // No #[test] attribute: nested functions are invoked manually.
            proptest! {
                fn always_fails(x in 0usize..10) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            always_fails();
        });
        let err = result.expect_err("must panic");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("always_fails"), "{msg}");
        assert!(msg.contains("x was"), "{msg}");
    }
}
