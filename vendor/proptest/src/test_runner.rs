//! Test-case execution support: configuration, errors, and the
//! deterministic generator behind the [`proptest!`](crate::proptest) macro.

use std::fmt;

/// Per-block configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        // Upstream's default.
        Config { cases: 256 }
    }
}

/// A failed test case (carries the failure message).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic case generator: SplitMix64 seeded from the test's name,
/// so every run of a given test sees the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test identifier (typically `module_path!() :: name`).
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name gives a stable, well-mixed seed.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// One uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// One uniform draw from `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// One uniform draw from `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("x::y");
        let mut b = TestRng::for_test("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("x::z");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn config_default_matches_upstream() {
        assert_eq!(Config::default().cases, 256);
        assert_eq!(Config::with_cases(7).cases, 7);
    }
}
