//! Value-generation strategies.
//!
//! A [`Strategy`] deterministically maps generator state to a value. No
//! shrinking is implemented — see the crate docs for the differences from
//! upstream proptest.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Generates values of an associated type from the test generator.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (upstream's `prop_map`).
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing one constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Debug for Any<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("any")
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// The strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone + Debug>(Vec<T>);

impl<T: Clone + Debug> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0[rng.next_below(self.0.len() as u64) as usize].clone()
    }
}

/// A strategy drawing uniformly from an explicit set of values
/// (`prop::sample::select`).
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn select<T: Clone + Debug>(values: Vec<T>) -> Select<T> {
    assert!(!values.is_empty(), "cannot select from an empty set");
    Select(values)
}

/// The strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.clone().generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy generating vectors whose elements come from `element` and
/// whose length is drawn from `size` (`prop::collection::vec`).
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_just_compose() {
        let mut rng = TestRng::for_test("strategy::map");
        let doubled = (1usize..5).prop_map(|x| x * 2);
        for _ in 0..32 {
            let v = doubled.generate(&mut rng);
            assert!(v % 2 == 0 && (2..10).contains(&v));
        }
        assert_eq!(Just(7u8).generate(&mut rng), 7);
    }

    #[test]
    fn inclusive_ranges_hit_endpoints() {
        let mut rng = TestRng::for_test("strategy::endpoints");
        let strat = 0u16..=3;
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn signed_inclusive_ranges_cover_negative_values() {
        let mut rng = TestRng::for_test("strategy::signed");
        let strat = -31i32..=31;
        let mut saw_negative = false;
        for _ in 0..128 {
            let v = strat.generate(&mut rng);
            assert!((-31..=31).contains(&v));
            saw_negative |= v < 0;
        }
        assert!(saw_negative);
    }
}
