//! Section 2.1 quantization behaviour: 6-bit messages track the float
//! decoder closely; 5-bit messages degrade more. (The dB-level losses are
//! measured by the `quantization` bench; these tests pin the ordering.)

use dvbs2::channel::StopRule;
use dvbs2::decoder::Quantizer;
use dvbs2::ldpc::{CodeRate, FrameSize};
use dvbs2::{DecoderKind, Dvbs2System, SystemConfig};

fn system(decoder: DecoderKind) -> Dvbs2System {
    Dvbs2System::new(SystemConfig {
        rate: CodeRate::R1_2,
        frame: FrameSize::Short,
        decoder,
        ..SystemConfig::default()
    })
    .unwrap()
}

#[test]
fn six_bit_quantization_is_nearly_transparent() {
    // At an SNR where the float decoder is reliable, the 6-bit decoder must
    // also clear every frame ("total quantization loss is 0.1 dB").
    let float_sys = system(DecoderKind::Zigzag);
    let q6_sys = system(DecoderKind::Quantized(Quantizer::paper_6bit()));
    let stop = StopRule::frames(12);
    let f = float_sys.simulate_ber(2.8, stop, 2);
    let q = q6_sys.simulate_ber(2.8, stop, 2);
    assert_eq!(f.frame_errors, 0, "float baseline must be clean at 2.8 dB");
    assert_eq!(q.frame_errors, 0, "6-bit decoder must match at 2.8 dB");
}

#[test]
fn five_bit_loses_more_than_six_bit() {
    // Near threshold the 5-bit decoder makes at least as many errors as the
    // 6-bit decoder, and the gap shows in bit errors.
    let q6 = system(DecoderKind::Quantized(Quantizer::paper_6bit()));
    let q5 = system(DecoderKind::Quantized(Quantizer::paper_5bit()));
    let stop = StopRule::frames(30);
    // In the waterfall (1.1 dB) the ordering is unambiguous: the probe data
    // behind Quantizer::paper_6bit shows ~16x BER between the two widths.
    let ebn0 = 1.1;
    let e6 = q6.simulate_ber(ebn0, stop, 2);
    let e5 = q5.simulate_ber(ebn0, stop, 2);
    assert!(
        e5.bit_errors >= e6.bit_errors,
        "5-bit ({}) should not beat 6-bit ({}) at {ebn0} dB",
        e5.bit_errors,
        e6.bit_errors
    );
}

#[test]
fn coarse_quantization_still_converges_at_high_snr() {
    let q4 = system(DecoderKind::Quantized(Quantizer::new(4, 1.0)));
    let est = q4.simulate_ber(5.0, StopRule::frames(5), 2);
    assert_eq!(est.frame_errors, 0, "4-bit decoder should be fine at 5 dB");
}
