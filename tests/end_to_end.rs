//! End-to-end transmission tests across decoders, rates and frame sizes.

use dvbs2::channel::StopRule;
use dvbs2::decoder::{CheckRule, DecoderConfig, Quantizer};
use dvbs2::ldpc::{CodeRate, FrameSize};
use dvbs2::{DecoderKind, Dvbs2System, SystemConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn system(rate: CodeRate, frame: FrameSize, decoder: DecoderKind) -> Dvbs2System {
    Dvbs2System::new(SystemConfig { rate, frame, decoder, ..SystemConfig::default() }).unwrap()
}

#[test]
fn normal_frame_rate_half_decodes_near_threshold() {
    // The paper's headline code at ~1 dB (≈ 0.8 dB from Shannon).
    let sys = system(CodeRate::R1_2, FrameSize::Normal, DecoderKind::Zigzag);
    let mut rng = SmallRng::seed_from_u64(7);
    let frame = sys.transmit_frame(&mut rng, 1.2);
    let out = sys.make_decoder().decode(&frame.llrs);
    assert!(out.converged, "did not converge at 1.2 dB");
    assert_eq!(out.bits, frame.codeword);
}

#[test]
fn every_short_rate_decodes_at_high_snr() {
    let mut rng = SmallRng::seed_from_u64(11);
    for rate in CodeRate::ALL {
        if rate == CodeRate::R9_10 {
            continue; // undefined for short frames
        }
        let sys = system(rate, FrameSize::Short, DecoderKind::Zigzag);
        // High-rate codes need more Eb/N0; 6 dB clears every threshold.
        let frame = sys.transmit_frame(&mut rng, 6.0);
        let out = sys.make_decoder().decode(&frame.llrs);
        assert_eq!(out.bits, frame.codeword, "rate {rate}");
    }
}

#[test]
fn quantized_decoder_matches_float_at_operating_point() {
    let float_sys = system(CodeRate::R1_2, FrameSize::Short, DecoderKind::Zigzag);
    let quant_sys =
        system(CodeRate::R1_2, FrameSize::Short, DecoderKind::Quantized(Quantizer::paper_6bit()));
    let mut rng = SmallRng::seed_from_u64(23);
    for _ in 0..3 {
        let frame = float_sys.transmit_frame(&mut rng, 3.0);
        let f = float_sys.make_decoder().decode(&frame.llrs);
        let q = quant_sys.make_decoder().decode(&frame.llrs);
        assert_eq!(f.bits, frame.codeword);
        assert_eq!(q.bits, frame.codeword);
    }
}

#[test]
fn min_sum_system_works_end_to_end() {
    let sys = Dvbs2System::new(SystemConfig {
        rate: CodeRate::R2_3,
        frame: FrameSize::Short,
        decoder: DecoderKind::Flooding,
        decoder_config: DecoderConfig::default()
            .with_rule(CheckRule::NormalizedMinSum(0.8))
            .with_max_iterations(40),
        ..SystemConfig::default()
    })
    .unwrap();
    let mut rng = SmallRng::seed_from_u64(31);
    let frame = sys.transmit_frame(&mut rng, 4.5);
    let out = sys.make_decoder().decode(&frame.llrs);
    assert_eq!(out.bits, frame.codeword);
}

#[test]
fn zigzag_needs_fewer_iterations_than_flooding_in_aggregate() {
    // The Fig. 2 claim, measured through the public API.
    let zig = system(CodeRate::R1_2, FrameSize::Short, DecoderKind::Zigzag);
    let flood = system(CodeRate::R1_2, FrameSize::Short, DecoderKind::Flooding);
    let stop = StopRule::frames(10);
    let z = zig.simulate_ber(2.2, stop, 2);
    let f = flood.simulate_ber(2.2, stop, 2);
    assert!(
        z.avg_iterations() < f.avg_iterations(),
        "zigzag {} vs flooding {}",
        z.avg_iterations(),
        f.avg_iterations()
    );
}

#[test]
fn psk8_with_interleaver_decodes() {
    // 8PSK at the same Eb/N0 needs more margin than BPSK; 6 dB is ample
    // for rate 1/2.
    let sys = Dvbs2System::new(SystemConfig {
        rate: CodeRate::R1_2,
        frame: FrameSize::Short,
        modulation: dvbs2::channel::Modulation::Psk8,
        decoder: DecoderKind::Zigzag,
        ..SystemConfig::default()
    })
    .unwrap();
    let mut rng = SmallRng::seed_from_u64(37);
    let frame = sys.transmit_frame(&mut rng, 6.0);
    assert_eq!(frame.llrs.len(), sys.params().n);
    let out = sys.make_decoder().decode(&frame.llrs);
    assert!(out.converged);
    assert_eq!(out.bits, frame.codeword);
}

#[test]
fn psk8_needs_more_ebn0_than_bpsk() {
    // Spectral efficiency costs SNR: at 1.3 dB (just past the BPSK
    // waterfall) the BPSK system is clean while 8PSK still fails frames.
    let mk = |modulation| {
        Dvbs2System::new(SystemConfig {
            rate: CodeRate::R1_2,
            frame: FrameSize::Short,
            modulation,
            ..SystemConfig::default()
        })
        .unwrap()
    };
    let bpsk = mk(dvbs2::channel::Modulation::Bpsk);
    let psk8 = mk(dvbs2::channel::Modulation::Psk8);
    let stop = StopRule::frames(8);
    let b = bpsk.simulate_ber(1.3, stop, 2);
    let p = psk8.simulate_ber(1.3, stop, 2);
    assert_eq!(b.frame_errors, 0, "BPSK must be clean at 1.3 dB");
    assert!(p.frame_errors > 0, "8PSK should still fail at 1.3 dB");
}

#[test]
fn apsk16_chain_decodes_at_high_snr() {
    // 16APSK wired manually around the code (the Dvbs2System facade covers
    // BPSK/QPSK/8PSK; APSK is the standard's next step up).
    use dvbs2::channel::{AwgnChannel, Constellation};
    use dvbs2::decoder::{Decoder as _, DecoderConfig, ZigzagDecoder};
    use dvbs2::ldpc::DvbS2Code;
    use std::sync::Arc;

    let code = DvbS2Code::new(CodeRate::R2_3, FrameSize::Short).unwrap();
    let p = *code.params();
    let constellation = Constellation::apsk16(3.15);
    let enc = code.encoder().unwrap();
    let mut rng = SmallRng::seed_from_u64(77);
    let cw = enc.encode(&enc.random_message(&mut rng)).unwrap();

    let mut samples = constellation.modulate(&cw);
    let sigma = constellation.noise_sigma(9.0, p.k as f64 / p.n as f64);
    AwgnChannel::new(sigma).corrupt(&mut rng, &mut samples);
    let llrs = constellation.demap(&samples, sigma);

    let mut dec = ZigzagDecoder::new(Arc::new(code.tanner_graph()), DecoderConfig::default());
    let out = dec.decode(&llrs);
    assert!(out.converged, "16APSK at 9 dB should decode");
    assert_eq!(out.bits, cw);
}

#[test]
fn undecodable_snr_reports_failure_not_panic() {
    let sys = system(CodeRate::R9_10, FrameSize::Normal, DecoderKind::Zigzag);
    let mut rng = SmallRng::seed_from_u64(41);
    let frame = sys.transmit_frame(&mut rng, -3.0);
    let out = sys.make_decoder().decode(&frame.llrs);
    assert!(!out.converged);
    assert!(out.bits.hamming_distance(&frame.codeword) > 0);
}
