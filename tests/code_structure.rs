//! Figure 1 / Table 1 structural invariants across every code rate:
//! the IN/PN split, degree classes, zigzag chain, and the consistency of
//! matrix, graph and ROM views of the same code.

use dvbs2::hardware::ConnectivityRom;
use dvbs2::ldpc::{BitVec, CodeRate, DvbS2Code, FrameSize, PARALLELISM};

#[test]
fn all_normal_rates_build_and_validate() {
    for rate in CodeRate::ALL {
        let code = DvbS2Code::new(rate, FrameSize::Normal).unwrap();
        let p = code.params();
        assert!(p.is_consistent(), "{rate}");
        code.table().validate(p).unwrap();
    }
}

#[test]
fn matrix_and_graph_agree_for_every_rate() {
    for rate in CodeRate::ALL {
        let code = DvbS2Code::new(rate, FrameSize::Normal).unwrap();
        let p = code.params();
        let h = code.parity_check_matrix();
        let g = code.tanner_graph();
        assert_eq!(h.nnz(), g.edge_count(), "{rate}");
        assert_eq!(h.nnz(), p.e_in() + p.e_pn(), "{rate}");
        assert!(!h.has_duplicate_entries(), "{rate}");
        // Constant check degree (k), except the accumulator head.
        assert_eq!(g.check_degree(0), p.check_degree - 1, "{rate}");
        for c in [1, p.n_check / 3, p.n_check - 1] {
            assert_eq!(g.check_degree(c), p.check_degree, "{rate} check {c}");
        }
    }
}

#[test]
fn parity_chain_is_a_zigzag() {
    let code = DvbS2Code::new(CodeRate::R3_4, FrameSize::Normal).unwrap();
    let p = code.params();
    let g = code.tanner_graph();
    // Parity node j (variable K+j) connects exactly checks j and j+1.
    for j in [0usize, 1, p.n_check / 2, p.n_check - 2] {
        let v = p.k + j;
        let checks: Vec<usize> =
            g.var_edges(v).iter().map(|&e| g.check_of_edge(e as usize)).collect();
        assert_eq!(checks.len(), 2, "PN {j}");
        assert!(checks.contains(&j) && checks.contains(&(j + 1)), "PN {j}: {checks:?}");
    }
    // The last parity node has degree 1.
    assert_eq!(g.var_degree(p.n - 1), 1);
}

#[test]
fn degree_classes_match_table1_exactly() {
    for rate in [CodeRate::R1_4, CodeRate::R1_2, CodeRate::R2_3, CodeRate::R9_10] {
        let code = DvbS2Code::new(rate, FrameSize::Normal).unwrap();
        let p = code.params();
        let g = code.tanner_graph();
        let hist = g.var_degree_histogram();
        let count = |d: usize| hist.iter().find(|&&(deg, _)| deg == d).map_or(0, |&(_, c)| c);
        assert_eq!(count(p.hi.degree), p.hi.count, "{rate}");
        assert_eq!(count(3), p.lo.count, "{rate}");
        assert_eq!(count(2), p.n_check - 1, "{rate}");
        assert_eq!(count(1), 1, "{rate}");
    }
}

#[test]
fn rom_reconstructs_the_tanner_graph() {
    // Walking the ROM's (word, shift, residue) entries must produce exactly
    // the information edges of the Tanner graph.
    let code = DvbS2Code::new(CodeRate::R8_9, FrameSize::Normal).unwrap();
    let p = code.params();
    let rom = ConnectivityRom::build(p, code.table());
    let g = code.tanner_graph();

    let mut rom_edges = Vec::new();
    for r in 0..rom.row_count() {
        for &w in rom.row(r) {
            let e = rom.entry(w as usize);
            for u in 0..PARALLELISM {
                let t = (u + PARALLELISM - e.shift as usize) % PARALLELISM;
                let m = e.group as usize * PARALLELISM + t;
                let check = u * p.q + r;
                rom_edges.push((check as u32, m as u32));
            }
        }
    }
    let mut graph_edges = Vec::new();
    for c in 0..g.check_count() {
        for e in g.check_edges(c) {
            let v = g.var_of_edge(e);
            if v < p.k {
                graph_edges.push((c as u32, v as u32));
            }
        }
    }
    rom_edges.sort_unstable();
    graph_edges.sort_unstable();
    assert_eq!(rom_edges, graph_edges);
}

#[test]
fn encoded_words_satisfy_every_rate() {
    use rand::{rngs::SmallRng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(99);
    for rate in CodeRate::ALL {
        let code = DvbS2Code::new(rate, FrameSize::Normal).unwrap();
        let enc = code.encoder().unwrap();
        let h = code.parity_check_matrix();
        let cw = enc.encode(&enc.random_message(&mut rng)).unwrap();
        assert!(h.is_codeword(&cw), "{rate}");
    }
}

#[test]
fn minimum_distance_smoke_no_tiny_codewords() {
    // A girth-conditioned LDPC code must not have weight-1 or weight-2
    // codewords; check via syndromes of all weight-1 and sampled weight-2
    // words (exhaustive weight-2 would be N^2).
    let code = DvbS2Code::new(CodeRate::R8_9, FrameSize::Short).unwrap();
    let h = code.parity_check_matrix();
    let n = code.params().n;
    for i in (0..n).step_by(997) {
        let mut w = BitVec::zeros(n);
        w.set(i, true);
        assert!(!h.is_codeword(&w), "weight-1 codeword at {i}");
        let mut w2 = w.clone();
        w2.set((i + 31) % n, true);
        assert!(!h.is_codeword(&w2), "weight-2 codeword at {i}");
    }
}
