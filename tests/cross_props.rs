//! Cross-crate property tests: the full encode→channel→decode chain under
//! randomized seeds, rates and SNRs.

use dvbs2::decoder::Quantizer;
use dvbs2::ldpc::{CodeRate, FrameSize};
use dvbs2::{DecoderKind, Dvbs2System, SystemConfig};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn short_rates() -> impl Strategy<Value = CodeRate> {
    prop::sample::select(vec![
        CodeRate::R1_4,
        CodeRate::R1_2,
        CodeRate::R2_3,
        CodeRate::R4_5,
        CodeRate::R8_9,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// At generous SNR every decoder recovers every random frame exactly.
    #[test]
    fn high_snr_frames_always_decode(rate in short_rates(), seed in any::<u64>()) {
        let sys = Dvbs2System::new(SystemConfig {
            rate,
            frame: FrameSize::Short,
            decoder: DecoderKind::Zigzag,
            ..SystemConfig::default()
        }).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        let frame = sys.transmit_frame(&mut rng, 7.0);
        let out = sys.make_decoder().decode(&frame.llrs);
        prop_assert!(out.converged);
        prop_assert_eq!(out.bits, frame.codeword);
    }

    /// Decoding is a pure function of the LLRs: two decoder instances give
    /// identical results.
    #[test]
    fn decoding_is_deterministic(seed in any::<u64>()) {
        let sys = Dvbs2System::new(SystemConfig {
            frame: FrameSize::Short,
            decoder: DecoderKind::Quantized(Quantizer::paper_6bit()),
            ..SystemConfig::default()
        }).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        let frame = sys.transmit_frame(&mut rng, 1.5);
        let a = sys.make_decoder().decode(&frame.llrs);
        let b = sys.make_decoder().decode(&frame.llrs);
        prop_assert_eq!(a, b);
    }

    /// A decoder reporting convergence always returns a valid codeword.
    #[test]
    fn converged_implies_codeword(seed in any::<u64>(), ebn0 in 0.0..4.0f64) {
        let sys = Dvbs2System::new(SystemConfig {
            frame: FrameSize::Short,
            ..SystemConfig::default()
        }).unwrap();
        let h = sys.code().parity_check_matrix();
        let mut rng = SmallRng::seed_from_u64(seed);
        let frame = sys.transmit_frame(&mut rng, ebn0);
        let out = sys.make_decoder().decode(&frame.llrs);
        if out.converged {
            prop_assert!(h.is_codeword(&out.bits));
        }
    }
}
