//! RTL-style verification of the cycle-accurate core: bit-exactness against
//! the golden model under annealed schedules, non-default memory
//! configurations, early stop, and across rates — plus agreement with the
//! algorithmic fixed-point decoder on decodable frames.

use dvbs2::decoder::{Decoder, DecoderConfig, QCheckArithmetic, QuantizedZigzagDecoder, Quantizer};
use dvbs2::hardware::{
    optimize_schedule, AnnealOptions, CnSchedule, ConnectivityRom, CoreConfig, GoldenModel,
    HardwareDecoder, MemoryConfig, TestVectorSet,
};
use dvbs2::ldpc::{CodeRate, DvbS2Code, FrameSize};
use dvbs2::{Dvbs2System, SystemConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;

fn noisy_channel(code: &DvbS2Code, ebn0_db: f64, seed: u64) -> (dvbs2::ldpc::BitVec, Vec<f64>) {
    let sys = Dvbs2System::new(SystemConfig {
        rate: code.params().rate,
        frame: code.params().frame,
        ..SystemConfig::default()
    })
    .unwrap();
    let mut rng = SmallRng::seed_from_u64(seed);
    let frame = sys.transmit_frame(&mut rng, ebn0_db);
    (frame.codeword, frame.llrs)
}

#[test]
fn timed_core_is_bit_exact_for_every_short_rate() {
    for rate in CodeRate::ALL.into_iter().filter(|&r| r != CodeRate::R9_10) {
        let code = DvbS2Code::new(rate, FrameSize::Short).unwrap();
        let rom = ConnectivityRom::build(code.params(), code.table());
        let schedule = CnSchedule::natural(&rom);
        let config = CoreConfig { max_iterations: 8, ..CoreConfig::default() };
        let mut hw = HardwareDecoder::new(&code, schedule.clone(), config);
        let mut golden = GoldenModel::new(&code, schedule, config.quantizer, 8, false);
        let (_, llrs) = noisy_channel(&code, 2.0, 100 + rate as u64);
        let channel = hw.quantize_channel(&llrs);
        assert_eq!(
            hw.decode_quantized(&channel).result,
            golden.decode_quantized(&channel),
            "{rate}"
        );
    }
}

#[test]
fn timed_core_is_bit_exact_on_a_normal_frame() {
    let code = DvbS2Code::new(CodeRate::R1_2, FrameSize::Normal).unwrap();
    let rom = ConnectivityRom::build(code.params(), code.table());
    let schedule = optimize_schedule(
        &rom,
        MemoryConfig::default(),
        AnnealOptions { moves: 300, ..AnnealOptions::default() },
    )
    .schedule;
    let config = CoreConfig { max_iterations: 30, early_stop: true, ..CoreConfig::default() };
    let mut hw = HardwareDecoder::new(&code, schedule.clone(), config);
    let mut golden = GoldenModel::new(&code, schedule, config.quantizer, 30, true);
    let (cw, llrs) = noisy_channel(&code, 1.4, 77);
    let channel = hw.quantize_channel(&llrs);
    let hw_out = hw.decode_quantized(&channel);
    assert_eq!(hw_out.result, golden.decode_quantized(&channel));
    assert_eq!(hw_out.result.bits, cw);
}

#[test]
fn bit_exact_under_unusual_memory_configurations() {
    let code = DvbS2Code::new(CodeRate::R1_2, FrameSize::Short).unwrap();
    let rom = ConnectivityRom::build(code.params(), code.table());
    let schedule = CnSchedule::natural(&rom);
    let (_, llrs) = noisy_channel(&code, 2.4, 5);
    for memory in [
        MemoryConfig { banks: 1, write_ports: 1, fu_latency: 3 },
        MemoryConfig { banks: 2, write_ports: 1, fu_latency: 9 },
        MemoryConfig { banks: 8, write_ports: 3, fu_latency: 1 },
    ] {
        let config = CoreConfig { memory, max_iterations: 6, ..CoreConfig::default() };
        let mut hw = HardwareDecoder::new(&code, schedule.clone(), config);
        let mut golden = GoldenModel::new(&code, schedule.clone(), config.quantizer, 6, false);
        let channel = hw.quantize_channel(&llrs);
        // Timing configuration must never change the data.
        assert_eq!(
            hw.decode_quantized(&channel).result,
            golden.decode_quantized(&channel),
            "{memory:?}"
        );
    }
}

#[test]
fn fewer_banks_cost_more_buffer_and_cycles() {
    let code = DvbS2Code::new(CodeRate::R1_2, FrameSize::Short).unwrap();
    let (_, llrs) = noisy_channel(&code, 2.4, 8);
    let run = |banks: usize| {
        let config = CoreConfig {
            memory: MemoryConfig { banks, ..MemoryConfig::default() },
            max_iterations: 5,
            ..CoreConfig::default()
        };
        let mut hw = HardwareDecoder::with_natural_schedule(&code, config);
        hw.decode(&llrs).cycles
    };
    let one = run(1);
    let four = run(4);
    assert!(one.max_buffer >= four.max_buffer, "{one:?} vs {four:?}");
    assert!(one.total_cycles >= four.total_cycles);
}

#[test]
fn hardware_core_agrees_with_algorithmic_decoder_on_decoded_frames() {
    let code = DvbS2Code::new(CodeRate::R1_2, FrameSize::Short).unwrap();
    let graph = Arc::new(code.tanner_graph());
    let mut ideal =
        QuantizedZigzagDecoder::new(graph, Quantizer::paper_6bit(), DecoderConfig::default());
    let mut hw = HardwareDecoder::with_natural_schedule(
        &code,
        CoreConfig { early_stop: true, ..CoreConfig::default() },
    );
    for seed in 0..3 {
        let (cw, llrs) = noisy_channel(&code, 3.2, 600 + seed);
        let hw_bits = hw.decode(&llrs).result.bits;
        let ideal_bits = ideal.decode(&llrs).bits;
        assert_eq!(hw_bits, cw, "seed {seed}");
        assert_eq!(ideal_bits, cw, "seed {seed}");
    }
}

#[test]
fn timed_core_is_bit_exact_at_r910_normal() {
    // R 9/10 exists only at Normal frames (no Short variant in the
    // standard), so the all-short-rates sweep above cannot cover the
    // highest-rate, densest-row connectivity. Pin it here explicitly.
    let code = DvbS2Code::new(CodeRate::R9_10, FrameSize::Normal).unwrap();
    let rom = ConnectivityRom::build(code.params(), code.table());
    let schedule = CnSchedule::natural(&rom);
    let config = CoreConfig { max_iterations: 6, early_stop: true, ..CoreConfig::default() };
    let mut hw = HardwareDecoder::new(&code, schedule.clone(), config);
    let mut golden = GoldenModel::new(&code, schedule, config.quantizer, 6, true);
    let (cw, llrs) = noisy_channel(&code, 4.6, 910);
    let channel = hw.quantize_channel(&llrs);
    let hw_out = hw.decode_quantized(&channel);
    assert_eq!(hw_out.result, golden.decode_quantized(&channel));
    assert!(hw_out.result.converged, "4.6 dB is comfortably above the R9/10 threshold");
    assert_eq!(hw_out.result.bits, cw);
}

#[test]
fn min_sum_arithmetic_agrees_with_hardware_on_decoded_frames() {
    // The hardware functional units are LUT-only, so the min-sum-shift
    // arithmetic has no timed twin; the contract is agreement on decoded
    // words, not bit-exact messages (min-sum trades ~0.1-0.2 dB).
    let code = DvbS2Code::new(CodeRate::R2_3, FrameSize::Short).unwrap();
    let graph = Arc::new(code.tanner_graph());
    let quantizer = Quantizer::paper_6bit();
    let mut min_sum = QuantizedZigzagDecoder::with_arithmetic(
        Arc::clone(&graph),
        QCheckArithmetic::min_sum_shift(quantizer, 2),
        DecoderConfig::default(),
    );
    let mut hw = HardwareDecoder::with_natural_schedule(
        &code,
        CoreConfig { early_stop: true, ..CoreConfig::default() },
    );
    for seed in 0..3 {
        let (cw, llrs) = noisy_channel(&code, 4.4, 6600 + seed);
        let hw_out = hw.decode(&llrs);
        let ms_out = min_sum.decode(&llrs);
        assert!(hw_out.result.converged && ms_out.converged, "seed {seed}");
        assert_eq!(hw_out.result.bits, cw, "seed {seed}: LUT hardware");
        assert_eq!(ms_out.bits, cw, "seed {seed}: min-sum-shift");
    }
}

#[test]
fn generated_test_vectors_replay_on_the_core() {
    let set = TestVectorSet::generate(
        CodeRate::R2_3,
        FrameSize::Short,
        Quantizer::paper_6bit(),
        2,
        4.2,
        2024,
    );
    let code = DvbS2Code::new(set.rate, set.frame).unwrap();
    let mut hw = HardwareDecoder::with_natural_schedule(
        &code,
        CoreConfig { early_stop: true, ..CoreConfig::default() },
    );
    let text = set.to_text();
    let parsed = TestVectorSet::parse(&text).unwrap();
    for (i, frame) in parsed.frames.iter().enumerate() {
        let out = hw.decode_quantized(&frame.channel);
        assert_eq!(out.result.bits, frame.expected_bits, "frame {i}");
        assert_eq!(out.result.iterations, frame.expected_iterations, "frame {i}");
    }
}
