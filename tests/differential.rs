//! Bounded differential-oracle suite: a fixed-seed slice of the `diff_fuzz`
//! sweep small enough for every CI run, plus unit coverage of the case
//! generator, the repro-string round-trip, the fault-injection suite and
//! the failure shrinker.

use dvbs2::hardware::MemoryConfig;
use dvbs2::ldpc::{CodeRate, FrameSize};
use dvbs2::oracle::{
    run, run_case, run_fault_suite, shrink_case, ArithmeticKind, CaseSpec, OracleConfig,
    ScheduleKind,
};

#[test]
fn bounded_sweep_is_clean() {
    // A fixed 48-case budget keeps this under CI timescales while touching
    // both frame sizes and most rates; the full 500-case budget runs in the
    // dedicated diff_fuzz CI job.
    let report = run(&OracleConfig { master_seed: 0xD1FF, cases: 48, threads: 4 });
    assert_eq!(report.cases, 48);
    assert!(report.rates_covered.len() >= 6, "rates: {:?}", report.rates_covered);
    assert_eq!(report.frames_covered.len(), 2, "both frame sizes");
    assert!(
        report.clean(),
        "contract violations:\n{}",
        report.violations.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn generator_is_deterministic_and_varied() {
    let a: Vec<CaseSpec> = (0..64).map(|i| CaseSpec::generate(7, i)).collect();
    let b: Vec<CaseSpec> = (0..64).map(|i| CaseSpec::generate(7, i)).collect();
    assert_eq!(a, b, "same master seed, same cases");
    let c = CaseSpec::generate(8, 0);
    assert_ne!(a[0], c, "different master seed, different cases");
    // R 9/10 must only be drawn at Normal frames.
    for case in &a {
        assert!(
            case.frame == FrameSize::Normal || case.rate != CodeRate::R9_10,
            "{case}: R9/10 has no Short variant"
        );
    }
    // Both convergence regimes appear.
    assert!(a.iter().any(|case| case.early_stop) && a.iter().any(|case| !case.early_stop));
    // Both schedule kinds and several memory configurations appear, but
    // annealed schedules stay off the expensive Normal frames.
    assert!(a.iter().any(|case| case.schedule == ScheduleKind::Annealed));
    assert!(a.iter().any(|case| case.schedule == ScheduleKind::Natural));
    for case in &a {
        assert!(
            case.frame == FrameSize::Short || case.schedule == ScheduleKind::Natural,
            "{case}: annealing a Normal frame would dominate the run"
        );
    }
    assert!(a.iter().any(|case| case.memory != MemoryConfig::default()));
    assert!(
        a.iter().map(|case| case.memory.banks).collect::<std::collections::HashSet<_>>().len() > 1
    );
}

#[test]
fn repro_string_round_trips() {
    for index in 0..32 {
        let case = CaseSpec::generate(0xABCD, index);
        let text = case.to_string();
        let parsed: CaseSpec = text.parse().unwrap_or_else(|e| panic!("{text}: {e}"));
        assert_eq!(parsed, case, "{text}");
    }
    assert!("seed=1 rate=7/8 frame=short".parse::<CaseSpec>().is_err(), "unknown rate");
    assert!("not a spec".parse::<CaseSpec>().is_err());

    // Repro strings recorded before the schedule/memory dimensions existed
    // must still parse, defaulting to the natural schedule and the paper
    // memory configuration.
    let legacy = "seed=7 rate=2/3 frame=short ebn0=2.4 q=6 arith=msshift2 iters=6 early=true";
    let parsed: CaseSpec = legacy.parse().unwrap();
    assert_eq!(parsed.schedule, ScheduleKind::Natural);
    assert_eq!(parsed.memory, MemoryConfig::default());
    let full = format!("{legacy} sched=annealed mem=2x1x3");
    let parsed: CaseSpec = full.parse().unwrap();
    assert_eq!(parsed.schedule, ScheduleKind::Annealed);
    assert_eq!(parsed.memory, MemoryConfig { banks: 2, write_ports: 1, fu_latency: 3 });
    assert!(format!("{legacy} sched=zigzag").parse::<CaseSpec>().is_err(), "unknown schedule");
    assert!(format!("{legacy} mem=4x2").parse::<CaseSpec>().is_err(), "truncated memory");
}

#[test]
fn single_case_replay_is_clean_and_deterministic() {
    let case = CaseSpec {
        seed: 99,
        rate: CodeRate::R1_2,
        frame: FrameSize::Short,
        ebn0_db: 2.2,
        quantizer_bits: 6,
        arithmetic: ArithmeticKind::MinSumShift(2),
        max_iterations: 6,
        early_stop: true,
        schedule: ScheduleKind::Natural,
        memory: MemoryConfig::default(),
    };
    assert!(run_case(0, &case).is_empty());
    assert!(run_case(0, &case).is_empty(), "replay must be stable");
    // The timing contracts must also hold off the paper's operating point:
    // an annealed schedule on a starved memory subsystem.
    let stressed = CaseSpec {
        schedule: ScheduleKind::Annealed,
        memory: MemoryConfig { banks: 2, write_ports: 1, fu_latency: 3 },
        ..case
    };
    assert!(
        run_case(0, &stressed).is_empty(),
        "annealed/starved case: {:?}",
        run_case(0, &stressed)
    );
}

#[test]
fn fault_suite_degrades_gracefully() {
    let report = run_fault_suite(CodeRate::R1_2, FrameSize::Short, 0xFA);
    assert!(report.scenarios >= 7, "scenarios: {}", report.scenarios);
    assert!(
        report.clean(),
        "fault violations:\n{}",
        report.violations.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn shrinker_minimizes_while_preserving_failure() {
    let failing = CaseSpec {
        seed: 5,
        rate: CodeRate::R2_3,
        frame: FrameSize::Normal,
        ebn0_db: 2.4,
        quantizer_bits: 5,
        arithmetic: ArithmeticKind::MinSumShift(3),
        max_iterations: 24,
        early_stop: true,
        schedule: ScheduleKind::Annealed,
        memory: MemoryConfig { banks: 8, write_ports: 2, fu_latency: 4 },
    };
    // Synthetic predicate: the "bug" needs at least 3 iterations and the
    // min-sum arithmetic; everything else is shrinkable noise.
    let still_fails = |c: &CaseSpec| {
        c.max_iterations >= 3 && matches!(c.arithmetic, ArithmeticKind::MinSumShift(_))
    };
    let shrunk = shrink_case(&failing, still_fails);
    assert!(still_fails(&shrunk), "shrinking must preserve the failure");
    assert_eq!(shrunk.max_iterations, 3, "iterations minimized");
    assert_eq!(shrunk.frame, FrameSize::Short, "frame demoted");
    assert_eq!(shrunk.quantizer_bits, 6, "quantizer normalized");
    assert!(!shrunk.early_stop, "early stop removed");
    assert_eq!(shrunk.schedule, ScheduleKind::Natural, "schedule normalized");
    assert_eq!(shrunk.memory, MemoryConfig::default(), "memory normalized");
    assert_eq!((shrunk.seed, shrunk.rate), (failing.seed, failing.rate), "identity preserved");
    assert_eq!(shrunk.arithmetic, failing.arithmetic);

    // A predicate that always fails shrinks to the floor everywhere.
    let floor = shrink_case(&failing, |_| true);
    assert_eq!(floor.max_iterations, 1);

    // A predicate nothing satisfies returns the original case untouched.
    let untouched = shrink_case(&failing, |_| false);
    assert_eq!(untouched, failing);
}
