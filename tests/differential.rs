//! Bounded differential-oracle suite: a fixed-seed slice of the `diff_fuzz`
//! sweep small enough for every CI run, plus unit coverage of the case
//! generator, the repro-string round-trip, the fault-injection suite and
//! the failure shrinker.

use dvbs2::channel::Modulation;
use dvbs2::hardware::{
    FaultActivation, FaultScenario, FuFault, MemoryConfig, RamFault, TimedRamFault,
};
use dvbs2::ldpc::{CodeRate, FrameSize};
use dvbs2::oracle::{
    run, run_case, run_fabric_sweep, run_fault_differential, run_fault_suite, run_partition_sweep,
    shrink_case, ArithmeticKind, CaseSpec, OracleConfig, ScheduleKind,
};

#[test]
fn bounded_sweep_is_clean() {
    // A fixed 48-case budget keeps this under CI timescales while touching
    // both frame sizes and most rates; the full 500-case budget runs in the
    // dedicated diff_fuzz CI job.
    let report = run(&OracleConfig { master_seed: 0xD1FF, cases: 48, threads: 4 });
    assert_eq!(report.cases, 48);
    assert!(report.rates_covered.len() >= 6, "rates: {:?}", report.rates_covered);
    assert_eq!(report.frames_covered.len(), 2, "both frame sizes");
    assert!(
        report.clean(),
        "contract violations:\n{}",
        report.violations.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn generator_is_deterministic_and_varied() {
    let a: Vec<CaseSpec> = (0..64).map(|i| CaseSpec::generate(7, i)).collect();
    let b: Vec<CaseSpec> = (0..64).map(|i| CaseSpec::generate(7, i)).collect();
    assert_eq!(a, b, "same master seed, same cases");
    let c = CaseSpec::generate(8, 0);
    assert_ne!(a[0], c, "different master seed, different cases");
    // R 9/10 must only be drawn at Normal frames.
    for case in &a {
        assert!(
            case.frame == FrameSize::Normal || case.rate != CodeRate::R9_10,
            "{case}: R9/10 has no Short variant"
        );
    }
    // Both convergence regimes appear.
    assert!(a.iter().any(|case| case.early_stop) && a.iter().any(|case| !case.early_stop));
    // Both schedule kinds and several memory configurations appear, but
    // annealed schedules stay off the expensive Normal frames.
    assert!(a.iter().any(|case| case.schedule == ScheduleKind::Annealed));
    assert!(a.iter().any(|case| case.schedule == ScheduleKind::Natural));
    for case in &a {
        assert!(
            case.frame == FrameSize::Short || case.schedule == ScheduleKind::Natural,
            "{case}: annealing a Normal frame would dominate the run"
        );
    }
    assert!(a.iter().any(|case| case.memory != MemoryConfig::default()));
    assert!(
        a.iter().map(|case| case.memory.banks).collect::<std::collections::HashSet<_>>().len() > 1
    );
    // The new dimensions are all exercised: several I/O widths (so the
    // io_cycles contract sees more than the paper default), interleaved
    // 8PSK frames, and injected RAM faults of both kinds.
    assert!(
        a.iter().map(|case| case.p_io).collect::<std::collections::HashSet<_>>().len() > 2,
        "p_io must vary"
    );
    assert!(a.iter().any(|case| case.p_io == 10), "the paper default stays in the mix");
    assert!(a.iter().any(|case| case.modulation == Modulation::Psk8));
    assert!(a.iter().any(|case| case.modulation == Modulation::Bpsk));
    let ram_kind = |case: &CaseSpec, stuck: bool| {
        case.fault.ram_faults().any(|t| matches!(t.fault, RamFault::StuckWord { .. }) == stuck)
    };
    assert!(a.iter().any(|case| ram_kind(case, true)));
    assert!(a.iter().any(|case| ram_kind(case, false)));
    assert!(a.iter().any(|case| case.fault.is_empty()));
    // The PR-7 scenario dimensions all appear: non-permanent activations,
    // multi-fault cases, and FU datapath faults.
    assert!(a
        .iter()
        .any(|case| case.fault.ram_faults().any(|t| t.activation != FaultActivation::Permanent)));
    assert!(a.iter().any(|case| case.fault.ram_fault_count() > 1));
    assert!(a.iter().any(|case| case.fault.fu_fault().is_some()));
    // The fabric dimension is drawn often enough to matter, single-core
    // cases stay in the mix, and Normal frames cap at two cores.
    assert!(a.iter().any(|case| case.fabric > 1), "multi-core fabric cases must appear");
    assert!(a.iter().any(|case| case.fabric == 1), "single-core cases must stay in the mix");
    for case in &a {
        assert!(
            case.frame == FrameSize::Short || case.fabric <= 2,
            "{case}: Normal-frame fabrics cap at two cores"
        );
    }
}

#[test]
fn repro_string_round_trips() {
    for index in 0..32 {
        let case = CaseSpec::generate(0xABCD, index);
        let text = case.to_string();
        let parsed: CaseSpec = text.parse().unwrap_or_else(|e| panic!("{text}: {e}"));
        assert_eq!(parsed, case, "{text}");
    }
    assert!("seed=1 rate=7/8 frame=short".parse::<CaseSpec>().is_err(), "unknown rate");
    assert!("not a spec".parse::<CaseSpec>().is_err());

    // Repro strings recorded before the schedule/memory dimensions existed
    // must still parse, defaulting to the natural schedule and the paper
    // memory configuration.
    let legacy = "seed=7 rate=2/3 frame=short ebn0=2.4 q=6 arith=msshift2 iters=6 early=true";
    let parsed: CaseSpec = legacy.parse().unwrap();
    assert_eq!(parsed.schedule, ScheduleKind::Natural);
    assert_eq!(parsed.memory, MemoryConfig::default());
    let full = format!("{legacy} sched=annealed mem=2x1x3");
    let parsed: CaseSpec = full.parse().unwrap();
    assert_eq!(parsed.schedule, ScheduleKind::Annealed);
    assert_eq!(parsed.memory, MemoryConfig { banks: 2, write_ports: 1, fu_latency: 3 });
    assert!(format!("{legacy} sched=zigzag").parse::<CaseSpec>().is_err(), "unknown schedule");
    assert!(format!("{legacy} mem=4x2").parse::<CaseSpec>().is_err(), "truncated memory");
}

#[test]
fn pre_pr4_repro_strings_still_parse() {
    // Pin: every repro-string shape that existed before the fault/pio/mod
    // dimensions must keep parsing, with the new fields at their defaults.
    let shapes = [
        "seed=7 rate=2/3 frame=short ebn0=2.4 q=6 arith=msshift2 iters=6 early=true",
        "seed=7 rate=2/3 frame=short ebn0=2.4 q=6 arith=lut iters=6 early=false sched=annealed",
        "seed=12 rate=1/4 frame=normal ebn0=0.8 q=5 arith=msshift1 iters=3 early=true \
         sched=natural mem=2x1x3",
        "seed=0 rate=9/10 frame=normal ebn0=4.4 q=6 arith=msshift3 iters=2 early=true \
         sched=natural mem=8x2x4",
    ];
    for text in shapes {
        let parsed: CaseSpec = text.parse().unwrap_or_else(|e| panic!("{text}: {e}"));
        assert_eq!(parsed.p_io, 10, "{text}: p_io defaults to the paper value");
        assert_eq!(parsed.modulation, Modulation::Bpsk, "{text}: modulation defaults to BPSK");
        assert!(parsed.fault.is_empty(), "{text}: no fault by default");
    }
}

#[test]
fn fault_and_pio_keys_round_trip() {
    // Property-style round trip over the new keys: every generated case —
    // and hand-built corner cases for both fault kinds — must survive
    // Display -> FromStr unchanged.
    let mut faulted = 0;
    for index in 0..64 {
        let case = CaseSpec::generate(0xFA17, index);
        let text = case.to_string();
        let parsed: CaseSpec = text.parse().unwrap_or_else(|e| panic!("{text}: {e}"));
        assert_eq!(parsed, case, "{text}");
        if !case.fault.is_empty() {
            faulted += 1;
            assert!(text.contains("fault="), "{text}: fault must be spelled out");
        } else {
            assert!(!text.contains("fault="), "{text}: healthy cases omit the key");
        }
    }
    assert!(faulted > 4, "the generator must draw faults often enough to matter");

    let base = CaseSpec {
        seed: 3,
        rate: CodeRate::R1_2,
        frame: FrameSize::Short,
        ebn0_db: 1.4,
        quantizer_bits: 6,
        arithmetic: ArithmeticKind::Lut,
        max_iterations: 4,
        early_stop: true,
        schedule: ScheduleKind::Natural,
        memory: MemoryConfig::default(),
        p_io: 16,
        modulation: Modulation::Psk8,
        fault: FaultScenario::single(RamFault::StuckWord { word: 9, value: -31 }),
        fabric: 1,
        simd: None,
    };
    for fault in [
        FaultScenario::none(),
        FaultScenario::single(RamFault::StuckWord { word: 0, value: 0 }),
        FaultScenario::single(RamFault::StuckWord { word: 123, value: 31 }),
        FaultScenario::single(RamFault::FlippedBits { word: 7, mask: 1 }),
        FaultScenario::single(RamFault::FlippedBits { word: 500, mask: 0b11111 }),
        // Extended PR-7 atoms: windowed and random activations, multi-fault
        // scenarios, and FU faults must survive the round trip too.
        FaultScenario::none().with_ram(TimedRamFault {
            fault: RamFault::StuckWord { word: 11, value: -7 },
            activation: FaultActivation::Window { from: 2, until: 5 },
        }),
        FaultScenario::none().with_ram(TimedRamFault {
            fault: RamFault::FlippedBits { word: 3, mask: 0b101 },
            activation: FaultActivation::Random { seed: 0xC0FFEE, per_mille: 250 },
        }),
        FaultScenario::single(RamFault::StuckWord { word: 1, value: 4 })
            .with_ram(TimedRamFault::permanent(RamFault::FlippedBits { word: 90, mask: 2 }))
            .with_fu(Some(FuFault::StuckSign { unit: 42, negative: true })),
        FaultScenario::none().with_fu(Some(FuFault::StuckMag { unit: 359, value: 31 })),
    ] {
        let case = CaseSpec { fault, ..base };
        let text = case.to_string();
        assert_eq!(text.parse::<CaseSpec>().unwrap(), case, "{text}");
    }
    // Explicit `fault=none` and the three modulation spellings parse too.
    let legacy = "seed=7 rate=2/3 frame=short ebn0=2.4 q=6 arith=lut iters=6 early=true";
    assert!(format!("{legacy} fault=none").parse::<CaseSpec>().unwrap().fault.is_empty());
    for (name, modulation) in
        [("bpsk", Modulation::Bpsk), ("qpsk", Modulation::Qpsk), ("8psk", Modulation::Psk8)]
    {
        let parsed = format!("{legacy} mod={name}").parse::<CaseSpec>().unwrap();
        assert_eq!(parsed.modulation, modulation, "{name}");
    }
    // Malformed values are rejected, not defaulted.
    assert!(format!("{legacy} pio=0").parse::<CaseSpec>().is_err(), "zero p_io");
    assert!(format!("{legacy} mod=16qam").parse::<CaseSpec>().is_err(), "unknown modulation");
    assert!(format!("{legacy} fault=stuck@3").parse::<CaseSpec>().is_err(), "missing value");
    assert!(format!("{legacy} fault=melt@3:1").parse::<CaseSpec>().is_err(), "unknown kind");
}

#[test]
fn single_case_replay_is_clean_and_deterministic() {
    let case = CaseSpec {
        seed: 99,
        rate: CodeRate::R1_2,
        frame: FrameSize::Short,
        ebn0_db: 2.2,
        quantizer_bits: 6,
        arithmetic: ArithmeticKind::MinSumShift(2),
        max_iterations: 6,
        early_stop: true,
        schedule: ScheduleKind::Natural,
        memory: MemoryConfig::default(),
        p_io: 10,
        modulation: Modulation::Bpsk,
        fault: FaultScenario::none(),
        fabric: 1,
        simd: None,
    };
    assert!(run_case(0, &case).is_empty());
    assert!(run_case(0, &case).is_empty(), "replay must be stable");
    // The timing contracts must also hold off the paper's operating point:
    // an annealed schedule on a starved memory subsystem with a narrow I/O
    // port, on an interleaved 8PSK frame.
    let stressed = CaseSpec {
        schedule: ScheduleKind::Annealed,
        memory: MemoryConfig { banks: 2, write_ports: 1, fu_latency: 3 },
        p_io: 4,
        modulation: Modulation::Psk8,
        ebn0_db: case.ebn0_db + 2.0,
        ..case
    };
    assert!(
        run_case(0, &stressed).is_empty(),
        "annealed/starved case: {:?}",
        run_case(0, &stressed)
    );
    // And with a RAM fault: the faulted core must track the faulted golden
    // model bit for bit while the healthy decoders keep their contracts.
    let faulted = CaseSpec {
        fault: FaultScenario::single(RamFault::StuckWord { word: 5, value: 31 }),
        ..case
    };
    assert!(run_case(0, &faulted).is_empty(), "faulted case: {:?}", run_case(0, &faulted));
    // And through a three-core fabric: every frame must stay bit-exact
    // against the single core, faulted or not, and the cycle contracts
    // must hold under bus contention.
    let fabric = CaseSpec { fabric: 3, ..case };
    assert!(run_case(0, &fabric).is_empty(), "fabric case: {:?}", run_case(0, &fabric));
    let fabric_faulted = CaseSpec { fabric: 3, ..faulted };
    assert!(
        run_case(0, &fabric_faulted).is_empty(),
        "faulted fabric case: {:?}",
        run_case(0, &fabric_faulted)
    );
}

#[test]
fn bounded_fabric_sweep_is_clean() {
    // Every case runs the multi-core fabric cross-check (odd indices with a
    // forced fault scenario on top); the full >=1000-case budget runs in
    // the fabric-scaling CI job.
    let report = run_fabric_sweep(&OracleConfig { master_seed: 0xFAB, cases: 12, threads: 4 });
    assert_eq!(report.cases, 12);
    assert!(
        report.clean(),
        "fabric-sweep violations:\n{}",
        report.violations.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn bounded_fault_differential_is_clean() {
    // Every case carries a RAM fault; the faulted core must stay bit-exact
    // (decisions and message digests) against the equally-faulted golden
    // model. The full >=500-case budget runs in the diff_fuzz CI job.
    let report =
        run_fault_differential(&OracleConfig { master_seed: 0xFA17, cases: 12, threads: 4 });
    assert_eq!(report.cases, 12);
    assert!(
        report.clean(),
        "fault-differential violations:\n{}",
        report.violations.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn partition_sweep_covers_all_rates_bit_exactly() {
    // The boundary-exact contract across all 11 Normal-frame rates.
    let report = run_partition_sweep(0xB17, 4);
    assert_eq!(report.rates_covered.len(), CodeRate::ALL.len());
    assert!(
        report.clean(),
        "partition violations:\n{}",
        report.violations.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn fault_suite_degrades_gracefully() {
    let report = run_fault_suite(CodeRate::R1_2, FrameSize::Short, 0xFA);
    assert!(report.scenarios >= 7, "scenarios: {}", report.scenarios);
    assert!(
        report.clean(),
        "fault violations:\n{}",
        report.violations.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn shrinker_minimizes_while_preserving_failure() {
    let failing = CaseSpec {
        seed: 5,
        rate: CodeRate::R2_3,
        frame: FrameSize::Normal,
        ebn0_db: 2.4,
        quantizer_bits: 5,
        arithmetic: ArithmeticKind::MinSumShift(3),
        max_iterations: 24,
        early_stop: true,
        schedule: ScheduleKind::Annealed,
        memory: MemoryConfig { banks: 8, write_ports: 2, fu_latency: 4 },
        p_io: 16,
        modulation: Modulation::Psk8,
        fault: FaultScenario::single(RamFault::FlippedBits { word: 42, mask: 0b1101 })
            .with_fu(Some(FuFault::StuckSign { unit: 7, negative: false })),
        fabric: 4,
        simd: None,
    };
    // Synthetic predicate: the "bug" needs at least 3 iterations and the
    // min-sum arithmetic; everything else is shrinkable noise.
    let still_fails = |c: &CaseSpec| {
        c.max_iterations >= 3 && matches!(c.arithmetic, ArithmeticKind::MinSumShift(_))
    };
    let shrunk = shrink_case(&failing, still_fails);
    assert!(still_fails(&shrunk), "shrinking must preserve the failure");
    assert_eq!(shrunk.max_iterations, 3, "iterations minimized");
    assert_eq!(shrunk.frame, FrameSize::Short, "frame demoted");
    assert_eq!(shrunk.quantizer_bits, 6, "quantizer normalized");
    assert!(!shrunk.early_stop, "early stop removed");
    assert_eq!(shrunk.schedule, ScheduleKind::Natural, "schedule normalized");
    assert_eq!(shrunk.memory, MemoryConfig::default(), "memory normalized");
    assert_eq!(shrunk.p_io, 10, "I/O width normalized");
    assert_eq!(shrunk.modulation, Modulation::Bpsk, "modulation normalized");
    assert!(shrunk.fault.is_empty(), "fault removed");
    assert_eq!(shrunk.fabric, 1, "fabric dimension dropped");
    assert_eq!((shrunk.seed, shrunk.rate), (failing.seed, failing.rate), "identity preserved");
    assert_eq!(shrunk.arithmetic, failing.arithmetic);

    // A fault-dependent bug keeps a fault but simplifies it: the flipped
    // mask shrinks to a single bit at the same word.
    let fault_bug = |c: &CaseSpec| !c.fault.is_empty();
    let kept = shrink_case(&failing, fault_bug);
    assert_eq!(kept.fault, FaultScenario::single(RamFault::FlippedBits { word: 42, mask: 1 }));
    let stuck = CaseSpec {
        fault: FaultScenario::single(RamFault::StuckWord { word: 9, value: -17 }),
        ..failing
    };
    let kept = shrink_case(&stuck, fault_bug);
    assert_eq!(kept.fault, FaultScenario::single(RamFault::StuckWord { word: 9, value: 0 }));
    // A bug that needs the FU fault keeps it while the RAM fault is dropped.
    let fu_bug = |c: &CaseSpec| c.fault.fu_fault().is_some();
    let kept = shrink_case(&failing, fu_bug);
    assert_eq!(kept.fault.ram_fault_count(), 0, "RAM fault dropped");
    assert_eq!(kept.fault.fu_fault(), Some(FuFault::StuckSign { unit: 7, negative: false }));

    // A predicate that always fails shrinks to the floor everywhere.
    let floor = shrink_case(&failing, |_| true);
    assert_eq!(floor.max_iterations, 1);
    assert!(floor.fault.is_empty());

    // A predicate nothing satisfies returns the original case untouched.
    let untouched = shrink_case(&failing, |_| false);
    assert_eq!(untouched, failing);
}
