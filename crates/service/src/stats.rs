//! Service-tier counters: tenant-resolved admission outcomes, migration
//! and reconfiguration events, and an end-to-end latency histogram that
//! reuses the pipeline's log-linear bucket geometry.

use crate::tenant::TenantState;
use dvbs2_pipeline::{
    histogram_quantile_index, latency_bucket, latency_bucket_floor_ns, LATENCY_BUCKETS,
};
use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters shared across the submit path, the collectors and the
/// monitor. Relaxed atomics everywhere: individually exact, mutually
/// consistent only at quiescence — same contract as the pipeline's core.
#[derive(Debug)]
pub(crate) struct ServiceStatsCore {
    pub(crate) submitted: AtomicU64,
    pub(crate) delivered: AtomicU64,
    /// Hard backpressure from a shard's ingress or in-flight cap.
    pub(crate) rejected_backpressure: AtomicU64,
    /// Tenant admission budget exhausted.
    pub(crate) rejected_budget: AtomicU64,
    /// Latency-bound SLA shedding (shard had queueing but no headroom).
    pub(crate) shed_latency: AtomicU64,
    /// Stream re-routes of any cause (drain, explicit, fault).
    pub(crate) migrations: AtomicU64,
    /// The subset of migrations triggered by a degraded-shard verdict.
    pub(crate) fault_migrations: AtomicU64,
    /// Completed [`reconfigure`](crate::ServiceTier::reconfigure) calls.
    pub(crate) reconfigs: AtomicU64,
    /// Decoded frames whose routing ticket had no metadata — an internal
    /// invariant violation, always zero in a healthy tier.
    pub(crate) orphaned: AtomicU64,
    /// End-to-end latency (submit to in-order delivery), ns.
    pub(crate) latency_ns_total: AtomicU64,
    pub(crate) latency_watermark_ns: AtomicU64,
    pub(crate) latency_histogram: [AtomicU64; LATENCY_BUCKETS],
}

impl Default for ServiceStatsCore {
    fn default() -> Self {
        ServiceStatsCore {
            submitted: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
            rejected_backpressure: AtomicU64::new(0),
            rejected_budget: AtomicU64::new(0),
            shed_latency: AtomicU64::new(0),
            migrations: AtomicU64::new(0),
            fault_migrations: AtomicU64::new(0),
            reconfigs: AtomicU64::new(0),
            orphaned: AtomicU64::new(0),
            latency_ns_total: AtomicU64::new(0),
            latency_watermark_ns: AtomicU64::new(0),
            latency_histogram: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl ServiceStatsCore {
    pub(crate) fn record_latency(&self, ns: u64) {
        self.latency_ns_total.fetch_add(ns, Ordering::Relaxed);
        self.latency_watermark_ns.fetch_max(ns, Ordering::Relaxed);
        self.latency_histogram[latency_bucket(ns)].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(
        &self,
        epoch: u64,
        tenants: impl Iterator<Item = TenantStats>,
    ) -> ServiceStats {
        let mut latency_histogram = vec![0u64; LATENCY_BUCKETS];
        for (out, bucket) in latency_histogram.iter_mut().zip(&self.latency_histogram) {
            *out = bucket.load(Ordering::Relaxed);
        }
        ServiceStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            delivered: self.delivered.load(Ordering::Relaxed),
            rejected_backpressure: self.rejected_backpressure.load(Ordering::Relaxed),
            rejected_budget: self.rejected_budget.load(Ordering::Relaxed),
            shed_latency: self.shed_latency.load(Ordering::Relaxed),
            migrations: self.migrations.load(Ordering::Relaxed),
            fault_migrations: self.fault_migrations.load(Ordering::Relaxed),
            reconfigs: self.reconfigs.load(Ordering::Relaxed),
            orphaned: self.orphaned.load(Ordering::Relaxed),
            epoch,
            latency_ns_total: self.latency_ns_total.load(Ordering::Relaxed),
            latency_watermark_ns: self.latency_watermark_ns.load(Ordering::Relaxed),
            latency_histogram,
            tenants: tenants.collect(),
        }
    }
}

/// One tenant's slice of the service counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantStats {
    /// The tenant these counters belong to.
    pub tenant: u32,
    /// Frames admitted into the service.
    pub submitted: u64,
    /// Frames delivered in per-stream order to the consumer.
    pub delivered: u64,
    /// Frames refused (budget or backpressure).
    pub rejected: u64,
    /// Frames shed by the latency-bound SLA.
    pub shed: u64,
    /// Frames currently inside the service.
    pub in_flight: usize,
}

impl TenantStats {
    pub(crate) fn from_state(state: &TenantState) -> Self {
        TenantStats {
            tenant: state.policy.tenant,
            submitted: state.submitted.load(Ordering::Relaxed),
            delivered: state.delivered.load(Ordering::Relaxed),
            rejected: state.rejected.load(Ordering::Relaxed),
            shed: state.shed.load(Ordering::Relaxed),
            in_flight: state.in_flight.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time snapshot of the service tier's counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceStats {
    /// Frames admitted across all tenants.
    pub submitted: u64,
    /// Frames delivered in per-stream order.
    pub delivered: u64,
    /// Frames refused on shard backpressure.
    pub rejected_backpressure: u64,
    /// Frames refused on an exhausted tenant budget.
    pub rejected_budget: u64,
    /// Frames shed by latency-bound SLA headroom checks.
    pub shed_latency: u64,
    /// Stream migrations between shards (all causes).
    pub migrations: u64,
    /// Migrations caused by a degraded-shard health verdict.
    pub fault_migrations: u64,
    /// Completed hot reconfigurations.
    pub reconfigs: u64,
    /// Decoded frames with no routing metadata (invariant violation).
    pub orphaned: u64,
    /// The MODCOD registry epoch at snapshot time.
    pub epoch: u64,
    /// Sum of end-to-end latencies, ns.
    pub latency_ns_total: u64,
    /// Largest end-to-end latency seen, ns.
    pub latency_watermark_ns: u64,
    /// Log-linear latency histogram (pipeline bucket geometry).
    pub latency_histogram: Vec<u64>,
    /// Per-tenant counter slices, sorted by tenant id.
    pub tenants: Vec<TenantStats>,
}

impl ServiceStats {
    /// End-to-end latency at quantile `q`, as the floor of the histogram
    /// bucket holding the nearest-rank sample (within 6.25% below the true
    /// value). Zero before any delivery.
    pub fn latency_quantile_ns(&self, q: f64) -> u64 {
        histogram_quantile_index(&self.latency_histogram, q)
            .map(latency_bucket_floor_ns)
            .unwrap_or(0)
    }

    /// Mean end-to-end latency in nanoseconds (zero before any delivery).
    pub fn mean_latency_ns(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.latency_ns_total as f64 / self.delivered as f64
        }
    }

    /// One-line operator summary, the service-tier sibling of
    /// [`PipelineStats::log_line`](dvbs2_pipeline::PipelineStats::log_line).
    pub fn log_line(&self) -> String {
        format!(
            "service: in={} out={} rej_bp={} rej_budget={} shed={} mig={} fault_mig={} \
             reconf={} epoch={} lat_p50={:.0}us lat_p99={:.0}us lat_p999={:.0}us lat_max={:.0}us",
            self.submitted,
            self.delivered,
            self.rejected_backpressure,
            self.rejected_budget,
            self.shed_latency,
            self.migrations,
            self.fault_migrations,
            self.reconfigs,
            self.epoch,
            self.latency_quantile_ns(0.50) as f64 / 1e3,
            self.latency_quantile_ns(0.99) as f64 / 1e3,
            self.latency_quantile_ns(0.999) as f64 / 1e3,
            self.latency_watermark_ns as f64 / 1e3,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_quantiles_round_trip_the_shared_geometry() {
        let core = ServiceStatsCore::default();
        for _ in 0..999 {
            core.record_latency(10_000);
        }
        core.record_latency(5_000_000);
        core.delivered.store(1000, Ordering::Relaxed);
        let stats = core.snapshot(3, std::iter::empty());
        assert_eq!(stats.epoch, 3);
        let p50 = stats.latency_quantile_ns(0.5);
        assert!((9_376..=10_000).contains(&p50), "p50 {p50} one bucket below 10us");
        let p999 = stats.latency_quantile_ns(0.999);
        assert!(p999 <= 10_000, "p999 rank 999 still lands on the 10us mass");
        assert_eq!(stats.latency_watermark_ns, 5_000_000);
        assert!(stats.log_line().starts_with("service: in=0"));
    }
}
