//! The service tier proper: sharded routing, tenant admission, egress
//! reordering, stream migration, hot reconfiguration and health
//! monitoring.
//!
//! Ordering argument, in one place. Per-stream sequence numbers are
//! assigned under the route lock and only on a successful shard admit, so
//! they are gap-free and match the order frames entered *some* shard.
//! Within one shard the pipeline's own reorder stage delivers frames in
//! admit order. Across shards — after a migration or a rolling
//! reconfiguration — the service-level egress stage holds each stream's
//! frames in a per-stream reorder buffer keyed by that sequence number and
//! releases them strictly in order. A frame admitted to any shard is
//! always delivered (pipelines never drop admitted frames outside of
//! teardown), so the buffer never waits on a hole that cannot fill.

use crate::stats::{ServiceStats, ServiceStatsCore, TenantStats};
use crate::tenant::{SlaClass, TenantPolicy, TenantState};
use dvbs2::framing::{extract_bbframe, BbHeader, FramingError};
use dvbs2::{ModcodRegistry, ModcodTable};
use dvbs2_channel::StreamKey;
use dvbs2_ldpc::BitVec;
use dvbs2_pipeline::{
    DecodePipeline, DecodedFrame, PipelineConfig, PipelineHealth, SoftFrame, SubmitError,
    WorkerFaultInjection,
};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

/// One frame of demapped soft bits entering the service tier.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceFrame {
    /// Which tenant/stream the frame belongs to (routing + ordering key).
    pub key: StreamKey,
    /// MODCOD slot into the currently installed table.
    pub modcod: usize,
    /// Channel LLRs, length `N` of the slot's code.
    pub llrs: Vec<f64>,
}

/// One decoded frame leaving the service, in per-stream order.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceOutput {
    /// The stream the frame belongs to.
    pub key: StreamKey,
    /// Gap-free per-stream sequence number (0-based admission order).
    pub stream_seq: u64,
    /// Uid of the shard that decoded the frame.
    pub shard: u64,
    /// MODCOD-table epoch the decoding shard was built under.
    pub epoch: u64,
    /// End-to-end service latency (submit to in-order delivery), ns.
    pub latency_ns: u64,
    /// The decoded frame itself.
    pub decoded: DecodedFrame,
}

impl ServiceOutput {
    /// Demuxes the decoded BBFRAME: parses the 80-bit BBHEADER (CRC-8
    /// checked) off the systematic prefix and returns it with the data
    /// field. The service-egress half of
    /// [`assemble_bbframe`](dvbs2::framing::assemble_bbframe).
    ///
    /// # Errors
    ///
    /// Returns [`FramingError`] when the header CRC fails or the declared
    /// data-field length is impossible — expected on non-converged frames.
    pub fn bbframe(&self) -> Result<(BbHeader, BitVec), FramingError> {
        extract_bbframe(&self.decoded.bbframe())
    }
}

/// Why a submission did not enter the service. Every variant returns the
/// frame so the caller can retry, requeue or count it.
#[derive(Debug, PartialEq)]
pub enum ServiceError {
    /// The frame's tenant has no registered [`TenantPolicy`].
    UnknownTenant(ServiceFrame),
    /// The tenant's in-service budget is exhausted.
    OverBudget(ServiceFrame),
    /// Latency-bound SLA shedding: the target shard has no queueing
    /// headroom, so admitting would blow the latency bound.
    Shed(ServiceFrame),
    /// Hard backpressure from the target shard.
    Backpressure(ServiceFrame),
    /// The frame's MODCOD slot is not in the shard's table.
    UnknownModcod(ServiceFrame),
    /// The frame's LLR length does not match its slot's codeword length.
    WrongLength {
        /// The rejected frame.
        frame: ServiceFrame,
        /// The slot's expected codeword length.
        expected: usize,
    },
    /// The service is shutting down (or has no routable shard left).
    ShutDown(ServiceFrame),
}

impl ServiceError {
    /// Recovers the frame from any variant.
    pub fn into_frame(self) -> ServiceFrame {
        match self {
            ServiceError::UnknownTenant(f)
            | ServiceError::OverBudget(f)
            | ServiceError::Shed(f)
            | ServiceError::Backpressure(f)
            | ServiceError::UnknownModcod(f)
            | ServiceError::ShutDown(f) => f,
            ServiceError::WrongLength { frame, .. } => frame,
        }
    }
}

/// Test/bench hook: aim a [`WorkerFaultInjection`] at one initial shard
/// (by start-up index), leaving the rest of the fleet healthy — the setup
/// fault-migration scenarios need.
#[derive(Debug, Clone, Copy)]
pub struct ShardFaultInjection {
    /// Index of the shard (0-based, in start-up order) to inject into.
    pub shard: usize,
    /// The per-worker injection handed to that shard's pipeline.
    pub injection: WorkerFaultInjection,
}

/// Service tier configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Independent pipeline shards behind the ingress.
    pub shards: usize,
    /// Configuration for each shard's pipeline (workers, queues,
    /// admission ladder, quarantine policy — all per shard).
    pub pipeline: PipelineConfig,
    /// Registered tenants; frames from unregistered tenants are refused.
    pub tenants: Vec<TenantPolicy>,
    /// Shard-health poll interval for the fault-migration monitor, in
    /// milliseconds. Zero disables the monitor.
    pub health_poll_ms: u64,
    /// Optional shard-targeted fault injection (tests/benches only).
    pub fault_injection: Option<ShardFaultInjection>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 2,
            pipeline: PipelineConfig::default(),
            tenants: Vec::new(),
            health_poll_ms: 0,
            fault_injection: None,
        }
    }
}

/// A point-in-time view of one shard, for operators and tests.
#[derive(Debug, Clone)]
pub struct ShardStatus {
    /// Stable shard identifier (unique across the tier's lifetime).
    pub uid: u64,
    /// MODCOD-table epoch the shard was built under.
    pub epoch: u64,
    /// Streams currently routed to the shard.
    pub streams: usize,
    /// Whether the shard is draining toward retirement.
    pub draining: bool,
    /// Frames currently inside the shard's pipeline.
    pub in_flight: usize,
    /// The shard pipeline's worker-fleet health.
    pub health: PipelineHealth,
}

struct Shard {
    uid: u64,
    epoch: u64,
    pipeline: DecodePipeline,
    /// MODCOD slots this shard has served — its decoder caches are warm
    /// for these, so routing prefers affine shards.
    affinity: Mutex<HashSet<usize>>,
    /// Streams currently routed here (load-balancing signal only).
    streams: AtomicUsize,
    draining: AtomicBool,
}

struct StreamRoute {
    shard_uid: u64,
    /// Next per-stream sequence number; incremented only on a successful
    /// shard admit, so the sequence is gap-free.
    next_seq: u64,
    /// Last MODCOD the stream submitted — the affinity hint a re-route
    /// uses.
    modcod: usize,
}

struct RouteState {
    routes: HashMap<StreamKey, StreamRoute>,
}

struct FrameMeta {
    key: StreamKey,
    stream_seq: u64,
    submitted_at: Instant,
}

#[derive(Default)]
struct StreamEgress {
    next_deliver: u64,
    pending: BTreeMap<u64, ServiceOutput>,
}

struct EgressState {
    streams: HashMap<StreamKey, StreamEgress>,
    /// In-order outputs awaiting consumption. Unbounded, but transitively
    /// bounded by the sum of tenant budgets: a frame only exists here
    /// while its tenant budget unit is still claimed.
    ready: VecDeque<ServiceOutput>,
    open_collectors: usize,
}

struct Inner {
    registry: ModcodRegistry,
    config: ServiceConfig,
    stats: ServiceStatsCore,
    /// Immutable after start; per-tenant state is interior-atomic.
    tenants: BTreeMap<u32, TenantState>,
    route: Mutex<RouteState>,
    shards: RwLock<Vec<Arc<Shard>>>,
    /// Routing ticket → stream metadata for frames inside some shard.
    meta: Mutex<HashMap<u64, FrameMeta>>,
    egress: Mutex<EgressState>,
    output_ready: Condvar,
    shutting_down: AtomicBool,
    next_shard_uid: AtomicU64,
    next_ticket: AtomicU64,
}

/// The sharded decode front-end. See the crate docs for the design and
/// the module docs for the ordering argument.
pub struct ServiceTier {
    inner: Arc<Inner>,
    collectors: Mutex<Vec<std::thread::JoinHandle<()>>>,
    monitor: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl ServiceTier {
    /// Starts the shard fleet over an initial MODCOD table.
    ///
    /// # Panics
    ///
    /// Panics on zero shards or duplicate tenant registrations (and
    /// propagates [`DecodePipeline::start`]'s own config panics).
    pub fn start(table: ModcodTable, config: ServiceConfig) -> Self {
        assert!(config.shards > 0, "the service needs at least one shard");
        let mut tenants = BTreeMap::new();
        for policy in &config.tenants {
            let dup = tenants.insert(policy.tenant, TenantState::new(*policy));
            assert!(dup.is_none(), "tenant {} registered twice", policy.tenant);
        }
        let inner = Arc::new(Inner {
            registry: ModcodRegistry::new(table),
            stats: ServiceStatsCore::default(),
            tenants,
            route: Mutex::new(RouteState { routes: HashMap::new() }),
            shards: RwLock::new(Vec::new()),
            meta: Mutex::new(HashMap::new()),
            egress: Mutex::new(EgressState {
                streams: HashMap::new(),
                ready: VecDeque::new(),
                open_collectors: 0,
            }),
            output_ready: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            next_shard_uid: AtomicU64::new(0),
            next_ticket: AtomicU64::new(0),
            config,
        });
        let tier = ServiceTier {
            inner: Arc::clone(&inner),
            collectors: Mutex::new(Vec::new()),
            monitor: Mutex::new(None),
        };
        let snapshot = inner.registry.snapshot();
        {
            let mut shards = inner.shards.write().expect("no panics hold the shard lock");
            for index in 0..inner.config.shards {
                let fault =
                    inner.config.fault_injection.filter(|f| f.shard == index).map(|f| f.injection);
                shards.push(tier.spawn_shard(snapshot.epoch, (*snapshot.table).clone(), fault));
            }
        }
        if inner.config.health_poll_ms > 0 {
            let monitor_inner = Arc::clone(&inner);
            let handle = std::thread::Builder::new()
                .name("service-monitor".into())
                .spawn(move || monitor_loop(&monitor_inner))
                .expect("spawning the service monitor");
            *tier.monitor.lock().expect("no panics hold the monitor handle") = Some(handle);
        }
        tier
    }

    /// Builds one shard pipeline and its collector thread.
    fn spawn_shard(
        &self,
        epoch: u64,
        table: ModcodTable,
        fault: Option<WorkerFaultInjection>,
    ) -> Arc<Shard> {
        let inner = &self.inner;
        let uid = inner.next_shard_uid.fetch_add(1, Ordering::Relaxed);
        let mut pipeline_config = inner.config.pipeline;
        pipeline_config.fault_injection = fault;
        let shard = Arc::new(Shard {
            uid,
            epoch,
            pipeline: DecodePipeline::start(table, pipeline_config),
            affinity: Mutex::new(HashSet::new()),
            streams: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
        });
        inner.egress.lock().expect("no panics hold the egress lock").open_collectors += 1;
        let handle = {
            let inner = Arc::clone(inner);
            let shard = Arc::clone(&shard);
            std::thread::Builder::new()
                .name(format!("service-collector-{uid}"))
                .spawn(move || collector_loop(&inner, &shard))
                .expect("spawning a shard collector")
        };
        self.collectors.lock().expect("no panics hold the collector handles").push(handle);
        shard
    }

    /// Offers a frame without blocking. On success the frame's per-stream
    /// sequence number (its position in that stream's egress order) is
    /// returned; every failure hands the frame back in a [`ServiceError`].
    pub fn submit(&self, frame: ServiceFrame) -> Result<u64, ServiceError> {
        let inner = &*self.inner;
        if inner.shutting_down.load(Ordering::Acquire) {
            return Err(ServiceError::ShutDown(frame));
        }
        let Some(tenant) = inner.tenants.get(&frame.key.tenant) else {
            return Err(ServiceError::UnknownTenant(frame));
        };
        if !tenant.try_claim() {
            tenant.rejected.fetch_add(1, Ordering::Relaxed);
            inner.stats.rejected_budget.fetch_add(1, Ordering::Relaxed);
            return Err(ServiceError::OverBudget(frame));
        }
        // Route lock held through the shard admit: per-stream sequence
        // order and shard admit order stay identical.
        let mut route = inner.route.lock().expect("no panics hold the route lock");
        let shards = inner.shards.read().expect("no panics hold the shard lock");
        let key = frame.key;
        let existing = route.routes.get(&key).map(|r| r.shard_uid);
        let sticky = existing.and_then(|uid| {
            shards.iter().find(|s| s.uid == uid && !s.draining.load(Ordering::Relaxed)).cloned()
        });
        let (shard, migrated) = match sticky {
            Some(shard) => (shard, false),
            None => {
                // First frame of the stream, or its shard is draining
                // away: (re-)pick by affinity/hash. In-flight frames on
                // the old shard still deliver; egress reordering keeps
                // the stream in order across the move.
                let Some(shard) = pick_shard(&shards, key, frame.modcod, None) else {
                    tenant.release();
                    return Err(ServiceError::ShutDown(frame));
                };
                (shard, existing.is_some())
            }
        };
        if tenant.policy.sla == SlaClass::LatencyBound {
            // Shed while the shard still has queueing headroom: an
            // admitted latency-bound frame must never sit behind a deep
            // backlog. Layered above the pipeline's Eq.-8 iteration
            // ladder, which cheapens the frames that do get in.
            let cap = shard.pipeline.config().max_in_flight;
            if shard.pipeline.in_flight() * 2 >= cap {
                tenant.release();
                tenant.shed.fetch_add(1, Ordering::Relaxed);
                inner.stats.shed_latency.fetch_add(1, Ordering::Relaxed);
                return Err(ServiceError::Shed(frame));
            }
        }
        let ticket = inner.next_ticket.fetch_add(1, Ordering::Relaxed);
        let entry = route.routes.entry(key).or_insert_with(|| {
            shard.streams.fetch_add(1, Ordering::Relaxed);
            StreamRoute { shard_uid: shard.uid, next_seq: 0, modcod: frame.modcod }
        });
        let stream_seq = entry.next_seq;
        // Metadata goes in before the admit so the collector can never
        // see a ticket it cannot resolve.
        inner
            .meta
            .lock()
            .expect("no panics hold the meta lock")
            .insert(ticket, FrameMeta { key, stream_seq, submitted_at: Instant::now() });
        let soft = SoftFrame { modcod: frame.modcod, stream_index: ticket, llrs: frame.llrs };
        match shard.pipeline.try_submit(soft) {
            Ok(_) => {
                entry.next_seq += 1;
                if entry.shard_uid != shard.uid {
                    entry.shard_uid = shard.uid;
                    shard.streams.fetch_add(1, Ordering::Relaxed);
                }
                entry.modcod = frame.modcod;
                if migrated {
                    inner.stats.migrations.fetch_add(1, Ordering::Relaxed);
                }
                shard
                    .affinity
                    .lock()
                    .expect("no panics hold the affinity lock")
                    .insert(frame.modcod);
                tenant.submitted.fetch_add(1, Ordering::Relaxed);
                inner.stats.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(stream_seq)
            }
            Err(err) => {
                inner.meta.lock().expect("no panics hold the meta lock").remove(&ticket);
                tenant.release();
                tenant.rejected.fetch_add(1, Ordering::Relaxed);
                let rebuild = |f: SoftFrame| ServiceFrame { key, modcod: f.modcod, llrs: f.llrs };
                Err(match err {
                    SubmitError::Rejected(f) => {
                        inner.stats.rejected_backpressure.fetch_add(1, Ordering::Relaxed);
                        ServiceError::Backpressure(rebuild(f))
                    }
                    SubmitError::UnknownModcod(f) => ServiceError::UnknownModcod(rebuild(f)),
                    SubmitError::WrongLength { frame, expected } => {
                        ServiceError::WrongLength { frame: rebuild(frame), expected }
                    }
                    SubmitError::ShutDown(f) => ServiceError::ShutDown(rebuild(f)),
                })
            }
        }
    }

    /// The next decoded frame in per-stream order, blocking until one is
    /// ready. Returns `None` once every collector has shut down and the
    /// ready queue is drained.
    pub fn next_output(&self) -> Option<ServiceOutput> {
        let inner = &*self.inner;
        let mut egress = inner.egress.lock().expect("no panics hold the egress lock");
        loop {
            if let Some(out) = egress.ready.pop_front() {
                drop(egress);
                if let Some(tenant) = inner.tenants.get(&out.key.tenant) {
                    tenant.release();
                }
                return Some(out);
            }
            if egress.open_collectors == 0 {
                return None;
            }
            // The timeout guards against missed wakeups; correctness does
            // not depend on it.
            let (guard, _) = inner
                .output_ready
                .wait_timeout(egress, Duration::from_millis(10))
                .expect("no panics hold the egress lock");
            egress = guard;
        }
    }

    /// The next decoded frame if one is ready right now.
    pub fn try_next_output(&self) -> Option<ServiceOutput> {
        let inner = &*self.inner;
        let out = inner.egress.lock().expect("no panics hold the egress lock").ready.pop_front()?;
        if let Some(tenant) = inner.tenants.get(&out.key.tenant) {
            tenant.release();
        }
        Some(out)
    }

    /// Re-routes every stream currently on `shard_uid` to other healthy
    /// shards (explicit operator migration). In-flight frames finish on
    /// the old shard; per-stream order is preserved by the egress
    /// reorder stage. Returns the number of streams moved — zero when no
    /// alternative shard exists.
    pub fn migrate_streams_off(&self, shard_uid: u64) -> usize {
        self.inner.migrate_off(shard_uid, false)
    }

    /// Installs a new MODCOD table and rolls the shard fleet: the old
    /// shards stop accepting frames and drain what they admitted, a fresh
    /// fleet built from the new table takes over, and streams re-route
    /// lazily on their next frame. No stream drops or reorders a frame
    /// across the transition. Returns the new table epoch.
    pub fn reconfigure(&self, table: ModcodTable) -> u64 {
        let inner = &*self.inner;
        let epoch = inner.registry.swap(table);
        let snapshot = inner.registry.snapshot();
        {
            let mut shards = inner.shards.write().expect("no panics hold the shard lock");
            for old in shards.iter() {
                old.draining.store(true, Ordering::Relaxed);
                // Closing ingress is safe before re-routing: the write
                // lock excludes submitters, and once it drops they see
                // the drained shard and re-pick.
                old.pipeline.close_ingress();
            }
            // Tier-held references drop here; each collector keeps its
            // shard alive until the drain completes.
            shards.clear();
            for _ in 0..inner.config.shards {
                let shard = self.spawn_shard(snapshot.epoch, (*snapshot.table).clone(), None);
                shards.push(shard);
            }
        }
        inner.stats.reconfigs.fetch_add(1, Ordering::Relaxed);
        epoch
    }

    /// The current MODCOD-table epoch.
    pub fn epoch(&self) -> u64 {
        self.inner.registry.epoch()
    }

    /// A point-in-time snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        let inner = &*self.inner;
        inner
            .stats
            .snapshot(inner.registry.epoch(), inner.tenants.values().map(TenantStats::from_state))
    }

    /// A point-in-time view of every active shard.
    pub fn shards(&self) -> Vec<ShardStatus> {
        self.inner
            .shards
            .read()
            .expect("no panics hold the shard lock")
            .iter()
            .map(|s| ShardStatus {
                uid: s.uid,
                epoch: s.epoch,
                streams: s.streams.load(Ordering::Relaxed),
                draining: s.draining.load(Ordering::Relaxed),
                in_flight: s.pipeline.in_flight(),
                health: s.pipeline.health(),
            })
            .collect()
    }

    /// Stops accepting frames, drains every shard, joins the collectors
    /// and the monitor, and returns the final counters. Outputs still in
    /// the ready queue at that point are dropped with the tier — consume
    /// them (via [`ServiceTier::next_output`]) before or while finishing.
    pub fn finish(self) -> ServiceStats {
        self.shutdown();
        self.stats()
    }

    fn shutdown(&self) {
        let inner = &*self.inner;
        inner.shutting_down.store(true, Ordering::Release);
        if let Some(handle) = self.monitor.lock().expect("no panics hold the monitor handle").take()
        {
            let _ = handle.join();
        }
        {
            let shards = inner.shards.read().expect("no panics hold the shard lock");
            for shard in shards.iter() {
                shard.pipeline.close_ingress();
            }
        }
        let handles: Vec<_> = self
            .collectors
            .lock()
            .expect("no panics hold the collector handles")
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for ServiceTier {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Inner {
    /// Re-routes every stream on `shard_uid`; `fault` tags the move as
    /// health-driven in the counters.
    fn migrate_off(&self, shard_uid: u64, fault: bool) -> usize {
        let mut route = self.route.lock().expect("no panics hold the route lock");
        let shards = self.shards.read().expect("no panics hold the shard lock");
        let mut moved = 0;
        for (key, entry) in route.routes.iter_mut() {
            if entry.shard_uid != shard_uid {
                continue;
            }
            let Some(target) = pick_shard(&shards, *key, entry.modcod, Some(shard_uid)) else {
                break;
            };
            if let Some(old) = shards.iter().find(|s| s.uid == shard_uid) {
                old.streams.fetch_sub(1, Ordering::Relaxed);
            }
            target.streams.fetch_add(1, Ordering::Relaxed);
            entry.shard_uid = target.uid;
            moved += 1;
            self.stats.migrations.fetch_add(1, Ordering::Relaxed);
            if fault {
                self.stats.fault_migrations.fetch_add(1, Ordering::Relaxed);
            }
        }
        moved
    }
}

/// Chooses a shard for a stream. Candidates are the non-draining shards;
/// each is scored by its *effective marginal load* — the per-healthy-worker
/// load after accepting the stream, `(streams + 1) / healthy_workers`,
/// using the pipeline's live quarantine verdicts. A shard with one of four
/// workers quarantined costs 4/3 as much per stream as a healthy peer, so
/// it keeps taking a proportional share of traffic instead of falling off
/// the old binary healthy/degraded cliff — and it resumes its full share
/// the moment the probe reinstates the worker, with no routing-table
/// event. Costs compare by integer cross-multiplication (no floats on the
/// routing path); a shard with zero healthy workers costs infinity and is
/// only chosen when every candidate is in that state. Among equal-cost
/// shards: MODCOD affinity first (warm decoder caches), then the
/// `(tenant, stream, modcod)` hash breaks the tie so equal shards see an
/// even spread. Returns `None` only when every shard is draining.
fn pick_shard(
    shards: &[Arc<Shard>],
    key: StreamKey,
    modcod: usize,
    exclude_uid: Option<u64>,
) -> Option<Arc<Shard>> {
    let open: Vec<&Arc<Shard>> = shards
        .iter()
        .filter(|s| !s.draining.load(Ordering::Relaxed) && Some(s.uid) != exclude_uid)
        .collect();
    // Cost is the ratio streams/healthy; `le` compares a/b <= c/d as
    // a*d <= c*b, with x/0 treated as +infinity.
    let costs: Vec<(u64, u64)> = open
        .iter()
        .map(|s| {
            (
                s.streams.load(Ordering::Relaxed) as u64 + 1,
                s.pipeline.health().healthy_workers() as u64,
            )
        })
        .collect();
    let le = |a: (u64, u64), b: (u64, u64)| match (a.1, b.1) {
        (0, 0) => true,
        (0, _) => false,
        (_, 0) => true,
        _ => a.0 * b.1 <= b.0 * a.1,
    };
    let best = costs.iter().copied().reduce(|a, b| if le(a, b) { a } else { b })?;
    let (affine, plain): (Vec<&Arc<Shard>>, Vec<&Arc<Shard>>) =
        open.iter().zip(&costs).filter(|&(_, &c)| le(c, best)).map(|(s, _)| *s).partition(|s| {
            s.affinity.lock().expect("no panics hold the affinity lock").contains(&modcod)
        });
    let candidates = if affine.is_empty() { plain } else { affine };
    let mut hasher = DefaultHasher::new();
    (key.tenant, key.stream, modcod).hash(&mut hasher);
    Some(Arc::clone(candidates[hasher.finish() as usize % candidates.len()]))
}

/// Per-shard egress pump: resolves routing tickets back to streams and
/// feeds the service-level per-stream reorder stage. Exits when the
/// shard's pipeline closes its egress (drain complete).
fn collector_loop(inner: &Inner, shard: &Shard) {
    while let Some(decoded) = shard.pipeline.next_decoded() {
        let ticket = decoded.stream_index;
        let Some(meta) = inner.meta.lock().expect("no panics hold the meta lock").remove(&ticket)
        else {
            // Unresolvable ticket: an internal invariant broke. Count it
            // loudly rather than hanging a stream's reorder buffer.
            inner.stats.orphaned.fetch_add(1, Ordering::Relaxed);
            continue;
        };
        let output = ServiceOutput {
            key: meta.key,
            stream_seq: meta.stream_seq,
            shard: shard.uid,
            epoch: shard.epoch,
            latency_ns: meta.submitted_at.elapsed().as_nanos() as u64,
            decoded,
        };
        let mut egress = inner.egress.lock().expect("no panics hold the egress lock");
        let mut released = Vec::new();
        {
            let stream = egress.streams.entry(meta.key).or_default();
            stream.pending.insert(output.stream_seq, output);
            while let Some(next) = {
                let seq = stream.next_deliver;
                stream.pending.remove(&seq)
            } {
                stream.next_deliver += 1;
                released.push(next);
            }
        }
        for out in released {
            inner.stats.record_latency(out.latency_ns);
            inner.stats.delivered.fetch_add(1, Ordering::Relaxed);
            if let Some(tenant) = inner.tenants.get(&out.key.tenant) {
                tenant.delivered.fetch_add(1, Ordering::Relaxed);
            }
            egress.ready.push_back(out);
        }
        drop(egress);
        inner.output_ready.notify_all();
    }
    let mut egress = inner.egress.lock().expect("no panics hold the egress lock");
    egress.open_collectors -= 1;
    drop(egress);
    inner.output_ready.notify_all();
}

/// Health monitor: polls each shard's pipeline for syndrome-anomaly
/// quarantines and migrates streams off degraded shards while healthy
/// capacity exists.
fn monitor_loop(inner: &Inner) {
    let interval = Duration::from_millis(inner.config.health_poll_ms);
    while !inner.shutting_down.load(Ordering::Acquire) {
        std::thread::sleep(interval);
        let degraded: Vec<u64> = {
            let shards = inner.shards.read().expect("no panics hold the shard lock");
            shards
                .iter()
                .filter(|s| !s.draining.load(Ordering::Relaxed) && s.pipeline.health().degraded())
                .map(|s| s.uid)
                .collect()
        };
        for uid in degraded {
            inner.migrate_off(uid, true);
        }
    }
}
