//! Per-tenant service-level policy: SLA class and admission budget.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// How a tenant's traffic trades latency against throughput when a shard
/// runs hot. This layers *service-level* shedding on top of the pipeline's
/// Eq.-8 iteration ladder: the ladder cheapens frames already admitted,
/// the SLA class decides which frames to admit at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlaClass {
    /// Bounded queueing delay beats delivery of every frame: a frame is
    /// shed (returned to the caller) when its target shard has already
    /// used half its in-flight budget, so admitted frames never sit in a
    /// deep queue. Interactive return channels want this.
    LatencyBound,
    /// Delivery beats delay: frames are admitted until the shard reports
    /// hard backpressure. Bulk broadcast streams want this.
    ThroughputBound,
}

/// A tenant's registration with the service tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantPolicy {
    /// Tenant identifier; [`StreamKey::tenant`](dvbs2_channel::StreamKey)
    /// values in submitted frames must match a registered policy.
    pub tenant: u32,
    /// The latency/throughput trade this tenant signed up for.
    pub sla: SlaClass,
    /// Admission budget: frames this tenant may have inside the service at
    /// once (queued, decoding, or awaiting consumption). The service-level
    /// analogue of the pipeline's `max_in_flight`.
    pub max_in_flight: usize,
}

impl TenantPolicy {
    /// A latency-bound tenant with the given in-service frame budget.
    pub fn latency_bound(tenant: u32, max_in_flight: usize) -> Self {
        TenantPolicy { tenant, sla: SlaClass::LatencyBound, max_in_flight }
    }

    /// A throughput-bound tenant with the given in-service frame budget.
    pub fn throughput_bound(tenant: u32, max_in_flight: usize) -> Self {
        TenantPolicy { tenant, sla: SlaClass::ThroughputBound, max_in_flight }
    }
}

/// Live admission state for one tenant.
#[derive(Debug)]
pub(crate) struct TenantState {
    pub(crate) policy: TenantPolicy,
    /// Frames currently inside the service (admitted, not yet consumed).
    pub(crate) in_flight: AtomicUsize,
    pub(crate) submitted: AtomicU64,
    pub(crate) delivered: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) shed: AtomicU64,
}

impl TenantState {
    pub(crate) fn new(policy: TenantPolicy) -> Self {
        TenantState {
            policy,
            in_flight: AtomicUsize::new(0),
            submitted: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        }
    }

    /// Claims one unit of the tenant's budget, failing without side
    /// effects when the budget is exhausted.
    pub(crate) fn try_claim(&self) -> bool {
        let mut current = self.in_flight.load(Ordering::Relaxed);
        loop {
            if current >= self.policy.max_in_flight {
                return false;
            }
            match self.in_flight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(seen) => current = seen,
            }
        }
    }

    /// Returns a claimed unit (frame rejected downstream or consumed).
    pub(crate) fn release(&self) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_claims_are_exact() {
        let state = TenantState::new(TenantPolicy::latency_bound(1, 2));
        assert!(state.try_claim());
        assert!(state.try_claim());
        assert!(!state.try_claim(), "third claim exceeds the budget");
        state.release();
        assert!(state.try_claim(), "release frees a unit");
    }
}
