//! Sharded decode front-end over the streaming pipeline: the service tier.
//!
//! One [`DecodePipeline`](dvbs2_pipeline::DecodePipeline) is a single-table
//! worker pool; a base station serves many tenants, each with several
//! streams, under different service-level obligations, and must survive a
//! MODCOD-table change without dropping a frame. This crate is that layer:
//!
//! * [`ServiceTier`] — N independent pipeline shards behind one non-blocking
//!   ingress. Frames route by `(tenant, stream, MODCOD)` hash with sticky
//!   per-stream affinity, so every stream's frames decode in order on one
//!   shard at a time — and a service-level per-stream reorder stage keeps
//!   them in order even *across* a mid-stream shard change.
//! * [`TenantPolicy`] / [`SlaClass`] — per-tenant admission budgets layered
//!   on the pipeline's Eq.-8 iteration shedding: latency-bound tenants are
//!   shed early while a shard still has queueing headroom, throughput-bound
//!   tenants are admitted until hard backpressure.
//! * Hot reconfiguration — [`ServiceTier::reconfigure`] installs a new
//!   [`ModcodTable`](dvbs2::ModcodTable) through an epoch-tagged
//!   [`ModcodRegistry`](dvbs2::ModcodRegistry) and rolls the shard fleet:
//!   old shards drain what they admitted, new shards take over routing, no
//!   stream drops or reorders a frame.
//! * Fault-driven migration — a shard whose workers trip the
//!   syndrome-anomaly quarantine reports itself degraded
//!   ([`PipelineHealth::degraded`](dvbs2_pipeline::PipelineHealth::degraded));
//!   the monitor migrates its streams to healthy shards, again preserving
//!   per-stream order.
//!
//! # Example
//!
//! ```
//! use dvbs2::ldpc::{CodeRate, FrameSize};
//! use dvbs2::{Modcod, ModcodTable};
//! use dvbs2_channel::{Modulation, StreamKey};
//! use dvbs2_pipeline::PipelineConfig;
//! use dvbs2_service::{ServiceConfig, ServiceFrame, ServiceTier, TenantPolicy};
//!
//! let table = ModcodTable::build(&[Modcod::new(
//!     Modulation::Bpsk,
//!     CodeRate::R1_2,
//!     FrameSize::Short,
//! )])
//! .unwrap();
//! let n = table.entry(0).frame_len();
//! let config = ServiceConfig {
//!     shards: 2,
//!     pipeline: PipelineConfig { workers: 1, ..PipelineConfig::default() },
//!     tenants: vec![TenantPolicy::throughput_bound(7, 32)],
//!     ..ServiceConfig::default()
//! };
//! let tier = ServiceTier::start(table, config);
//! let key = StreamKey::new(7, 0);
//! for _ in 0..3 {
//!     // A confidently-received all-zero codeword.
//!     let frame = ServiceFrame { key, modcod: 0, llrs: vec![6.0; n] };
//!     tier.submit(frame).unwrap();
//! }
//! for seq in 0..3u64 {
//!     let out = tier.next_output().unwrap();
//!     assert_eq!(out.key, key);
//!     assert_eq!(out.stream_seq, seq, "egress is in per-stream order");
//!     assert!(out.decoded.converged);
//! }
//! let stats = tier.finish();
//! assert_eq!(stats.submitted, 3);
//! assert_eq!(stats.delivered, 3);
//! ```

#![warn(missing_docs)]

mod stats;
mod tenant;
mod tier;

pub use stats::{ServiceStats, TenantStats};
pub use tenant::{SlaClass, TenantPolicy};
pub use tier::{
    ServiceConfig, ServiceError, ServiceFrame, ServiceOutput, ServiceTier, ShardFaultInjection,
    ShardStatus,
};
