//! Integration contracts of the sharded service tier: shard-count
//! invariance (bit parity with a single-threaded reference), per-stream
//! in-order egress across migrations and hot reconfigurations,
//! fault-driven migration, tenant admission, and BBFRAME demux.

use dvbs2::channel::{mix_seed, Modulation, StreamKey};
use dvbs2::framing::{assemble_bbframe, BbHeader};
use dvbs2::ldpc::{BitVec, CodeRate, FrameSize};
use dvbs2::{Modcod, ModcodTable};
use dvbs2_pipeline::{PipelineConfig, QuarantinePolicy, WorkerFaultInjection};
use dvbs2_service::{
    ServiceConfig, ServiceError, ServiceFrame, ServiceOutput, ServiceTier, ShardFaultInjection,
    TenantPolicy,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;

fn short_table(rates: &[CodeRate]) -> ModcodTable {
    let modcods: Vec<Modcod> =
        rates.iter().map(|&rate| Modcod::new(Modulation::Bpsk, rate, FrameSize::Short)).collect();
    ModcodTable::build(&modcods).unwrap()
}

fn anchor_db(rate: CodeRate) -> f64 {
    match rate {
        CodeRate::R1_2 => 1.4,
        CodeRate::R3_4 => 2.8,
        CodeRate::R8_9 => 4.2,
        _ => 2.0,
    }
}

/// Deterministic noisy LLRs for frame `seq` of `key` on `modcod`:
/// identical no matter which shard (or reference decoder) consumes them.
fn noisy_llrs(table: &ModcodTable, key: StreamKey, seq: u64, modcod: usize) -> Vec<f64> {
    let entry = table.entry(modcod);
    let stream_seed = mix_seed(u64::from(key.tenant) << 32 | u64::from(key.stream), 0x5EED);
    let mut rng = SmallRng::seed_from_u64(mix_seed(stream_seed, seq));
    let ebn0 = anchor_db(entry.modcod.rate) + 0.4;
    entry.system().transmit_frame(&mut rng, ebn0).llrs
}

/// Submits with retry on backpressure (throughput-bound client behavior).
fn submit_retrying(tier: &ServiceTier, mut frame: ServiceFrame) -> u64 {
    loop {
        match tier.submit(frame) {
            Ok(seq) => return seq,
            Err(ServiceError::Backpressure(back)) | Err(ServiceError::OverBudget(back)) => {
                frame = back;
                std::thread::yield_now();
            }
            Err(other) => panic!("unexpected submit error: {other:?}"),
        }
    }
}

/// Drains exactly `count` outputs on a consumer thread while `submit`
/// runs on the caller's thread.
fn run_with_consumer(
    tier: &ServiceTier,
    count: usize,
    submit: impl FnOnce(),
) -> Vec<ServiceOutput> {
    std::thread::scope(|scope| {
        let consumer = scope.spawn(|| {
            let mut outputs = Vec::new();
            while outputs.len() < count {
                match tier.next_output() {
                    Some(out) => outputs.push(out),
                    None => break,
                }
            }
            outputs
        });
        submit();
        consumer.join().unwrap()
    })
}

/// Asserts the delivery order restricted to each stream is exactly
/// `0, 1, 2, ...` — no drop, no reorder, no duplicate.
fn assert_per_stream_order(
    outputs: &[ServiceOutput],
    expected_per_stream: &HashMap<StreamKey, u64>,
) {
    let mut next: HashMap<StreamKey, u64> = HashMap::new();
    for out in outputs {
        let seq = next.entry(out.key).or_insert(0);
        assert_eq!(
            out.stream_seq, *seq,
            "stream {:?} delivered seq {} while expecting {}",
            out.key, out.stream_seq, seq
        );
        *seq += 1;
    }
    assert_eq!(next.len(), expected_per_stream.len(), "every stream must deliver");
    for (key, expected) in expected_per_stream {
        assert_eq!(next[key], *expected, "stream {key:?} frame count");
    }
}

#[test]
fn decoded_bits_are_invariant_under_shard_count() {
    // 2 tenants x 2 streams x mixed MODCODs, decoded under 1, 2 and 4
    // shards: every (stream, seq) must produce bit-identical output, and
    // the single-shard run is the unsharded reference.
    const FRAMES_PER_STREAM: u64 = 12;
    let rates = [CodeRate::R1_2, CodeRate::R3_4];
    let keys =
        [StreamKey::new(1, 0), StreamKey::new(1, 1), StreamKey::new(2, 0), StreamKey::new(2, 1)];
    let total = keys.len() * FRAMES_PER_STREAM as usize;

    // Single-threaded reference: one decoder per slot, reused.
    let table = short_table(&rates);
    let mut reference: HashMap<(StreamKey, u64), (BitVec, bool)> = HashMap::new();
    let mut decoders: Vec<_> = (0..table.len()).map(|s| table.entry(s).make_decoder()).collect();
    for key in keys {
        for seq in 0..FRAMES_PER_STREAM {
            let modcod = (seq % rates.len() as u64) as usize;
            let out = decoders[modcod].decode(&noisy_llrs(&table, key, seq, modcod));
            reference.insert((key, seq), (out.bits, out.converged));
        }
    }
    let mut reference_converged = 0usize;

    for shards in [1usize, 2, 4] {
        let tier = ServiceTier::start(
            short_table(&rates),
            ServiceConfig {
                shards,
                pipeline: PipelineConfig {
                    workers: 2,
                    ingress_capacity: 8,
                    egress_capacity: 8,
                    max_in_flight: 16,
                    ..PipelineConfig::default()
                },
                tenants: vec![
                    TenantPolicy::throughput_bound(1, 64),
                    TenantPolicy::throughput_bound(2, 64),
                ],
                ..ServiceConfig::default()
            },
        );
        let outputs = run_with_consumer(&tier, total, || {
            for seq in 0..FRAMES_PER_STREAM {
                for key in keys {
                    let modcod = (seq % rates.len() as u64) as usize;
                    let llrs = noisy_llrs(&table, key, seq, modcod);
                    let got = submit_retrying(&tier, ServiceFrame { key, modcod, llrs });
                    assert_eq!(got, seq, "per-stream sequence numbers are gap-free");
                }
            }
        });

        assert_eq!(outputs.len(), total, "{shards} shards: every frame delivered");
        let expected: HashMap<StreamKey, u64> =
            keys.iter().map(|&k| (k, FRAMES_PER_STREAM)).collect();
        assert_per_stream_order(&outputs, &expected);
        let mut converged = 0usize;
        for out in &outputs {
            let (ref_bits, ref_converged) = &reference[&(out.key, out.stream_seq)];
            assert_eq!(
                &out.decoded.bits, ref_bits,
                "{shards} shards: stream {:?} frame {} bits differ from the reference",
                out.key, out.stream_seq
            );
            assert_eq!(out.decoded.converged, *ref_converged);
            converged += usize::from(out.decoded.converged);
        }
        if shards == 1 {
            reference_converged = converged;
        } else {
            assert_eq!(converged, reference_converged, "convergence is shard-invariant");
        }
        assert!(converged > 0, "the operating point must decode some frames");

        let stats = tier.finish();
        assert_eq!(stats.submitted, total as u64);
        assert_eq!(stats.delivered, total as u64);
        assert_eq!(stats.orphaned, 0);
        assert!(stats.latency_quantile_ns(0.5) > 0, "latency histogram is populated");
        for tenant in &stats.tenants {
            assert_eq!(tenant.in_flight, 0, "all budget units returned");
            assert_eq!(tenant.submitted, tenant.delivered);
        }
    }
}

#[test]
fn forced_migration_preserves_per_stream_order() {
    const FRAMES_PER_STREAM: u64 = 16;
    let rates = [CodeRate::R1_2];
    let table = short_table(&rates);
    let n = table.entry(0).frame_len();
    let keys = [StreamKey::new(1, 0), StreamKey::new(1, 1), StreamKey::new(1, 2)];
    let total = keys.len() * FRAMES_PER_STREAM as usize;
    let tier = ServiceTier::start(
        table,
        ServiceConfig {
            shards: 2,
            pipeline: PipelineConfig { workers: 1, ..PipelineConfig::default() },
            tenants: vec![TenantPolicy::throughput_bound(1, 64)],
            ..ServiceConfig::default()
        },
    );

    let outputs = run_with_consumer(&tier, total, || {
        for seq in 0..FRAMES_PER_STREAM {
            for key in keys {
                let frame = ServiceFrame { key, modcod: 0, llrs: vec![6.0; n] };
                submit_retrying(&tier, frame);
            }
            if seq == FRAMES_PER_STREAM / 2 {
                // Mid-run, with frames in flight: force every stream off
                // whichever shards they sit on. Both directions move.
                let statuses = tier.shards();
                let mut moved = 0;
                for status in &statuses {
                    moved += tier.migrate_streams_off(status.uid);
                }
                assert!(moved > 0, "some stream must have been migrated");
            }
        }
    });

    assert_eq!(outputs.len(), total);
    let expected: HashMap<StreamKey, u64> = keys.iter().map(|&k| (k, FRAMES_PER_STREAM)).collect();
    assert_per_stream_order(&outputs, &expected);
    let stats = tier.finish();
    assert!(stats.migrations > 0, "forced migration must be counted");
    assert_eq!(stats.delivered, total as u64, "migration drops nothing");
    assert_eq!(stats.fault_migrations, 0, "no health verdicts were involved");
}

#[test]
fn hot_modcod_reconfiguration_rolls_shards_without_losing_a_frame() {
    const BEFORE: u64 = 12;
    const AFTER: u64 = 12;
    let old_table = short_table(&[CodeRate::R1_2]);
    let new_table = short_table(&[CodeRate::R3_4, CodeRate::R1_2]);
    let n = old_table.entry(0).frame_len();
    let keys = [StreamKey::new(1, 0), StreamKey::new(1, 1)];
    let total = keys.len() * (BEFORE + AFTER) as usize;
    let tier = ServiceTier::start(
        old_table,
        ServiceConfig {
            shards: 2,
            pipeline: PipelineConfig { workers: 1, ..PipelineConfig::default() },
            tenants: vec![TenantPolicy::throughput_bound(1, 64)],
            ..ServiceConfig::default()
        },
    );
    assert_eq!(tier.epoch(), 0);

    let outputs = run_with_consumer(&tier, total, || {
        // Strongly-received all-zero codewords are valid under every
        // linear code, so the same LLR vector decodes cleanly under both
        // tables (frame lengths match: Short FECFRAME either way).
        for _ in 0..BEFORE {
            for key in keys {
                submit_retrying(&tier, ServiceFrame { key, modcod: 0, llrs: vec![6.0; n] });
            }
        }
        let epoch = tier.reconfigure(new_table.clone());
        assert_eq!(epoch, 1, "the registry swap is epoch-tagged");
        for _ in 0..AFTER {
            for key in keys {
                // The new table has two slots; exercise the new one.
                submit_retrying(&tier, ServiceFrame { key, modcod: 1, llrs: vec![6.0; n] });
            }
        }
    });

    assert_eq!(outputs.len(), total, "no frame is lost across the swap");
    let expected: HashMap<StreamKey, u64> = keys.iter().map(|&k| (k, BEFORE + AFTER)).collect();
    assert_per_stream_order(&outputs, &expected);
    for out in &outputs {
        let expected_epoch = u64::from(out.stream_seq >= BEFORE);
        assert_eq!(
            out.epoch, expected_epoch,
            "stream {:?} frame {} decoded under the wrong table epoch",
            out.key, out.stream_seq
        );
        assert!(out.decoded.converged, "strong all-zero frames decode under both tables");
    }
    for status in tier.shards() {
        assert_eq!(status.epoch, 1, "only new-epoch shards remain active");
        assert!(!status.draining);
    }
    let stats = tier.finish();
    assert_eq!(stats.reconfigs, 1);
    assert_eq!(stats.epoch, 1);
    assert!(stats.migrations >= keys.len() as u64, "every stream re-routed once");
    assert_eq!(stats.delivered, total as u64);
    assert_eq!(stats.orphaned, 0);
}

#[test]
fn degraded_shard_sheds_its_streams_to_healthy_shards() {
    // Shard 0's worker 0 has a permanently corrupted datapath. Its
    // pipeline quarantines the worker (syndrome anomaly), the shard
    // reports itself degraded, and the monitor must migrate its streams
    // to the healthy shard — all without dropping or reordering a frame.
    const FRAMES_PER_STREAM: u64 = 60;
    let rates = [CodeRate::R1_2];
    let table = short_table(&rates);
    let n = table.entry(0).frame_len();
    let keys: Vec<StreamKey> = (0..4).map(|s| StreamKey::new(1, s)).collect();
    let total = keys.len() * FRAMES_PER_STREAM as usize;
    let tier = ServiceTier::start(
        table,
        ServiceConfig {
            shards: 2,
            pipeline: PipelineConfig {
                workers: 2,
                quarantine: QuarantinePolicy {
                    enabled: true,
                    alpha: 0.5,
                    nonconv_threshold: 0.5,
                    syndrome_threshold: 0.01,
                    min_decodes: 3,
                    probe_passes: 2,
                    probe_interval_ms: 1,
                },
                ..PipelineConfig::default()
            },
            tenants: vec![TenantPolicy::throughput_bound(1, 128)],
            health_poll_ms: 2,
            fault_injection: Some(ShardFaultInjection {
                shard: 0,
                injection: WorkerFaultInjection::permanent(0),
            }),
        },
    );

    let outputs = run_with_consumer(&tier, total, || {
        for _ in 0..FRAMES_PER_STREAM {
            for key in &keys {
                let frame = ServiceFrame { key: *key, modcod: 0, llrs: vec![6.0; n] };
                submit_retrying(&tier, frame);
            }
            // Pace submissions so the detector and monitor get to act
            // while traffic is still flowing.
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    });

    assert_eq!(outputs.len(), total, "containment must not drop frames");
    let expected: HashMap<StreamKey, u64> = keys.iter().map(|&k| (k, FRAMES_PER_STREAM)).collect();
    assert_per_stream_order(&outputs, &expected);

    let stats = tier.finish();
    assert!(stats.fault_migrations > 0, "the monitor must migrate streams off the shard");
    assert_eq!(stats.delivered, total as u64);
    assert_eq!(stats.orphaned, 0);
    let corrupted = outputs.iter().filter(|o| !o.decoded.converged).count();
    assert!(
        corrupted < total / 4,
        "migration plus quarantine must bound the damage; {corrupted} of {total} corrupted"
    );
}

#[test]
fn reinstated_shard_resumes_its_full_routing_share() {
    // Shard 0's worker 0 takes a transient upset (its first 8 decodes are
    // corrupted, then the fault clears). The shard's pipeline quarantines
    // the worker, and the continuous routing weight — marginal load
    // `(streams + 1) / healthy_workers` — steers new admissions toward the
    // fully-healthy shard while shard 0 runs at half strength. Once the
    // known-answer probes reinstate the worker, the weight recovers with
    // no routing-table event, and newly admitted streams must spread
    // evenly across both shards again.
    const FRAMES_PER_STREAM: u64 = 80;
    const NEW_STREAMS: u32 = 16;
    let table = short_table(&[CodeRate::R1_2]);
    let n = table.entry(0).frame_len();
    let phase1: Vec<StreamKey> = (0..2).map(|s| StreamKey::new(1, s)).collect();
    let phase2: Vec<StreamKey> = (0..NEW_STREAMS).map(|s| StreamKey::new(1, 100 + s)).collect();
    let total = phase1.len() * FRAMES_PER_STREAM as usize + phase2.len();
    let tier = ServiceTier::start(
        table,
        ServiceConfig {
            shards: 2,
            pipeline: PipelineConfig {
                workers: 2,
                quarantine: QuarantinePolicy {
                    enabled: true,
                    alpha: 0.5,
                    nonconv_threshold: 0.5,
                    syndrome_threshold: 0.01,
                    min_decodes: 3,
                    probe_passes: 2,
                    probe_interval_ms: 1,
                },
                ..PipelineConfig::default()
            },
            tenants: vec![TenantPolicy::throughput_bound(1, 128)],
            health_poll_ms: 2,
            fault_injection: Some(ShardFaultInjection {
                shard: 0,
                injection: WorkerFaultInjection::window(0, 0, 8),
            }),
        },
    );

    // Phase 1: open-loop traffic on two streams (one lands on each shard).
    // The backlog keeps both workers of each shard decoding, so shard 0's
    // worker 0 accumulates corrupted decodes while its fault window is
    // active.
    let phase1_total = phase1.len() * FRAMES_PER_STREAM as usize;
    let mut outputs = run_with_consumer(&tier, phase1_total, || {
        for _ in 0..FRAMES_PER_STREAM {
            for key in &phase1 {
                submit_retrying(&tier, ServiceFrame { key: *key, modcod: 0, llrs: vec![6.0; n] });
            }
        }
    });

    // Wait for the quarantine -> probe -> reinstate arc to complete. The
    // `reinstatements` counter is cumulative, so this observation cannot
    // race with the heal. Probes run on their own timer — no traffic is
    // needed to drive them.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    loop {
        let shards = tier.shards();
        if shards.iter().any(|s| s.health.reinstatements >= 1 && s.health.quarantined_now == 0) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "the transient fault never healed: {shards:?}"
        );
        std::thread::sleep(std::time::Duration::from_millis(2));
    }

    // Phase 2: admit fresh streams against the healed fleet.
    let before: HashMap<u64, usize> = tier.shards().iter().map(|s| (s.uid, s.streams)).collect();
    outputs.extend(run_with_consumer(&tier, phase2.len(), || {
        for key in &phase2 {
            submit_retrying(&tier, ServiceFrame { key: *key, modcod: 0, llrs: vec![6.0; n] });
        }
    }));
    let after = tier.shards();
    assert_eq!(after.len(), 2);
    let counts: Vec<usize> = after.iter().map(|s| s.streams).collect();
    assert!(
        counts[0].abs_diff(counts[1]) <= 1,
        "reinstatement must restore even stream spread, got {counts:?}"
    );
    for status in &after {
        assert!(
            status.streams > before[&status.uid],
            "shard {} took no new streams after reinstatement: {before:?} -> {after:?}",
            status.uid
        );
    }

    assert_eq!(outputs.len(), total, "healing must not drop frames");
    let mut expected: HashMap<StreamKey, u64> =
        phase1.iter().map(|&k| (k, FRAMES_PER_STREAM)).collect();
    expected.extend(phase2.iter().map(|&k| (k, 1)));
    assert_per_stream_order(&outputs, &expected);
    let stats = tier.finish();
    assert_eq!(stats.delivered, total as u64);
    assert_eq!(stats.orphaned, 0);
}

#[test]
fn bbframe_demux_round_trips_through_the_service() {
    let table = short_table(&[CodeRate::R1_2]);
    let entry = table.entry(0);
    let k = entry.info_len();
    let system = entry.system().clone();
    let tier = ServiceTier::start(
        table,
        ServiceConfig {
            shards: 2,
            pipeline: PipelineConfig { workers: 1, ..PipelineConfig::default() },
            tenants: vec![TenantPolicy::throughput_bound(9, 16)],
            ..ServiceConfig::default()
        },
    );
    let key = StreamKey::new(9, 3);

    let mut payloads = Vec::new();
    for seq in 0..4u16 {
        // A distinct payload per frame, wrapped in a BBFRAME.
        let payload: BitVec =
            (0..640).map(|i| (i as u16).wrapping_mul(seq + 1).is_multiple_of(3)).collect();
        let header = BbHeader { matype: 0xF000, upl: 1504, dfl: 0, sync: 0x47, syncd: seq * 8 };
        let message = assemble_bbframe(header, &payload, k).unwrap();
        let mut rng = SmallRng::seed_from_u64(mix_seed(0xBBF, u64::from(seq)));
        let frame = system.transmit_message(&mut rng, 6.0, &message);
        payloads.push((header, payload));
        submit_retrying(&tier, ServiceFrame { key, modcod: 0, llrs: frame.llrs });
    }

    for (seq, (sent_header, sent_payload)) in payloads.iter().enumerate() {
        let out = tier.next_output().expect("frame must be delivered");
        assert_eq!(out.stream_seq, seq as u64);
        assert!(out.decoded.converged, "6 dB is far above the R1/2 waterfall");
        let (header, payload) = out.bbframe().expect("header CRC must survive the round trip");
        assert_eq!(header.sync, sent_header.sync);
        assert_eq!(header.syncd, sent_header.syncd);
        assert_eq!(header.dfl as usize, sent_payload.len());
        assert_eq!(&payload, sent_payload, "frame {seq}: payload differs");
    }
    tier.finish();
}

#[test]
fn tenant_admission_budgets_and_sla_classes_are_enforced() {
    let table = short_table(&[CodeRate::R1_2]);
    let n = table.entry(0).frame_len();
    let tier = ServiceTier::start(
        table,
        ServiceConfig {
            shards: 1,
            pipeline: PipelineConfig { workers: 1, ..PipelineConfig::default() },
            tenants: vec![TenantPolicy::throughput_bound(1, 2), TenantPolicy::latency_bound(2, 64)],
            ..ServiceConfig::default()
        },
    );
    let frame = |tenant: u32, stream: u32| ServiceFrame {
        key: StreamKey::new(tenant, stream),
        modcod: 0,
        llrs: vec![6.0; n],
    };

    // Unregistered tenants are refused outright.
    match tier.submit(frame(99, 0)) {
        Err(ServiceError::UnknownTenant(f)) => assert_eq!(f.key.tenant, 99),
        other => panic!("expected UnknownTenant, got {other:?}"),
    }

    // Tenant 1 has budget 2: the budget is held until outputs are
    // consumed, so the third submit must bounce even after decoding.
    tier.submit(frame(1, 0)).unwrap();
    tier.submit(frame(1, 0)).unwrap();
    match tier.submit(frame(1, 0)) {
        Err(ServiceError::OverBudget(_)) => {}
        other => panic!("expected OverBudget, got {other:?}"),
    }
    let first = tier.next_output().unwrap();
    assert_eq!(first.stream_seq, 0);
    tier.submit(frame(1, 0)).expect("consuming an output frees a budget unit");

    // Tenant 2 is latency-bound: with the shard already holding frames
    // against a small in-flight cap, its submits shed instead of queueing.
    // The queued frames sit 3 dB below the waterfall so they burn the full
    // iteration budget — the single worker stays busy while we probe.
    let tight_table = short_table(&[CodeRate::R1_2]);
    let slow_llrs = || {
        let entry = tight_table.entry(0);
        let mut rng = SmallRng::seed_from_u64(0x510);
        entry.system().transmit_frame(&mut rng, anchor_db(CodeRate::R1_2) - 3.0).llrs
    };
    let tight = ServiceTier::start(
        tight_table.clone(),
        ServiceConfig {
            shards: 1,
            pipeline: PipelineConfig { workers: 1, max_in_flight: 2, ..PipelineConfig::default() },
            tenants: vec![
                TenantPolicy::throughput_bound(1, 64),
                TenantPolicy::latency_bound(2, 64),
            ],
            ..ServiceConfig::default()
        },
    );
    let slow = ServiceFrame { key: StreamKey::new(1, 0), modcod: 0, llrs: slow_llrs() };
    tight.submit(slow).unwrap();
    match tight.submit(frame(2, 0)) {
        Err(ServiceError::Shed(f)) => assert_eq!(f.key.tenant, 2),
        other => panic!("expected Shed for the latency-bound tenant, got {other:?}"),
    }
    let stats = tight.stats();
    assert_eq!(stats.shed_latency, 1);
    let shed_tenant = stats.tenants.iter().find(|t| t.tenant == 2).unwrap();
    assert_eq!(shed_tenant.shed, 1);

    // Malformed frames come back typed (tenant 2's budget is untouched).
    match tier.submit(ServiceFrame { key: StreamKey::new(2, 7), modcod: 5, llrs: vec![0.0; n] }) {
        Err(ServiceError::UnknownModcod(_)) => {}
        other => panic!("expected UnknownModcod, got {other:?}"),
    }
    match tier.submit(ServiceFrame { key: StreamKey::new(2, 7), modcod: 0, llrs: vec![0.0; 3] }) {
        Err(ServiceError::WrongLength { expected, .. }) => assert_eq!(expected, n),
        other => panic!("expected WrongLength, got {other:?}"),
    }
}
