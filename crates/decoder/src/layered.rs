//! Layered (horizontal) decoding schedule — an extension beyond the paper.
//!
//! Later DVB-S2 decoder generations (e.g. DVB-S2X designs) process check
//! nodes in layers against a running a-posteriori total, roughly doubling
//! convergence speed over flooding. Included here as the natural
//! "future work" of the paper's schedule and as an ablation point.

use crate::stopping::{hard_decisions, syndrome_ok};
use crate::{DecodeResult, Decoder, DecoderConfig};
use dvbs2_ldpc::TannerGraph;
use std::sync::Arc;

/// Layered belief-propagation decoder over any Tanner graph.
///
/// Every check node, processed in order, reads the current a-posteriori
/// totals, subtracts its own previous contribution, computes fresh
/// extrinsics and writes them back immediately.
#[derive(Debug, Clone)]
pub struct LayeredDecoder {
    graph: Arc<TannerGraph>,
    config: DecoderConfig,
    c2v: Vec<f64>,
    totals: Vec<f64>,
    scratch_in: Vec<f64>,
    scratch_out: Vec<f64>,
}

impl LayeredDecoder {
    /// Creates a decoder for `graph`.
    pub fn new(graph: Arc<TannerGraph>, config: DecoderConfig) -> Self {
        let max_degree =
            (0..graph.check_count()).map(|c| graph.check_degree(c)).max().unwrap_or(0);
        LayeredDecoder {
            c2v: vec![0.0; graph.edge_count()],
            totals: vec![0.0; graph.var_count()],
            scratch_in: vec![0.0; max_degree],
            scratch_out: vec![0.0; max_degree],
            graph,
            config,
        }
    }

    /// The decoder configuration.
    pub fn config(&self) -> &DecoderConfig {
        &self.config
    }
}

impl Decoder for LayeredDecoder {
    fn decode(&mut self, channel_llrs: &[f64]) -> DecodeResult {
        let graph = Arc::clone(&self.graph);
        assert_eq!(channel_llrs.len(), graph.var_count(), "LLR length mismatch");

        self.c2v.fill(0.0);
        self.totals.copy_from_slice(channel_llrs);
        let mut iterations = 0;
        let mut converged = false;

        for _ in 0..self.config.max_iterations {
            iterations += 1;
            for c in 0..graph.check_count() {
                let range = graph.check_edges(c);
                let d = range.len();
                for (i, e) in range.clone().enumerate() {
                    let v = graph.var_of_edge(e);
                    self.scratch_in[i] = self.totals[v] - self.c2v[e];
                }
                self.config.rule.extrinsic(&self.scratch_in[..d], &mut self.scratch_out[..d]);
                for (i, e) in range.enumerate() {
                    let v = graph.var_of_edge(e);
                    self.totals[v] += self.scratch_out[i] - self.c2v[e];
                    self.c2v[e] = self.scratch_out[i];
                }
            }
            if self.config.early_stop && syndrome_ok(&graph, &hard_decisions(&self.totals)) {
                converged = true;
                break;
            }
        }
        if !converged {
            converged = syndrome_ok(&graph, &hard_decisions(&self.totals));
        }
        DecodeResult { bits: hard_decisions(&self.totals), iterations, converged }
    }

    fn name(&self) -> &'static str {
        "layered"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flooding::FloodingDecoder;
    use crate::test_support::{noisy_llrs, small_code};

    #[test]
    fn corrects_noisy_frame() {
        let (code, graph) = small_code();
        let (cw, llrs) = noisy_llrs(&code, 3.2, 11);
        let mut dec = LayeredDecoder::new(Arc::new(graph), DecoderConfig::default());
        let out = dec.decode(&llrs);
        assert!(out.converged);
        assert_eq!(out.bits, cw);
    }

    #[test]
    fn converges_faster_than_flooding() {
        let (code, graph) = small_code();
        let graph = Arc::new(graph);
        let config = DecoderConfig { max_iterations: 60, ..DecoderConfig::default() };
        let mut layered = LayeredDecoder::new(Arc::clone(&graph), config);
        let mut flooding = FloodingDecoder::new(Arc::clone(&graph), config);
        let mut lay_total = 0usize;
        let mut flood_total = 0usize;
        for seed in 0..6 {
            let (_, llrs) = noisy_llrs(&code, 2.4, 2000 + seed);
            lay_total += layered.decode(&llrs).iterations;
            flood_total += flooding.decode(&llrs).iterations;
        }
        assert!(lay_total < flood_total, "layered {lay_total} vs flooding {flood_total}");
    }

    #[test]
    fn handles_undecodable_noise_gracefully() {
        let (code, graph) = small_code();
        // Eb/N0 far below threshold: must not converge, must report it.
        let (_, llrs) = noisy_llrs(&code, -2.0, 3);
        let mut dec = LayeredDecoder::new(
            Arc::new(graph),
            DecoderConfig { max_iterations: 10, ..DecoderConfig::default() },
        );
        let out = dec.decode(&llrs);
        assert_eq!(out.iterations, 10);
        assert!(!out.converged);
    }
}
