//! Layered (horizontal) decoding schedule — an extension beyond the paper.
//!
//! Later DVB-S2 decoder generations (e.g. DVB-S2X designs) process check
//! nodes in layers against a running a-posteriori total, roughly doubling
//! convergence speed over flooding. Included here as the natural
//! "future work" of the paper's schedule and as an ablation point.

use crate::engine::{hard_decisions_into, load_llrs, syndrome_ok_totals, Precision};
use crate::llr_ops::LlrFloat;
use crate::{DecodeResult, Decoder, DecoderConfig};
use dvbs2_ldpc::{BitVec, TannerGraph};
use std::sync::Arc;

/// Layered belief-propagation decoder over any Tanner graph.
///
/// Every check node, processed in order, reads the current a-posteriori
/// totals, subtracts its own previous contribution, computes fresh
/// extrinsics and writes them back immediately.
#[derive(Debug, Clone)]
pub struct LayeredDecoder {
    graph: Arc<TannerGraph>,
    config: DecoderConfig,
    core: Core,
}

#[derive(Debug, Clone)]
enum Core {
    F64(Engine<f64>),
    F32(Engine<f32>),
}

/// Message planes and working buffers at one precision.
///
/// Unlike the two-phase schedules, the layered update must read a check's
/// previous `c2v` while writing its fresh extrinsics, so each check keeps a
/// small preallocated scratch pair instead of running in place.
#[derive(Debug, Clone)]
struct Engine<F> {
    llr: Vec<F>,
    c2v: Vec<F>,
    totals: Vec<F>,
    scratch_in: Vec<F>,
    scratch_out: Vec<F>,
}

impl<F: LlrFloat> Engine<F> {
    fn new(graph: &TannerGraph) -> Self {
        let vars = graph.var_count();
        let max_degree = graph.max_check_degree();
        Engine {
            llr: vec![F::ZERO; vars],
            c2v: vec![F::ZERO; graph.edge_count()],
            totals: vec![F::ZERO; vars],
            scratch_in: vec![F::ZERO; max_degree],
            scratch_out: vec![F::ZERO; max_degree],
        }
    }

    /// One full decode into `out`. Allocation-free once `out.bits` has the
    /// codeword length (the first call sizes it).
    fn decode_into(
        &mut self,
        graph: &TannerGraph,
        config: &DecoderConfig,
        channel_llrs: &[f64],
        out: &mut DecodeResult,
    ) {
        load_llrs(&mut self.llr, channel_llrs);
        let offsets = graph.check_offsets();
        let edge_vars = graph.edge_vars();

        self.c2v.fill(F::ZERO);
        self.totals.copy_from_slice(&self.llr);
        let mut iterations = 0;
        let mut converged = false;

        for _ in 0..config.max_iterations {
            iterations += 1;
            for c in 0..graph.check_count() {
                let range = offsets[c] as usize..offsets[c + 1] as usize;
                let d = range.len();
                for (i, e) in range.clone().enumerate() {
                    let v = edge_vars[e] as usize;
                    self.scratch_in[i] = self.totals[v] - self.c2v[e];
                }
                config.rule.extrinsic_t(&self.scratch_in[..d], &mut self.scratch_out[..d]);
                for (i, e) in range.enumerate() {
                    let v = edge_vars[e] as usize;
                    self.totals[v] += self.scratch_out[i] - self.c2v[e];
                    self.c2v[e] = self.scratch_out[i];
                }
            }
            if config.early_stop && syndrome_ok_totals(graph, &self.totals) {
                converged = true;
                break;
            }
        }
        if !converged {
            converged = syndrome_ok_totals(graph, &self.totals);
        }
        if out.bits.len() != self.totals.len() {
            out.bits = BitVec::zeros(self.totals.len());
        }
        hard_decisions_into(&self.totals, &mut out.bits);
        out.iterations = iterations;
        out.converged = converged;
    }
}

impl LayeredDecoder {
    /// Creates a decoder for `graph`.
    pub fn new(graph: Arc<TannerGraph>, config: DecoderConfig) -> Self {
        let core = match config.precision {
            Precision::F64 => Core::F64(Engine::new(&graph)),
            Precision::F32 => Core::F32(Engine::new(&graph)),
        };
        LayeredDecoder { graph, config, core }
    }

    /// The decoder configuration.
    pub fn config(&self) -> &DecoderConfig {
        &self.config
    }
}

impl Decoder for LayeredDecoder {
    fn decode(&mut self, channel_llrs: &[f64]) -> DecodeResult {
        let mut out = DecodeResult::default();
        self.decode_into(channel_llrs, &mut out);
        out
    }

    fn decode_into(&mut self, channel_llrs: &[f64], out: &mut DecodeResult) {
        assert_eq!(channel_llrs.len(), self.graph.var_count(), "LLR length mismatch");
        match &mut self.core {
            Core::F64(e) => e.decode_into(&self.graph, &self.config, channel_llrs, out),
            Core::F32(e) => e.decode_into(&self.graph, &self.config, channel_llrs, out),
        }
    }

    fn set_max_iterations(&mut self, max_iterations: usize) {
        self.config.max_iterations = max_iterations;
    }

    fn name(&self) -> &'static str {
        "layered"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flooding::FloodingDecoder;
    use crate::test_support::{noisy_llrs, small_code};

    #[test]
    fn corrects_noisy_frame() {
        let (code, graph) = small_code();
        let (cw, llrs) = noisy_llrs(&code, 3.2, 11);
        let mut dec = LayeredDecoder::new(Arc::new(graph), DecoderConfig::default());
        let out = dec.decode(&llrs);
        assert!(out.converged);
        assert_eq!(out.bits, cw);
    }

    #[test]
    fn converges_faster_than_flooding() {
        let (code, graph) = small_code();
        let graph = Arc::new(graph);
        let config = DecoderConfig { max_iterations: 60, ..DecoderConfig::default() };
        let mut layered = LayeredDecoder::new(Arc::clone(&graph), config);
        let mut flooding = FloodingDecoder::new(Arc::clone(&graph), config);
        let mut lay_total = 0usize;
        let mut flood_total = 0usize;
        for seed in 0..6 {
            let (_, llrs) = noisy_llrs(&code, 2.4, 2000 + seed);
            lay_total += layered.decode(&llrs).iterations;
            flood_total += flooding.decode(&llrs).iterations;
        }
        assert!(lay_total < flood_total, "layered {lay_total} vs flooding {flood_total}");
    }

    #[test]
    fn f32_fast_path_decodes_the_same_frames() {
        let (code, graph) = small_code();
        let graph = Arc::new(graph);
        let (cw, llrs) = noisy_llrs(&code, 3.2, 19);
        let mut fast = LayeredDecoder::new(
            Arc::clone(&graph),
            DecoderConfig::default().with_precision(Precision::F32),
        );
        let out = fast.decode(&llrs);
        assert!(out.converged);
        assert_eq!(out.bits, cw);
    }

    #[test]
    fn handles_undecodable_noise_gracefully() {
        let (code, graph) = small_code();
        // Eb/N0 far below threshold: must not converge, must report it.
        let (_, llrs) = noisy_llrs(&code, -2.0, 3);
        let mut dec = LayeredDecoder::new(
            Arc::new(graph),
            DecoderConfig { max_iterations: 10, ..DecoderConfig::default() },
        );
        let out = dec.decode(&llrs);
        assert_eq!(out.iterations, 10);
        assert!(!out.converged);
    }
}
