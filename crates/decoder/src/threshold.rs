//! Asymptotic decoding thresholds via Gaussian-approximation density
//! evolution (Chung, Richardson, Urbanke).
//!
//! The paper attributes the DVB-S2 codes' performance ("≈ 0.7 dB to
//! Shannon") to their optimized irregular degree distributions (Table 1).
//! This module computes the belief-propagation threshold of any
//! variable/check degree distribution over the BI-AWGN channel, tracking
//! the mean of the (symmetric Gaussian) message densities:
//!
//! ```text
//! v_d = φ(s + (d-1)·t)                 per variable degree d
//! φ(t') = 1 - (1 - Σ λ_d v_d)^(k-1)    at the checks
//! ```
//!
//! with `s = 2/σ²` the channel mean and `φ(m) = 1 - E[tanh(L/2)]`,
//! `L ~ N(m, 2m)`, evaluated with the standard two-piece approximation.

use dvbs2_ldpc::CodeParams;

/// Edge-perspective degree distribution of an LDPC ensemble.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeDistribution {
    /// `(degree, fraction of edges)` on the variable side.
    pub var_edges: Vec<(usize, f64)>,
    /// `(degree, fraction of edges)` on the check side.
    pub check_edges: Vec<(usize, f64)>,
}

impl DegreeDistribution {
    /// The distribution of a DVB-S2 code: information nodes of the two
    /// Table 1 classes, degree-2 parity nodes, and constant-degree checks.
    pub fn for_code(params: &CodeParams) -> Self {
        let e_total = (params.e_in() + params.e_pn()) as f64;
        let var_edges = vec![
            (params.hi.degree, (params.hi.count * params.hi.degree) as f64 / e_total),
            (3, (params.lo.count * 3) as f64 / e_total),
            // The accumulator chain: degree-2 parity nodes (the lone
            // degree-1 tail node is negligible at these lengths).
            (2, params.e_pn() as f64 / e_total),
        ];
        let check_edges = vec![(params.check_degree, 1.0)];
        DegreeDistribution { var_edges, check_edges }
    }

    /// A `(d_v, d_c)`-regular ensemble.
    pub fn regular(var_degree: usize, check_degree: usize) -> Self {
        DegreeDistribution {
            var_edges: vec![(var_degree, 1.0)],
            check_edges: vec![(check_degree, 1.0)],
        }
    }

    /// Design rate `1 - (Σ ρ_d / d) / (Σ λ_d / d)`.
    pub fn design_rate(&self) -> f64 {
        let v: f64 = self.var_edges.iter().map(|&(d, f)| f / d as f64).sum();
        let c: f64 = self.check_edges.iter().map(|&(d, f)| f / d as f64).sum();
        1.0 - c / v
    }

    /// `true` when the edge fractions sum to 1 on both sides.
    pub fn is_normalized(&self) -> bool {
        let v: f64 = self.var_edges.iter().map(|&(_, f)| f).sum();
        let c: f64 = self.check_edges.iter().map(|&(_, f)| f).sum();
        (v - 1.0).abs() < 1e-9 && (c - 1.0).abs() < 1e-9
    }
}

/// The Gaussian-approximation `φ(m) = 1 - E[tanh(L/2)]`, `L ~ N(m, 2m)`
/// (Chung et al.'s two-piece fit; exact at the endpoints).
pub fn phi(m: f64) -> f64 {
    const ALPHA: f64 = -0.4527;
    const BETA: f64 = 0.0218;
    const GAMMA: f64 = 0.86;
    if m <= 0.0 {
        1.0
    } else if m < 10.0 {
        (ALPHA * m.powf(GAMMA) + BETA).exp()
    } else {
        let term = (std::f64::consts::PI / m).sqrt() * (-m / 4.0).exp();
        (term * (1.0 - 10.0 / (7.0 * m))).max(0.0)
    }
}

/// Inverse of [`phi`] by bisection (φ is strictly decreasing).
///
/// # Panics
///
/// Panics unless `0 < y <= 1`.
pub fn phi_inv(y: f64) -> f64 {
    assert!(y > 0.0 && y <= 1.0, "phi_inv domain is (0, 1], got {y}");
    if y >= 1.0 {
        return 0.0;
    }
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    while phi(hi) > y {
        hi *= 2.0;
        if hi > 1e9 {
            return hi;
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if phi(mid) > y {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Runs density evolution at noise level `sigma`; `true` when the message
/// means diverge (decoding succeeds asymptotically).
pub fn ga_converges(dist: &DegreeDistribution, sigma: f64, max_iterations: usize) -> bool {
    debug_assert!(dist.is_normalized(), "distribution must be normalized");
    let s = 2.0 / (sigma * sigma);
    let mut t = 0.0f64; // mean of check-to-variable messages
    for _ in 0..max_iterations {
        let v_bar: f64 = dist.var_edges.iter().map(|&(d, f)| f * phi(s + (d - 1) as f64 * t)).sum();
        // 1 - (1 - v)^(d-1) via ln_1p/exp_m1: plain arithmetic hits the
        // machine-epsilon floor near v ~ 1e-15 and falsely stalls.
        let u: f64 = dist
            .check_edges
            .iter()
            .map(|&(d, f)| f * -(((d - 1) as f64 * (-v_bar).ln_1p()).exp_m1()))
            .sum();
        if u <= 0.0 {
            return true;
        }
        let t_new = phi_inv(u.min(1.0));
        // The evolution map is monotone: sustained growth past t = 100
        // (phi ~ 1e-12) is divergence to the error-free fixed point.
        if t_new > 100.0 {
            return true;
        }
        if (t_new - t).abs() < 1e-12 {
            return false; // stuck at a fixed point
        }
        t = t_new;
    }
    false
}

/// The BP threshold `σ*`: the largest noise deviation at which density
/// evolution still converges. Found by bisection.
pub fn ga_threshold_sigma(dist: &DegreeDistribution) -> f64 {
    let (mut lo, mut hi) = (0.1f64, 3.0f64);
    debug_assert!(ga_converges(dist, lo, 5000));
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        if ga_converges(dist, mid, 5000) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// The threshold expressed as `Eb/N0` in dB for a code of true rate `rate`.
///
/// # Panics
///
/// Panics unless `rate` is in `(0, 1)`.
pub fn ga_threshold_ebn0_db(dist: &DegreeDistribution, rate: f64) -> f64 {
    assert!(rate > 0.0 && rate < 1.0, "rate must be in (0,1), got {rate}");
    let sigma = ga_threshold_sigma(dist);
    10.0 * (1.0 / (2.0 * rate * sigma * sigma)).log10()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvbs2_ldpc::{CodeRate, FrameSize};

    #[test]
    fn phi_is_decreasing_with_correct_endpoints() {
        assert_eq!(phi(0.0), 1.0);
        let mut prev = 1.0;
        for i in 1..100 {
            let m = i as f64 * 0.5;
            let p = phi(m);
            assert!(p < prev, "phi not decreasing at {m}");
            prev = p;
        }
        assert!(phi(50.0) < 1e-5);
    }

    #[test]
    fn phi_inv_round_trips() {
        for m in [0.1f64, 0.5, 1.0, 3.0, 8.0, 15.0, 30.0] {
            let y = phi(m);
            let back = phi_inv(y);
            assert!((back - m).abs() / m < 1e-6, "m={m} back={back}");
        }
    }

    #[test]
    fn regular_3_6_threshold_matches_literature() {
        // GA threshold of the (3,6) ensemble: σ* ≈ 0.8747 (Chung et al.),
        // i.e. ≈ 1.16 dB Eb/N0 at rate 1/2.
        let dist = DegreeDistribution::regular(3, 6);
        assert!((dist.design_rate() - 0.5).abs() < 1e-12);
        let sigma = ga_threshold_sigma(&dist);
        assert!((sigma - 0.8747).abs() < 0.01, "sigma {sigma}");
    }

    #[test]
    fn dvbs2_distributions_are_normalized_and_rate_correct() {
        for rate in CodeRate::ALL {
            let p = CodeParams::new(rate, FrameSize::Normal).unwrap();
            let dist = DegreeDistribution::for_code(&p);
            assert!(dist.is_normalized(), "{rate}");
            let true_rate = p.k as f64 / p.n as f64;
            assert!(
                (dist.design_rate() - true_rate).abs() < 1e-3,
                "{rate}: design {} vs true {}",
                dist.design_rate(),
                true_rate
            );
        }
    }

    #[test]
    fn dvbs2_r12_threshold_is_better_than_regular() {
        // The optimized irregular profile must beat (3,6) and sit within
        // ~0.5 dB of the 0.187 dB Shannon limit.
        let p = CodeParams::new(CodeRate::R1_2, FrameSize::Normal).unwrap();
        let dist = DegreeDistribution::for_code(&p);
        let ebn0 = ga_threshold_ebn0_db(&dist, 0.5);
        let regular = ga_threshold_ebn0_db(&DegreeDistribution::regular(3, 6), 0.5);
        assert!(ebn0 < regular, "irregular {ebn0} vs regular {regular}");
        assert!(ebn0 < 0.9, "threshold {ebn0} dB too far from Shannon");
        assert!(ebn0 > 0.15, "threshold {ebn0} dB cannot beat Shannon");
    }

    #[test]
    fn convergence_is_monotone_in_sigma() {
        let dist = DegreeDistribution::regular(3, 6);
        assert!(ga_converges(&dist, 0.5, 2000));
        assert!(!ga_converges(&dist, 1.2, 2000));
    }
}
