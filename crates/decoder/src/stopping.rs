//! Hard decisions and syndrome-based early termination.

use dvbs2_ldpc::{BitVec, TannerGraph};

/// Hard decision from a-posteriori LLR totals: negative LLR decides bit 1.
pub fn hard_decisions(totals: &[f64]) -> BitVec {
    totals.iter().map(|&t| t < 0.0).collect()
}

/// Hard decision from integer LLR totals.
pub fn hard_decisions_int(totals: &[i32]) -> BitVec {
    totals.iter().map(|&t| t < 0).collect()
}

/// Writes integer-total hard decisions into a preallocated bit vector —
/// the allocation-free form used by [`crate::Decoder::decode_into`].
///
/// # Panics
///
/// Panics if `out.len() != totals.len()`.
pub fn hard_decisions_int_into(totals: &[i32], out: &mut BitVec) {
    assert_eq!(out.len(), totals.len(), "length mismatch");
    for (i, &t) in totals.iter().enumerate() {
        out.set(i, t < 0);
    }
}

/// `true` when every check equation is satisfied by `bits` — the early
/// termination criterion a production decoder applies each iteration.
///
/// # Panics
///
/// Panics if `bits.len() != graph.var_count()`.
pub fn syndrome_ok(graph: &TannerGraph, bits: &BitVec) -> bool {
    assert_eq!(bits.len(), graph.var_count(), "word length mismatch");
    (0..graph.check_count())
        .all(|c| graph.check_edges(c).filter(|&e| bits.get(graph.var_of_edge(e))).count() % 2 == 0)
}

/// Number of unsatisfied check equations — the syndrome weight a
/// bit-flipping decoder drives toward zero. `syndrome_ok` is exactly
/// `syndrome_weight == 0`.
///
/// # Panics
///
/// Panics if `bits.len() != graph.var_count()`.
pub fn syndrome_weight(graph: &TannerGraph, bits: &BitVec) -> usize {
    assert_eq!(bits.len(), graph.var_count(), "word length mismatch");
    (0..graph.check_count())
        .filter(|&c| {
            graph.check_edges(c).filter(|&e| bits.get(graph.var_of_edge(e))).count() % 2 == 1
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvbs2_ldpc::{CodeRate, DvbS2Code, FrameSize};
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn hard_decisions_follow_sign() {
        let bits = hard_decisions(&[1.0, -0.5, 0.0, -2.0]);
        assert!(!bits.get(0) && bits.get(1) && !bits.get(2) && bits.get(3));
    }

    #[test]
    fn codewords_pass_syndrome_random_words_fail() {
        let code = DvbS2Code::new(CodeRate::R9_10, FrameSize::Normal).unwrap();
        let graph = code.tanner_graph();
        let enc = code.encoder().unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        let cw = enc.encode(&enc.random_message(&mut rng)).unwrap();
        assert!(syndrome_ok(&graph, &cw));
        let mut flipped = cw;
        flipped.toggle(1234);
        assert!(!syndrome_ok(&graph, &flipped));
    }

    #[test]
    fn syndrome_weight_counts_unsatisfied_checks() {
        let code = DvbS2Code::new(CodeRate::R1_2, FrameSize::Short).unwrap();
        let graph = code.tanner_graph();
        let enc = code.encoder().unwrap();
        let mut rng = SmallRng::seed_from_u64(9);
        let cw = enc.encode(&enc.random_message(&mut rng)).unwrap();
        assert_eq!(syndrome_weight(&graph, &cw), 0);
        let mut flipped = cw;
        flipped.toggle(100);
        let w = syndrome_weight(&graph, &flipped);
        // One flipped variable unsatisfies exactly its incident checks.
        assert_eq!(w, graph.var_edges(100).len());
        assert!(!syndrome_ok(&graph, &flipped));
    }

    #[test]
    fn int_decisions_match_float() {
        let f = hard_decisions(&[3.0, -1.0]);
        let i = hard_decisions_int(&[3, -1]);
        assert_eq!(f, i);
    }

    #[test]
    fn int_decisions_into_matches_allocating_form() {
        let totals = [3, -1, 0, -7];
        let mut out = BitVec::from_bools([true, true, true, true]);
        hard_decisions_int_into(&totals, &mut out);
        assert_eq!(out, hard_decisions_int(&totals));
    }
}
