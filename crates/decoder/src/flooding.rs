//! Conventional two-phase ("flooding") belief propagation — Figure 2a of
//! the paper.
//!
//! Every iteration updates all variable nodes, then all check nodes, with
//! messages from the *previous* iteration only. Parity nodes are treated as
//! ordinary degree-2 variables. This is the baseline the zigzag schedule is
//! measured against: it needs ≈ 40 iterations where the optimized schedule
//! needs 30.
//!
//! Messages live in flat edge-indexed planes (see [`crate::engine`]): the
//! variable phase is one scatter-add plus one gather over
//! [`TannerGraph::edge_vars`], and each check node's kernel runs directly on
//! its contiguous slice of the planes — no per-check scratch copies.

use crate::engine::{
    accumulate_totals, accumulate_totals_slotted, accumulate_totals_slotted_tier,
    blocked_min_sum_pass_tier, blocked_table_sum_product_pass, fused_check_pass,
    hard_decisions_into, load_llrs, syndrome_ok_totals, BlockedChecks, Precision,
};
use crate::llr_ops::{CheckRule, LlrFloat};
use crate::simd::SimdTier;
use crate::{DecodeResult, Decoder, DecoderConfig};
use dvbs2_ldpc::{BitVec, TannerGraph};
use std::sync::Arc;

/// Flooding-schedule belief-propagation decoder over any Tanner graph.
///
/// ```
/// use dvbs2_decoder::{Decoder, DecoderConfig, FloodingDecoder};
/// use dvbs2_ldpc::TannerGraph;
/// use std::sync::Arc;
///
/// // Repetition code: both bits equal, two checks... a single parity check.
/// let g = Arc::new(TannerGraph::from_edges(2, 1, &[(0, 0), (0, 1)]));
/// let mut dec = FloodingDecoder::new(g, DecoderConfig::default());
/// let out = dec.decode(&[-2.0, 0.5]); // strong bit-1 vote wins
/// assert!(out.bits.get(0) && out.bits.get(1));
/// assert!(out.converged);
/// ```
#[derive(Debug, Clone)]
pub struct FloodingDecoder {
    graph: Arc<TannerGraph>,
    config: DecoderConfig,
    blocked: BlockedChecks,
    /// Runtime dispatch tier, resolved once at construction.
    tier: SimdTier,
    core: Core,
}

#[derive(Debug, Clone)]
enum Core {
    F64(Engine<f64>),
    F32(Engine<f32>),
}

/// Message planes and working buffers at one precision.
#[derive(Debug, Clone)]
struct Engine<F> {
    llr: Vec<F>,
    v2c: Vec<F>,
    c2v: Vec<F>,
    totals: Vec<F>,
    totals_next: Vec<F>,
}

impl<F: LlrFloat> Engine<F> {
    fn new(graph: &TannerGraph) -> Self {
        let edges = graph.edge_count();
        let vars = graph.var_count();
        Engine {
            llr: vec![F::ZERO; vars],
            v2c: vec![F::ZERO; edges],
            c2v: vec![F::ZERO; edges],
            totals: vec![F::ZERO; vars],
            totals_next: vec![F::ZERO; vars],
        }
    }

    /// One full decode into `out`. Allocation-free once `out.bits` has the
    /// codeword length (the first call sizes it).
    fn decode_into(
        &mut self,
        graph: &TannerGraph,
        config: &DecoderConfig,
        blocked: &BlockedChecks,
        tier: SimdTier,
        channel_llrs: &[f64],
        out: &mut DecodeResult,
    ) {
        load_llrs(&mut self.llr, channel_llrs);
        let edge_vars = graph.edge_vars();

        self.c2v.fill(F::ZERO);
        // First-iteration gather sources: totals = llr plus all-zero messages.
        accumulate_totals(edge_vars, &self.llr, &self.c2v, &mut self.totals);
        let mut iterations = 0;
        let mut converged = false;

        for _ in 0..config.max_iterations {
            iterations += 1;
            // Both half-iterations per pass. The min-sum and table
            // sum-product rules run column-major kernels over the
            // transposed planes (dense, branchless, lane-parallel) followed
            // by the edge-order totals accumulation through the slot
            // permutation; exact sum-product streams check by check with
            // the kernel fused between gather and scatter.
            match config.rule {
                CheckRule::SumProduct => {
                    fused_check_pass(
                        graph,
                        &config.rule,
                        &self.llr,
                        &self.totals,
                        &mut self.v2c,
                        &mut self.c2v,
                        &mut self.totals_next,
                    );
                }
                CheckRule::TableSumProduct => {
                    // The table rule's serial boxplus chains go through the
                    // column-major kernel (per check bit-identical to the
                    // scalar `extrinsic_t`, see the kernel doc); totals then
                    // accumulate in ascending edge order like the min-sum
                    // rules.
                    blocked_table_sum_product_pass(
                        blocked,
                        &self.totals,
                        &mut self.v2c,
                        &mut self.c2v,
                    );
                    accumulate_totals_slotted(
                        edge_vars,
                        blocked.edge_to_slot(),
                        &self.llr,
                        &self.c2v,
                        &mut self.totals_next,
                    );
                }
                CheckRule::NormalizedMinSum(alpha) => {
                    let alpha = F::from_f64(alpha);
                    blocked_min_sum_pass_tier(
                        tier,
                        blocked,
                        &config.rule,
                        &self.totals,
                        &mut self.v2c,
                        &mut self.c2v,
                        |m| m * alpha,
                    );
                    accumulate_totals_slotted_tier(
                        tier,
                        edge_vars,
                        blocked.edge_to_slot(),
                        &self.llr,
                        &self.c2v,
                        &mut self.totals_next,
                    );
                }
                CheckRule::OffsetMinSum(beta) => {
                    let beta = F::from_f64(beta);
                    blocked_min_sum_pass_tier(
                        tier,
                        blocked,
                        &config.rule,
                        &self.totals,
                        &mut self.v2c,
                        &mut self.c2v,
                        |m| (m - beta).max(F::ZERO),
                    );
                    accumulate_totals_slotted_tier(
                        tier,
                        edge_vars,
                        blocked.edge_to_slot(),
                        &self.llr,
                        &self.c2v,
                        &mut self.totals_next,
                    );
                }
            }
            std::mem::swap(&mut self.totals, &mut self.totals_next);
            if config.early_stop && syndrome_ok_totals(graph, &self.totals) {
                converged = true;
                break;
            }
        }
        if !config.early_stop || !converged {
            converged = syndrome_ok_totals(graph, &self.totals);
        }
        if out.bits.len() != self.totals.len() {
            out.bits = BitVec::zeros(self.totals.len());
        }
        hard_decisions_into(&self.totals, &mut out.bits);
        out.iterations = iterations;
        out.converged = converged;
    }
}

impl FloodingDecoder {
    /// Creates a decoder for `graph`.
    pub fn new(graph: Arc<TannerGraph>, config: DecoderConfig) -> Self {
        let blocked = BlockedChecks::new(&graph);
        let tier = SimdTier::resolve(config.simd);
        let core = match config.precision {
            Precision::F64 => Core::F64(Engine::new(&graph)),
            Precision::F32 => Core::F32(Engine::new(&graph)),
        };
        FloodingDecoder { graph, config, blocked, tier, core }
    }

    /// The decoder configuration.
    pub fn config(&self) -> &DecoderConfig {
        &self.config
    }

    /// The SIMD dispatch tier the kernels run on.
    pub fn simd_tier(&self) -> SimdTier {
        self.tier
    }
}

impl Decoder for FloodingDecoder {
    fn decode(&mut self, channel_llrs: &[f64]) -> DecodeResult {
        let mut out = DecodeResult::default();
        self.decode_into(channel_llrs, &mut out);
        out
    }

    fn decode_into(&mut self, channel_llrs: &[f64], out: &mut DecodeResult) {
        assert_eq!(channel_llrs.len(), self.graph.var_count(), "LLR length mismatch");
        match &mut self.core {
            Core::F64(e) => e.decode_into(
                &self.graph,
                &self.config,
                &self.blocked,
                self.tier,
                channel_llrs,
                out,
            ),
            Core::F32(e) => e.decode_into(
                &self.graph,
                &self.config,
                &self.blocked,
                self.tier,
                channel_llrs,
                out,
            ),
        }
    }

    fn set_max_iterations(&mut self, max_iterations: usize) {
        self.config.max_iterations = max_iterations;
    }

    fn name(&self) -> &'static str {
        match self.config.rule {
            CheckRule::SumProduct => "flooding sum-product",
            CheckRule::TableSumProduct => "flooding table sum-product",
            CheckRule::NormalizedMinSum(_) => "flooding normalized min-sum",
            CheckRule::OffsetMinSum(_) => "flooding offset min-sum",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{llrs_for_codeword, noisy_llrs, small_code};
    use crate::Precision;

    #[test]
    fn noiseless_codeword_converges_immediately() {
        let (code, graph) = small_code();
        let enc = code.encoder().unwrap();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        use rand::SeedableRng;
        let cw = enc.encode(&enc.random_message(&mut rng)).unwrap();
        let llrs = llrs_for_codeword(&cw, 5.0);
        let mut dec = FloodingDecoder::new(Arc::new(graph), DecoderConfig::default());
        let out = dec.decode(&llrs);
        assert!(out.converged);
        assert_eq!(out.iterations, 1);
        assert_eq!(out.bits, cw);
    }

    #[test]
    fn corrects_noisy_frame_at_moderate_snr() {
        let (code, graph) = small_code();
        let (cw, llrs) = noisy_llrs(&code, 3.2, 99);
        let mut dec = FloodingDecoder::new(Arc::new(graph), DecoderConfig::default());
        let out = dec.decode(&llrs);
        assert!(out.converged, "decoder did not converge");
        assert_eq!(out.bits, cw);
        assert!(out.iterations > 1, "noise should need work");
    }

    #[test]
    fn min_sum_variants_also_correct() {
        let (code, graph) = small_code();
        let graph = Arc::new(graph);
        let (cw, llrs) = noisy_llrs(&code, 3.6, 123);
        for rule in [CheckRule::NormalizedMinSum(0.8), CheckRule::OffsetMinSum(0.15)] {
            let mut dec = FloodingDecoder::new(
                Arc::clone(&graph),
                DecoderConfig { rule, ..DecoderConfig::default() },
            );
            let out = dec.decode(&llrs);
            assert_eq!(out.bits, cw, "{rule:?}");
        }
    }

    #[test]
    fn without_early_stop_runs_all_iterations() {
        let (code, graph) = small_code();
        let (_, llrs) = noisy_llrs(&code, 5.0, 7);
        let mut dec = FloodingDecoder::new(
            Arc::new(graph),
            DecoderConfig { max_iterations: 10, early_stop: false, ..DecoderConfig::default() },
        );
        let out = dec.decode(&llrs);
        assert_eq!(out.iterations, 10);
        assert!(out.converged, "frame should be clean after 10 iterations at 5 dB");
    }

    #[test]
    fn f32_fast_path_decodes_the_same_frames() {
        let (code, graph) = small_code();
        let graph = Arc::new(graph);
        for seed in 0..4 {
            let (cw, llrs) = noisy_llrs(&code, 3.2, 300 + seed);
            let mut f64_dec = FloodingDecoder::new(Arc::clone(&graph), DecoderConfig::default());
            let mut f32_dec = FloodingDecoder::new(
                Arc::clone(&graph),
                DecoderConfig::default().with_precision(Precision::F32),
            );
            let a = f64_dec.decode(&llrs);
            let b = f32_dec.decode(&llrs);
            assert_eq!(a.bits, cw, "seed {seed}");
            assert_eq!(b.bits, cw, "seed {seed} (f32)");
        }
    }

    #[test]
    #[should_panic(expected = "LLR length mismatch")]
    fn wrong_llr_length_panics() {
        let (_, graph) = small_code();
        let mut dec = FloodingDecoder::new(Arc::new(graph), DecoderConfig::default());
        let _ = dec.decode(&[0.0; 3]);
    }
}
