//! Conventional two-phase ("flooding") belief propagation — Figure 2a of
//! the paper.
//!
//! Every iteration updates all variable nodes, then all check nodes, with
//! messages from the *previous* iteration only. Parity nodes are treated as
//! ordinary degree-2 variables. This is the baseline the zigzag schedule is
//! measured against: it needs ≈ 40 iterations where the optimized schedule
//! needs 30.

#![allow(clippy::needless_range_loop)] // one index drives several parallel slices

use crate::llr_ops::CheckRule;
use crate::stopping::{hard_decisions, syndrome_ok};
use crate::{DecodeResult, Decoder, DecoderConfig};
use dvbs2_ldpc::TannerGraph;
use std::sync::Arc;

/// Flooding-schedule belief-propagation decoder over any Tanner graph.
///
/// ```
/// use dvbs2_decoder::{Decoder, DecoderConfig, FloodingDecoder};
/// use dvbs2_ldpc::TannerGraph;
/// use std::sync::Arc;
///
/// // Repetition code: both bits equal, two checks... a single parity check.
/// let g = Arc::new(TannerGraph::from_edges(2, 1, &[(0, 0), (0, 1)]));
/// let mut dec = FloodingDecoder::new(g, DecoderConfig::default());
/// let out = dec.decode(&[-2.0, 0.5]); // strong bit-1 vote wins
/// assert!(out.bits.get(0) && out.bits.get(1));
/// assert!(out.converged);
/// ```
#[derive(Debug, Clone)]
pub struct FloodingDecoder {
    graph: Arc<TannerGraph>,
    config: DecoderConfig,
    v2c: Vec<f64>,
    c2v: Vec<f64>,
    totals: Vec<f64>,
    scratch_in: Vec<f64>,
    scratch_out: Vec<f64>,
}

impl FloodingDecoder {
    /// Creates a decoder for `graph`.
    pub fn new(graph: Arc<TannerGraph>, config: DecoderConfig) -> Self {
        let edges = graph.edge_count();
        let vars = graph.var_count();
        let max_degree = (0..graph.check_count())
            .map(|c| graph.check_degree(c))
            .max()
            .unwrap_or(0);
        FloodingDecoder {
            graph,
            config,
            v2c: vec![0.0; edges],
            c2v: vec![0.0; edges],
            totals: vec![0.0; vars],
            scratch_in: vec![0.0; max_degree],
            scratch_out: vec![0.0; max_degree],
        }
    }

    /// The decoder configuration.
    pub fn config(&self) -> &DecoderConfig {
        &self.config
    }
}

impl Decoder for FloodingDecoder {
    fn decode(&mut self, channel_llrs: &[f64]) -> DecodeResult {
        let graph = Arc::clone(&self.graph);
        assert_eq!(channel_llrs.len(), graph.var_count(), "LLR length mismatch");

        self.c2v.fill(0.0);
        let mut iterations = 0;
        let mut converged = false;

        for _ in 0..self.config.max_iterations {
            iterations += 1;
            // Variable-node phase: v2c = channel + sum of other c2v.
            for v in 0..graph.var_count() {
                let edges = graph.var_edges(v);
                let total: f64 =
                    channel_llrs[v] + edges.iter().map(|&e| self.c2v[e as usize]).sum::<f64>();
                self.totals[v] = total;
                for &e in edges {
                    self.v2c[e as usize] = total - self.c2v[e as usize];
                }
            }
            // Check-node phase.
            for c in 0..graph.check_count() {
                let range = graph.check_edges(c);
                let d = range.len();
                for (i, e) in range.clone().enumerate() {
                    self.scratch_in[i] = self.v2c[e];
                }
                self.config.rule.extrinsic(&self.scratch_in[..d], &mut self.scratch_out[..d]);
                for (i, e) in range.enumerate() {
                    self.c2v[e] = self.scratch_out[i];
                }
            }
            if self.config.early_stop {
                // A-posteriori totals incorporate the fresh c2v.
                for v in 0..graph.var_count() {
                    self.totals[v] = channel_llrs[v]
                        + graph.var_edges(v).iter().map(|&e| self.c2v[e as usize]).sum::<f64>();
                }
                if syndrome_ok(&graph, &hard_decisions(&self.totals)) {
                    converged = true;
                    break;
                }
            }
        }
        if !self.config.early_stop || !converged {
            for v in 0..graph.var_count() {
                self.totals[v] = channel_llrs[v]
                    + graph.var_edges(v).iter().map(|&e| self.c2v[e as usize]).sum::<f64>();
            }
            converged = syndrome_ok(&graph, &hard_decisions(&self.totals));
        }
        DecodeResult { bits: hard_decisions(&self.totals), iterations, converged }
    }

    fn name(&self) -> &'static str {
        match self.config.rule {
            CheckRule::SumProduct => "flooding sum-product",
            CheckRule::NormalizedMinSum(_) => "flooding normalized min-sum",
            CheckRule::OffsetMinSum(_) => "flooding offset min-sum",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{llrs_for_codeword, noisy_llrs, small_code};

    #[test]
    fn noiseless_codeword_converges_immediately() {
        let (code, graph) = small_code();
        let enc = code.encoder().unwrap();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        use rand::SeedableRng;
        let cw = enc.encode(&enc.random_message(&mut rng)).unwrap();
        let llrs = llrs_for_codeword(&cw, 5.0);
        let mut dec = FloodingDecoder::new(Arc::new(graph), DecoderConfig::default());
        let out = dec.decode(&llrs);
        assert!(out.converged);
        assert_eq!(out.iterations, 1);
        assert_eq!(out.bits, cw);
    }

    #[test]
    fn corrects_noisy_frame_at_moderate_snr() {
        let (code, graph) = small_code();
        let (cw, llrs) = noisy_llrs(&code, 3.2, 99);
        let mut dec = FloodingDecoder::new(Arc::new(graph), DecoderConfig::default());
        let out = dec.decode(&llrs);
        assert!(out.converged, "decoder did not converge");
        assert_eq!(out.bits, cw);
        assert!(out.iterations > 1, "noise should need work");
    }

    #[test]
    fn min_sum_variants_also_correct() {
        let (code, graph) = small_code();
        let graph = Arc::new(graph);
        let (cw, llrs) = noisy_llrs(&code, 3.6, 123);
        for rule in [CheckRule::NormalizedMinSum(0.8), CheckRule::OffsetMinSum(0.15)] {
            let mut dec = FloodingDecoder::new(
                Arc::clone(&graph),
                DecoderConfig { rule, ..DecoderConfig::default() },
            );
            let out = dec.decode(&llrs);
            assert_eq!(out.bits, cw, "{rule:?}");
        }
    }

    #[test]
    fn without_early_stop_runs_all_iterations() {
        let (code, graph) = small_code();
        let (_, llrs) = noisy_llrs(&code, 5.0, 7);
        let mut dec = FloodingDecoder::new(
            Arc::new(graph),
            DecoderConfig { max_iterations: 10, early_stop: false, ..DecoderConfig::default() },
        );
        let out = dec.decode(&llrs);
        assert_eq!(out.iterations, 10);
        assert!(out.converged, "frame should be clean after 10 iterations at 5 dB");
    }

    #[test]
    #[should_panic(expected = "LLR length mismatch")]
    fn wrong_llr_length_panics() {
        let (_, graph) = small_code();
        let mut dec = FloodingDecoder::new(Arc::new(graph), DecoderConfig::default());
        let _ = dec.decode(&[0.0; 3]);
    }
}
