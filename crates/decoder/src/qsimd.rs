//! 360-lane SIMD functional-unit planes for the quantized datapath.
//!
//! The paper's architecture decodes each check row with M = 360 parallel
//! functional units working the 360 parity sub-chains in lockstep. The
//! fused scalar path (`QuantizedZigzagDecoder::with_partition_fused`)
//! reproduces that datapath check-by-check; this module reproduces its
//! *parallelism*: the planes are transposed **sub-chain-major** so that the
//! 360 FUs of one schedule row become 360 adjacent `i16` SIMD lanes, and
//! one vector op advances every sub-chain by one message — exactly the
//! hardware's row-lockstep, expressed as data parallelism.
//!
//! # Layout
//!
//! The fused plan stores check `c` (lane `u = c / q_rows`, residue row
//! `r = c % q_rows`) as a contiguous `stride`-long row at
//! `((r * lanes + u) * stride)`. Here the same messages live at
//!
//! ```text
//! slot(c, i) = (r * stride + i) * lanes + u
//! ```
//!
//! so position `i` of residue row `r` is a dense `[i16; lanes]` vector
//! across all sub-chains — a structure-of-arrays transpose of the fused
//! layout with identical total size. The forward/backward chain state and
//! the parity channel are transposed the same way (`fwd[r * lanes + u]`),
//! which turns every chain coupling of the sweep into a contiguous vector
//! copy:
//!
//! * the **left** parity input of row `r > 0` is `pchan[r-1] ⊞ fwd_regs`,
//!   lane-aligned; at `r == 0` the sub-chain boundary shifts the read one
//!   lane down (lane `u` continues lane `u - 1`'s chain segment);
//! * the **backward** output of row `r > 0` lands at row `r - 1` as one
//!   contiguous copy; at `r == 0` it lands at row `q_rows - 1` shifted one
//!   lane, reproducing the hardware's "one iteration fresher" backward
//!   boundary. The very last check's backward slot
//!   (`bwd[(q_rows-1)*lanes + lanes-1]`) is never written and stays zero,
//!   so the uniform `pchan ⊞ bwd` right-input vector needs no end-of-chain
//!   special case.
//!
//! Check 0 (row 0, lane 0) has no left parity input; the vector kernel
//! runs it with a zero placeholder and a scalar fix-up recomputes its row
//! with [`QCheckArithmetic::extrinsic`] — the same function the fused path
//! calls for that check — before write-back reads it.
//!
//! # Bit-exactness
//!
//! Every kernel computes the *same dataflow* as its scalar counterpart —
//! same combine association order for the LUT rule, same first-strict-min
//! / second-min recurrence for min-sum, integer adds reassociated only
//! where addition is exactly commutative — so results are bit-identical to
//! the fused path (and therefore to `GoldenModel`) by determinism, not by
//! tolerance. The LUT correction gather is replaced by a threshold
//! decomposition ([`QBoxplus::corr_thresholds`]) that is *verified* against
//! the table at construction; any arithmetic the lanes cannot express
//! exactly (≥ 16-bit quantizers, non-decomposable tables, `q_rows < 2`)
//! falls back to the scalar fused path.
//!
//! The scalar/AVX2/AVX-512 `#[target_feature]` clones follow the
//! `tile.rs` dispatch pattern; the AVX-512 clone additionally enables
//! AVX-512BW/VL (512-bit `i16` ops) and is only selected when the CPU
//! reports them, else the AVX2 clone runs — bit-identical either way.

use crate::qdecoder::{ChainPartition, Fnv};
use crate::quant::QCheckArithmetic;
use crate::simd::SimdTier;
use crate::stopping::{hard_decisions_int_into, syndrome_ok};
use crate::DecodeResult;
use dvbs2_ldpc::{BitVec, TannerGraph};

/// Correction-step thresholds the gather-free LUT kernel carries. The
/// table contributes `round(ln 2 / step)` thresholds; every configuration
/// with a step coarse enough for real quantizers fits (the paper's 6-bit
/// table needs 3). Larger tables fall back to the scalar fused path.
const MAX_CORR_THRESHOLDS: usize = 4;

/// Lane-parallel check-node arithmetic, specialized at construction.
#[derive(Debug, Clone)]
enum LaneKernel {
    /// Threshold-decomposed correction LUT: `corr(z) = Σ [z <= t]` over the
    /// (construction-verified) thresholds; unused slots hold `-1`, which no
    /// `z >= 0` satisfies.
    Lut { thresholds: [i16; MAX_CORR_THRESHOLDS] },
    /// Shift-based normalized min-sum.
    MinSum { shift: u32 },
}

/// Sub-chain-major SoA plan + state for the SIMD quantized decode.
///
/// Built by [`SimdQuant::try_build`] when the partition/arithmetic pair is
/// lane-expressible; owned by `QuantizedZigzagDecoder` alongside (not
/// instead of) the scalar `FusedPlan`, which remains the fallback and the
/// differential reference.
#[derive(Debug, Clone)]
pub(crate) struct SimdQuant {
    tier: SimdTier,
    lanes: usize,
    q_rows: usize,
    stride: usize,
    info_d: usize,
    max_mag: i16,
    kernel: LaneKernel,
    /// Per-variable absolute plane slots (variable-major, graph edge
    /// order) — the generic variable-node fallback for synthetic edge
    /// orders that are not lane rotations.
    var_slots: Vec<u32>,
    /// Rotation-structured variable-node plan: real DVB-S2 codes are
    /// quasi-cyclic with lifting 360, so the `lanes` variables of one
    /// (row, position) plane vector are one 360-block rotated by a
    /// constant offset. Verified against the graph at build time.
    rot: Option<Vec<RotEntry>>,
    // --- i16 message state, all lane-major ---
    v2c: Vec<i16>,
    c2v: Vec<i16>,
    fwd: Vec<i16>,
    bwd: Vec<i16>,
    fwd_regs: Vec<i16>,
    boundary: Vec<i16>,
    /// Parity channel transposed to `pchan[r * lanes + u]`, saturated into
    /// the lane domain (decode falls back if any value is out of range).
    pchan: Vec<i16>,
    // --- lane-wide kernel scratch (LUT prefix / min-sum state) ---
    scr1: Vec<i16>,
    scr2: Vec<i16>,
    scr3: Vec<i16>,
    scr4: Vec<i16>,
    // --- check-0 scalar fix-up scratch ---
    fix_in: Vec<i32>,
    fix_out: Vec<i32>,
}

/// One (row, position) plane vector of the rotation VN plan: the `lanes`
/// messages at plane offset `base` belong to variables
/// `block + (u + off) % lanes`.
#[derive(Debug, Clone, Copy)]
struct RotEntry {
    base: u32,
    block: u32,
    off: u32,
}

impl SimdQuant {
    /// Builds the lane plan for a graph/partition/arithmetic triple, or
    /// returns `None` when the combination is not exactly expressible in
    /// saturating `i16` lanes (the caller keeps the scalar fused path).
    ///
    /// Assumes the partition has already been validated by
    /// `QuantizedZigzagDecoder::with_partition` (divisibility, permutation,
    /// uniform information degree).
    pub(crate) fn try_build(
        graph: &TannerGraph,
        partition: &ChainPartition,
        arithmetic: &QCheckArithmetic,
        tier: SimdTier,
    ) -> Option<SimdQuant> {
        let n_check = graph.check_count();
        let k = graph.info_len();
        let lanes = partition.lanes();
        let q_rows = n_check / lanes;
        // Row 0's shifted backward writes must land in a *different*
        // residue row than the one being read, which needs at least two
        // rows per sub-chain (every real rate point has >= 5).
        if q_rows < 2 {
            return None;
        }
        let max_mag_wide = arithmetic.quantizer().max_mag();
        // The combine kernel forms |a ± b| in i16, so 2·max_mag must fit.
        if 2 * max_mag_wide > i16::MAX as i32 {
            return None;
        }
        let max_mag = max_mag_wide as i16;
        let kernel = match arithmetic {
            QCheckArithmetic::Lut(bp) => {
                let th = bp.corr_thresholds()?;
                if th.len() > MAX_CORR_THRESHOLDS {
                    return None;
                }
                let mut thresholds = [-1i16; MAX_CORR_THRESHOLDS];
                for (slot, &t) in thresholds.iter_mut().zip(&th) {
                    // Thresholds live on the reachable index range
                    // |a ± b| <= 2·max_mag, which fits i16 per the gate
                    // above.
                    *slot = t as i16;
                }
                LaneKernel::Lut { thresholds }
            }
            QCheckArithmetic::MinSumShift { shift, .. } => LaneKernel::MinSum { shift: *shift },
        };
        let info_d = graph.check_edges(0).len() - 1;
        let stride = info_d + 2;

        // Bake the schedule permutation into the lane-major slot map, then
        // flatten it variable-major for the VN side — the same two steps as
        // `FusedPlan::build`, differing only in the slot formula.
        let order = partition.edge_order();
        let mut edge_slot = vec![u32::MAX; graph.edge_count()];
        for c in 0..n_check {
            let (u, r) = (c / q_rows, c % q_rows);
            let start = graph.check_edges(c).start;
            for i in 0..info_d {
                let e = match order {
                    Some(ord) => start + ord[c * info_d + i] as usize,
                    None => start + i,
                };
                edge_slot[e] = ((r * stride + i) * lanes + u) as u32;
            }
        }
        let mut var_slots = Vec::with_capacity(n_check * info_d);
        for v in 0..k {
            for &e in graph.var_edges(v) {
                let slot = edge_slot[e as usize];
                debug_assert_ne!(slot, u32::MAX, "information edge missing from lane layout");
                var_slots.push(slot);
            }
        }
        let rot = build_rotation(graph, &edge_slot, lanes, q_rows, stride, info_d);

        let plane = q_rows * stride * lanes;
        Some(SimdQuant {
            tier,
            lanes,
            q_rows,
            stride,
            info_d,
            max_mag,
            kernel,
            var_slots,
            rot,
            v2c: vec![0; plane],
            c2v: vec![0; plane],
            fwd: vec![0; n_check],
            bwd: vec![0; n_check],
            fwd_regs: vec![0; lanes],
            boundary: vec![0; lanes],
            pchan: vec![0; n_check],
            scr1: vec![0; lanes],
            scr2: vec![0; lanes],
            scr3: vec![0; lanes],
            scr4: vec![0; lanes],
            fix_in: vec![0; stride],
            fix_out: vec![0; stride],
        })
    }

    /// The dispatch tier this plan runs.
    pub(crate) fn tier(&self) -> SimdTier {
        self.tier
    }

    /// Lane-parallel decode, mirroring `decode_fused_into` step for step
    /// (same early-stop placement, same iteration accounting, same digest
    /// points). Returns `false` — with the decoder state untouched — when
    /// the channel's parity values exceed the quantizer rail, in which case
    /// the caller must run the scalar fused path (whose wide sat-adds
    /// handle out-of-range inputs).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn decode_into(
        &mut self,
        graph: &TannerGraph,
        arithmetic: &QCheckArithmetic,
        max_iterations: usize,
        early_stop: bool,
        channel: &[i32],
        totals: &mut [i32],
        decisions: &mut BitVec,
        out: &mut DecodeResult,
        mut trace: Option<&mut Vec<u64>>,
    ) -> bool {
        assert_eq!(channel.len(), graph.var_count(), "LLR length mismatch");
        let k = graph.info_len();
        let (lanes, q_rows) = (self.lanes, self.q_rows);
        let max_mag = self.max_mag;
        if channel[k..].iter().any(|&x| x.unsigned_abs() > max_mag as u32) {
            return false;
        }

        // Transpose the parity channel lane-major once per decode.
        for u in 0..lanes {
            let col = &channel[k + u * q_rows..k + (u + 1) * q_rows];
            for (r, &x) in col.iter().enumerate() {
                self.pchan[r * lanes + u] = x as i16;
            }
        }
        self.c2v.fill(0);
        self.bwd.fill(0);
        self.boundary.fill(0);
        let mut iterations = 0;
        let mut converged = false;

        for it in 0..max_iterations {
            // Fused totals + variable-node pass (identical values to the
            // scalar fused pass: integer addition is order-independent).
            self.vn_pass(graph, channel, k, totals);
            if early_stop && it > 0 {
                self.parity_totals(channel, k, totals);
                hard_decisions_int_into(totals, decisions);
                if syndrome_ok(graph, decisions) {
                    converged = true;
                    break;
                }
            }
            iterations += 1;

            check_sweep_tier(
                self.tier,
                lanes,
                q_rows,
                self.stride,
                self.info_d,
                max_mag,
                &self.kernel,
                arithmetic,
                &self.pchan,
                &mut self.v2c,
                &mut self.c2v,
                &mut self.fwd,
                &mut self.bwd,
                &mut self.fwd_regs,
                &mut self.boundary,
                &mut self.scr1,
                &mut self.scr2,
                &mut self.scr3,
                &mut self.scr4,
                &mut self.fix_in,
                &mut self.fix_out,
            );
            if let Some(digests) = trace.as_deref_mut() {
                digests.push(self.digest());
            }
        }

        if !converged {
            // The loop ended right after a sweep: fold it into the totals.
            self.vn_pass(graph, channel, k, totals);
            self.parity_totals(channel, k, totals);
        }
        if out.bits.len() != totals.len() {
            out.bits = BitVec::zeros(totals.len());
        }
        hard_decisions_int_into(totals, &mut out.bits);
        if !converged {
            converged = syndrome_ok(graph, &out.bits);
        }
        out.iterations = iterations;
        out.converged = converged;
        true
    }

    /// Totals + saturated v2c for the information side, dispatched through
    /// the rotation plan when the graph's QC structure allows.
    fn vn_pass(&mut self, graph: &TannerGraph, channel: &[i32], k: usize, totals: &mut [i32]) {
        match &self.rot {
            Some(rot) => vn_pass_rot_tier(
                self.tier,
                rot,
                self.lanes,
                self.max_mag,
                channel,
                k,
                &self.c2v,
                &mut self.v2c,
                totals,
            ),
            None => vn_pass_generic(
                graph,
                &self.var_slots,
                self.max_mag,
                channel,
                &self.c2v,
                &mut self.v2c,
                totals,
            ),
        }
    }

    /// Parity-side totals from the lane-major chain state. The last
    /// check's backward slot is pinned zero, standing in for the scalar
    /// path's end-of-chain conditional.
    fn parity_totals(&self, channel: &[i32], k: usize, totals: &mut [i32]) {
        let (lanes, q_rows) = (self.lanes, self.q_rows);
        for u in 0..lanes {
            for r in 0..q_rows {
                let j = u * q_rows + r;
                let s = r * lanes + u;
                totals[k + j] = channel[k + j] + self.fwd[s] as i32 + self.bwd[s] as i32;
            }
        }
    }

    /// Canonical message digest — value-for-value the stream of
    /// `fused_digest` / `unfused_digest`: per check (check order) the
    /// information c2v messages in hardware input order, then the forward,
    /// then the backward chain messages.
    fn digest(&self) -> u64 {
        let (lanes, q_rows, stride, info_d) = (self.lanes, self.q_rows, self.stride, self.info_d);
        let mut h = Fnv::new();
        for c in 0..lanes * q_rows {
            let base = (c % q_rows) * stride * lanes + c / q_rows;
            for i in 0..info_d {
                h.write_i32(self.c2v[base + i * lanes] as i32);
            }
        }
        for c in 0..lanes * q_rows {
            h.write_i32(self.fwd[(c % q_rows) * lanes + c / q_rows] as i32);
        }
        for c in 0..lanes * q_rows {
            h.write_i32(self.bwd[(c % q_rows) * lanes + c / q_rows] as i32);
        }
        h.finish()
    }
}

/// Detects the quasi-cyclic rotation structure of every (row, position)
/// plane vector: real hardware partitions map the 360 lanes of a position
/// onto one 360-variable block rotated by the schedule shift. Synthetic
/// edge orders (tests) that break the pattern get `None` and take the
/// variable-major generic pass instead.
fn build_rotation(
    graph: &TannerGraph,
    edge_slot: &[u32],
    lanes: usize,
    q_rows: usize,
    stride: usize,
    info_d: usize,
) -> Option<Vec<RotEntry>> {
    let k = graph.info_len();
    let mut slot_var = vec![u32::MAX; q_rows * stride * lanes];
    for c in 0..graph.check_count() {
        let range = graph.check_edges(c);
        for e in range.start..range.start + info_d {
            slot_var[edge_slot[e] as usize] = graph.var_of_edge(e) as u32;
        }
    }
    let mut rot = Vec::with_capacity(q_rows * info_d);
    for r in 0..q_rows {
        for i in 0..info_d {
            let base = (r * stride + i) * lanes;
            let v0 = slot_var[base] as usize;
            if v0 >= k {
                return None;
            }
            let off = v0 % lanes;
            let block = v0 - off;
            if block + lanes > k {
                return None;
            }
            for u in 0..lanes {
                if slot_var[base + u] as usize != block + (u + off) % lanes {
                    return None;
                }
            }
            rot.push(RotEntry { base: base as u32, block: block as u32, off: off as u32 });
        }
    }
    Some(rot)
}

/// Saturating add in the quantizer's lane domain (sums fit i16 for every
/// eligible `max_mag`).
#[inline(always)]
fn sat_add_i16(a: i16, b: i16, max_mag: i16) -> i16 {
    (a + b).clamp(-max_mag, max_mag)
}

/// One lane-wide boxplus combine via the threshold-decomposed correction:
/// bit-identical to `QBoxplus::combine` (same branchless sign/magnitude
/// fold; `corr[zp] - corr[zm]` becomes a handful of broadcast compares).
#[inline(always)]
fn combine_one(x: i16, y: i16, th: [i16; MAX_CORR_THRESHOLDS], max_mag: i16) -> i16 {
    let sign: i16 = if (x ^ y) < 0 { -1 } else { 1 };
    let mag = x.abs().min(y.abs());
    let zp = (x + y).abs();
    let zm = (x - y).abs();
    let mut c = 0i16;
    for &t in &th {
        c += (zp <= t) as i16 - (zm <= t) as i16;
    }
    sign * (mag + sign * c).clamp(0, max_mag)
}

#[inline(always)]
fn lane_combine(
    a: &[i16],
    b: &[i16],
    out: &mut [i16],
    th: [i16; MAX_CORR_THRESHOLDS],
    max_mag: i16,
) {
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = combine_one(x, y, th, max_mag);
    }
}

#[inline(always)]
fn lane_combine_acc(acc: &mut [i16], b: &[i16], th: [i16; MAX_CORR_THRESHOLDS], max_mag: i16) {
    for (a, &y) in acc.iter_mut().zip(b) {
        *a = combine_one(*a, y, th, max_mag);
    }
}

/// LUT extrinsic over one residue row: `d` lane vectors, suffix sweep then
/// prefix sweep with exactly `QBoxplus::extrinsic`'s association order per
/// lane (`combine` is a pure function, so identical dataflow means
/// identical values regardless of lane organization).
#[inline(always)]
fn lane_lut_extrinsic(
    v2c: &[i16],
    c2v: &mut [i16],
    lanes: usize,
    d: usize,
    th: [i16; MAX_CORR_THRESHOLDS],
    max_mag: i16,
    prefix: &mut [i16],
) {
    c2v[(d - 1) * lanes..d * lanes].copy_from_slice(&v2c[(d - 1) * lanes..d * lanes]);
    for i in (1..d - 1).rev() {
        let (head, tail) = c2v.split_at_mut((i + 1) * lanes);
        lane_combine(
            &v2c[i * lanes..(i + 1) * lanes],
            &tail[..lanes],
            &mut head[i * lanes..],
            th,
            max_mag,
        );
    }
    prefix.copy_from_slice(&v2c[..lanes]);
    {
        let (head, tail) = c2v.split_at_mut(lanes);
        head.copy_from_slice(&tail[..lanes]);
    }
    for i in 1..d - 1 {
        let (head, tail) = c2v.split_at_mut((i + 1) * lanes);
        lane_combine(prefix, &tail[..lanes], &mut head[i * lanes..], th, max_mag);
        lane_combine_acc(prefix, &v2c[i * lanes..(i + 1) * lanes], th, max_mag);
    }
    c2v[(d - 1) * lanes..d * lanes].copy_from_slice(prefix);
}

/// Min-sum extrinsic over one residue row: per-lane two-minima recurrence
/// with the scalar rule's first-strict-min index semantics and
/// negative-sign parity, then the subtract-shifted-self normalization.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn lane_min_sum_extrinsic(
    v2c: &[i16],
    c2v: &mut [i16],
    lanes: usize,
    d: usize,
    shift: u32,
    min1: &mut [i16],
    min2: &mut [i16],
    min_col: &mut [i16],
    neg_par: &mut [i16],
) {
    for (u, &x) in v2c[..lanes].iter().enumerate() {
        min1[u] = x.abs();
        min2[u] = i16::MAX;
        min_col[u] = 0;
        neg_par[u] = (x < 0) as i16;
    }
    for i in 1..d {
        let col = &v2c[i * lanes..(i + 1) * lanes];
        let ii = i as i16;
        for (u, &x) in col.iter().enumerate() {
            let mag = x.abs();
            let smaller = mag < min1[u];
            min2[u] = min2[u].min(min1[u].max(mag));
            min_col[u] = if smaller { ii } else { min_col[u] };
            min1[u] = min1[u].min(mag);
            neg_par[u] ^= (x < 0) as i16;
        }
    }
    for i in 0..d {
        let ii = i as i16;
        let vcol = &v2c[i * lanes..(i + 1) * lanes];
        let ocol = &mut c2v[i * lanes..(i + 1) * lanes];
        for (u, (o, &x)) in ocol.iter_mut().zip(vcol).enumerate() {
            let mag = if min_col[u] == ii { min2[u] } else { min1[u] };
            let norm = mag - (mag >> shift);
            *o = if (neg_par[u] ^ (x < 0) as i16) != 0 { -norm } else { norm };
        }
    }
}

/// Rotation-structured variable-node pass: totals (i32, overflow-safe for
/// any degree) then saturated v2c, each (row, position) vector as two
/// contiguous slices split at the rotation seam.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn vn_pass_rot(
    rot: &[RotEntry],
    lanes: usize,
    max_mag: i16,
    channel: &[i32],
    k: usize,
    c2v: &[i16],
    v2c: &mut [i16],
    totals: &mut [i32],
) {
    totals[..k].copy_from_slice(&channel[..k]);
    for e in rot {
        let (base, block, off) = (e.base as usize, e.block as usize, e.off as usize);
        let split = lanes - off;
        let src = &c2v[base..base + lanes];
        let dst = &mut totals[block..block + lanes];
        for (d, &s) in dst[off..].iter_mut().zip(&src[..split]) {
            *d += s as i32;
        }
        for (d, &s) in dst[..off].iter_mut().zip(&src[split..]) {
            *d += s as i32;
        }
    }
    let (lo, hi) = (-(max_mag as i32), max_mag as i32);
    for e in rot {
        let (base, block, off) = (e.base as usize, e.block as usize, e.off as usize);
        let split = lanes - off;
        let t = &totals[block..block + lanes];
        let c = &c2v[base..base + lanes];
        let v = &mut v2c[base..base + lanes];
        for u in 0..split {
            v[u] = (t[off + u] - c[u] as i32).clamp(lo, hi) as i16;
        }
        for u in 0..off {
            v[split + u] = (t[u] - c[split + u] as i32).clamp(lo, hi) as i16;
        }
    }
}

/// Variable-major VN pass for non-rotation (synthetic) slot maps — the
/// fused pass's walk over `var_slots`, in the i16 lane domain.
fn vn_pass_generic(
    graph: &TannerGraph,
    var_slots: &[u32],
    max_mag: i16,
    channel: &[i32],
    c2v: &[i16],
    v2c: &mut [i16],
    totals: &mut [i32],
) {
    let (lo, hi) = (-(max_mag as i32), max_mag as i32);
    let mut pos = 0usize;
    for v in 0..graph.info_len() {
        let n_e = graph.var_edges(v).len();
        let slots = &var_slots[pos..pos + n_e];
        let mut sum = 0i32;
        for &s in slots {
            sum += c2v[s as usize] as i32;
        }
        let total = channel[v] + sum;
        totals[v] = total;
        for &s in slots {
            let s = s as usize;
            v2c[s] = (total - c2v[s] as i32).clamp(lo, hi) as i16;
        }
        pos += n_e;
    }
}

/// Lane-major check sweep: per residue row, phase 1 builds the parity-chain
/// input vectors, phase 2 runs the lane extrinsic kernel, phase 3 copies
/// the chain outputs forward/backward. Phasing whole rows is exact: within
/// a row every read targets row `r` state while every write targets row
/// `r - 1` (or, at `r == 0`, row `q_rows - 1` shifted one lane), so no
/// value is consumed in the sweep order the scalar path wouldn't produce.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn check_sweep(
    lanes: usize,
    q_rows: usize,
    stride: usize,
    info_d: usize,
    max_mag: i16,
    kernel: &LaneKernel,
    arithmetic: &QCheckArithmetic,
    pchan: &[i16],
    v2c: &mut [i16],
    c2v: &mut [i16],
    fwd: &mut [i16],
    bwd: &mut [i16],
    fwd_regs: &mut [i16],
    boundary: &mut [i16],
    scr1: &mut [i16],
    scr2: &mut [i16],
    scr3: &mut [i16],
    scr4: &mut [i16],
    fix_in: &mut [i32],
    fix_out: &mut [i32],
) {
    fwd_regs.copy_from_slice(boundary);
    for r in 0..q_rows {
        let row = r * stride * lanes;
        let vl = row + info_d * lanes;
        let vr = vl + lanes;
        // Right parity inputs: uniform across all lanes (the global last
        // check's backward slot is pinned zero).
        {
            let pc = &pchan[r * lanes..(r + 1) * lanes];
            let bw = &bwd[r * lanes..(r + 1) * lanes];
            for ((o, &p), &b) in v2c[vr..vr + lanes].iter_mut().zip(pc).zip(bw) {
                *o = sat_add_i16(p, b, max_mag);
            }
        }
        // Left parity inputs: lane-aligned for r > 0, shifted one lane at
        // the sub-chain boundary row.
        if r > 0 {
            let pc = &pchan[(r - 1) * lanes..r * lanes];
            for ((o, &p), &f) in v2c[vl..vl + lanes].iter_mut().zip(pc).zip(fwd_regs.iter()) {
                *o = sat_add_i16(p, f, max_mag);
            }
        } else {
            // Check 0 (lane 0) has no left input; a zero placeholder keeps
            // the lane kernel in range and its row is rebuilt below.
            v2c[vl] = 0;
            let pc = &pchan[(q_rows - 1) * lanes..];
            for ((o, &p), &f) in
                v2c[vl + 1..vl + lanes].iter_mut().zip(&pc[..lanes - 1]).zip(fwd_regs[1..].iter())
            {
                *o = sat_add_i16(p, f, max_mag);
            }
        }
        match kernel {
            LaneKernel::Lut { thresholds } => lane_lut_extrinsic(
                &v2c[row..row + stride * lanes],
                &mut c2v[row..row + stride * lanes],
                lanes,
                stride,
                *thresholds,
                max_mag,
                scr1,
            ),
            LaneKernel::MinSum { shift } => lane_min_sum_extrinsic(
                &v2c[row..row + stride * lanes],
                &mut c2v[row..row + stride * lanes],
                lanes,
                stride,
                *shift,
                scr1,
                scr2,
                scr3,
                scr4,
            ),
        }
        if r == 0 {
            // Check 0: degree `info_d + 1` with the right parity input
            // last — recompute through the scalar arithmetic (the same
            // call the fused path makes for its short row) and store the
            // forward output at the left slot so write-back below reads
            // it uniformly. The kernel's garbage at (info_d + 1, lane 0)
            // is never read.
            let d0 = info_d + 1;
            for i in 0..info_d {
                fix_in[i] = v2c[row + i * lanes] as i32;
            }
            fix_in[info_d] = v2c[vr] as i32;
            arithmetic.extrinsic(&fix_in[..d0], &mut fix_out[..d0]);
            for i in 0..info_d {
                c2v[row + i * lanes] = fix_out[i] as i16;
            }
            c2v[vl] = fix_out[info_d] as i16;
        }
        // Write-back: backward outputs (left slot) to the previous row,
        // forward outputs (right slot) into the lane registers.
        if r > 0 {
            bwd[(r - 1) * lanes..r * lanes].copy_from_slice(&c2v[vl..vl + lanes]);
            fwd_regs.copy_from_slice(&c2v[vr..vr + lanes]);
        } else {
            bwd[(q_rows - 1) * lanes..][..lanes - 1].copy_from_slice(&c2v[vl + 1..vl + lanes]);
            fwd_regs[1..].copy_from_slice(&c2v[vr + 1..vr + lanes]);
            fwd_regs[0] = c2v[vl];
        }
        fwd[r * lanes..(r + 1) * lanes].copy_from_slice(fwd_regs);
    }
    for u in (1..lanes).rev() {
        boundary[u] = fwd_regs[u - 1];
    }
    boundary[0] = 0;
}

// Runtime SIMD dispatch — the `tile.rs` clone pattern, extended for the
// integer lanes: the AVX-512 clone also enables BW/VL (512-bit i16 ops)
// and is gated on the CPU actually reporting them, falling back to the
// AVX2 clone (bit-identical) on F-only parts.
macro_rules! qtier_clones {
    ($dispatch:ident, $base:ident, $avx2:ident, $avx512:ident;
     ($($arg:ident: $ty:ty),* $(,)?)) => {
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2")]
        #[allow(clippy::too_many_arguments)]
        unsafe fn $avx2($($arg: $ty),*) {
            $base($($arg),*);
        }

        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx512f,avx512bw,avx512vl")]
        #[allow(clippy::too_many_arguments)]
        unsafe fn $avx512($($arg: $ty),*) {
            $base($($arg),*);
        }

        #[allow(clippy::too_many_arguments)]
        fn $dispatch(tier: SimdTier, $($arg: $ty),*) {
            match tier {
                #[cfg(target_arch = "x86_64")]
                SimdTier::Avx2 => unsafe { $avx2($($arg),*) },
                #[cfg(target_arch = "x86_64")]
                SimdTier::Avx512 if SimdTier::wide_i16_available() => {
                    unsafe { $avx512($($arg),*) }
                }
                #[cfg(target_arch = "x86_64")]
                SimdTier::Avx512 => unsafe { $avx2($($arg),*) },
                _ => $base($($arg),*),
            }
        }
    };
}

qtier_clones!(
    vn_pass_rot_tier, vn_pass_rot, vn_pass_rot_avx2, vn_pass_rot_avx512;
    (
        rot: &[RotEntry],
        lanes: usize,
        max_mag: i16,
        channel: &[i32],
        k: usize,
        c2v: &[i16],
        v2c: &mut [i16],
        totals: &mut [i32],
    )
);

qtier_clones!(
    check_sweep_tier, check_sweep, check_sweep_avx2, check_sweep_avx512;
    (
        lanes: usize,
        q_rows: usize,
        stride: usize,
        info_d: usize,
        max_mag: i16,
        kernel: &LaneKernel,
        arithmetic: &QCheckArithmetic,
        pchan: &[i16],
        v2c: &mut [i16],
        c2v: &mut [i16],
        fwd: &mut [i16],
        bwd: &mut [i16],
        fwd_regs: &mut [i16],
        boundary: &mut [i16],
        scr1: &mut [i16],
        scr2: &mut [i16],
        scr3: &mut [i16],
        scr4: &mut [i16],
        fix_in: &mut [i32],
        fix_out: &mut [i32],
    )
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::{QBoxplus, Quantizer};

    #[test]
    fn lane_combine_matches_scalar_combine_exhaustively() {
        for q in [Quantizer::paper_6bit(), Quantizer::paper_5bit()] {
            let bp = QBoxplus::new(q);
            let th_vec = bp.corr_thresholds().unwrap();
            let mut th = [-1i16; MAX_CORR_THRESHOLDS];
            for (slot, &t) in th.iter_mut().zip(&th_vec) {
                *slot = t as i16;
            }
            let m = q.max_mag();
            for a in -m..=m {
                for b in -m..=m {
                    assert_eq!(
                        combine_one(a as i16, b as i16, th, m as i16) as i32,
                        bp.combine(a, b),
                        "bits={} a={a} b={b}",
                        q.bits()
                    );
                }
            }
        }
    }

    #[test]
    fn min_sum_lane_kernel_matches_scalar_rule() {
        use crate::quant::QCheckArithmetic;
        let q = Quantizer::paper_6bit();
        let arith = QCheckArithmetic::min_sum_shift(q, 2);
        let lanes = 5;
        let d = 6;
        // Deterministic pseudo-random in-range messages, including rails
        // and repeated minima (the first-strict-min tiebreak).
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as i32 % 63 - 31).clamp(-31, 31)
        };
        let v2c: Vec<i16> = (0..lanes * d).map(|_| next() as i16).collect();
        let mut c2v = vec![0i16; lanes * d];
        let mut s1 = vec![0i16; lanes];
        let mut s2 = vec![0i16; lanes];
        let mut s3 = vec![0i16; lanes];
        let mut s4 = vec![0i16; lanes];
        lane_min_sum_extrinsic(&v2c, &mut c2v, lanes, d, 2, &mut s1, &mut s2, &mut s3, &mut s4);
        for u in 0..lanes {
            let ins: Vec<i32> = (0..d).map(|i| v2c[i * lanes + u] as i32).collect();
            let mut outs = vec![0i32; d];
            arith.extrinsic(&ins, &mut outs);
            for i in 0..d {
                assert_eq!(c2v[i * lanes + u] as i32, outs[i], "lane {u} pos {i} ins {ins:?}");
            }
        }
    }

    #[test]
    fn lut_lane_kernel_matches_scalar_extrinsic() {
        let q = Quantizer::paper_6bit();
        let bp = QBoxplus::new(q);
        let th_vec = bp.corr_thresholds().unwrap();
        let mut th = [-1i16; MAX_CORR_THRESHOLDS];
        for (slot, &t) in th.iter_mut().zip(&th_vec) {
            *slot = t as i16;
        }
        let lanes = 7;
        let d = 5;
        let mut state = 0xD1B54A32D192ED03u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as i32 % 63 - 31).clamp(-31, 31)
        };
        let v2c: Vec<i16> = (0..lanes * d).map(|_| next() as i16).collect();
        let mut c2v = vec![0i16; lanes * d];
        let mut prefix = vec![0i16; lanes];
        lane_lut_extrinsic(&v2c, &mut c2v, lanes, d, th, 31, &mut prefix);
        for u in 0..lanes {
            let ins: Vec<i32> = (0..d).map(|i| v2c[i * lanes + u] as i32).collect();
            let mut outs = vec![0i32; d];
            bp.extrinsic(&ins, &mut outs);
            for i in 0..d {
                assert_eq!(c2v[i * lanes + u] as i32, outs[i], "lane {u} pos {i} ins {ins:?}");
            }
        }
    }
}
