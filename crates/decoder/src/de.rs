//! Discretized (exact, up to quantization) density evolution over the
//! BI-AWGN channel.
//!
//! Gaussian-approximation thresholds ([`crate::ga_threshold_sigma`]) are
//! cheap but biased for ensembles with a heavy degree-2/3 mass — exactly
//! the DVB-S2 profile. This module tracks the full message *density* on a
//! uniform LLR grid (Chung's discretized DE):
//!
//! * variable-node update — linear convolution of densities (saturating at
//!   the grid edges);
//! * check-node update — pairwise combination through a precomputed
//!   quantized boxplus table, with binary exponentiation over the check
//!   degree;
//! * threshold — bisection on the noise level for vanishing error
//!   probability.
//!
//! Accuracy is limited only by the grid (`bins`, `max_llr`) and the
//! iteration cap; the defaults resolve thresholds to ~0.02 dB.

use crate::threshold::DegreeDistribution;

/// A probability mass function over the symmetric LLR grid
/// `-max_llr ..= +max_llr` with `2·half + 1` bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Density {
    mass: Vec<f64>,
    half: usize,
    step: f64,
}

impl Density {
    fn zeros(half: usize, step: f64) -> Self {
        Density { mass: vec![0.0; 2 * half + 1], half, step }
    }

    /// A point mass at LLR 0 (the all-uninformative density).
    pub fn delta_zero(half: usize, step: f64) -> Self {
        let mut d = Density::zeros(half, step);
        d.mass[half] = 1.0;
        d
    }

    /// The density of BPSK channel LLRs `2(1+n)/σ²`, `n ~ N(0, σ²)`,
    /// integrated per bin.
    pub fn biawgn_channel(half: usize, step: f64, sigma: f64) -> Self {
        let mut d = Density::zeros(half, step);
        let mean = 2.0 / (sigma * sigma);
        let std = 2.0 / sigma;
        let cdf = |x: f64| 0.5 * (1.0 + erf((x - mean) / (std * std::f64::consts::SQRT_2)));
        let mut prev = 0.0f64;
        for i in 0..d.mass.len() {
            let upper = if i + 1 == d.mass.len() {
                1.0
            } else {
                cdf((i as f64 - half as f64 + 0.5) * step)
            };
            d.mass[i] = (upper - prev).max(0.0);
            prev = upper;
        }
        d
    }

    /// LLR value of bin `i`.
    #[inline]
    pub fn llr(&self, i: usize) -> f64 {
        (i as f64 - self.half as f64) * self.step
    }

    /// Mean LLR of the density.
    pub fn mean(&self) -> f64 {
        self.mass.iter().enumerate().map(|(i, &p)| p * self.llr(i)).sum()
    }

    /// Total probability of error: mass below zero plus half the mass at
    /// zero.
    pub fn error_probability(&self) -> f64 {
        let below: f64 = self.mass[..self.half].iter().sum();
        below + 0.5 * self.mass[self.half]
    }

    /// Total mass (should stay 1 within rounding).
    pub fn total_mass(&self) -> f64 {
        self.mass.iter().sum()
    }

    /// Rescales to unit mass. Essential inside density evolution: the
    /// check-side power operation raises any rounding deficit `(1-ε)` to
    /// the `(d-1)`-th power, which compounds into total mass collapse
    /// within tens of iterations if left uncorrected.
    ///
    /// # Panics
    ///
    /// Panics if the density has no positive mass at all.
    pub fn normalize(&mut self) {
        let total = self.total_mass();
        assert!(total > 0.0, "cannot normalize an empty density");
        if (total - 1.0).abs() > f64::EPSILON {
            for m in &mut self.mass {
                *m /= total;
            }
        }
    }

    /// Saturating linear convolution with another density on the same grid.
    pub fn convolve(&self, other: &Density) -> Density {
        debug_assert_eq!(self.half, other.half);
        let n = self.mass.len();
        let half = self.half as isize;
        let mut out = Density::zeros(self.half, self.step);
        for (i, &a) in self.mass.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            let ai = i as isize - half;
            for (j, &b) in other.mass.iter().enumerate() {
                let sum = ai + (j as isize - half);
                let idx = (sum + half).clamp(0, n as isize - 1) as usize;
                out.mass[idx] += a * b;
            }
        }
        out
    }
}

/// Gauss error function (Abramowitz–Stegun 7.1.26, |err| < 1.5e-7).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Discretized density-evolution engine for one grid resolution.
#[derive(Debug, Clone)]
pub struct DensityEvolution {
    half: usize,
    step: f64,
    /// Quantized boxplus: `table[a * n + b]` = output bin of bins `a`, `b`.
    boxplus_table: Vec<u16>,
}

impl DensityEvolution {
    /// Builds the engine with `2·half + 1` bins of width `step`
    /// (LLR range `±half·step`).
    ///
    /// # Panics
    ///
    /// Panics on a degenerate grid.
    pub fn new(half: usize, step: f64) -> Self {
        assert!(half >= 8 && step > 0.0, "degenerate DE grid");
        let n = 2 * half + 1;
        let llr = |i: usize| (i as f64 - half as f64) * step;
        let mut table = vec![0u16; n * n];
        for a in 0..n {
            for b in 0..n {
                let (la, lb) = (llr(a), llr(b));
                let out = boxplus_exact(la, lb);
                let idx = ((out / step).round() as isize + half as isize).clamp(0, n as isize - 1)
                    as usize;
                table[a * n + b] = idx as u16;
            }
        }
        DensityEvolution { half, step, boxplus_table: table }
    }

    /// The default grid: ±25 LLR in 0.1 steps (501 bins).
    pub fn default_grid() -> Self {
        DensityEvolution::new(250, 0.1)
    }

    /// Check-node combination of two densities through the boxplus table.
    pub fn check_combine(&self, a: &Density, b: &Density) -> Density {
        let n = 2 * self.half + 1;
        let mut out = Density::zeros(self.half, self.step);
        for (i, &pa) in a.mass.iter().enumerate() {
            if pa == 0.0 {
                continue;
            }
            let row = &self.boxplus_table[i * n..(i + 1) * n];
            for (j, &pb) in b.mass.iter().enumerate() {
                if pb != 0.0 {
                    out.mass[row[j] as usize] += pa * pb;
                }
            }
        }
        out
    }

    /// `density` boxplus-combined with itself `power` times
    /// (`power = d - 1` for a degree-`d` check), by binary exponentiation.
    pub fn check_power(&self, density: &Density, power: usize) -> Density {
        debug_assert!(power >= 1);
        let mut result: Option<Density> = None;
        let mut base = density.clone();
        let mut remaining = power;
        loop {
            if remaining & 1 == 1 {
                result = Some(match result {
                    None => base.clone(),
                    Some(r) => self.check_combine(&r, &base),
                });
            }
            remaining >>= 1;
            if remaining == 0 {
                break;
            }
            base = self.check_combine(&base, &base);
        }
        result.expect("power >= 1")
    }

    /// Runs density evolution at noise level `sigma`; returns the residual
    /// error probability after at most `max_iterations` (0 means converged).
    pub fn evolve(
        &self,
        dist: &DegreeDistribution,
        sigma: f64,
        max_iterations: usize,
        target: f64,
    ) -> f64 {
        let channel = Density::biawgn_channel(self.half, self.step, sigma);
        let mut c2v = Density::delta_zero(self.half, self.step);
        let max_var_degree =
            dist.var_edges.iter().map(|&(d, _)| d).max().expect("non-empty distribution");
        let mut error = 1.0f64;
        for _ in 0..max_iterations {
            // Variable side: mixture over degrees of ch ⊛ c2v^{⊛(d-1)}.
            let mut v2c = Density::zeros(self.half, self.step);
            let mut power = channel.clone(); // ch ⊛ c2v^{⊛0}
            let mut next_degree = 1usize; // current power corresponds to d-1 = 0 → d = 1
            for d in 1..=max_var_degree {
                if d > next_degree {
                    power = power.convolve(&c2v);
                    next_degree = d;
                }
                if let Some(&(_, f)) = dist.var_edges.iter().find(|&&(dd, _)| dd == d) {
                    for (o, &p) in v2c.mass.iter_mut().zip(&power.mass) {
                        *o += f * p;
                    }
                }
            }
            v2c.normalize();
            // Check side: mixture over check degrees.
            let mut new_c2v = Density::zeros(self.half, self.step);
            for &(d, f) in &dist.check_edges {
                let combined = self.check_power(&v2c, d - 1);
                for (o, &p) in new_c2v.mass.iter_mut().zip(&combined.mass) {
                    *o += f * p;
                }
            }
            c2v = new_c2v;
            c2v.normalize();
            // Message error probability — the standard DE convergence
            // criterion: it vanishes iff decoding succeeds asymptotically.
            error = c2v.error_probability();
            if error < target {
                return 0.0;
            }
        }
        error
    }

    /// Threshold `σ*` for an ensemble by bisection.
    pub fn threshold_sigma(
        &self,
        dist: &DegreeDistribution,
        max_iterations: usize,
        target: f64,
    ) -> f64 {
        let (mut lo, mut hi) = (0.4f64, 2.0f64);
        for _ in 0..14 {
            let mid = 0.5 * (lo + hi);
            if self.evolve(dist, mid, max_iterations, target) == 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

/// Exact pairwise boxplus (duplicated locally to keep the table builder
/// free of cross-module inlining concerns).
fn boxplus_exact(a: f64, b: f64) -> f64 {
    let sign_min = a.abs().min(b.abs()).copysign(a) * b.signum();
    let f = |x: f64| if x > 40.0 { 0.0 } else { (-x).exp().ln_1p() };
    sign_min + f((a + b).abs()) - f((a - b).abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_engine() -> DensityEvolution {
        DensityEvolution::new(120, 0.2) // ±24 LLR, 241 bins: fast for tests
    }

    #[test]
    fn channel_density_is_normalized_with_correct_mean() {
        let d = Density::biawgn_channel(250, 0.1, 0.9);
        assert!((d.total_mass() - 1.0).abs() < 1e-9);
        let mean: f64 = d.mass.iter().enumerate().map(|(i, &p)| p * d.llr(i)).sum();
        let expected = 2.0 / (0.9 * 0.9);
        assert!((mean - expected).abs() < 0.05, "mean {mean} vs {expected}");
    }

    #[test]
    fn convolution_preserves_mass_and_adds_means() {
        let a = Density::biawgn_channel(250, 0.1, 1.2);
        let b = Density::biawgn_channel(250, 0.1, 1.5);
        let c = a.convolve(&b);
        assert!((c.total_mass() - 1.0).abs() < 1e-9);
        let mean =
            |d: &Density| -> f64 { d.mass.iter().enumerate().map(|(i, &p)| p * d.llr(i)).sum() };
        assert!((mean(&c) - mean(&a) - mean(&b)).abs() < 0.1);
    }

    #[test]
    fn delta_zero_is_boxplus_annihilator() {
        let engine = small_engine();
        let ch = Density::biawgn_channel(120, 0.2, 1.0);
        let zero = Density::delta_zero(120, 0.2);
        let combined = engine.check_combine(&ch, &zero);
        // boxplus with an LLR-0 message yields LLR 0.
        assert!((combined.mass[120] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn check_combine_shrinks_reliability() {
        let engine = small_engine();
        let ch = Density::biawgn_channel(120, 0.2, 0.8);
        let combined = engine.check_combine(&ch, &ch);
        assert!(combined.error_probability() > ch.error_probability());
        assert!((combined.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn check_power_matches_sequential_combination() {
        let engine = small_engine();
        let ch = Density::biawgn_channel(120, 0.2, 1.0);
        let sequential = engine.check_combine(&engine.check_combine(&ch, &ch), &ch);
        let powered = engine.check_power(&ch, 3);
        for (a, b) in sequential.mass.iter().zip(&powered.mass) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn regular_3_6_threshold_matches_literature() {
        // True DE threshold of (3,6): σ* = 0.8809 (Richardson/Urbanke).
        // The coarse test grid resolves it to about ±0.01.
        let engine = small_engine();
        let dist = DegreeDistribution::regular(3, 6);
        let sigma = engine.threshold_sigma(&dist, 300, 1e-6);
        assert!((sigma - 0.8809).abs() < 0.02, "sigma {sigma}");
    }

    #[test]
    fn evolve_is_monotone_in_sigma() {
        let engine = small_engine();
        let dist = DegreeDistribution::regular(3, 6);
        assert_eq!(engine.evolve(&dist, 0.75, 300, 1e-6), 0.0);
        assert!(engine.evolve(&dist, 1.05, 300, 1e-6) > 1e-3);
    }
}
