//! The paper's optimized message-update schedule — Figure 2b / Section 2.2.
//!
//! DVB-S2 parity nodes all have degree 2 and connect consecutive check nodes
//! in a zigzag chain (the encoder's accumulator). Processing check nodes
//! sequentially lets the freshly updated message of check `j-1` flow into
//! check `j` *within the same iteration* (the "forward update"); messages
//! back down the chain use the previous iteration (the "parallel backward
//! update"). The paper's two payoffs, both reproduced by `fig2_schedules`:
//!
//! * the same BER needs ≈ 10 fewer iterations (30 instead of 40);
//! * only the backward messages must be stored — `E_PN / 2` values instead
//!   of `E_PN` — halving the parity-message memory.

#![allow(clippy::needless_range_loop)] // one index drives several parallel slices

use crate::llr_ops::CheckRule;
use crate::stopping::{hard_decisions, syndrome_ok};
use crate::{DecodeResult, Decoder, DecoderConfig};
use dvbs2_ldpc::TannerGraph;
use std::sync::Arc;

/// Zigzag-schedule decoder for DVB-S2 (IRA) Tanner graphs.
///
/// Requires a graph built by [`TannerGraph::for_code`]: variables
/// `info_len()..var_count()` must form the accumulator chain, and each
/// check's parity edges must come last in its edge range.
#[derive(Debug, Clone)]
pub struct ZigzagDecoder {
    graph: Arc<TannerGraph>,
    config: DecoderConfig,
    /// Variable-to-check messages for information edges (indexed by graph
    /// edge id; parity-edge slots unused).
    v2c: Vec<f64>,
    /// Check-to-variable messages for information edges.
    c2v: Vec<f64>,
    /// Backward messages `b[j] = CN_{j+1} -> PN_j` (the only stored parity
    /// messages — the hardware memory-saving the paper describes).
    backward: Vec<f64>,
    /// Forward messages `f[j] = CN_j -> PN_j`. In hardware these live only
    /// in the functional unit's pipeline register; the model keeps them for
    /// the a-posteriori parity decisions.
    forward: Vec<f64>,
    totals: Vec<f64>,
    scratch_in: Vec<f64>,
    scratch_out: Vec<f64>,
}

impl ZigzagDecoder {
    /// Creates a decoder for a DVB-S2 Tanner graph.
    ///
    /// # Panics
    ///
    /// Panics if the graph has no parity chain (`info_len == var_count`).
    pub fn new(graph: Arc<TannerGraph>, config: DecoderConfig) -> Self {
        let n_check = graph.check_count();
        assert!(
            graph.info_len() < graph.var_count(),
            "zigzag schedule needs a parity chain; use TannerGraph::for_code"
        );
        assert_eq!(
            graph.var_count() - graph.info_len(),
            n_check,
            "IRA structure requires one parity variable per check"
        );
        let edges = graph.edge_count();
        let max_degree =
            (0..n_check).map(|c| graph.check_degree(c)).max().unwrap_or(0);
        ZigzagDecoder {
            graph,
            config,
            v2c: vec![0.0; edges],
            c2v: vec![0.0; edges],
            backward: vec![0.0; n_check],
            forward: vec![0.0; n_check],
            totals: vec![0.0; 0],
            scratch_in: vec![0.0; max_degree],
            scratch_out: vec![0.0; max_degree],
        }
    }

    /// The decoder configuration.
    pub fn config(&self) -> &DecoderConfig {
        &self.config
    }

    /// Number of information edges of check `c` (its edge range minus the
    /// trailing parity edges).
    #[inline]
    fn info_degree(&self, c: usize) -> usize {
        self.graph.check_degree(c) - if c == 0 { 1 } else { 2 }
    }
}

impl Decoder for ZigzagDecoder {
    fn decode(&mut self, channel_llrs: &[f64]) -> DecodeResult {
        let graph = Arc::clone(&self.graph);
        assert_eq!(channel_llrs.len(), graph.var_count(), "LLR length mismatch");
        let k = graph.info_len();
        let n_check = graph.check_count();

        self.c2v.fill(0.0);
        self.backward.fill(0.0);
        self.totals = vec![0.0; graph.var_count()];
        let mut iterations = 0;
        let mut converged = false;

        for _ in 0..self.config.max_iterations {
            iterations += 1;

            // Information variable-node phase (parallel, Eq. 4).
            for v in 0..k {
                let edges = graph.var_edges(v);
                let total: f64 =
                    channel_llrs[v] + edges.iter().map(|&e| self.c2v[e as usize]).sum::<f64>();
                self.totals[v] = total;
                for &e in edges {
                    self.v2c[e as usize] = total - self.c2v[e as usize];
                }
            }

            // Sequential check-node sweep with immediate forward update.
            let mut fwd_prev = 0.0; // f_{j-1}, fresh from this sweep
            for c in 0..n_check {
                let info_d = self.info_degree(c);
                let range = graph.check_edges(c);
                let start = range.start;
                for i in 0..info_d {
                    self.scratch_in[i] = self.v2c[start + i];
                }
                let mut d = info_d;
                // Left parity input: PN_{c-1} -> CN_c, using this sweep's
                // fresh forward message (the paper's key optimization).
                let left_pos = if c > 0 {
                    self.scratch_in[d] = channel_llrs[k + c - 1] + fwd_prev;
                    d += 1;
                    Some(d - 1)
                } else {
                    None
                };
                // Right parity input: PN_c -> CN_c, using last iteration's
                // backward message (parallel backward update).
                self.scratch_in[d] = channel_llrs[k + c]
                    + if c + 1 < n_check { self.backward[c] } else { 0.0 };
                let right_pos = d;
                d += 1;

                self.config.rule.extrinsic(&self.scratch_in[..d], &mut self.scratch_out[..d]);

                for i in 0..info_d {
                    self.c2v[start + i] = self.scratch_out[i];
                }
                if let Some(p) = left_pos {
                    // CN_c -> PN_{c-1}: the new backward message, consumed by
                    // CN_{c-1} only in the *next* iteration.
                    self.backward[c - 1] = self.scratch_out[p];
                }
                fwd_prev = self.scratch_out[right_pos];
                self.forward[c] = fwd_prev;
            }

            // A-posteriori totals and early termination.
            for v in 0..k {
                self.totals[v] = channel_llrs[v]
                    + graph.var_edges(v).iter().map(|&e| self.c2v[e as usize]).sum::<f64>();
            }
            for j in 0..n_check {
                self.totals[k + j] = channel_llrs[k + j]
                    + self.forward[j]
                    + if j + 1 < n_check { self.backward[j] } else { 0.0 };
            }
            if self.config.early_stop && syndrome_ok(&graph, &hard_decisions(&self.totals)) {
                converged = true;
                break;
            }
        }
        if !converged {
            converged = syndrome_ok(&graph, &hard_decisions(&self.totals));
        }
        DecodeResult { bits: hard_decisions(&self.totals), iterations, converged }
    }

    fn name(&self) -> &'static str {
        match self.config.rule {
            CheckRule::SumProduct => "zigzag sum-product",
            CheckRule::NormalizedMinSum(_) => "zigzag normalized min-sum",
            CheckRule::OffsetMinSum(_) => "zigzag offset min-sum",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flooding::FloodingDecoder;
    use crate::test_support::{llrs_for_codeword, noisy_llrs, small_code, SplitMix64};
    use dvbs2_ldpc::BitVec;

    #[test]
    fn noiseless_codeword_converges_immediately() {
        let (code, graph) = small_code();
        let enc = code.encoder().unwrap();
        let mut rng = SplitMix64(2);
        let msg: BitVec = (0..code.params().k).map(|_| rng.next_bool()).collect();
        let cw = enc.encode(&msg).unwrap();
        let llrs = llrs_for_codeword(&cw, 5.0);
        let mut dec = ZigzagDecoder::new(Arc::new(graph), DecoderConfig::default());
        let out = dec.decode(&llrs);
        assert!(out.converged);
        assert_eq!(out.iterations, 1);
        assert_eq!(out.bits, cw);
    }

    #[test]
    fn corrects_noisy_frame() {
        let (code, graph) = small_code();
        let (cw, llrs) = noisy_llrs(&code, 3.2, 42);
        let mut dec = ZigzagDecoder::new(Arc::new(graph), DecoderConfig::default());
        let out = dec.decode(&llrs);
        assert!(out.converged);
        assert_eq!(out.bits, cw);
    }

    #[test]
    fn converges_in_fewer_iterations_than_flooding() {
        // The paper's central claim for the schedule (Fig. 2b): across noisy
        // frames the sequential forward update converges faster.
        let (code, graph) = small_code();
        let graph = Arc::new(graph);
        let config = DecoderConfig { max_iterations: 60, ..DecoderConfig::default() };
        let mut zigzag = ZigzagDecoder::new(Arc::clone(&graph), config);
        let mut flooding = FloodingDecoder::new(Arc::clone(&graph), config);
        let mut zig_total = 0usize;
        let mut flood_total = 0usize;
        for seed in 0..8 {
            let (_, llrs) = noisy_llrs(&code, 2.4, 1000 + seed);
            zig_total += zigzag.decode(&llrs).iterations;
            flood_total += flooding.decode(&llrs).iterations;
        }
        assert!(
            zig_total < flood_total,
            "zigzag {zig_total} iters vs flooding {flood_total}"
        );
    }

    #[test]
    fn agrees_with_flooding_on_decoded_words() {
        let (code, graph) = small_code();
        let graph = Arc::new(graph);
        let mut zigzag = ZigzagDecoder::new(Arc::clone(&graph), DecoderConfig::default());
        let mut flooding = FloodingDecoder::new(Arc::clone(&graph), DecoderConfig::default());
        for seed in 0..4 {
            let (cw, llrs) = noisy_llrs(&code, 3.0, 500 + seed);
            let z = zigzag.decode(&llrs);
            let f = flooding.decode(&llrs);
            assert_eq!(z.bits, cw, "seed {seed}");
            assert_eq!(f.bits, cw, "seed {seed}");
        }
    }

    #[test]
    fn works_with_min_sum_rule() {
        let (code, graph) = small_code();
        let (cw, llrs) = noisy_llrs(&code, 3.6, 77);
        let mut dec = ZigzagDecoder::new(
            Arc::new(graph),
            DecoderConfig { rule: CheckRule::NormalizedMinSum(0.8), ..DecoderConfig::default() },
        );
        let out = dec.decode(&llrs);
        assert_eq!(out.bits, cw);
    }

    #[test]
    #[should_panic(expected = "parity chain")]
    fn rejects_graph_without_parity_chain() {
        let g = dvbs2_ldpc::TannerGraph::from_edges(2, 1, &[(0, 0), (0, 1)]);
        let _ = ZigzagDecoder::new(Arc::new(g), DecoderConfig::default());
    }
}
