//! The paper's optimized message-update schedule — Figure 2b / Section 2.2.
//!
//! DVB-S2 parity nodes all have degree 2 and connect consecutive check nodes
//! in a zigzag chain (the encoder's accumulator). Processing check nodes
//! sequentially lets the freshly updated message of check `j-1` flow into
//! check `j` *within the same iteration* (the "forward update"); messages
//! back down the chain use the previous iteration (the "parallel backward
//! update"). The paper's two payoffs, both reproduced by `fig2_schedules`:
//!
//! * the same BER needs ≈ 10 fewer iterations (30 instead of 40);
//! * only the backward messages must be stored — `E_PN / 2` values instead
//!   of `E_PN` — halving the parity-message memory.
//!
//! The message store is the flat check-major layout of [`crate::engine`].
//! Each check's parity edges sit at the tail of its contiguous edge range
//! (left chain edge at `end - 2`, right at `end - 1`), so the sweep writes
//! the two parity inputs straight into the v2c plane and runs the kernel in
//! place: the forward message of check `c` *is* `c2v[end(c) - 1]` and the
//! backward message to parity node `j` *is* `c2v[end(j + 1) - 2]` — no
//! separate forward/backward arrays and no per-check scratch copies.

use crate::engine::{
    accumulate_totals, hard_decisions_into, load_llrs, syndrome_ok_totals, Precision,
};
use crate::llr_ops::{CheckRule, LlrFloat};
use crate::simd::SimdTier;
use crate::tile::{lane_accumulate_totals, zigzag_lane_sweep_tier};
use crate::{DecodeResult, Decoder, DecoderConfig};
use dvbs2_ldpc::{BitVec, TannerGraph};
use std::sync::Arc;

/// Zigzag-schedule decoder for DVB-S2 (IRA) Tanner graphs.
///
/// Requires a graph built by [`TannerGraph::for_code`]: variables
/// `info_len()..var_count()` must form the accumulator chain, and each
/// check's parity edges must come last in its edge range.
///
/// The min-sum rules run through the blocked edge-major lane sweep of
/// the `tile` module at width 1 — the same `#[target_feature]`-dispatched
/// kernel family the tiled batch decoder uses, so single-frame and tiled
/// decodes share one code path (and the per-lane operation order keeps the
/// results bit-identical to the historical scalar sweep, pinned by the
/// seed-embedded regression suite). The exact sum-product rules keep the
/// scalar check-by-check sweep.
#[derive(Debug, Clone)]
pub struct ZigzagDecoder {
    graph: Arc<TannerGraph>,
    config: DecoderConfig,
    tier: SimdTier,
    core: Core,
}

#[derive(Debug, Clone)]
enum Core {
    F64(Engine<f64>),
    F32(Engine<f32>),
}

/// Message planes and working buffers at one precision.
#[derive(Debug, Clone)]
struct Engine<F> {
    llr: Vec<F>,
    v2c: Vec<F>,
    c2v: Vec<F>,
    totals: Vec<F>,
    totals_next: Vec<F>,
}

impl<F: LlrFloat> Engine<F> {
    fn new(graph: &TannerGraph) -> Self {
        let edges = graph.edge_count();
        let vars = graph.var_count();
        Engine {
            llr: vec![F::ZERO; vars],
            v2c: vec![F::ZERO; edges],
            c2v: vec![F::ZERO; edges],
            totals: vec![F::ZERO; vars],
            totals_next: vec![F::ZERO; vars],
        }
    }

    /// One full decode into `out`. Allocation-free once `out.bits` has the
    /// codeword length (the first call sizes it).
    fn decode_into(
        &mut self,
        graph: &TannerGraph,
        config: &DecoderConfig,
        tier: SimdTier,
        channel_llrs: &[f64],
        out: &mut DecodeResult,
    ) {
        // The min-sum rules route through the tiled decoder's lane sweep at
        // width 1; the exact sum-product rules stream check by check.
        match config.rule.min_sum_correct::<F>() {
            Some(correct) => {
                self.decode_lanes(graph, config, tier, channel_llrs, out, move |m| {
                    correct.apply(m)
                });
            }
            None => self.decode_scalar(graph, config, channel_llrs, out),
        }
    }

    /// Min-sum decode through [`zigzag_lane_sweep_tier`] with one frame
    /// lane: the message planes are edge-major with `w = 1`, so the lane
    /// kernels read them exactly like this engine's flat layout.
    fn decode_lanes(
        &mut self,
        graph: &TannerGraph,
        config: &DecoderConfig,
        tier: SimdTier,
        channel_llrs: &[f64],
        out: &mut DecodeResult,
        correct: impl Fn(F) -> F + Copy,
    ) {
        load_llrs(&mut self.llr, channel_llrs);
        self.c2v.fill(F::ZERO);
        // First-iteration gather sources: totals = llr plus all-zero
        // messages (bit-identical to `accumulate_totals` at width 1).
        lane_accumulate_totals(graph.edge_vars(), 1, &self.llr, &self.c2v, &mut self.totals);
        let mut iterations = 0;
        let mut converged = false;

        for _ in 0..config.max_iterations {
            iterations += 1;
            zigzag_lane_sweep_tier(
                tier,
                graph,
                &config.rule,
                1,
                &self.llr,
                &self.totals,
                &mut self.v2c,
                &mut self.c2v,
                &mut self.totals_next,
                correct,
            );
            std::mem::swap(&mut self.totals, &mut self.totals_next);
            if config.early_stop && syndrome_ok_totals(graph, &self.totals) {
                converged = true;
                break;
            }
        }
        self.finish(graph, iterations, converged, out);
    }

    /// The original scalar sweep (sum-product rules).
    fn decode_scalar(
        &mut self,
        graph: &TannerGraph,
        config: &DecoderConfig,
        channel_llrs: &[f64],
        out: &mut DecodeResult,
    ) {
        load_llrs(&mut self.llr, channel_llrs);
        let k = graph.info_len();
        let n_check = graph.check_count();
        let offsets = graph.check_offsets();
        let edge_vars = graph.edge_vars();

        self.c2v.fill(F::ZERO);
        // First-iteration gather sources: totals = llr plus all-zero messages.
        accumulate_totals(edge_vars, &self.llr, &self.c2v, &mut self.totals);
        let mut iterations = 0;
        let mut converged = false;

        for _ in 0..config.max_iterations {
            iterations += 1;

            // Sequential check-node sweep with immediate forward update,
            // fused with both variable-node passes: each check gathers its
            // information inputs from the previous totals (parallel, Eq. 4),
            // runs the kernel in place, and scatters its fresh extrinsics
            // into the next totals plane while the slice is cache-hot.
            self.totals_next.fill(F::ZERO);
            for c in 0..n_check {
                let start = offsets[c] as usize;
                let end = offsets[c + 1] as usize;
                for ((x, &v), &m) in self.v2c[start..end]
                    .iter_mut()
                    .zip(&edge_vars[start..end])
                    .zip(&self.c2v[start..end])
                {
                    *x = self.totals[v as usize] - m;
                }
                if c > 0 {
                    // Left parity input PN_{c-1} -> CN_c: this sweep's fresh
                    // forward message — the right-edge output of check c-1,
                    // still warm at the tail of the previous range (the
                    // paper's key optimization).
                    self.v2c[end - 2] = self.llr[k + c - 1] + self.c2v[start - 1];
                }
                // Right parity input PN_c -> CN_c: last iteration's backward
                // message — the left-edge slot of check c+1, not yet
                // overwritten by this sweep (parallel backward update).
                self.v2c[end - 1] = self.llr[k + c]
                    + if c + 1 < n_check { self.c2v[offsets[c + 2] as usize - 2] } else { F::ZERO };
                config.rule.extrinsic_t(&self.v2c[start..end], &mut self.c2v[start..end]);
                for (&v, &m) in edge_vars[start..end].iter().zip(&self.c2v[start..end]) {
                    self.totals_next[v as usize] += m;
                }
            }

            // A-posteriori totals: channel LLR on top of the scattered sums
            // for the information variables, the chain's forward + backward
            // form for parity (overwriting the parity-edge scatter).
            for (t, &l) in self.totals_next.iter_mut().zip(&self.llr) {
                *t = l + *t;
            }
            for j in 0..n_check {
                let forward = self.c2v[offsets[j + 1] as usize - 1];
                let backward =
                    if j + 1 < n_check { self.c2v[offsets[j + 2] as usize - 2] } else { F::ZERO };
                self.totals_next[k + j] = self.llr[k + j] + forward + backward;
            }
            std::mem::swap(&mut self.totals, &mut self.totals_next);
            if config.early_stop && syndrome_ok_totals(graph, &self.totals) {
                converged = true;
                break;
            }
        }
        self.finish(graph, iterations, converged, out);
    }

    /// Post-loop epilogue shared by both paths: final syndrome check when
    /// the loop ran to the cap, then hard decisions into `out`.
    fn finish(
        &mut self,
        graph: &TannerGraph,
        iterations: usize,
        mut converged: bool,
        out: &mut DecodeResult,
    ) {
        if !converged {
            converged = syndrome_ok_totals(graph, &self.totals);
        }
        if out.bits.len() != self.totals.len() {
            out.bits = BitVec::zeros(self.totals.len());
        }
        hard_decisions_into(&self.totals, &mut out.bits);
        out.iterations = iterations;
        out.converged = converged;
    }
}

impl ZigzagDecoder {
    /// Creates a decoder for a DVB-S2 Tanner graph.
    ///
    /// # Panics
    ///
    /// Panics if the graph has no parity chain (`info_len == var_count`),
    /// or if `config.simd` forces a SIMD tier this CPU does not support.
    pub fn new(graph: Arc<TannerGraph>, config: DecoderConfig) -> Self {
        assert!(
            graph.info_len() < graph.var_count(),
            "zigzag schedule needs a parity chain; use TannerGraph::for_code"
        );
        assert_eq!(
            graph.var_count() - graph.info_len(),
            graph.check_count(),
            "IRA structure requires one parity variable per check"
        );
        let tier = SimdTier::resolve(config.simd);
        let core = match config.precision {
            Precision::F64 => Core::F64(Engine::new(&graph)),
            Precision::F32 => Core::F32(Engine::new(&graph)),
        };
        ZigzagDecoder { graph, config, tier, core }
    }

    /// The decoder configuration.
    pub fn config(&self) -> &DecoderConfig {
        &self.config
    }

    /// The SIMD dispatch tier the min-sum lane sweep runs on (the exact
    /// sum-product rules are scalar regardless).
    pub fn simd_tier(&self) -> SimdTier {
        self.tier
    }
}

impl Decoder for ZigzagDecoder {
    fn decode(&mut self, channel_llrs: &[f64]) -> DecodeResult {
        let mut out = DecodeResult::default();
        self.decode_into(channel_llrs, &mut out);
        out
    }

    fn decode_into(&mut self, channel_llrs: &[f64], out: &mut DecodeResult) {
        assert_eq!(channel_llrs.len(), self.graph.var_count(), "LLR length mismatch");
        match &mut self.core {
            Core::F64(e) => e.decode_into(&self.graph, &self.config, self.tier, channel_llrs, out),
            Core::F32(e) => e.decode_into(&self.graph, &self.config, self.tier, channel_llrs, out),
        }
    }

    fn set_max_iterations(&mut self, max_iterations: usize) {
        self.config.max_iterations = max_iterations;
    }

    fn name(&self) -> &'static str {
        match self.config.rule {
            CheckRule::SumProduct => "zigzag sum-product",
            CheckRule::TableSumProduct => "zigzag table sum-product",
            CheckRule::NormalizedMinSum(_) => "zigzag normalized min-sum",
            CheckRule::OffsetMinSum(_) => "zigzag offset min-sum",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flooding::FloodingDecoder;
    use crate::test_support::{llrs_for_codeword, noisy_llrs, small_code, SplitMix64};
    use dvbs2_ldpc::BitVec;

    #[test]
    fn noiseless_codeword_converges_immediately() {
        let (code, graph) = small_code();
        let enc = code.encoder().unwrap();
        let mut rng = SplitMix64(2);
        let msg: BitVec = (0..code.params().k).map(|_| rng.next_bool()).collect();
        let cw = enc.encode(&msg).unwrap();
        let llrs = llrs_for_codeword(&cw, 5.0);
        let mut dec = ZigzagDecoder::new(Arc::new(graph), DecoderConfig::default());
        let out = dec.decode(&llrs);
        assert!(out.converged);
        assert_eq!(out.iterations, 1);
        assert_eq!(out.bits, cw);
    }

    #[test]
    fn corrects_noisy_frame() {
        let (code, graph) = small_code();
        let (cw, llrs) = noisy_llrs(&code, 3.2, 42);
        let mut dec = ZigzagDecoder::new(Arc::new(graph), DecoderConfig::default());
        let out = dec.decode(&llrs);
        assert!(out.converged);
        assert_eq!(out.bits, cw);
    }

    #[test]
    fn converges_in_fewer_iterations_than_flooding() {
        // The paper's central claim for the schedule (Fig. 2b): across noisy
        // frames the sequential forward update converges faster.
        let (code, graph) = small_code();
        let graph = Arc::new(graph);
        let config = DecoderConfig { max_iterations: 60, ..DecoderConfig::default() };
        let mut zigzag = ZigzagDecoder::new(Arc::clone(&graph), config);
        let mut flooding = FloodingDecoder::new(Arc::clone(&graph), config);
        let mut zig_total = 0usize;
        let mut flood_total = 0usize;
        for seed in 0..8 {
            let (_, llrs) = noisy_llrs(&code, 2.4, 1000 + seed);
            zig_total += zigzag.decode(&llrs).iterations;
            flood_total += flooding.decode(&llrs).iterations;
        }
        assert!(zig_total < flood_total, "zigzag {zig_total} iters vs flooding {flood_total}");
    }

    #[test]
    fn agrees_with_flooding_on_decoded_words() {
        let (code, graph) = small_code();
        let graph = Arc::new(graph);
        let mut zigzag = ZigzagDecoder::new(Arc::clone(&graph), DecoderConfig::default());
        let mut flooding = FloodingDecoder::new(Arc::clone(&graph), DecoderConfig::default());
        for seed in 0..4 {
            let (cw, llrs) = noisy_llrs(&code, 3.0, 500 + seed);
            let z = zigzag.decode(&llrs);
            let f = flooding.decode(&llrs);
            assert_eq!(z.bits, cw, "seed {seed}");
            assert_eq!(f.bits, cw, "seed {seed}");
        }
    }

    #[test]
    fn works_with_min_sum_rule() {
        let (code, graph) = small_code();
        let (cw, llrs) = noisy_llrs(&code, 3.6, 77);
        let mut dec = ZigzagDecoder::new(
            Arc::new(graph),
            DecoderConfig { rule: CheckRule::NormalizedMinSum(0.8), ..DecoderConfig::default() },
        );
        let out = dec.decode(&llrs);
        assert_eq!(out.bits, cw);
    }

    #[test]
    fn f32_fast_path_decodes_the_same_frames() {
        let (code, graph) = small_code();
        let graph = Arc::new(graph);
        for seed in 0..4 {
            let (cw, llrs) = noisy_llrs(&code, 3.2, 700 + seed);
            let mut fast = ZigzagDecoder::new(
                Arc::clone(&graph),
                DecoderConfig::default().with_precision(Precision::F32),
            );
            let out = fast.decode(&llrs);
            assert!(out.converged, "seed {seed}");
            assert_eq!(out.bits, cw, "seed {seed}");
        }
    }

    #[test]
    fn min_sum_is_bit_identical_across_simd_tiers() {
        // The lane-sweep routing dispatches per tier; every tier must give
        // the full scalar-tier DecodeResult bit for bit.
        let (code, graph) = small_code();
        let graph = Arc::new(graph);
        for rule in [CheckRule::NormalizedMinSum(0.8), CheckRule::OffsetMinSum(0.15)] {
            for precision in [Precision::F64, Precision::F32] {
                let cfg = DecoderConfig::default().with_rule(rule).with_precision(precision);
                let mut reference = ZigzagDecoder::new(
                    Arc::clone(&graph),
                    cfg.with_simd_tier(Some(SimdTier::Scalar)),
                );
                for tier in SimdTier::available() {
                    let mut dec =
                        ZigzagDecoder::new(Arc::clone(&graph), cfg.with_simd_tier(Some(tier)));
                    assert_eq!(dec.simd_tier(), tier);
                    for seed in 0..3 {
                        let (_, llrs) = noisy_llrs(&code, 2.6, 300 + seed);
                        assert_eq!(
                            dec.decode(&llrs),
                            reference.decode(&llrs),
                            "{rule:?} {precision:?} {tier:?} seed {seed}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "parity chain")]
    fn rejects_graph_without_parity_chain() {
        let g = dvbs2_ldpc::TannerGraph::from_edges(2, 1, &[(0, 0), (0, 1)]);
        let _ = ZigzagDecoder::new(Arc::new(g), DecoderConfig::default());
    }
}
