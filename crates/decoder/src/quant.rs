//! Fixed-point message quantization (Section 2.1 of the paper).
//!
//! The paper adopts 6-bit message quantization, citing a total loss of
//! ≈ 0.1 dB versus infinite precision, with 5 bits losing noticeably more.
//! [`Quantizer`] maps float LLRs to saturating signed integers, and
//! [`QBoxplus`] evaluates the check-node rule entirely in integers using the
//! classic min + correction-table decomposition — the arithmetic a hardware
//! functional unit actually implements, and therefore the golden model the
//! cycle-accurate core must match bit for bit.

/// Uniform symmetric quantizer: `bits`-wide signed values saturating at
/// `±(2^(bits-1) - 1)`, with LLR resolution `step`.
///
/// ```
/// use dvbs2_decoder::Quantizer;
/// let q = Quantizer::new(6, 0.5); // the paper's 6-bit messages
/// assert_eq!(q.max_mag(), 31);
/// assert_eq!(q.quantize(1.3), 3);    // 1.3 / 0.5 rounds to 3
/// assert_eq!(q.quantize(-100.0), -31); // saturates
/// assert_eq!(q.dequantize(3), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantizer {
    bits: u32,
    max_mag: i32,
    step: f64,
}

impl Quantizer {
    /// Creates a quantizer with the given width and step.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= bits <= 16` and `step > 0`.
    pub fn new(bits: u32, step: f64) -> Self {
        assert!((2..=16).contains(&bits), "bits must be in 2..=16, got {bits}");
        assert!(step > 0.0 && step.is_finite(), "step must be positive, got {step}");
        Quantizer { bits, max_mag: (1 << (bits - 1)) - 1, step }
    }

    /// The paper's configuration: 6-bit messages.
    ///
    /// The step (0.25 LLR per LSB, i.e. a (6,2) fixed-point format with
    /// range ±7.75) is the best uniform choice at the paper's operating
    /// point: finer steps clip too many channel LLRs, coarser steps lose
    /// resolution in the check-node corrections.
    pub fn paper_6bit() -> Self {
        Quantizer::new(6, 0.25)
    }

    /// The paper's 5-bit comparison point. With only ±15 codes the best
    /// step is 0.5 (keeping the ±7.5 dynamic range and sacrificing
    /// resolution), which is what makes 5 bits measurably worse than 6 —
    /// the comparison of Section 2.1.
    pub fn paper_5bit() -> Self {
        Quantizer::new(5, 0.5)
    }

    /// Message width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Largest representable magnitude, `2^(bits-1) - 1`.
    pub fn max_mag(&self) -> i32 {
        self.max_mag
    }

    /// LLR value of one LSB.
    pub fn step(&self) -> f64 {
        self.step
    }

    /// Quantizes a float LLR (round to nearest, saturate).
    pub fn quantize(&self, x: f64) -> i32 {
        let scaled = (x / self.step).round();
        scaled.clamp(-self.max_mag as f64, self.max_mag as f64) as i32
    }

    /// The float LLR represented by a fixed-point value.
    pub fn dequantize(&self, v: i32) -> f64 {
        v as f64 * self.step
    }

    /// Saturating addition within this quantizer's range.
    #[inline]
    pub fn sat_add(&self, a: i32, b: i32) -> i32 {
        (a + b).clamp(-self.max_mag, self.max_mag)
    }

    /// Saturates a wide accumulator back into range.
    #[inline]
    pub fn saturate(&self, x: i32) -> i32 {
        x.clamp(-self.max_mag, self.max_mag)
    }
}

/// Integer boxplus via `min` plus a small correction look-up table:
///
/// ```text
/// a ⊞ b ≈ sign(a) sign(b) min(|a|,|b|) + corr(|a+b|) - corr(|a-b|)
/// corr(z) = round( ln(1 + e^{-z·step}) / step )
/// ```
///
/// This is the standard fixed-point realization of Eq. 5 and is what the
/// hardware functional units compute; all arithmetic is integer and
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct QBoxplus {
    quantizer: Quantizer,
    corr: Vec<i32>,
}

impl QBoxplus {
    /// Builds the correction table for a quantizer.
    pub fn new(quantizer: Quantizer) -> Self {
        let table_len = (4 * quantizer.max_mag() + 1) as usize;
        let corr = (0..table_len)
            .map(|z| {
                let x = z as f64 * quantizer.step();
                (((-x).exp()).ln_1p() / quantizer.step()).round() as i32
            })
            .collect();
        QBoxplus { quantizer, corr }
    }

    /// The quantizer this table was built for.
    pub fn quantizer(&self) -> &Quantizer {
        &self.quantizer
    }

    /// Decomposes the correction table over the reachable index range
    /// (`|a ± b| <= 2·max_mag` for in-range messages) into unit-step
    /// thresholds: `corr(z) == #{t in thresholds : z <= t}` for every
    /// reachable `z`.
    ///
    /// The `ln(1 + e^{-z·step})` table is non-increasing, so after rounding
    /// it is exactly a sum of indicator steps; the lane-parallel SIMD kernel
    /// evaluates the correction as a handful of broadcast compares instead
    /// of a per-lane gather. Returns `None` when the table is not
    /// representable this way — it always is for tables built by
    /// [`QBoxplus::new`], but the decomposition is verified here rather
    /// than assumed, so a future table change degrades to the scalar path
    /// instead of silently decoding wrong.
    pub(crate) fn corr_thresholds(&self) -> Option<Vec<i32>> {
        let reach = 2 * self.quantizer.max_mag() as usize;
        let corr = self.corr.get(..=reach)?;
        let mut thresholds = Vec::new();
        for v in 1..=corr[0] {
            thresholds.push(corr.iter().rposition(|&c| c >= v)? as i32);
        }
        for (z, &c) in corr.iter().enumerate() {
            let rebuilt = thresholds.iter().filter(|&&t| z as i32 <= t).count() as i32;
            if rebuilt != c {
                return None;
            }
        }
        Some(thresholds)
    }

    /// Integer boxplus of two messages.
    ///
    /// Branchless formulation of `sign·mag + corr(|a+b|) − corr(|a−b|)`
    /// clamped toward zero: the sign-conditional clamp is algebraically
    /// folded into the magnitude domain (`sign · clamp(mag + sign·c, 0,
    /// max)` expands to exactly the signed form for either sign), because a
    /// data-dependent branch on the output sign mispredicts on a large
    /// fraction of messages and this function dominates the quantized check
    /// sweep.
    #[inline]
    pub fn combine(&self, a: i32, b: i32) -> i32 {
        let sign = 1 - (((a ^ b) >> 30) & 2); // -1 if signs differ, else 1
        let mag = a.abs().min(b.abs());
        let c =
            self.corr[(a + b).unsigned_abs() as usize] - self.corr[(a - b).unsigned_abs() as usize];
        // Rounding may not flip the sign, so the magnitude-domain value is
        // clamped at zero; the upper clamp is the quantizer's saturation.
        sign * (mag + sign * c).clamp(0, self.quantizer.max_mag())
    }

    /// Extrinsic outputs for one check node, all-integer. Identical
    /// structure (and therefore identical rounding) to the float
    /// forward/backward sweep, so hardware and reference models agree
    /// exactly.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != incoming.len()`.
    pub fn extrinsic(&self, incoming: &[i32], out: &mut [i32]) {
        assert_eq!(incoming.len(), out.len(), "length mismatch");
        let d = incoming.len();
        match d {
            0 => {}
            1 => out[0] = 0,
            2 => {
                out[0] = incoming[1];
                out[1] = incoming[0];
            }
            _ => {
                out[d - 1] = incoming[d - 1];
                for i in (0..d - 1).rev() {
                    out[i] = self.combine(incoming[i], out[i + 1]);
                }
                let mut prefix = incoming[0];
                let total_suffix = out[1];
                out[0] = total_suffix;
                for i in 1..d {
                    out[i] = if i + 1 < d { self.combine(prefix, out[i + 1]) } else { prefix };
                    prefix = self.combine(prefix, incoming[i]);
                }
            }
        }
    }
}

/// The check-node arithmetic of a fixed-point decoder: the exact-rule
/// [`QBoxplus`] table (what the paper's Eq. 5 functional units compute) or
/// a shift-based normalized min-sum, which needs no LUT at all — the
/// classic area/performance knob of LDPC decoder design.
#[derive(Debug, Clone, PartialEq)]
pub enum QCheckArithmetic {
    /// Min + correction-LUT realization of Eq. 5.
    Lut(QBoxplus),
    /// Normalized min-sum with `alpha = 1 - 2^-shift` implemented as a
    /// subtract-shifted-self (no multiplier, no LUT).
    MinSumShift {
        /// Message quantizer.
        quantizer: Quantizer,
        /// Normalization shift (2 gives the common alpha = 0.75).
        shift: u32,
    },
}

impl QCheckArithmetic {
    /// The paper's LUT arithmetic at a given quantizer.
    pub fn lut(quantizer: Quantizer) -> Self {
        QCheckArithmetic::Lut(QBoxplus::new(quantizer))
    }

    /// Shift-based normalized min-sum (`alpha = 1 - 2^-shift`).
    ///
    /// # Panics
    ///
    /// Panics if `shift == 0` (alpha would be 0).
    pub fn min_sum_shift(quantizer: Quantizer, shift: u32) -> Self {
        assert!(shift > 0, "shift must be positive");
        QCheckArithmetic::MinSumShift { quantizer, shift }
    }

    /// The message quantizer in use.
    pub fn quantizer(&self) -> &Quantizer {
        match self {
            QCheckArithmetic::Lut(bp) => bp.quantizer(),
            QCheckArithmetic::MinSumShift { quantizer, .. } => quantizer,
        }
    }

    /// Extrinsic outputs for one check node under this arithmetic.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != incoming.len()`.
    pub fn extrinsic(&self, incoming: &[i32], out: &mut [i32]) {
        match self {
            QCheckArithmetic::Lut(bp) => bp.extrinsic(incoming, out),
            QCheckArithmetic::MinSumShift { shift, .. } => {
                assert_eq!(incoming.len(), out.len(), "length mismatch");
                match incoming.len() {
                    0 => {}
                    1 => out[0] = 0,
                    2 => {
                        // Degree-2 pass-through is exact; no normalization.
                        out[0] = incoming[1];
                        out[1] = incoming[0];
                    }
                    _ => {
                        let mut min1 = i32::MAX;
                        let mut min2 = i32::MAX;
                        let mut min_idx = 0usize;
                        let mut sign = 1i32;
                        for (i, &x) in incoming.iter().enumerate() {
                            let mag = x.abs();
                            if mag < min1 {
                                min2 = min1;
                                min1 = mag;
                                min_idx = i;
                            } else if mag < min2 {
                                min2 = mag;
                            }
                            if x < 0 {
                                sign = -sign;
                            }
                        }
                        for (i, o) in out.iter_mut().enumerate() {
                            let mag = if i == min_idx { min2 } else { min1 };
                            let normalized = mag - (mag >> shift);
                            let self_sign = if incoming[i] < 0 { -1 } else { 1 };
                            *o = sign * self_sign * normalized;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::llr_ops::boxplus;

    #[test]
    fn quantize_rounds_and_saturates() {
        let q = Quantizer::new(6, 0.5);
        assert_eq!(q.quantize(0.0), 0);
        assert_eq!(q.quantize(0.24), 0);
        assert_eq!(q.quantize(0.26), 1);
        assert_eq!(q.quantize(-0.26), -1);
        assert_eq!(q.quantize(15.5), 31);
        assert_eq!(q.quantize(16.0), 31);
        assert_eq!(q.quantize(-1e9), -31);
    }

    #[test]
    fn five_bit_range_is_tighter() {
        let q5 = Quantizer::paper_5bit();
        let q6 = Quantizer::paper_6bit();
        assert_eq!(q5.max_mag(), 15);
        assert_eq!(q6.max_mag(), 31);
    }

    #[test]
    fn sat_add_clamps() {
        let q = Quantizer::new(6, 0.5);
        assert_eq!(q.sat_add(30, 5), 31);
        assert_eq!(q.sat_add(-30, -5), -31);
        assert_eq!(q.sat_add(10, -3), 7);
    }

    #[test]
    fn qboxplus_tracks_float_boxplus() {
        let q = Quantizer::new(6, 0.5);
        let bp = QBoxplus::new(q);
        let mut worst: f64 = 0.0;
        for a in -20i32..=20 {
            for b in -20i32..=20 {
                let exact = boxplus(q.dequantize(a), q.dequantize(b));
                let approx = q.dequantize(bp.combine(a, b));
                worst = worst.max((exact - approx).abs());
            }
        }
        // Within one LSB of the exact rule.
        assert!(worst <= q.step() + 1e-9, "worst error {worst}");
    }

    #[test]
    fn qboxplus_sign_and_annihilator() {
        let bp = QBoxplus::new(Quantizer::new(6, 0.5));
        assert_eq!(bp.combine(0, 17), 0);
        assert!(bp.combine(5, 7) > 0);
        assert!(bp.combine(-5, 7) < 0);
        assert!(bp.combine(-5, -7) > 0);
    }

    #[test]
    fn qboxplus_magnitude_bounded_by_min() {
        let bp = QBoxplus::new(Quantizer::new(6, 0.5));
        for a in [-31, -9, -1, 2, 14, 31] {
            for b in [-31, -6, 3, 28] {
                // The correction can add at most +1 LSB over min in this
                // decomposition before clamping; exact rule never exceeds min.
                assert!(bp.combine(a, b).abs() <= a.abs().min(b.abs()) + 1);
            }
        }
    }

    #[test]
    fn extrinsic_degree2_is_exact_swap() {
        let bp = QBoxplus::new(Quantizer::new(6, 0.5));
        let mut out = [0; 2];
        bp.extrinsic(&[7, -3], &mut out);
        assert_eq!(out, [-3, 7]);
    }

    #[test]
    fn extrinsic_matches_pairwise_reduction() {
        let bp = QBoxplus::new(Quantizer::new(6, 0.5));
        let incoming = [9, -4, 17, 2, -30, 6];
        let mut out = [0; 6];
        bp.extrinsic(&incoming, &mut out);
        for i in 0..incoming.len() {
            // Reference: fold the other messages with the same
            // suffix-then-prefix association order used by `extrinsic`.
            let others: Vec<i32> =
                incoming.iter().enumerate().filter(|&(j, _)| j != i).map(|(_, &v)| v).collect();
            // extrinsic(i) = prefix(0..i) ⊞ suffix(i+1..), where prefix folds
            // left-to-right and suffix right-to-left.
            let prefix = incoming[..i].iter().copied().reduce(|a, b| bp.combine(a, b));
            let suffix = incoming[i + 1..].iter().rev().copied().reduce(|b, a| bp.combine(a, b));
            let want = match (prefix, suffix) {
                (Some(p), Some(s)) => bp.combine(p, s),
                (Some(p), None) => p,
                (None, Some(s)) => s,
                (None, None) => 0,
            };
            assert_eq!(out[i], want, "edge {i} (others {others:?})");
        }
    }

    #[test]
    #[should_panic(expected = "bits must be in 2..=16")]
    fn rejects_one_bit() {
        let _ = Quantizer::new(1, 0.5);
    }

    #[test]
    fn corr_threshold_decomposition_reconstructs_table() {
        for q in [Quantizer::paper_6bit(), Quantizer::paper_5bit(), Quantizer::new(8, 0.1)] {
            let bp = QBoxplus::new(q);
            let th = bp.corr_thresholds().expect("ln_1p tables always decompose");
            // corr(0) = round(ln 2 / step) thresholds, one per unit step.
            assert_eq!(th.len(), ((2f64).ln() / q.step()).round() as usize);
            for z in 0..=2 * q.max_mag() {
                let rebuilt = th.iter().filter(|&&t| z <= t).count() as i32;
                assert_eq!(rebuilt, bp.corr[z as usize], "bits={} z={z}", q.bits());
            }
            // Thresholds are strictly decreasing back toward zero.
            for w in th.windows(2) {
                assert!(w[0] > w[1]);
            }
        }
    }
}
