//! Tiled multi-frame decoding: stripe-of-checks × stripe-of-frames tiles
//! sized to fit the L2 working set, decoded to completion one tile at a
//! time — optionally on separate threads.
//!
//! The retired frame-major `BatchDecoder` interleaved *all* `B` frames into
//! one plane set: eight normal frames ≈ 14 MiB of messages streaming past
//! the cache every iteration, which measured **0.46×** a single cache-hot
//! frame on one core. The fix (the tiled, coalesced access of GPU LDPC
//! decoders) is to bound the frames *in flight at once*: a
//! [`TileGeometry`] picks a frame-stripe width `W` such that the per-tile
//! working set — message planes, channel LLRs, and double-buffered totals
//! for `W` frames — fits a per-core cache budget, and the batch is decoded
//! as `ceil(B / W)` independent tiles. Inside a tile the frame-major lane
//! interleave still amortizes every indexed access across `W` lanes; the
//! check dimension is striped by the kernels themselves ([`crate::engine`]'s
//! `STRIPE`). Each tile's working set is touched ~30 times while cache-hot
//! instead of once per pass over all `B` frames.
//!
//! Three properties, all pinned by tests:
//!
//! * **Bit-identical per frame** to the matching single-frame decoder
//!   ([`FloodingDecoder`], [`ZigzagDecoder`], [`LayeredDecoder`]) — full
//!   [`DecodeResult`], for every tile width, thread count and SIMD tier.
//!   `W = 1` tiles literally *are* the single-frame decoder; wider tiles
//!   run lane kernels whose per-lane operation order is the single-frame
//!   order.
//! * **One kernel family serves every schedule**: the flooding tiles reuse
//!   the transposed-plane batched kernels, and the zigzag / layered
//!   schedules run the same two-minima lane recurrence over frame-lane
//!   planes — the sequential chain walk is paid once per tile, not once
//!   per frame.
//! * **Tiles are independent**, so distinct tiles decode on distinct
//!   threads ([`TiledBatchDecoder::with_threads`]) with deterministic,
//!   thread-count-invariant results.
//!
//! Only the min-sum rules tile (as before): the exact sum-product kernels
//! stream check by check and gain nothing from lane interleaving.

use crate::engine::{
    batched_accumulate_totals_slotted_tier, batched_min_sum_pass_tier, sanitize_llr,
    syndrome_ok_totals_lane, BlockedChecks, Precision,
};
use crate::llr_ops::{CheckRule, LlrFloat};
use crate::simd::SimdTier;
use crate::{DecodeResult, Decoder, DecoderConfig, FloodingDecoder, LayeredDecoder, ZigzagDecoder};
use dvbs2_ldpc::{BitVec, TannerGraph};
use std::sync::Arc;

/// One worker's dealt share of a batch: `(tile frames, tile results)`
/// pairs, disjoint across workers by construction.
type TileBucket<'f, 'o> = Vec<(&'f [&'f [f64]], &'o mut [DecodeResult])>;

/// Widest frame stripe a tile may carry (lane-recurrence stack arrays are
/// sized to this).
pub const MAX_TILE_WIDTH: usize = 32;

/// Default per-tile cache budget: 2 MiB, a typical per-core L2 on the
/// server parts this workload targets. Override with `DVBS2_TILE_BYTES`.
const DEFAULT_TILE_BUDGET_BYTES: usize = 2 << 20;

/// Which message-passing schedule the tiles replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TileSchedule {
    /// Two-phase flooding over the transposed check planes.
    Flooding,
    /// The paper's sequential zigzag sweep down the IRA parity chain.
    Zigzag,
    /// Layered (horizontal) updates against running totals.
    Layered,
}

impl TileSchedule {
    /// Stable lower-case identifier (what benchmark reports emit).
    pub fn name(self) -> &'static str {
        match self {
            TileSchedule::Flooding => "flooding",
            TileSchedule::Zigzag => "zigzag",
            TileSchedule::Layered => "layered",
        }
    }
}

/// The frames-per-tile sizing decision: how many frame lanes fit the cache
/// budget for one code/precision combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileGeometry {
    /// Frame lanes per tile, `1..=MAX_TILE_WIDTH`.
    pub width: usize,
    /// Per-iteration working set of ONE frame lane in bytes: the `v2c` and
    /// `c2v` message planes plus the channel-LLR plane and both totals
    /// buffers.
    pub bytes_per_frame: usize,
    /// The cache budget the width was solved against.
    pub budget_bytes: usize,
}

impl TileGeometry {
    /// Sizes a tile for `graph` at `precision`: the widest stripe whose
    /// working set fits the budget (`DVBS2_TILE_BYTES` when set, 2 MiB
    /// otherwise), clamped to `1..=`[`MAX_TILE_WIDTH`].
    ///
    /// A normal FECFRAME in `f32` (~2.6 MiB of planes) gets `width = 1` —
    /// exactly the cache-hot single-frame regime — while short frames
    /// (~0.6 MiB) get multi-lane tiles that amortize the indexed accesses.
    ///
    /// # Panics
    ///
    /// Panics if `DVBS2_TILE_BYTES` is set but not a positive integer.
    pub fn for_graph(graph: &TannerGraph, precision: Precision) -> Self {
        let budget_bytes =
            match std::env::var("DVBS2_TILE_BYTES") {
                Ok(raw) => raw.parse::<usize>().ok().filter(|&b| b > 0).unwrap_or_else(|| {
                    panic!("DVBS2_TILE_BYTES={raw:?} is not a positive byte count")
                }),
                Err(_) => DEFAULT_TILE_BUDGET_BYTES,
            };
        Self::for_budget(graph, precision, budget_bytes)
    }

    /// [`TileGeometry::for_graph`] with an explicit budget (no environment
    /// lookup).
    pub fn for_budget(graph: &TannerGraph, precision: Precision, budget_bytes: usize) -> Self {
        let elem = match precision {
            Precision::F32 => std::mem::size_of::<f32>(),
            Precision::F64 => std::mem::size_of::<f64>(),
        };
        let bytes_per_frame = elem * (2 * graph.edge_count() + 3 * graph.var_count());
        let width = (budget_bytes / bytes_per_frame.max(1)).clamp(1, MAX_TILE_WIDTH);
        TileGeometry { width, bytes_per_frame, budget_bytes }
    }
}

/// Tiled multi-frame min-sum decoder over `B <= max_batch` frames at once.
///
/// ```
/// use dvbs2_decoder::{CheckRule, DecoderConfig, TileSchedule, TiledBatchDecoder};
/// use dvbs2_ldpc::TannerGraph;
/// use std::sync::Arc;
///
/// let g = Arc::new(TannerGraph::from_edges(2, 1, &[(0, 0), (0, 1)]));
/// let config = DecoderConfig::default().with_rule(CheckRule::NormalizedMinSum(0.8));
/// let mut dec = TiledBatchDecoder::new(g, config, TileSchedule::Flooding, 4);
/// let frames = [[-2.0, 0.5], [1.0, 2.0]];
/// let out = dec.decode_batch(&[&frames[0], &frames[1]]);
/// assert!(out[0].bits.get(0) && out[0].bits.get(1)); // bit-1 vote wins
/// assert!(!out[1].bits.get(0) && !out[1].bits.get(1));
/// ```
pub struct TiledBatchDecoder {
    graph: Arc<TannerGraph>,
    config: DecoderConfig,
    schedule: TileSchedule,
    geometry: TileGeometry,
    tier: SimdTier,
    max_batch: usize,
    threads: usize,
    /// Transposed check planes, built only for the flooding schedule.
    blocked: Option<BlockedChecks>,
    /// Per-thread scratch: worker `t` decodes tiles `t, t + T, t + 2T, …`.
    workers: Vec<Worker>,
}

/// One thread's decode state.
enum Worker {
    /// `width == 1`: the tile IS a single-frame decode, so run the actual
    /// single-frame decoder — bit-identity and the ≥1× single-core bar are
    /// then true by construction.
    Single(Box<dyn Decoder + Send>),
    /// `width > 1`: frame-lane planes plus the lane kernels.
    Lanes(LaneCore),
}

enum LaneCore {
    F64(LanePlanes<f64>),
    F32(LanePlanes<f32>),
}

/// Lane-interleaved message planes at one precision, sized for `width`
/// frame lanes. The flooding schedule reads them in transposed-slot order
/// (`plane[slot * w + lane]`); zigzag and layered read them in check-major
/// edge order (`plane[edge * w + lane]`). Both are dense per column, so the
/// same buffers serve every schedule.
struct LanePlanes<F> {
    llr: Vec<F>,
    v2c: Vec<F>,
    c2v: Vec<F>,
    totals: Vec<F>,
    totals_next: Vec<F>,
    /// Layered per-check gather scratch (`max_check_degree * width`).
    scratch_in: Vec<F>,
    scratch_out: Vec<F>,
}

impl<F: LlrFloat> LanePlanes<F> {
    fn new(graph: &TannerGraph, width: usize) -> Self {
        let edges = graph.edge_count() * width;
        let vars = graph.var_count() * width;
        let scratch = graph.max_check_degree() * width;
        LanePlanes {
            llr: vec![F::ZERO; vars],
            v2c: vec![F::ZERO; edges],
            c2v: vec![F::ZERO; edges],
            totals: vec![F::ZERO; vars],
            totals_next: vec![F::ZERO; vars],
            scratch_in: vec![F::ZERO; scratch],
            scratch_out: vec![F::ZERO; scratch],
        }
    }

    /// Interleaves the tile's channel LLRs frame-major (lane `l` of
    /// variable `v` at `v * w + l`), sanitizing at the boundary like
    /// `load_llrs`.
    fn load_tile(&mut self, vars: usize, frames: &[&[f64]]) {
        let w = frames.len();
        for (l, frame) in frames.iter().enumerate() {
            assert_eq!(frame.len(), vars, "LLR length mismatch");
            for (v, &x) in frame.iter().enumerate() {
                self.llr[v * w + l] = F::from_f64(sanitize_llr(x));
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn decode_tile(
        &mut self,
        graph: &TannerGraph,
        config: &DecoderConfig,
        schedule: TileSchedule,
        blocked: Option<&BlockedChecks>,
        tier: SimdTier,
        frames: &[&[f64]],
        out: &mut [DecodeResult],
    ) {
        let correct = config.rule.min_sum_correct::<F>().unwrap_or_else(|| {
            unreachable!("TiledBatchDecoder constructed with non-min-sum rule {:?}", config.rule)
        });
        self.decode_tile_with(graph, config, schedule, blocked, tier, frames, out, move |m| {
            correct.apply(m)
        });
    }

    #[allow(clippy::too_many_arguments)]
    fn decode_tile_with(
        &mut self,
        graph: &TannerGraph,
        config: &DecoderConfig,
        schedule: TileSchedule,
        blocked: Option<&BlockedChecks>,
        tier: SimdTier,
        frames: &[&[f64]],
        out: &mut [DecodeResult],
        correct: impl Fn(F) -> F + Copy,
    ) {
        let w = frames.len();
        let vars = graph.var_count();
        let edges = graph.edge_count();
        self.load_tile(vars, frames);
        let llr = &self.llr[..vars * w];
        let mut totals: &mut [F] = &mut self.totals[..vars * w];
        let mut totals_next: &mut [F] = &mut self.totals_next[..vars * w];
        let v2c = &mut self.v2c[..edges * w];
        let c2v = &mut self.c2v[..edges * w];
        c2v.fill(F::ZERO);

        for slot in out.iter_mut() {
            if slot.bits.len() != vars {
                slot.bits = BitVec::zeros(vars);
            }
            slot.iterations = 0;
            slot.converged = false;
        }
        let mut remaining = w;
        let mut iterations = 0;

        match schedule {
            TileSchedule::Flooding => {
                let blocked = blocked.expect("flooding tiles carry transposed check planes");
                let edge_vars = graph.edge_vars();
                // First-iteration gather sources: totals = llr plus
                // all-zero messages, accumulated in ascending edge order.
                batched_accumulate_totals_slotted_tier(
                    tier,
                    edge_vars,
                    blocked.edge_to_slot(),
                    w,
                    llr,
                    c2v,
                    totals,
                );
                for _ in 0..config.max_iterations {
                    iterations += 1;
                    batched_min_sum_pass_tier(
                        tier,
                        blocked,
                        &config.rule,
                        w,
                        totals,
                        v2c,
                        c2v,
                        correct,
                    );
                    batched_accumulate_totals_slotted_tier(
                        tier,
                        edge_vars,
                        blocked.edge_to_slot(),
                        w,
                        llr,
                        c2v,
                        totals_next,
                    );
                    std::mem::swap(&mut totals, &mut totals_next);
                    if config.early_stop {
                        latch_converged(graph, totals, w, iterations, out, &mut remaining);
                        if remaining == 0 {
                            break;
                        }
                    }
                }
            }
            TileSchedule::Zigzag => {
                lane_accumulate_totals(graph.edge_vars(), w, llr, c2v, totals);
                for _ in 0..config.max_iterations {
                    iterations += 1;
                    zigzag_lane_sweep_tier(
                        tier,
                        graph,
                        &config.rule,
                        w,
                        llr,
                        totals,
                        v2c,
                        c2v,
                        totals_next,
                        correct,
                    );
                    std::mem::swap(&mut totals, &mut totals_next);
                    if config.early_stop {
                        latch_converged(graph, totals, w, iterations, out, &mut remaining);
                        if remaining == 0 {
                            break;
                        }
                    }
                }
            }
            TileSchedule::Layered => {
                totals.copy_from_slice(llr);
                for _ in 0..config.max_iterations {
                    iterations += 1;
                    layered_lane_sweep_tier(
                        tier,
                        graph,
                        &config.rule,
                        w,
                        totals,
                        c2v,
                        &mut self.scratch_in,
                        &mut self.scratch_out,
                        correct,
                    );
                    if config.early_stop {
                        latch_converged(graph, totals, w, iterations, out, &mut remaining);
                        if remaining == 0 {
                            break;
                        }
                    }
                }
            }
        }

        // Unconverged lanes (or every lane with early stop off) finish at
        // the iteration cap with a final syndrome check — exactly the
        // single-frame decoders' post-loop behavior.
        for (l, slot) in out.iter_mut().enumerate() {
            if slot.converged {
                continue;
            }
            slot.iterations = iterations;
            for v in 0..vars {
                slot.bits.set(v, totals[v * w + l].is_negative());
            }
            slot.converged = syndrome_ok_totals_lane(graph, totals, w, l);
        }
    }
}

/// Snapshots every lane whose syndrome just cleared: the lane latches its
/// bits and iteration count at its convergence iteration — exactly where a
/// single-frame decode would stop — while the remaining lanes iterate on.
fn latch_converged<F: LlrFloat>(
    graph: &TannerGraph,
    totals: &[F],
    w: usize,
    iterations: usize,
    out: &mut [DecodeResult],
    remaining: &mut usize,
) {
    for (l, slot) in out.iter_mut().enumerate() {
        if slot.converged {
            continue;
        }
        if syndrome_ok_totals_lane(graph, totals, w, l) {
            slot.converged = true;
            slot.iterations = iterations;
            for v in 0..graph.var_count() {
                slot.bits.set(v, totals[v * w + l].is_negative());
            }
            *remaining -= 1;
        }
    }
}

/// Per lane identical (bit-identical summation order) to the engine's
/// `accumulate_totals`: zero-seeded scatter-add in ascending edge order
/// over the edge-major lane planes, channel LLR added last.
#[inline(always)]
pub(crate) fn lane_accumulate_totals<F: LlrFloat>(
    edge_vars: &[u32],
    w: usize,
    llr: &[F],
    c2v: &[F],
    totals: &mut [F],
) {
    totals.fill(F::ZERO);
    for (e, &v) in edge_vars.iter().enumerate() {
        let tb = v as usize * w;
        let eb = e * w;
        for l in 0..w {
            totals[tb + l] += c2v[eb + l];
        }
    }
    for (t, &x) in totals.iter_mut().zip(llr) {
        *t = x + *t;
    }
}

/// One check node's extrinsic update over `w` frame lanes (`inp`/`out` are
/// `d * w` long, message `j` of lane `l` at `j * w + l`).
///
/// Per lane this performs exactly the arithmetic of
/// [`CheckRule::extrinsic_t`] in the same within-check edge order: degree
/// `< 3` takes the rule's special-cased path lane by lane, and degree `>= 3`
/// runs the two-minima recurrence with the first-strict-minimum mask-blend —
/// the recurrence of `min_sum_extrinsic`, advanced one column for all lanes
/// at a time so the inner loops are dense and branchless.
#[inline(always)]
fn lane_check_extrinsic<F: LlrFloat>(
    rule: &CheckRule,
    d: usize,
    w: usize,
    inp: &[F],
    out: &mut [F],
    correct: impl Fn(F) -> F + Copy,
) {
    debug_assert!(w <= MAX_TILE_WIDTH, "tile width {w} out of range");
    debug_assert_eq!(inp.len(), d * w);
    debug_assert_eq!(out.len(), d * w);
    if d < 3 {
        let mut tmp_in = [F::ZERO; 2];
        let mut tmp_out = [F::ZERO; 2];
        for l in 0..w {
            for (j, t) in tmp_in[..d].iter_mut().enumerate() {
                *t = inp[j * w + l];
            }
            rule.extrinsic_t(&tmp_in[..d], &mut tmp_out[..d]);
            for (j, &o) in tmp_out[..d].iter().enumerate() {
                out[j * w + l] = o;
            }
        }
        return;
    }
    let mut min1 = [F::INFINITY; MAX_TILE_WIDTH];
    let mut min2 = [F::INFINITY; MAX_TILE_WIDTH];
    let mut min_col = [0u32; MAX_TILE_WIDTH];
    let mut negative_signs = [0u32; MAX_TILE_WIDTH];
    for j in 0..d {
        let jj = j as u32;
        let base = j * w;
        for l in 0..w {
            let x = inp[base + l];
            let mag = x.abs();
            let smaller = mag < min1[l];
            min2[l] = min2[l].min(min1[l].max(mag));
            min1[l] = min1[l].min(mag);
            let mask = (smaller as u32).wrapping_neg();
            min_col[l] = (jj & mask) | (min_col[l] & !mask);
            negative_signs[l] += x.is_negative() as u32;
        }
    }
    for j in 0..d {
        let jj = j as u32;
        let base = j * w;
        for l in 0..w {
            let mag = correct(F::select(min_col[l] == jj, min2[l], min1[l]));
            let flip = (negative_signs[l] + inp[base + l].is_negative() as u32) & 1 == 1;
            out[base + l] = mag.flip_sign_if(flip);
        }
    }
}

/// One full zigzag iteration over `w` frame lanes: the sequential
/// check-node sweep with immediate forward update, fused with both
/// variable-node passes — [`ZigzagDecoder`]'s iteration body with every
/// scalar access widened to a dense `w`-lane column. The chain walk
/// (offsets, edge indices, the forward/backward slot arithmetic) is paid
/// once per tile instead of once per frame.
///
/// Per lane the operation order is exactly the single-frame sweep's, so
/// lane results are bit-identical to [`ZigzagDecoder`] at the same
/// precision.
#[allow(clippy::too_many_arguments)]
#[allow(clippy::needless_range_loop)] // the edge index also strides the lane planes
#[inline(always)]
fn zigzag_lane_sweep<F: LlrFloat>(
    graph: &TannerGraph,
    rule: &CheckRule,
    w: usize,
    llr: &[F],
    totals: &[F],
    v2c: &mut [F],
    c2v: &mut [F],
    totals_next: &mut [F],
    correct: impl Fn(F) -> F + Copy,
) {
    let k = graph.info_len();
    let n_check = graph.check_count();
    let offsets = graph.check_offsets();
    let edge_vars = graph.edge_vars();
    totals_next.fill(F::ZERO);
    for c in 0..n_check {
        let start = offsets[c] as usize;
        let end = offsets[c + 1] as usize;
        for e in start..end {
            let tb = edge_vars[e] as usize * w;
            let eb = e * w;
            for l in 0..w {
                v2c[eb + l] = totals[tb + l] - c2v[eb + l];
            }
        }
        if c > 0 {
            // Left parity input PN_{c-1} -> CN_c: this sweep's fresh
            // forward message, still warm at the tail of check c-1's range.
            let pb = (k + c - 1) * w;
            let eb = (end - 2) * w;
            let fb = (start - 1) * w;
            for l in 0..w {
                v2c[eb + l] = llr[pb + l] + c2v[fb + l];
            }
        }
        // Right parity input PN_c -> CN_c: last iteration's backward
        // message (parallel backward update).
        {
            let pb = (k + c) * w;
            let eb = (end - 1) * w;
            if c + 1 < n_check {
                let bb = (offsets[c + 2] as usize - 2) * w;
                for l in 0..w {
                    v2c[eb + l] = llr[pb + l] + c2v[bb + l];
                }
            } else {
                for l in 0..w {
                    v2c[eb + l] = llr[pb + l] + F::ZERO;
                }
            }
        }
        lane_check_extrinsic(
            rule,
            end - start,
            w,
            &v2c[start * w..end * w],
            &mut c2v[start * w..end * w],
            correct,
        );
        for e in start..end {
            let tb = edge_vars[e] as usize * w;
            let eb = e * w;
            for l in 0..w {
                totals_next[tb + l] += c2v[eb + l];
            }
        }
    }
    for (t, &x) in totals_next.iter_mut().zip(llr) {
        *t = x + *t;
    }
    // Parity totals take the chain's forward + backward form, overwriting
    // the parity-edge scatter.
    for j in 0..n_check {
        let fb = (offsets[j + 1] as usize - 1) * w;
        let tb = (k + j) * w;
        if j + 1 < n_check {
            let bb = (offsets[j + 2] as usize - 2) * w;
            for l in 0..w {
                totals_next[tb + l] = llr[tb + l] + c2v[fb + l] + c2v[bb + l];
            }
        } else {
            for l in 0..w {
                totals_next[tb + l] = llr[tb + l] + c2v[fb + l] + F::ZERO;
            }
        }
    }
}

/// One full layered iteration over `w` frame lanes: every check reads the
/// running totals, subtracts its previous contribution, and writes fresh
/// extrinsics back immediately — [`LayeredDecoder`]'s iteration body over
/// dense lane columns, bit-identical per lane.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn layered_lane_sweep<F: LlrFloat>(
    graph: &TannerGraph,
    rule: &CheckRule,
    w: usize,
    totals: &mut [F],
    c2v: &mut [F],
    scratch_in: &mut [F],
    scratch_out: &mut [F],
    correct: impl Fn(F) -> F + Copy,
) {
    let offsets = graph.check_offsets();
    let edge_vars = graph.edge_vars();
    for c in 0..graph.check_count() {
        let start = offsets[c] as usize;
        let end = offsets[c + 1] as usize;
        let d = end - start;
        for (i, e) in (start..end).enumerate() {
            let tb = edge_vars[e] as usize * w;
            let eb = e * w;
            for l in 0..w {
                scratch_in[i * w + l] = totals[tb + l] - c2v[eb + l];
            }
        }
        lane_check_extrinsic(rule, d, w, &scratch_in[..d * w], &mut scratch_out[..d * w], correct);
        for (i, e) in (start..end).enumerate() {
            let tb = edge_vars[e] as usize * w;
            let eb = e * w;
            for l in 0..w {
                totals[tb + l] += scratch_out[i * w + l] - c2v[eb + l];
                c2v[eb + l] = scratch_out[i * w + l];
            }
        }
    }
}

// Runtime SIMD dispatch for the lane sweeps — same pattern as the engine's
// `*_tier` kernels: `#[target_feature]` clones of an `#[inline(always)]`
// body, selected by a tier that `SimdTier::resolve` has already validated.
macro_rules! sweep_tier_clones {
    ($dispatch:ident, $base:ident, $avx2:ident, $avx512:ident;
     ($($arg:ident: $ty:ty),* $(,)?)) => {
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2")]
        #[allow(clippy::too_many_arguments)]
        unsafe fn $avx2<F: LlrFloat>($($arg: $ty,)* correct: impl Fn(F) -> F + Copy) {
            $base($($arg,)* correct);
        }

        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx512f")]
        #[allow(clippy::too_many_arguments)]
        unsafe fn $avx512<F: LlrFloat>($($arg: $ty,)* correct: impl Fn(F) -> F + Copy) {
            $base($($arg,)* correct);
        }

        #[allow(clippy::too_many_arguments)]
        pub(crate) fn $dispatch<F: LlrFloat>(
            tier: SimdTier,
            $($arg: $ty,)*
            correct: impl Fn(F) -> F + Copy,
        ) {
            match tier {
                #[cfg(target_arch = "x86_64")]
                SimdTier::Avx2 => unsafe { $avx2($($arg,)* correct) },
                #[cfg(target_arch = "x86_64")]
                SimdTier::Avx512 => unsafe { $avx512($($arg,)* correct) },
                _ => $base($($arg,)* correct),
            }
        }
    };
}

sweep_tier_clones!(
    zigzag_lane_sweep_tier, zigzag_lane_sweep, zigzag_lane_sweep_avx2, zigzag_lane_sweep_avx512;
    (
        graph: &TannerGraph,
        rule: &CheckRule,
        w: usize,
        llr: &[F],
        totals: &[F],
        v2c: &mut [F],
        c2v: &mut [F],
        totals_next: &mut [F],
    )
);

sweep_tier_clones!(
    layered_lane_sweep_tier, layered_lane_sweep, layered_lane_sweep_avx2,
    layered_lane_sweep_avx512;
    (
        graph: &TannerGraph,
        rule: &CheckRule,
        w: usize,
        totals: &mut [F],
        c2v: &mut [F],
        scratch_in: &mut [F],
        scratch_out: &mut [F],
    )
);

impl Worker {
    fn new(
        graph: &Arc<TannerGraph>,
        config: DecoderConfig,
        schedule: TileSchedule,
        width: usize,
    ) -> Self {
        if width == 1 {
            let dec: Box<dyn Decoder + Send> = match schedule {
                TileSchedule::Flooding => Box::new(FloodingDecoder::new(Arc::clone(graph), config)),
                TileSchedule::Zigzag => Box::new(ZigzagDecoder::new(Arc::clone(graph), config)),
                TileSchedule::Layered => Box::new(LayeredDecoder::new(Arc::clone(graph), config)),
            };
            Worker::Single(dec)
        } else {
            let core = match config.precision {
                Precision::F64 => LaneCore::F64(LanePlanes::new(graph, width)),
                Precision::F32 => LaneCore::F32(LanePlanes::new(graph, width)),
            };
            Worker::Lanes(core)
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn decode_tile(
        &mut self,
        graph: &TannerGraph,
        config: &DecoderConfig,
        schedule: TileSchedule,
        blocked: Option<&BlockedChecks>,
        tier: SimdTier,
        frames: &[&[f64]],
        out: &mut [DecodeResult],
    ) {
        match self {
            Worker::Single(dec) => {
                debug_assert_eq!(frames.len(), 1, "width-1 tiles carry one frame");
                // Keep the embedded decoder's cap in sync with admission
                // control's `set_max_iterations` on the tiled decoder.
                dec.set_max_iterations(config.max_iterations);
                for (frame, slot) in frames.iter().zip(out.iter_mut()) {
                    dec.decode_into(frame, slot);
                }
            }
            Worker::Lanes(LaneCore::F64(planes)) => {
                planes.decode_tile(graph, config, schedule, blocked, tier, frames, out);
            }
            Worker::Lanes(LaneCore::F32(planes)) => {
                planes.decode_tile(graph, config, schedule, blocked, tier, frames, out);
            }
        }
    }
}

impl TiledBatchDecoder {
    /// Creates a tiled decoder for up to `max_batch` simultaneous frames,
    /// with an auto-sized tile width ([`TileGeometry::for_graph`]), one
    /// worker thread, and the auto-detected SIMD tier (both overridable via
    /// [`Self::with_threads`] / [`Self::with_tile_width`] /
    /// [`DecoderConfig::with_simd_tier`]).
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is 0 or larger than 1024, if `config.rule` is
    /// not one of the min-sum rules, if a forced SIMD tier is unsupported,
    /// or if `schedule` is [`TileSchedule::Zigzag`] on a graph without the
    /// IRA parity-chain structure.
    pub fn new(
        graph: Arc<TannerGraph>,
        config: DecoderConfig,
        schedule: TileSchedule,
        max_batch: usize,
    ) -> Self {
        assert!((1..=1024).contains(&max_batch), "max_batch {max_batch} out of range");
        assert!(
            matches!(config.rule, CheckRule::NormalizedMinSum(_) | CheckRule::OffsetMinSum(_)),
            "TiledBatchDecoder batches the min-sum rules; got {:?}",
            config.rule
        );
        if schedule == TileSchedule::Zigzag {
            assert!(
                graph.info_len() < graph.var_count(),
                "zigzag schedule needs a parity chain; use TannerGraph::for_code"
            );
            assert_eq!(
                graph.var_count() - graph.info_len(),
                graph.check_count(),
                "IRA structure requires one parity variable per check"
            );
        }
        let tier = SimdTier::resolve(config.simd);
        let geometry = TileGeometry::for_graph(&graph, config.precision);
        let blocked = (schedule == TileSchedule::Flooding).then(|| BlockedChecks::new(&graph));
        let mut decoder = TiledBatchDecoder {
            graph,
            config,
            schedule,
            geometry,
            tier,
            max_batch,
            threads: 1,
            blocked,
            workers: Vec::new(),
        };
        decoder.rebuild_workers();
        decoder
    }

    /// Returns the decoder with `threads` worker lanes: tiles of one batch
    /// are dealt round-robin onto that many threads. Results are
    /// deterministic and identical for every thread count (tiles are
    /// independent and the deal is static).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "the tiled decoder needs at least one thread");
        self.threads = threads;
        self.rebuild_workers();
        self
    }

    /// Returns the decoder with an explicit tile width, overriding the
    /// cache-budget auto-sizing (primarily for tests pinning ragged-tail
    /// and lane-kernel behavior).
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or larger than [`MAX_TILE_WIDTH`].
    pub fn with_tile_width(mut self, width: usize) -> Self {
        assert!(
            (1..=MAX_TILE_WIDTH).contains(&width),
            "tile width {width} out of range (1..={MAX_TILE_WIDTH})"
        );
        self.geometry.width = width;
        self.rebuild_workers();
        self
    }

    fn rebuild_workers(&mut self) {
        self.workers = (0..self.threads)
            .map(|_| Worker::new(&self.graph, self.config, self.schedule, self.geometry.width))
            .collect();
    }

    /// Largest number of frames one call may carry.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// The decoder configuration.
    pub fn config(&self) -> &DecoderConfig {
        &self.config
    }

    /// The schedule the tiles replay.
    pub fn schedule(&self) -> TileSchedule {
        self.schedule
    }

    /// The tile sizing decision in force.
    pub fn geometry(&self) -> TileGeometry {
        self.geometry
    }

    /// The SIMD dispatch tier the kernels run on.
    pub fn simd_tier(&self) -> SimdTier {
        self.tier
    }

    /// Worker threads tiles are dealt onto.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Sets the iteration cap for subsequent batches (admission control).
    pub fn set_max_iterations(&mut self, max_iterations: usize) {
        self.config.max_iterations = max_iterations;
    }

    /// Decodes `frames.len() <= max_batch` frames as cache-sized tiles.
    /// Results are bit-identical, frame for frame, to single-frame decodes
    /// under the same configuration and schedule.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is empty or exceeds `max_batch`, or if any frame
    /// has the wrong LLR length.
    pub fn decode_batch(&mut self, frames: &[&[f64]]) -> Vec<DecodeResult> {
        let mut out = vec![DecodeResult::default(); frames.len()];
        self.decode_batch_into(frames, &mut out);
        out
    }

    /// [`decode_batch`](Self::decode_batch) into caller-owned results
    /// (allocation-free in the planes once each `out[i].bits` has the
    /// codeword length).
    ///
    /// # Panics
    ///
    /// Same as [`decode_batch`](Self::decode_batch), plus
    /// `out.len() != frames.len()`.
    pub fn decode_batch_into(&mut self, frames: &[&[f64]], out: &mut [DecodeResult]) {
        assert!(!frames.is_empty(), "empty batch");
        assert!(
            frames.len() <= self.max_batch,
            "batch of {} exceeds max_batch {}",
            frames.len(),
            self.max_batch
        );
        assert_eq!(out.len(), frames.len(), "result slice length mismatch");
        let width = self.geometry.width;
        let n_tiles = frames.len().div_ceil(width);
        let threads = self.threads.min(n_tiles);
        // Deal tiles round-robin onto the workers: tile t runs on worker
        // t % threads. Static and load-agnostic, so results never depend
        // on scheduling.
        let mut buckets: Vec<TileBucket<'_, '_>> = (0..threads).map(|_| Vec::new()).collect();
        let mut rest_frames = frames;
        let mut rest_out = out;
        for t in 0..n_tiles {
            let tw = width.min(rest_frames.len());
            let (tile_frames, fr) = rest_frames.split_at(tw);
            let (tile_out, or) = rest_out.split_at_mut(tw);
            buckets[t % threads].push((tile_frames, tile_out));
            rest_frames = fr;
            rest_out = or;
        }
        let TiledBatchDecoder { graph, config, schedule, blocked, tier, workers, .. } = &mut *self;
        let graph = &**graph;
        let config = &*config;
        let blocked = blocked.as_ref();
        let (schedule, tier) = (*schedule, *tier);
        if threads == 1 {
            let worker = &mut workers[0];
            for (tile_frames, tile_out) in buckets.pop().expect("one bucket") {
                worker.decode_tile(graph, config, schedule, blocked, tier, tile_frames, tile_out);
            }
        } else {
            std::thread::scope(|scope| {
                for (worker, bucket) in workers.iter_mut().zip(buckets) {
                    scope.spawn(move || {
                        for (tile_frames, tile_out) in bucket {
                            worker.decode_tile(
                                graph,
                                config,
                                schedule,
                                blocked,
                                tier,
                                tile_frames,
                                tile_out,
                            );
                        }
                    });
                }
            });
        }
    }

    /// Human-readable decoder name (mirrors [`crate::Decoder::name`]).
    pub fn name(&self) -> &'static str {
        match self.schedule {
            TileSchedule::Flooding => "tiled flooding min-sum",
            TileSchedule::Zigzag => "tiled zigzag min-sum",
            TileSchedule::Layered => "tiled layered min-sum",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{noisy_llrs, small_code};

    fn config(rule: CheckRule, precision: Precision) -> DecoderConfig {
        DecoderConfig::default().with_rule(rule).with_precision(precision)
    }

    fn reference(
        graph: &Arc<TannerGraph>,
        cfg: DecoderConfig,
        schedule: TileSchedule,
    ) -> Box<dyn Decoder> {
        match schedule {
            TileSchedule::Flooding => Box::new(FloodingDecoder::new(Arc::clone(graph), cfg)),
            TileSchedule::Zigzag => Box::new(ZigzagDecoder::new(Arc::clone(graph), cfg)),
            TileSchedule::Layered => Box::new(LayeredDecoder::new(Arc::clone(graph), cfg)),
        }
    }

    #[test]
    fn tiled_decode_is_bit_identical_to_single_frame_all_schedules() {
        let (code, graph) = small_code();
        let graph = Arc::new(graph);
        // Mixed difficulty so lanes converge at different iterations.
        let ebn0 = [4.0, 2.6, 2.4, 0.5];
        let frames: Vec<Vec<f64>> = ebn0
            .iter()
            .enumerate()
            .map(|(i, &db)| noisy_llrs(&code, db, 900 + i as u64).1)
            .collect();
        let views: Vec<&[f64]> = frames.iter().map(|f| f.as_slice()).collect();
        for schedule in [TileSchedule::Flooding, TileSchedule::Zigzag, TileSchedule::Layered] {
            for precision in [Precision::F64, Precision::F32] {
                let cfg = config(CheckRule::NormalizedMinSum(0.8), precision);
                // Width 3 over 4 frames: one full tile plus a ragged tail.
                let mut tiled =
                    TiledBatchDecoder::new(Arc::clone(&graph), cfg, schedule, 4).with_tile_width(3);
                let mut single = reference(&graph, cfg, schedule);
                let got = tiled.decode_batch(&views);
                for (i, frame) in frames.iter().enumerate() {
                    let want = single.decode(frame);
                    assert_eq!(got[i], want, "{schedule:?} {precision:?} frame {i}");
                }
            }
        }
    }

    #[test]
    fn partial_batches_reuse_the_buffers() {
        let (code, graph) = small_code();
        let graph = Arc::new(graph);
        let cfg = config(CheckRule::NormalizedMinSum(0.8), Precision::F32);
        let mut tiled = TiledBatchDecoder::new(Arc::clone(&graph), cfg, TileSchedule::Flooding, 8)
            .with_tile_width(2);
        let mut single = FloodingDecoder::new(Arc::clone(&graph), cfg);
        // Different batch sizes against the same decoder instance: the
        // lane interleave depends on the live tile width, so this pins the
        // dynamic re-interleave including width-1 ragged tails.
        for (n, seed) in [(1usize, 50u64), (3, 60), (8, 70), (2, 80)] {
            let frames: Vec<Vec<f64>> =
                (0..n).map(|i| noisy_llrs(&code, 2.8, seed + i as u64).1).collect();
            let views: Vec<&[f64]> = frames.iter().map(|f| f.as_slice()).collect();
            let got = tiled.decode_batch(&views);
            for (i, frame) in frames.iter().enumerate() {
                assert_eq!(got[i], single.decode(frame), "batch {n} frame {i}");
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let (code, graph) = small_code();
        let graph = Arc::new(graph);
        let cfg = config(CheckRule::OffsetMinSum(0.15), Precision::F32);
        let frames: Vec<Vec<f64>> = (0..5).map(|i| noisy_llrs(&code, 2.6, 40 + i).1).collect();
        let views: Vec<&[f64]> = frames.iter().map(|f| f.as_slice()).collect();
        let mut one = TiledBatchDecoder::new(Arc::clone(&graph), cfg, TileSchedule::Layered, 8)
            .with_tile_width(2);
        let mut four = TiledBatchDecoder::new(Arc::clone(&graph), cfg, TileSchedule::Layered, 8)
            .with_tile_width(2)
            .with_threads(4);
        assert_eq!(one.decode_batch(&views), four.decode_batch(&views));
    }

    #[test]
    fn early_stop_off_runs_all_iterations_per_lane() {
        let (code, graph) = small_code();
        let cfg = DecoderConfig {
            max_iterations: 8,
            early_stop: false,
            ..config(CheckRule::NormalizedMinSum(0.8), Precision::F32)
        };
        let mut tiled = TiledBatchDecoder::new(Arc::new(graph), cfg, TileSchedule::Flooding, 2)
            .with_tile_width(2);
        let frames: Vec<Vec<f64>> = (0..2).map(|i| noisy_llrs(&code, 4.0, 30 + i).1).collect();
        let views: Vec<&[f64]> = frames.iter().map(|f| f.as_slice()).collect();
        for r in tiled.decode_batch(&views) {
            assert_eq!(r.iterations, 8);
            assert!(r.converged);
        }
    }

    #[test]
    fn geometry_gives_wide_tiles_to_small_working_sets() {
        let (_, graph) = small_code();
        let short_f32 = TileGeometry::for_budget(&graph, Precision::F32, 2 << 20);
        assert!(short_f32.width > 1, "short-frame f32 should tile wider than 1");
        // A tiny budget degenerates to the single-frame regime, never 0.
        let tiny = TileGeometry::for_budget(&graph, Precision::F64, 1);
        assert_eq!(tiny.width, 1);
        assert!(short_f32.bytes_per_frame > 0);
    }

    #[test]
    #[should_panic(expected = "min-sum rules")]
    fn sum_product_rule_is_rejected() {
        let (_, graph) = small_code();
        TiledBatchDecoder::new(
            Arc::new(graph),
            DecoderConfig::default(),
            TileSchedule::Flooding,
            4,
        );
    }

    #[test]
    #[should_panic(expected = "exceeds max_batch")]
    fn oversized_batch_is_rejected() {
        let (_, graph) = small_code();
        let cfg = config(CheckRule::NormalizedMinSum(0.8), Precision::F32);
        let n = graph.var_count();
        let mut dec = TiledBatchDecoder::new(Arc::new(graph), cfg, TileSchedule::Flooding, 2);
        let frame = vec![0.0; n];
        let views: Vec<&[f64]> = vec![&frame; 3];
        let _ = dec.decode_batch(&views);
    }

    #[test]
    #[should_panic(expected = "parity chain")]
    fn zigzag_schedule_rejects_non_ira_graphs() {
        let g = dvbs2_ldpc::TannerGraph::from_edges(2, 1, &[(0, 0), (0, 1)]);
        let cfg = config(CheckRule::NormalizedMinSum(0.8), Precision::F32);
        TiledBatchDecoder::new(Arc::new(g), cfg, TileSchedule::Zigzag, 2);
    }
}
