//! Hard-decision bit-flipping decoding (Gallager-B) — the historical
//! baseline that calibrates how much the soft message-passing decoders of
//! the paper actually buy (several dB on AWGN).

use crate::stopping::syndrome_ok;
use crate::{DecodeResult, Decoder, DecoderConfig};
use dvbs2_ldpc::{BitVec, TannerGraph};
use std::sync::Arc;

/// Gallager-B bit-flipping decoder over any Tanner graph.
///
/// Each iteration evaluates all parity checks on the current hard
/// decisions and flips every variable whose unsatisfied-check count
/// strictly exceeds half its degree.
#[derive(Debug, Clone)]
pub struct BitFlippingDecoder {
    graph: Arc<TannerGraph>,
    max_iterations: usize,
    unsatisfied: Vec<u8>,
}

impl BitFlippingDecoder {
    /// Creates a decoder; only `config.max_iterations` is used (there are
    /// no soft messages to schedule).
    pub fn new(graph: Arc<TannerGraph>, config: DecoderConfig) -> Self {
        BitFlippingDecoder {
            unsatisfied: vec![0; graph.var_count()],
            max_iterations: config.max_iterations,
            graph,
        }
    }
}

impl Decoder for BitFlippingDecoder {
    fn decode(&mut self, channel_llrs: &[f64]) -> DecodeResult {
        let graph = Arc::clone(&self.graph);
        assert_eq!(channel_llrs.len(), graph.var_count(), "LLR length mismatch");
        let mut bits: BitVec = channel_llrs.iter().map(|&l| l < 0.0).collect();
        let mut iterations = 0;
        let mut converged = syndrome_ok(&graph, &bits);

        while !converged && iterations < self.max_iterations {
            iterations += 1;
            self.unsatisfied.fill(0);
            for c in 0..graph.check_count() {
                let parity =
                    graph.check_edges(c).filter(|&e| bits.get(graph.var_of_edge(e))).count() % 2;
                if parity == 1 {
                    for e in graph.check_edges(c) {
                        self.unsatisfied[graph.var_of_edge(e)] += 1;
                    }
                }
            }
            let mut flipped = 0usize;
            for v in 0..graph.var_count() {
                if usize::from(self.unsatisfied[v]) * 2 > graph.var_degree(v) {
                    bits.toggle(v);
                    flipped += 1;
                }
            }
            converged = syndrome_ok(&graph, &bits);
            if flipped == 0 && !converged {
                break; // stuck: no variable has a flipping majority
            }
        }
        DecodeResult { bits, iterations, converged }
    }

    fn set_max_iterations(&mut self, max_iterations: usize) {
        self.max_iterations = max_iterations;
    }

    fn name(&self) -> &'static str {
        "bit flipping (Gallager-B)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{noisy_llrs, small_code};
    use crate::ZigzagDecoder;

    #[test]
    fn clean_frame_needs_no_iterations() {
        let (code, graph) = small_code();
        let (cw, llrs) = noisy_llrs(&code, 12.0, 1);
        let mut dec = BitFlippingDecoder::new(Arc::new(graph), DecoderConfig::default());
        let out = dec.decode(&llrs);
        assert!(out.converged);
        assert_eq!(out.iterations, 0);
        assert_eq!(out.bits, cw);
    }

    #[test]
    fn corrects_scattered_injected_errors() {
        use crate::test_support::llrs_for_codeword;
        let (code, graph) = small_code();
        let enc = code.encoder().unwrap();
        let msg: dvbs2_ldpc::BitVec = (0..code.params().k).map(|i| i % 5 == 0).collect();
        let cw = enc.encode(&msg).unwrap();
        let mut llrs = llrs_for_codeword(&cw, 4.0);
        // A handful of well-separated hard errors.
        for &i in &[10usize, 3000, 7777, 12000, 15999] {
            llrs[i] = -llrs[i];
        }
        let mut dec = BitFlippingDecoder::new(Arc::new(graph), DecoderConfig::default());
        let out = dec.decode(&llrs);
        assert!(out.converged, "bit flipping should fix 5 scattered errors");
        assert_eq!(out.bits, cw);
        assert!(out.iterations >= 1);
    }

    #[test]
    fn soft_decoding_beats_bit_flipping_by_decibels() {
        // At 3 dB the zigzag decoder is comfortable; Gallager-B is lost.
        let (code, graph) = small_code();
        let graph = Arc::new(graph);
        let mut hard = BitFlippingDecoder::new(Arc::clone(&graph), DecoderConfig::default());
        let mut soft = ZigzagDecoder::new(Arc::clone(&graph), DecoderConfig::default());
        let mut hard_fails = 0;
        let mut soft_fails = 0;
        for seed in 0..4 {
            let (cw, llrs) = noisy_llrs(&code, 3.0, 40 + seed);
            if hard.decode(&llrs).bits != cw {
                hard_fails += 1;
            }
            if soft.decode(&llrs).bits != cw {
                soft_fails += 1;
            }
        }
        assert_eq!(soft_fails, 0);
        assert!(hard_fails >= 3, "bit flipping should fail at 3 dB ({hard_fails}/4)");
    }

    #[test]
    fn reports_stuck_state_honestly() {
        let (code, graph) = small_code();
        let (_, llrs) = noisy_llrs(&code, 0.0, 9);
        let mut dec = BitFlippingDecoder::new(Arc::new(graph), DecoderConfig::default());
        let out = dec.decode(&llrs);
        assert!(!out.converged);
    }
}
