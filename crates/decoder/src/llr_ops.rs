//! Core LLR arithmetic for check-node updates.
//!
//! The check-node rule of Eq. 5, `tanh(out/2) = prod tanh(in_l/2)`, is
//! evaluated pairwise with the numerically stable "boxplus" form
//!
//! ```text
//! a ⊞ b = sign(a) sign(b) min(|a|,|b|)
//!         + ln(1 + e^{-|a+b|}) - ln(1 + e^{-|a-b|})
//! ```
//!
//! Min-sum keeps only the first term; normalized/offset min-sum apply a
//! scalar correction. All check-node rules implement [`CheckRule`] so the
//! decoders can be generic over them.
//!
//! Every kernel is generic over [`LlrFloat`] (`f32` or `f64`). The `f64`
//! instantiation performs exactly the same floating-point operations in the
//! same order as the original scalar code, so the double-precision reference
//! path stays bit-identical across refactors; `f32` is the fast path with
//! half the memory traffic.

use std::fmt::Debug;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};
use std::sync::OnceLock;

/// Floating-point scalar usable as an LLR message (`f32` or `f64`).
///
/// The methods mirror the `std` float API one-to-one so generic kernels
/// compile to the identical instruction sequence as hand-written scalar
/// code. Sign tests intentionally use [`is_negative`](Self::is_negative)
/// (`x < 0.0`) rather than `signum`, which would treat `-0.0` differently.
pub trait LlrFloat:
    Copy
    + PartialOrd
    + Debug
    + Default
    + Send
    + Sync
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Positive infinity (min-sum accumulator seed).
    const INFINITY: Self;

    /// Converts from `f64` (rounding for `f32`).
    fn from_f64(x: f64) -> Self;
    /// Converts to `f64` (exact for both types).
    fn to_f64(self) -> f64;
    /// `self.abs()`.
    fn abs(self) -> Self;
    /// `self.min(other)` with `std` NaN semantics.
    fn min(self, other: Self) -> Self;
    /// `self.max(other)` with `std` NaN semantics.
    fn max(self, other: Self) -> Self;
    /// `self.copysign(sign)`.
    fn copysign(self, sign: Self) -> Self;
    /// `self.signum()`.
    fn signum(self) -> Self;
    /// `self.exp()`.
    fn exp(self) -> Self;
    /// `self.ln_1p()`.
    fn ln_1p(self) -> Self;
    /// `self < 0.0` (treats `-0.0` as non-negative, unlike `signum`).
    #[inline]
    fn is_negative(self) -> bool {
        self < Self::ZERO
    }
    /// `if flip { -self } else { self }`, lowered to a sign-bit XOR.
    ///
    /// Exact for every input (negation only toggles the sign bit) and free
    /// of data-dependent branches — in the decoder kernels `flip` is a
    /// near-random parity bit, so a compare-and-branch here would
    /// mispredict about every other message.
    fn flip_sign_if(self, flip: bool) -> Self;
    /// `if take_a { a } else { b }`, lowered to a bit-mask blend.
    ///
    /// Exact value selection with no data-dependent branch; used where the
    /// condition is unpredictable (e.g. "is this the minimum edge?").
    fn select(take_a: bool, a: Self, b: Self) -> Self;
}

macro_rules! impl_llr_float {
    ($($t:ty => $b:ty),*) => {$(
        impl LlrFloat for $t {
            const ZERO: Self = 0.0;
            const INFINITY: Self = <$t>::INFINITY;

            #[inline]
            fn from_f64(x: f64) -> Self {
                x as $t
            }
            #[inline]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline]
            fn abs(self) -> Self {
                self.abs()
            }
            #[inline]
            fn min(self, other: Self) -> Self {
                self.min(other)
            }
            #[inline]
            fn max(self, other: Self) -> Self {
                self.max(other)
            }
            #[inline]
            fn copysign(self, sign: Self) -> Self {
                self.copysign(sign)
            }
            #[inline]
            fn signum(self) -> Self {
                self.signum()
            }
            #[inline]
            fn exp(self) -> Self {
                self.exp()
            }
            #[inline]
            fn ln_1p(self) -> Self {
                self.ln_1p()
            }
            #[inline]
            fn flip_sign_if(self, flip: bool) -> Self {
                <$t>::from_bits(self.to_bits() ^ ((flip as $b) << (<$b>::BITS - 1)))
            }
            #[inline]
            fn select(take_a: bool, a: Self, b: Self) -> Self {
                let mask = (take_a as $b).wrapping_neg();
                <$t>::from_bits((a.to_bits() & mask) | (b.to_bits() & !mask))
            }
        }
    )*};
}
impl_llr_float!(f32 => u32, f64 => u64);

/// Exact pairwise boxplus (Eq. 5), numerically stable for any finite inputs.
///
/// ```
/// use dvbs2_decoder::boxplus;
/// let out = boxplus(2.0, 3.0);
/// // Exact value: 2 atanh(tanh(1) tanh(1.5)).
/// let exact = 2.0 * ((2.0f64 / 2.0).tanh() * (3.0f64 / 2.0).tanh()).atanh();
/// assert!((out - exact).abs() < 1e-12);
/// ```
#[inline]
pub fn boxplus(a: f64, b: f64) -> f64 {
    boxplus_t(a, b)
}

/// [`boxplus`] generic over the message precision.
#[inline]
pub fn boxplus_t<F: LlrFloat>(a: F, b: F) -> F {
    let sign_min = a.abs().min(b.abs()).copysign(a) * b.signum();
    sign_min + ln_1p_exp_neg((a + b).abs()) - ln_1p_exp_neg((a - b).abs())
}

/// `ln(1 + e^{-x})` for `x >= 0`, stable against overflow.
#[inline]
fn ln_1p_exp_neg<F: LlrFloat>(x: F) -> F {
    debug_assert!(x >= F::ZERO);
    if x > F::from_f64(40.0) {
        F::ZERO
    } else {
        (-x).exp().ln_1p()
    }
}

/// Pairwise min-sum approximation of boxplus.
#[inline]
pub fn boxplus_min(a: f64, b: f64) -> f64 {
    a.abs().min(b.abs()).copysign(a) * b.signum()
}

/// Entries in the Jacobian-log correction table.
pub(crate) const BOXPLUS_TABLE_LEN: usize = 128;
/// Table resolution: bins of `1/16` LLR, covering magnitudes `[0, 8)`.
/// `ln(1 + e^{-8}) ≈ 3.4e-4`, well below the 6-bit quantizer step the
/// hardware itself tolerates, so the tail is clamped to zero.
const BOXPLUS_TABLE_BINS_PER_UNIT: f32 = 16.0;

/// The correction table `c[i] ≈ ln(1 + e^{-x})`, sampled at bin midpoints.
///
/// Built once per process; 128 × 4 bytes = 512 B, so it lives in L1 for the
/// whole decode. Entries are computed in `f64` and rounded once to `f32`.
pub(crate) fn boxplus_correction_table() -> &'static [f32; BOXPLUS_TABLE_LEN] {
    static TABLE: OnceLock<[f32; BOXPLUS_TABLE_LEN]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0.0f32; BOXPLUS_TABLE_LEN];
        for (i, entry) in table.iter_mut().enumerate() {
            let x = (i as f64 + 0.5) / BOXPLUS_TABLE_BINS_PER_UNIT as f64;
            *entry = (-x).exp().ln_1p() as f32;
        }
        table
    })
}

/// `ln(1 + e^{-x})` looked up from the correction table (`x >= 0`).
///
/// Branchless: whether `x` lands in the table or in the clamped-to-zero
/// tail is data-dependent and near-random on saturated messages, so an
/// `if idx < LEN` here mispredicts on a large fraction of lookups. The
/// wrapped load is masked to zero instead — bit-identical to the branchy
/// form (out-of-range indices read a garbage entry that the multiply by
/// `0.0` annihilates).
#[inline]
fn table_correction(table: &[f32; BOXPLUS_TABLE_LEN], x: f32) -> f32 {
    let idx = (x * BOXPLUS_TABLE_BINS_PER_UNIT) as usize;
    let in_range = (idx < BOXPLUS_TABLE_LEN) as u32 as f32;
    table[idx % BOXPLUS_TABLE_LEN] * in_range
}

/// Table-driven pairwise boxplus: `max*` with both Jacobian-log correction
/// terms read from `boxplus_correction_table` instead of evaluated with
/// transcendentals.
///
/// The computation is performed entirely in `f32` — including when called
/// from an `f64` decoder build — so the approximation is deterministic
/// across message precisions (the table itself is the only rounding source).
#[inline]
pub fn boxplus_table(a: f32, b: f32) -> f32 {
    let table = boxplus_correction_table();
    boxplus_table_with(table, a, b)
}

/// [`boxplus_table`] with the table pointer hoisted out of the inner loop.
#[inline]
pub(crate) fn boxplus_table_with(table: &[f32; BOXPLUS_TABLE_LEN], a: f32, b: f32) -> f32 {
    let sign_min = a.abs().min(b.abs()).copysign(a) * b.signum();
    sign_min + table_correction(table, (a + b).abs()) - table_correction(table, (a - b).abs())
}

/// A check-node update rule: how the magnitudes of incoming messages
/// combine. Decoders are generic over this to compare sum-product against
/// min-sum variants (one of the ablations called out in DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum CheckRule {
    /// Exact sum-product (Eq. 5).
    #[default]
    SumProduct,
    /// Sum-product with both Jacobian-log correction terms read from a
    /// 128-entry table ([`boxplus_table`]) instead of computed with
    /// `exp`/`ln_1p` — the throughput variant of [`CheckRule::SumProduct`]
    /// (`CheckRule::SumProduct`). Always evaluated in `f32` internally, so
    /// its output is identical in `f32` and `f64` decoder builds.
    TableSumProduct,
    /// Min-sum with multiplicative normalization `alpha` in `(0, 1]`.
    NormalizedMinSum(f64),
    /// Min-sum with additive offset `beta >= 0` subtracted from magnitudes.
    OffsetMinSum(f64),
}

impl CheckRule {
    /// Computes the extrinsic output for every edge of one check node:
    /// `out[i] = boxplus over all in[j], j != i` under this rule.
    ///
    /// Uses an `O(d)` forward/backward sweep for sum-product and the
    /// two-minima trick for the min-sum rules.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != incoming.len()`.
    pub fn extrinsic(&self, incoming: &[f64], out: &mut [f64]) {
        self.extrinsic_t(incoming, out);
    }

    /// [`extrinsic`](Self::extrinsic) generic over the message precision.
    ///
    /// The `incoming`/`out` slices may be disjoint views into a single
    /// structure-of-arrays message store (one check node's contiguous edge
    /// range of the v2c and c2v planes) — the kernels never read `out`
    /// before writing it, so no per-check scratch copies are needed.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != incoming.len()`.
    pub fn extrinsic_t<F: LlrFloat>(&self, incoming: &[F], out: &mut [F]) {
        assert_eq!(incoming.len(), out.len(), "length mismatch");
        let d = incoming.len();
        match d {
            0 => {}
            // Degree 1: the extrinsic of the only edge is "no information".
            1 => out[0] = F::ZERO,
            2 => {
                out[0] = self.degrade(incoming[1]);
                out[1] = self.degrade(incoming[0]);
            }
            _ => match self {
                CheckRule::SumProduct => sum_product_extrinsic(incoming, out),
                CheckRule::TableSumProduct => table_sum_product_extrinsic(incoming, out),
                CheckRule::NormalizedMinSum(alpha) => {
                    let alpha = F::from_f64(*alpha);
                    min_sum_extrinsic(incoming, out, |m| m * alpha)
                }
                CheckRule::OffsetMinSum(beta) => {
                    let beta = F::from_f64(*beta);
                    min_sum_extrinsic(incoming, out, |m| (m - beta).max(F::ZERO))
                }
            },
        }
    }

    /// Applies this rule's magnitude correction to a single pass-through
    /// message (degree-2 check node).
    fn degrade<F: LlrFloat>(&self, x: F) -> F {
        match *self {
            // Degree-2 pass-through is exact under sum-product, so the
            // table variant needs no correction either.
            CheckRule::SumProduct | CheckRule::TableSumProduct => x,
            CheckRule::NormalizedMinSum(alpha) => x * F::from_f64(alpha),
            CheckRule::OffsetMinSum(beta) => (x.abs() - F::from_f64(beta)).max(F::ZERO).copysign(x),
        }
    }

    /// The rule's magnitude correction as a value, or `None` for the exact
    /// sum-product rules.
    ///
    /// The min-sum lane kernels are generic over a `correct` closure so the
    /// per-message correction inlines into the recurrence; this helper
    /// hoists the rule match out of the hot path once, at the call sites
    /// that dispatch a whole decode (the single-frame zigzag engine and the
    /// tiled batch decoder share it).
    pub(crate) fn min_sum_correct<F: LlrFloat>(&self) -> Option<MinSumCorrect<F>> {
        match *self {
            CheckRule::NormalizedMinSum(alpha) => {
                Some(MinSumCorrect::Normalized(F::from_f64(alpha)))
            }
            CheckRule::OffsetMinSum(beta) => Some(MinSumCorrect::Offset(F::from_f64(beta))),
            CheckRule::SumProduct | CheckRule::TableSumProduct => None,
        }
    }
}

/// A min-sum magnitude correction, pre-converted to the message precision.
///
/// [`MinSumCorrect::apply`] performs exactly the arithmetic of the matching
/// [`CheckRule`] arm in [`min_sum_extrinsic`]'s closures, so kernels driven
/// through it stay bit-identical to kernels that match on the rule inline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum MinSumCorrect<F> {
    /// Multiplicative normalization (`CheckRule::NormalizedMinSum`).
    Normalized(F),
    /// Additive offset with clamping at zero (`CheckRule::OffsetMinSum`).
    Offset(F),
}

impl<F: LlrFloat> MinSumCorrect<F> {
    /// Corrects one extrinsic magnitude.
    #[inline(always)]
    pub(crate) fn apply(self, mag: F) -> F {
        match self {
            MinSumCorrect::Normalized(alpha) => mag * alpha,
            MinSumCorrect::Offset(beta) => (mag - beta).max(F::ZERO),
        }
    }
}

/// Forward/backward sum-product extrinsic for `d >= 3`.
fn sum_product_extrinsic<F: LlrFloat>(incoming: &[F], out: &mut [F]) {
    let d = incoming.len();
    // out[i] currently unused; reuse it as the suffix accumulator store.
    // suffix[i] = incoming[i+1] ⊞ ... ⊞ incoming[d-1]
    out[d - 1] = incoming[d - 1];
    for i in (0..d - 1).rev() {
        out[i] = boxplus_t(incoming[i], out[i + 1]);
    }
    let mut prefix = incoming[0];
    let total_suffix = out[1];
    out[0] = total_suffix;
    for i in 1..d {
        let suffix = if i + 1 < d { out[i + 1] } else { F::ZERO };
        out[i] = if i + 1 < d { boxplus_t(prefix, suffix) } else { prefix };
        prefix = boxplus_t(prefix, incoming[i]);
    }
}

/// Forward/backward table-driven sum-product extrinsic for `d >= 3`.
///
/// Same prefix/suffix structure as [`sum_product_extrinsic`], with every
/// pairwise boxplus replaced by the table lookup. All arithmetic runs in
/// `f32` regardless of `F`: inputs are rounded once on entry, so the `f64`
/// instantiation produces bit-identical outputs to the `f32` one (for
/// inputs exactly representable in `f32`, i.e. everything an `f32` decode
/// would feed it).
fn table_sum_product_extrinsic<F: LlrFloat>(incoming: &[F], out: &mut [F]) {
    let table = boxplus_correction_table();
    let d = incoming.len();
    debug_assert!(d >= 3);
    let mut suffix = [0.0f32; 64];
    assert!(d <= suffix.len(), "check degree {d} exceeds kernel stack buffer");
    // suffix[i] = incoming[i+1] ⊞ ... ⊞ incoming[d-1]
    suffix[d - 1] = incoming[d - 1].to_f64() as f32;
    for i in (0..d - 1).rev() {
        suffix[i] = boxplus_table_with(table, incoming[i].to_f64() as f32, suffix[i + 1]);
    }
    let mut prefix = incoming[0].to_f64() as f32;
    out[0] = F::from_f64(suffix[1] as f64);
    for i in 1..d - 1 {
        out[i] = F::from_f64(boxplus_table_with(table, prefix, suffix[i + 1]) as f64);
        prefix = boxplus_table_with(table, prefix, incoming[i].to_f64() as f32);
    }
    out[d - 1] = F::from_f64(prefix as f64);
}

/// Two-minima min-sum extrinsic for `d >= 3` with a magnitude correction.
///
/// The minima tracking is written with selects rather than an
/// `if/else if` chain: on random LLRs the chain mispredicts constantly,
/// and the selection logic is equivalent (`min2.min(mag)` covers the
/// "between the minima" case exactly).
fn min_sum_extrinsic<F: LlrFloat>(incoming: &[F], out: &mut [F], correct: impl Fn(F) -> F) {
    let mut min1 = F::INFINITY;
    let mut min2 = F::INFINITY;
    let mut min_idx = 0usize;
    let mut negative_signs = 0u32;
    for (i, &x) in incoming.iter().enumerate() {
        let mag = x.abs();
        // Two-smallest recurrence as min/max plus a mask blend for the
        // index: the new second minimum is min(min2, max(min1, mag)) — if
        // `mag` beats min1, the displaced min1 is the candidate, otherwise
        // `mag` itself is. Exact value selection with no data-dependent
        // branch; the comparison outcomes are near-random, so branching on
        // them mispredicts on a large fraction of messages.
        let smaller = mag < min1;
        min2 = min2.min(min1.max(mag));
        min1 = min1.min(mag);
        let mask = (smaller as usize).wrapping_neg();
        min_idx = (i & mask) | (min_idx & !mask);
        negative_signs += x.is_negative() as u32;
    }
    // sign_product * self_sign as one parity bit; toggling the sign bit is
    // exact, so the result is bit-identical to the two-multiply
    // formulation.
    for (i, o) in out.iter_mut().enumerate() {
        let mag = correct(F::select(i == min_idx, min2, min1));
        let flip = (negative_signs + incoming[i].is_negative() as u32) & 1 == 1;
        *o = mag.flip_sign_if(flip);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_boxplus(a: f64, b: f64) -> f64 {
        2.0 * ((a / 2.0).tanh() * (b / 2.0).tanh()).atanh()
    }

    #[test]
    fn boxplus_matches_tanh_formula() {
        for &(a, b) in &[(0.3, 0.7), (-1.2, 2.5), (4.0, -4.0), (0.01, 8.0), (-3.0, -3.0)] {
            assert!((boxplus(a, b) - exact_boxplus(a, b)).abs() < 1e-10, "({a},{b})");
        }
    }

    #[test]
    fn boxplus_is_commutative_and_bounded() {
        for &(a, b) in &[(1.0, 2.0), (-0.5, 3.0), (10.0, -0.1)] {
            assert!((boxplus(a, b) - boxplus(b, a)).abs() < 1e-14);
            assert!(boxplus(a, b).abs() <= a.abs().min(b.abs()) + 1e-12);
        }
    }

    #[test]
    fn boxplus_zero_annihilates() {
        assert_eq!(boxplus(0.0, 5.0), 0.0);
        assert_eq!(boxplus(-7.0, 0.0), 0.0);
    }

    #[test]
    fn boxplus_large_inputs_behave_like_min() {
        // The correction terms decay as e^{-|a-b|}: 4.5e-5 at gap 10.
        let out = boxplus(50.0, -60.0);
        assert!((out + 50.0).abs() < 1e-4, "{out}");
    }

    #[test]
    fn min_sum_upper_bounds_sum_product_magnitude() {
        for &(a, b) in &[(1.0, 2.0), (-0.5, 3.0), (2.2, -1.1)] {
            assert!(boxplus_min(a, b).abs() >= boxplus(a, b).abs());
            assert_eq!(boxplus_min(a, b).signum(), boxplus(a, b).signum());
        }
    }

    /// Brute-force reference: extrinsic for edge i is the fold of all others.
    fn reference_extrinsic(rule: &CheckRule, incoming: &[f64]) -> Vec<f64> {
        let fold = |vals: Vec<f64>| -> f64 {
            match rule {
                // The table rule's reference is the exact fold; tolerance is
                // the caller's business.
                CheckRule::SumProduct | CheckRule::TableSumProduct => {
                    vals.into_iter().reduce(boxplus).unwrap_or(0.0)
                }
                CheckRule::NormalizedMinSum(alpha) => {
                    let sign: f64 =
                        vals.iter().map(|v| if *v < 0.0 { -1.0 } else { 1.0 }).product();
                    let mag = vals.iter().map(|v| v.abs()).fold(f64::INFINITY, f64::min);
                    if mag.is_infinite() {
                        0.0
                    } else {
                        sign * mag * alpha
                    }
                }
                CheckRule::OffsetMinSum(beta) => {
                    let sign: f64 =
                        vals.iter().map(|v| if *v < 0.0 { -1.0 } else { 1.0 }).product();
                    let mag = vals.iter().map(|v| v.abs()).fold(f64::INFINITY, f64::min);
                    if mag.is_infinite() {
                        0.0
                    } else {
                        sign * (mag - beta).max(0.0)
                    }
                }
            }
        };
        (0..incoming.len())
            .map(|i| {
                let others: Vec<f64> =
                    incoming.iter().enumerate().filter(|&(j, _)| j != i).map(|(_, &v)| v).collect();
                fold(others)
            })
            .collect()
    }

    #[test]
    fn sum_product_extrinsic_matches_brute_force() {
        let incoming = [1.5, -0.7, 2.2, 0.3, -4.0, 1.1];
        let mut out = [0.0; 6];
        CheckRule::SumProduct.extrinsic(&incoming, &mut out);
        let want = reference_extrinsic(&CheckRule::SumProduct, &incoming);
        for (o, w) in out.iter().zip(&want) {
            assert!((o - w).abs() < 1e-10, "{o} vs {w}");
        }
    }

    #[test]
    fn min_sum_extrinsic_matches_brute_force() {
        let incoming = [1.5, -0.7, 2.2, 0.3, -4.0];
        for rule in [CheckRule::NormalizedMinSum(0.75), CheckRule::OffsetMinSum(0.3)] {
            let mut out = [0.0; 5];
            rule.extrinsic(&incoming, &mut out);
            let want = reference_extrinsic(&rule, &incoming);
            for (o, w) in out.iter().zip(&want) {
                assert!((o - w).abs() < 1e-12, "{rule:?}: {o} vs {w}");
            }
        }
    }

    #[test]
    fn degree_two_passes_messages_across() {
        let incoming = [3.0, -1.0];
        let mut out = [0.0; 2];
        CheckRule::SumProduct.extrinsic(&incoming, &mut out);
        assert_eq!(out, [-1.0, 3.0]);
    }

    #[test]
    fn degree_one_outputs_zero() {
        let mut out = [123.0];
        CheckRule::SumProduct.extrinsic(&[5.0], &mut out);
        assert_eq!(out, [0.0]);
    }

    #[test]
    fn table_boxplus_tracks_exact_boxplus() {
        // Midpoint sampling bounds each correction term's error by half a
        // bin width times the slope bound |d/dx ln(1+e^-x)| <= 1: two terms
        // stay within ~0.07 of the transcendental form.
        for &(a, b) in &[(0.3, 0.7), (-1.2, 2.5), (4.0, -4.0), (0.01, 8.0), (-3.0, -3.0)] {
            let approx = boxplus_table(a as f32, b as f32) as f64;
            assert!((approx - boxplus(a, b)).abs() < 0.07, "({a},{b}): {approx}");
        }
        // Tail clamp: far past the table the exact value is min-sum anyway.
        assert!((boxplus_table(50.0, -60.0) as f64 + 50.0).abs() < 1e-3);
        // Zero annihilates exactly (both corrections cancel).
        assert_eq!(boxplus_table(0.0, 5.0), 0.0);
    }

    #[test]
    fn table_sum_product_tracks_exact_extrinsic() {
        let incoming = [1.5, -0.7, 2.2, 0.3, -4.0, 1.1];
        let mut out = [0.0; 6];
        CheckRule::TableSumProduct.extrinsic(&incoming, &mut out);
        let want = reference_extrinsic(&CheckRule::SumProduct, &incoming);
        for (o, w) in out.iter().zip(&want) {
            // d-1 pairwise table ops, each within ~0.07.
            assert!((o - w).abs() < 0.4, "{o} vs {w}");
            assert_eq!(o.signum(), w.signum());
        }
    }

    #[test]
    fn table_sum_product_is_deterministic_across_precisions() {
        // The kernel computes in f32 internally, so feeding it the same
        // f32-representable values through the f32 and f64 instantiations
        // must produce bit-identical outputs.
        let incoming32: Vec<f32> = vec![1.5, -0.7, 2.2, 0.3, -4.0, 1.1, 0.0, -2.25];
        let incoming64: Vec<f64> = incoming32.iter().map(|&x| x as f64).collect();
        let mut out32 = vec![0.0f32; incoming32.len()];
        let mut out64 = vec![0.0f64; incoming64.len()];
        CheckRule::TableSumProduct.extrinsic_t(&incoming32, &mut out32);
        CheckRule::TableSumProduct.extrinsic_t(&incoming64, &mut out64);
        for (a, b) in out32.iter().zip(&out64) {
            assert_eq!(*a as f64, *b, "f32/f64 table kernels diverged");
        }
    }

    #[test]
    fn min_sum_correct_matches_rule_arithmetic() {
        let mags = [0.0f64, 0.1, 0.25, 1.5, 7.0];
        let norm = CheckRule::NormalizedMinSum(0.8).min_sum_correct::<f64>().unwrap();
        let offs = CheckRule::OffsetMinSum(0.3).min_sum_correct::<f64>().unwrap();
        for &m in &mags {
            assert_eq!(norm.apply(m), m * 0.8);
            assert_eq!(offs.apply(m), (m - 0.3).max(0.0));
        }
        assert_eq!(CheckRule::SumProduct.min_sum_correct::<f32>(), None);
        assert_eq!(CheckRule::TableSumProduct.min_sum_correct::<f32>(), None);
    }

    #[test]
    fn duplicate_minima_are_handled() {
        // Both minima equal: every extrinsic magnitude must be that minimum.
        let incoming = [2.0, -2.0, 5.0];
        let mut out = [0.0; 3];
        CheckRule::NormalizedMinSum(1.0).extrinsic(&incoming, &mut out);
        assert_eq!(out.map(f64::abs), [2.0, 2.0, 2.0]);
    }
}
