//! Core LLR arithmetic for check-node updates.
//!
//! The check-node rule of Eq. 5, `tanh(out/2) = prod tanh(in_l/2)`, is
//! evaluated pairwise with the numerically stable "boxplus" form
//!
//! ```text
//! a ⊞ b = sign(a) sign(b) min(|a|,|b|)
//!         + ln(1 + e^{-|a+b|}) - ln(1 + e^{-|a-b|})
//! ```
//!
//! Min-sum keeps only the first term; normalized/offset min-sum apply a
//! scalar correction. All check-node rules implement [`CheckRule`] so the
//! decoders can be generic over them.

/// Exact pairwise boxplus (Eq. 5), numerically stable for any finite inputs.
///
/// ```
/// use dvbs2_decoder::boxplus;
/// let out = boxplus(2.0, 3.0);
/// // Exact value: 2 atanh(tanh(1) tanh(1.5)).
/// let exact = 2.0 * ((2.0f64 / 2.0).tanh() * (3.0f64 / 2.0).tanh()).atanh();
/// assert!((out - exact).abs() < 1e-12);
/// ```
#[inline]
pub fn boxplus(a: f64, b: f64) -> f64 {
    let sign_min = a.abs().min(b.abs()).copysign(a) * b.signum();
    sign_min + ln_1p_exp_neg((a + b).abs()) - ln_1p_exp_neg((a - b).abs())
}

/// `ln(1 + e^{-x})` for `x >= 0`, stable against overflow.
#[inline]
fn ln_1p_exp_neg(x: f64) -> f64 {
    debug_assert!(x >= 0.0);
    if x > 40.0 { 0.0 } else { (-x).exp().ln_1p() }
}

/// Pairwise min-sum approximation of boxplus.
#[inline]
pub fn boxplus_min(a: f64, b: f64) -> f64 {
    a.abs().min(b.abs()).copysign(a) * b.signum()
}

/// A check-node update rule: how the magnitudes of incoming messages
/// combine. Decoders are generic over this to compare sum-product against
/// min-sum variants (one of the ablations called out in DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq)]
#[derive(Default)]
pub enum CheckRule {
    /// Exact sum-product (Eq. 5).
    #[default]
    SumProduct,
    /// Min-sum with multiplicative normalization `alpha` in `(0, 1]`.
    NormalizedMinSum(f64),
    /// Min-sum with additive offset `beta >= 0` subtracted from magnitudes.
    OffsetMinSum(f64),
}


impl CheckRule {
    /// Computes the extrinsic output for every edge of one check node:
    /// `out[i] = boxplus over all in[j], j != i` under this rule.
    ///
    /// Uses an `O(d)` forward/backward sweep for sum-product and the
    /// two-minima trick for the min-sum rules.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != incoming.len()`.
    pub fn extrinsic(&self, incoming: &[f64], out: &mut [f64]) {
        assert_eq!(incoming.len(), out.len(), "length mismatch");
        let d = incoming.len();
        match d {
            0 => {}
            // Degree 1: the extrinsic of the only edge is "no information".
            1 => out[0] = 0.0,
            2 => {
                out[0] = self.degrade(incoming[1]);
                out[1] = self.degrade(incoming[0]);
            }
            _ => match self {
                CheckRule::SumProduct => sum_product_extrinsic(incoming, out),
                CheckRule::NormalizedMinSum(alpha) => {
                    min_sum_extrinsic(incoming, out, |m| m * alpha)
                }
                CheckRule::OffsetMinSum(beta) => {
                    min_sum_extrinsic(incoming, out, |m| (m - beta).max(0.0))
                }
            },
        }
    }

    /// Applies this rule's magnitude correction to a single pass-through
    /// message (degree-2 check node).
    fn degrade(&self, x: f64) -> f64 {
        match *self {
            CheckRule::SumProduct => x,
            CheckRule::NormalizedMinSum(alpha) => x * alpha,
            CheckRule::OffsetMinSum(beta) => (x.abs() - beta).max(0.0).copysign(x),
        }
    }
}

/// Forward/backward sum-product extrinsic for `d >= 3`.
fn sum_product_extrinsic(incoming: &[f64], out: &mut [f64]) {
    let d = incoming.len();
    // out[i] currently unused; reuse it as the suffix accumulator store.
    // suffix[i] = incoming[i+1] ⊞ ... ⊞ incoming[d-1]
    out[d - 1] = incoming[d - 1];
    for i in (0..d - 1).rev() {
        out[i] = boxplus(incoming[i], out[i + 1]);
    }
    let mut prefix = incoming[0];
    let total_suffix = out[1];
    out[0] = total_suffix;
    for i in 1..d {
        let suffix = if i + 1 < d { out[i + 1] } else { 0.0 };
        out[i] = if i + 1 < d { boxplus(prefix, suffix) } else { prefix };
        prefix = boxplus(prefix, incoming[i]);
    }
}

/// Two-minima min-sum extrinsic for `d >= 3` with a magnitude correction.
fn min_sum_extrinsic(incoming: &[f64], out: &mut [f64], correct: impl Fn(f64) -> f64) {
    let mut min1 = f64::INFINITY;
    let mut min2 = f64::INFINITY;
    let mut min_idx = 0usize;
    let mut sign_product = 1.0f64;
    for (i, &x) in incoming.iter().enumerate() {
        let mag = x.abs();
        if mag < min1 {
            min2 = min1;
            min1 = mag;
            min_idx = i;
        } else if mag < min2 {
            min2 = mag;
        }
        if x < 0.0 {
            sign_product = -sign_product;
        }
    }
    for (i, o) in out.iter_mut().enumerate() {
        let mag = correct(if i == min_idx { min2 } else { min1 });
        let self_sign = if incoming[i] < 0.0 { -1.0 } else { 1.0 };
        *o = sign_product * self_sign * mag;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_boxplus(a: f64, b: f64) -> f64 {
        2.0 * ((a / 2.0).tanh() * (b / 2.0).tanh()).atanh()
    }

    #[test]
    fn boxplus_matches_tanh_formula() {
        for &(a, b) in &[(0.3, 0.7), (-1.2, 2.5), (4.0, -4.0), (0.01, 8.0), (-3.0, -3.0)] {
            assert!((boxplus(a, b) - exact_boxplus(a, b)).abs() < 1e-10, "({a},{b})");
        }
    }

    #[test]
    fn boxplus_is_commutative_and_bounded() {
        for &(a, b) in &[(1.0, 2.0), (-0.5, 3.0), (10.0, -0.1)] {
            assert!((boxplus(a, b) - boxplus(b, a)).abs() < 1e-14);
            assert!(boxplus(a, b).abs() <= a.abs().min(b.abs()) + 1e-12);
        }
    }

    #[test]
    fn boxplus_zero_annihilates() {
        assert_eq!(boxplus(0.0, 5.0), 0.0);
        assert_eq!(boxplus(-7.0, 0.0), 0.0);
    }

    #[test]
    fn boxplus_large_inputs_behave_like_min() {
        // The correction terms decay as e^{-|a-b|}: 4.5e-5 at gap 10.
        let out = boxplus(50.0, -60.0);
        assert!((out + 50.0).abs() < 1e-4, "{out}");
    }

    #[test]
    fn min_sum_upper_bounds_sum_product_magnitude() {
        for &(a, b) in &[(1.0, 2.0), (-0.5, 3.0), (2.2, -1.1)] {
            assert!(boxplus_min(a, b).abs() >= boxplus(a, b).abs());
            assert_eq!(boxplus_min(a, b).signum(), boxplus(a, b).signum());
        }
    }

    /// Brute-force reference: extrinsic for edge i is the fold of all others.
    fn reference_extrinsic(rule: &CheckRule, incoming: &[f64]) -> Vec<f64> {
        let fold = |vals: Vec<f64>| -> f64 {
            match rule {
                CheckRule::SumProduct => {
                    vals.into_iter().reduce(boxplus).unwrap_or(0.0)
                }
                CheckRule::NormalizedMinSum(alpha) => {
                    let sign: f64 =
                        vals.iter().map(|v| if *v < 0.0 { -1.0 } else { 1.0 }).product();
                    let mag = vals.iter().map(|v| v.abs()).fold(f64::INFINITY, f64::min);
                    if mag.is_infinite() { 0.0 } else { sign * mag * alpha }
                }
                CheckRule::OffsetMinSum(beta) => {
                    let sign: f64 =
                        vals.iter().map(|v| if *v < 0.0 { -1.0 } else { 1.0 }).product();
                    let mag = vals.iter().map(|v| v.abs()).fold(f64::INFINITY, f64::min);
                    if mag.is_infinite() { 0.0 } else { sign * (mag - beta).max(0.0) }
                }
            }
        };
        (0..incoming.len())
            .map(|i| {
                let others: Vec<f64> = incoming
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, &v)| v)
                    .collect();
                fold(others)
            })
            .collect()
    }

    #[test]
    fn sum_product_extrinsic_matches_brute_force() {
        let incoming = [1.5, -0.7, 2.2, 0.3, -4.0, 1.1];
        let mut out = [0.0; 6];
        CheckRule::SumProduct.extrinsic(&incoming, &mut out);
        let want = reference_extrinsic(&CheckRule::SumProduct, &incoming);
        for (o, w) in out.iter().zip(&want) {
            assert!((o - w).abs() < 1e-10, "{o} vs {w}");
        }
    }

    #[test]
    fn min_sum_extrinsic_matches_brute_force() {
        let incoming = [1.5, -0.7, 2.2, 0.3, -4.0];
        for rule in [CheckRule::NormalizedMinSum(0.75), CheckRule::OffsetMinSum(0.3)] {
            let mut out = [0.0; 5];
            rule.extrinsic(&incoming, &mut out);
            let want = reference_extrinsic(&rule, &incoming);
            for (o, w) in out.iter().zip(&want) {
                assert!((o - w).abs() < 1e-12, "{rule:?}: {o} vs {w}");
            }
        }
    }

    #[test]
    fn degree_two_passes_messages_across() {
        let incoming = [3.0, -1.0];
        let mut out = [0.0; 2];
        CheckRule::SumProduct.extrinsic(&incoming, &mut out);
        assert_eq!(out, [-1.0, 3.0]);
    }

    #[test]
    fn degree_one_outputs_zero() {
        let mut out = [123.0];
        CheckRule::SumProduct.extrinsic(&[5.0], &mut out);
        assert_eq!(out, [0.0]);
    }

    #[test]
    fn duplicate_minima_are_handled() {
        // Both minima equal: every extrinsic magnitude must be that minimum.
        let incoming = [2.0, -2.0, 5.0];
        let mut out = [0.0; 3];
        CheckRule::NormalizedMinSum(1.0).extrinsic(&incoming, &mut out);
        assert_eq!(out.map(f64::abs), [2.0, 2.0, 2.0]);
    }
}
