//! Multi-frame batched flooding decoder: B codewords interleaved
//! frame-major in the SoA planes (GPU multi-codeword style).
//!
//! Every plane slot and every variable owns `B` consecutive lanes, one per
//! frame. The check pass then amortizes its only indexed accesses — the
//! `slot_vars` gather and the `edge_vars`/`edge_to_slot` accumulation walk —
//! across all `B` frames: one index load serves `B` consecutive data lanes.
//! Per frame the arithmetic is identical, in identical order, to a
//! single-frame [`FloodingDecoder`](crate::FloodingDecoder) at the same
//! precision and rule, so batched results are **bit-identical** to decoding
//! the frames one at a time (pinned by this module's tests).
//!
//! Only the min-sum rules batch: the sum-product kernels stream check by
//! check through [`CheckRule::extrinsic_t`] and would gain nothing from
//! lane interleaving.

use crate::engine::{
    batched_accumulate_totals_slotted, batched_min_sum_pass, sanitize_llr, syndrome_ok_totals_lane,
    BlockedChecks, Precision,
};
use crate::llr_ops::{CheckRule, LlrFloat};
use crate::{DecodeResult, DecoderConfig};
use dvbs2_ldpc::{BitVec, TannerGraph};
use std::sync::Arc;

/// Flooding-schedule min-sum decoder over `B <= max_batch` frames at once.
///
/// ```
/// use dvbs2_decoder::{BatchDecoder, CheckRule, DecoderConfig};
/// use dvbs2_ldpc::TannerGraph;
/// use std::sync::Arc;
///
/// let g = Arc::new(TannerGraph::from_edges(2, 1, &[(0, 0), (0, 1)]));
/// let config = DecoderConfig::default().with_rule(CheckRule::NormalizedMinSum(0.8));
/// let mut dec = BatchDecoder::new(g, config, 4);
/// let frames = [[-2.0, 0.5], [1.0, 2.0]];
/// let out = dec.decode_batch(&[&frames[0], &frames[1]]);
/// assert!(out[0].bits.get(0) && out[0].bits.get(1)); // bit-1 vote wins
/// assert!(!out[1].bits.get(0) && !out[1].bits.get(1));
/// ```
#[derive(Debug, Clone)]
pub struct BatchDecoder {
    graph: Arc<TannerGraph>,
    config: DecoderConfig,
    blocked: BlockedChecks,
    max_batch: usize,
    core: Core,
}

#[derive(Debug, Clone)]
enum Core {
    F64(Engine<f64>),
    F32(Engine<f32>),
}

/// Batched message planes at one precision, sized for `max_batch` lanes.
#[derive(Debug, Clone)]
struct Engine<F> {
    llr: Vec<F>,
    v2c: Vec<F>,
    c2v: Vec<F>,
    totals: Vec<F>,
    totals_next: Vec<F>,
}

impl<F: LlrFloat> Engine<F> {
    fn new(graph: &TannerGraph, max_batch: usize) -> Self {
        let edges = graph.edge_count() * max_batch;
        let vars = graph.var_count() * max_batch;
        Engine {
            llr: vec![F::ZERO; vars],
            v2c: vec![F::ZERO; edges],
            c2v: vec![F::ZERO; edges],
            totals: vec![F::ZERO; vars],
            totals_next: vec![F::ZERO; vars],
        }
    }

    fn decode_batch_into(
        &mut self,
        graph: &TannerGraph,
        config: &DecoderConfig,
        blocked: &BlockedChecks,
        frames: &[&[f64]],
        out: &mut [DecodeResult],
    ) {
        let b = frames.len();
        let vars = graph.var_count();
        let edge_vars = graph.edge_vars();
        // Interleave the channel LLRs frame-major (lane fb of variable v at
        // `v * b + fb`), sanitizing at the boundary like `load_llrs`.
        for (fb, frame) in frames.iter().enumerate() {
            assert_eq!(frame.len(), vars, "LLR length mismatch");
            for (v, &x) in frame.iter().enumerate() {
                self.llr[v * b + fb] = F::from_f64(sanitize_llr(x));
            }
        }
        let llr = &self.llr[..vars * b];
        let mut totals: &mut [F] = &mut self.totals[..vars * b];
        let mut totals_next: &mut [F] = &mut self.totals_next[..vars * b];
        let c2v = &mut self.c2v[..graph.edge_count() * b];
        let v2c = &mut self.v2c[..graph.edge_count() * b];
        c2v.fill(F::ZERO);
        // First-iteration gather sources: totals = llr plus all-zero
        // messages.
        batched_accumulate_totals_slotted(edge_vars, blocked.edge_to_slot(), b, llr, c2v, totals);

        let correct: Box<dyn Fn(F) -> F> = match config.rule {
            CheckRule::NormalizedMinSum(alpha) => {
                let alpha = F::from_f64(alpha);
                Box::new(move |m| m * alpha)
            }
            CheckRule::OffsetMinSum(beta) => {
                let beta = F::from_f64(beta);
                Box::new(move |m| (m - beta).max(F::ZERO))
            }
            rule => unreachable!("BatchDecoder constructed with non-min-sum rule {rule:?}"),
        };

        for slot in out.iter_mut() {
            if slot.bits.len() != vars {
                slot.bits = BitVec::zeros(vars);
            }
            slot.iterations = 0;
            slot.converged = false;
        }
        let mut remaining = b;
        let mut iterations = 0;
        for _ in 0..config.max_iterations {
            iterations += 1;
            batched_min_sum_pass(blocked, &config.rule, b, totals, v2c, c2v, &correct);
            batched_accumulate_totals_slotted(
                edge_vars,
                blocked.edge_to_slot(),
                b,
                llr,
                c2v,
                totals_next,
            );
            std::mem::swap(&mut totals, &mut totals_next);
            if config.early_stop {
                for (fb, slot) in out.iter_mut().enumerate() {
                    if slot.converged {
                        continue;
                    }
                    if syndrome_ok_totals_lane(graph, totals, b, fb) {
                        // Snapshot this frame at its convergence iteration —
                        // exactly where a single-frame decode would stop —
                        // while the other lanes keep iterating.
                        slot.converged = true;
                        slot.iterations = iterations;
                        for v in 0..vars {
                            slot.bits.set(v, totals[v * b + fb].is_negative());
                        }
                        remaining -= 1;
                    }
                }
                if remaining == 0 {
                    break;
                }
            }
        }
        for (fb, slot) in out.iter_mut().enumerate() {
            if slot.converged {
                continue;
            }
            slot.iterations = iterations;
            for v in 0..vars {
                slot.bits.set(v, totals[v * b + fb].is_negative());
            }
            slot.converged = syndrome_ok_totals_lane(graph, totals, b, fb);
        }
    }
}

impl BatchDecoder {
    /// Creates a batched decoder for up to `max_batch` simultaneous frames.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is 0 or larger than 1024 (the kernel stripe),
    /// or if `config.rule` is not one of the min-sum rules.
    pub fn new(graph: Arc<TannerGraph>, config: DecoderConfig, max_batch: usize) -> Self {
        assert!((1..=1024).contains(&max_batch), "max_batch {max_batch} out of range");
        assert!(
            matches!(config.rule, CheckRule::NormalizedMinSum(_) | CheckRule::OffsetMinSum(_)),
            "BatchDecoder batches the min-sum rules; got {:?}",
            config.rule
        );
        let blocked = BlockedChecks::new(&graph);
        let core = match config.precision {
            Precision::F64 => Core::F64(Engine::new(&graph, max_batch)),
            Precision::F32 => Core::F32(Engine::new(&graph, max_batch)),
        };
        BatchDecoder { graph, config, blocked, max_batch, core }
    }

    /// Largest number of frames one call may carry.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// The decoder configuration.
    pub fn config(&self) -> &DecoderConfig {
        &self.config
    }

    /// Sets the iteration cap for subsequent batches (admission control).
    pub fn set_max_iterations(&mut self, max_iterations: usize) {
        self.config.max_iterations = max_iterations;
    }

    /// Decodes `frames.len() <= max_batch` frames in one fused pass over
    /// the adjacency. Results are bit-identical, frame for frame, to
    /// single-frame flooding decodes under the same configuration.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is empty or exceeds `max_batch`, or if any frame
    /// has the wrong LLR length.
    pub fn decode_batch(&mut self, frames: &[&[f64]]) -> Vec<DecodeResult> {
        let mut out = vec![DecodeResult::default(); frames.len()];
        self.decode_batch_into(frames, &mut out);
        out
    }

    /// [`decode_batch`](Self::decode_batch) into caller-owned results
    /// (allocation-free once each `out[i].bits` has the codeword length).
    ///
    /// # Panics
    ///
    /// Same as [`decode_batch`](Self::decode_batch), plus
    /// `out.len() != frames.len()`.
    pub fn decode_batch_into(&mut self, frames: &[&[f64]], out: &mut [DecodeResult]) {
        assert!(!frames.is_empty(), "empty batch");
        assert!(
            frames.len() <= self.max_batch,
            "batch of {} exceeds max_batch {}",
            frames.len(),
            self.max_batch
        );
        assert_eq!(out.len(), frames.len(), "result slice length mismatch");
        match &mut self.core {
            Core::F64(e) => {
                e.decode_batch_into(&self.graph, &self.config, &self.blocked, frames, out)
            }
            Core::F32(e) => {
                e.decode_batch_into(&self.graph, &self.config, &self.blocked, frames, out)
            }
        }
    }

    /// Human-readable decoder name (mirrors [`crate::Decoder::name`]).
    pub fn name(&self) -> &'static str {
        match self.config.rule {
            CheckRule::NormalizedMinSum(_) => "batched flooding normalized min-sum",
            _ => "batched flooding offset min-sum",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{noisy_llrs, small_code};
    use crate::{Decoder, FloodingDecoder};

    fn config(rule: CheckRule, precision: Precision) -> DecoderConfig {
        DecoderConfig::default().with_rule(rule).with_precision(precision)
    }

    #[test]
    fn batched_decode_is_bit_identical_to_single_frame() {
        let (code, graph) = small_code();
        let graph = Arc::new(graph);
        // Mixed difficulty: one clean-ish frame, a couple near threshold,
        // one likely-undecodable, so lanes converge at different iterations.
        let ebn0 = [4.0, 2.6, 2.4, 0.5];
        for precision in [Precision::F64, Precision::F32] {
            for rule in [CheckRule::NormalizedMinSum(0.8), CheckRule::OffsetMinSum(0.15)] {
                let cfg = config(rule, precision);
                let mut batched = BatchDecoder::new(Arc::clone(&graph), cfg, ebn0.len());
                let mut single = FloodingDecoder::new(Arc::clone(&graph), cfg);
                let frames: Vec<Vec<f64>> = ebn0
                    .iter()
                    .enumerate()
                    .map(|(i, &db)| noisy_llrs(&code, db, 900 + i as u64).1)
                    .collect();
                let views: Vec<&[f64]> = frames.iter().map(|f| f.as_slice()).collect();
                let got = batched.decode_batch(&views);
                for (i, frame) in frames.iter().enumerate() {
                    let want = single.decode(frame);
                    assert_eq!(got[i], want, "{precision:?} {rule:?} frame {i}");
                }
            }
        }
    }

    #[test]
    fn partial_batches_reuse_the_buffers() {
        let (code, graph) = small_code();
        let graph = Arc::new(graph);
        let cfg = config(CheckRule::NormalizedMinSum(0.8), Precision::F32);
        let mut batched = BatchDecoder::new(Arc::clone(&graph), cfg, 8);
        let mut single = FloodingDecoder::new(Arc::clone(&graph), cfg);
        // Different batch sizes against the same decoder instance: the
        // frame-major layout depends on the live batch size, so this pins
        // the dynamic re-interleave.
        for (n, seed) in [(1usize, 50u64), (3, 60), (8, 70), (2, 80)] {
            let frames: Vec<Vec<f64>> =
                (0..n).map(|i| noisy_llrs(&code, 2.8, seed + i as u64).1).collect();
            let views: Vec<&[f64]> = frames.iter().map(|f| f.as_slice()).collect();
            let got = batched.decode_batch(&views);
            for (i, frame) in frames.iter().enumerate() {
                assert_eq!(got[i], single.decode(frame), "batch {n} frame {i}");
            }
        }
    }

    #[test]
    fn early_stop_off_runs_all_iterations_per_lane() {
        let (code, graph) = small_code();
        let cfg = DecoderConfig {
            max_iterations: 8,
            early_stop: false,
            ..config(CheckRule::NormalizedMinSum(0.8), Precision::F32)
        };
        let mut batched = BatchDecoder::new(Arc::new(graph), cfg, 2);
        let frames: Vec<Vec<f64>> = (0..2).map(|i| noisy_llrs(&code, 4.0, 30 + i).1).collect();
        let views: Vec<&[f64]> = frames.iter().map(|f| f.as_slice()).collect();
        for r in batched.decode_batch(&views) {
            assert_eq!(r.iterations, 8);
            assert!(r.converged);
        }
    }

    #[test]
    #[should_panic(expected = "min-sum rules")]
    fn sum_product_rule_is_rejected() {
        let (_, graph) = small_code();
        BatchDecoder::new(Arc::new(graph), DecoderConfig::default(), 4);
    }

    #[test]
    #[should_panic(expected = "exceeds max_batch")]
    fn oversized_batch_is_rejected() {
        let (_, graph) = small_code();
        let cfg = config(CheckRule::NormalizedMinSum(0.8), Precision::F32);
        let n = graph.var_count();
        let mut dec = BatchDecoder::new(Arc::new(graph), cfg, 2);
        let frame = vec![0.0; n];
        let views: Vec<&[f64]> = vec![&frame; 3];
        let _ = dec.decode_batch(&views);
    }
}
