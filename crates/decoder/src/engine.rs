//! Shared plumbing of the structure-of-arrays message engine.
//!
//! All belief-propagation decoders store their messages in flat
//! edge-indexed planes (`v2c`, `c2v`) using the Tanner graph's check-major
//! edge numbering, so the check-node half-iteration streams each check's
//! contiguous edge range and the variable-node half-iteration is a single
//! scatter-add/gather pass over [`TannerGraph::edge_vars`]. The helpers
//! here implement those passes generically over the message precision.
//!
//! Bit-compatibility contract: for `f64` messages every helper performs the
//! same floating-point operations in the same order as the scalar loops
//! they replaced. In particular `accumulate_totals` adds each variable's
//! check messages in ascending edge-id order — exactly the order
//! `TannerGraph::var_edges` yields — so a-posteriori totals are
//! bit-identical to a per-variable gather.

use crate::llr_ops::{boxplus_correction_table, boxplus_table_with, CheckRule, LlrFloat};
use crate::simd::SimdTier;
use dvbs2_ldpc::TannerGraph;

/// Message precision of a belief-propagation decoder.
///
/// `F64` is the bit-compatible reference path (identical results to the
/// original scalar decoders); `F32` halves the message-store footprint and
/// memory traffic, trading ~1e-3 relative message accuracy, which leaves
/// the decoded BER essentially unchanged (see the README performance notes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Double-precision messages: the reference path.
    #[default]
    F64,
    /// Single-precision messages: the fast path.
    F32,
}

/// Largest channel-LLR magnitude the float decoders accept.
///
/// Every float decoder sanitizes its input through the engine's
/// `load_llrs` boundary: `NaN`
/// becomes `0.0` (an erasure — no information) and anything beyond
/// `±LLR_CLAMP` saturates to the clamp. Without this, an `inf` input makes
/// the check-node gather compute `inf - inf = NaN`, which then poisons
/// every message it touches. The clamp is far above any physical LLR
/// (demappers top out around `1e3`) yet small enough that degree-sized sums
/// of clamped values stay finite even in `f32`.
pub const LLR_CLAMP: f64 = 1e12;

/// Maps one raw channel LLR onto the decoders' finite domain: `NaN` → `0.0`
/// (no information), `±inf` and oversized magnitudes → `±LLR_CLAMP`.
/// Ordinary finite LLRs pass through unchanged, preserving the `f64` path's
/// bit-compatibility contract.
#[inline]
pub(crate) fn sanitize_llr(x: f64) -> f64 {
    if x.is_nan() {
        0.0
    } else {
        x.clamp(-LLR_CLAMP, LLR_CLAMP)
    }
}

/// Converts channel LLRs into the engine's message precision, reusing the
/// destination buffer (no allocation once `dst` has been sized). This is
/// the single ingestion boundary of every float decoder, so non-finite
/// inputs are sanitized here — in the `f64` domain, *before* any `f32`
/// narrowing (a large-but-finite `f64` like `1e300` would otherwise become
/// `inf` in `f32`).
#[inline]
pub(crate) fn load_llrs<F: LlrFloat>(dst: &mut [F], src: &[f64]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = F::from_f64(sanitize_llr(s));
    }
}

/// A-posteriori totals in one streaming pass: scatter-add the check
/// messages in ascending edge order, then add the channel LLR on top.
///
/// The zero-seeded scatter followed by `llr + sum` reproduces the exact
/// rounding of the per-variable `llr[v] + var_edges(v).map(..).sum::<f64>()`
/// gather it replaces (an `llr`-seeded accumulator would associate the
/// additions differently and drift in the last bit).
#[inline]
pub(crate) fn accumulate_totals<F: LlrFloat>(
    edge_vars: &[u32],
    llr: &[F],
    c2v: &[F],
    totals: &mut [F],
) {
    totals.fill(F::ZERO);
    for (&v, &m) in edge_vars.iter().zip(c2v) {
        totals[v as usize] += m;
    }
    for (t, &l) in totals.iter_mut().zip(llr) {
        *t = l + *t;
    }
}

/// One fused flooding iteration: for every check, gather its inputs
/// (`v2c[e] = totals[var] - c2v[e]`) from the current totals, run the
/// kernel in place on the planes, and scatter the fresh extrinsics into
/// `totals_next` while the slice is still cache-hot — a single streaming
/// pass over the edge planes instead of separate gather, kernel, and
/// accumulate sweeps.
///
/// On return `totals_next` holds the a-posteriori totals implied by the
/// fresh `c2v`, accumulated in ascending edge order with the channel LLR
/// added last — bit-identical to [`accumulate_totals`] over the new `c2v`.
#[inline]
pub(crate) fn fused_check_pass<F: LlrFloat>(
    graph: &TannerGraph,
    rule: &CheckRule,
    llr: &[F],
    totals: &[F],
    v2c: &mut [F],
    c2v: &mut [F],
    totals_next: &mut [F],
) {
    let offsets = graph.check_offsets();
    let edge_vars = graph.edge_vars();
    totals_next.fill(F::ZERO);
    for c in 0..graph.check_count() {
        let range = offsets[c] as usize..offsets[c + 1] as usize;
        for e in range.clone() {
            v2c[e] = totals[edge_vars[e] as usize] - c2v[e];
        }
        rule.extrinsic_t(&v2c[range.clone()], &mut c2v[range.clone()]);
        for e in range {
            totals_next[edge_vars[e] as usize] += c2v[e];
        }
    }
    for (t, &l) in totals_next.iter_mut().zip(llr) {
        *t = l + *t;
    }
}

/// Transposed (column-major) layout of the check-message planes for the
/// min-sum fast path: checks are grouped by degree, and within a degree
/// class the planes are stored column by column — slot `base + j * m + i`
/// holds the `j`-th message of the class's `i`-th check.
///
/// With this layout a fixed-`j` sweep over a class reads and writes the
/// planes *contiguously*, turning the per-check minima recurrence into `m`
/// independent per-lane recurrences over dense arrays — the shape the
/// auto-vectorizer and the out-of-order core both want. The only
/// non-contiguous access left in the check pass is the unavoidable
/// `totals[var]` gather, served by the pre-transposed `slot_vars` table.
///
/// `edge_to_slot` maps the graph's check-major edge ids onto slots so the
/// variable-node accumulation can still run in ascending *edge* order (the
/// bit-compatibility contract for `f64` totals).
#[derive(Debug, Clone)]
pub(crate) struct BlockedChecks {
    classes: Vec<DegreeClass>,
    /// Variable index of each slot (edge_vars permuted into slot order).
    slot_vars: Vec<u32>,
    /// Slot of each edge (inverse of the edge→slot permutation).
    edge_to_slot: Vec<u32>,
}

#[derive(Debug, Clone)]
struct DegreeClass {
    degree: usize,
    /// First slot of the class's column-major plane region.
    slot_base: usize,
    checks: Vec<u32>,
}

impl BlockedChecks {
    pub(crate) fn new(graph: &TannerGraph) -> Self {
        let offsets = graph.check_offsets();
        let edge_vars = graph.edge_vars();
        let mut classes: Vec<DegreeClass> = Vec::new();
        for c in 0..graph.check_count() {
            let degree = (offsets[c + 1] - offsets[c]) as usize;
            match classes.iter_mut().find(|k| k.degree == degree) {
                Some(class) => class.checks.push(c as u32),
                None => classes.push(DegreeClass { degree, slot_base: 0, checks: vec![c as u32] }),
            }
        }
        let mut slot_vars = vec![0u32; graph.edge_count()];
        let mut edge_to_slot = vec![0u32; graph.edge_count()];
        let mut slot_base = 0usize;
        for class in &mut classes {
            class.slot_base = slot_base;
            let m = class.checks.len();
            for (i, &c) in class.checks.iter().enumerate() {
                let start = offsets[c as usize] as usize;
                for j in 0..class.degree {
                    let slot = slot_base + j * m + i;
                    let e = start + j;
                    slot_vars[slot] = edge_vars[e];
                    edge_to_slot[e] = slot as u32;
                }
            }
            slot_base += m * class.degree;
        }
        BlockedChecks { classes, slot_vars, edge_to_slot }
    }

    /// Slot of each check-major edge id (for edge-order accumulation).
    pub(crate) fn edge_to_slot(&self) -> &[u32] {
        &self.edge_to_slot
    }
}

/// A-posteriori totals from transposed-plane messages: identical to
/// [`accumulate_totals`] — ascending edge order, channel LLR added last —
/// reading each message through the edge→slot permutation.
#[inline(always)]
pub(crate) fn accumulate_totals_slotted<F: LlrFloat>(
    edge_vars: &[u32],
    edge_to_slot: &[u32],
    llr: &[F],
    c2v_t: &[F],
    totals: &mut [F],
) {
    totals.fill(F::ZERO);
    for (&v, &slot) in edge_vars.iter().zip(edge_to_slot) {
        totals[v as usize] += c2v_t[slot as usize];
    }
    for (t, &l) in totals.iter_mut().zip(llr) {
        *t = l + *t;
    }
}

/// Lane count of one kernel stripe: wide enough that contiguous column
/// runs vectorize and the recurrence has abundant independent lanes, small
/// enough that the stripe's state plus its plane columns stay L1-resident.
const STRIPE: usize = 1024;

/// Check-node half-iteration for the min-sum rules over the transposed
/// planes (`v2c_t`/`c2v_t` in [`BlockedChecks`] slot order): gathers every
/// input (`v2c_t[s] = totals[var] - c2v_t[s]`) and writes every extrinsic
/// into `c2v_t`.
///
/// Each degree class is processed in stripes of [`STRIPE`] checks, column
/// by column. All plane and state accesses are contiguous (the minimum's
/// position is tracked as a *column* index, compared against the
/// loop-invariant column number), so the inner loops are dense, branchless,
/// and independent across lanes; only the `totals` gather is indexed.
///
/// Per check this performs exactly the arithmetic of
/// [`CheckRule::extrinsic_t`] in the same within-check edge order (column
/// `j` of a check *is* its edge `start + j`), so the `f64` instantiation
/// stays bit-compatible with the scalar kernel. Totals are deliberately
/// NOT accumulated here: scattering in column order would reorder each
/// variable's sum; callers follow with [`accumulate_totals_slotted`],
/// which adds in ascending edge order.
#[inline(always)]
pub(crate) fn blocked_min_sum_pass<F: LlrFloat>(
    blocked: &BlockedChecks,
    rule: &CheckRule,
    totals: &[F],
    v2c_t: &mut [F],
    c2v_t: &mut [F],
    correct: impl Fn(F) -> F,
) {
    let slot_vars = &blocked.slot_vars[..];
    for class in &blocked.classes {
        let d = class.degree;
        let m = class.checks.len();
        let base = class.slot_base;
        if d < 3 {
            // Degenerate checks take the rule's special-cased path.
            let mut tmp_in = [F::ZERO; 2];
            let mut tmp_out = [F::ZERO; 2];
            for i in 0..m {
                for (j, t) in tmp_in[..d].iter_mut().enumerate() {
                    let s = base + j * m + i;
                    *t = totals[slot_vars[s] as usize] - c2v_t[s];
                }
                rule.extrinsic_t(&tmp_in[..d], &mut tmp_out[..d]);
                for (j, (&inp, &out)) in tmp_in[..d].iter().zip(&tmp_out[..d]).enumerate() {
                    let s = base + j * m + i;
                    v2c_t[s] = inp;
                    c2v_t[s] = out;
                }
            }
            continue;
        }
        let mut i0 = 0;
        while i0 < m {
            let b = STRIPE.min(m - i0);
            let mut min1 = [F::INFINITY; STRIPE];
            let mut min2 = [F::INFINITY; STRIPE];
            let mut min_col = [0u32; STRIPE];
            let mut negative_signs = [0u32; STRIPE];
            for j in 0..d {
                let col = base + j * m + i0;
                let vars = &slot_vars[col..col + b];
                let v2c_col = &mut v2c_t[col..col + b];
                let c2v_col = &c2v_t[col..col + b];
                let jj = j as u32;
                // Gather first, reduce second: the indexed `totals` load
                // cannot vectorize, so keeping it in its own dense loop
                // lets the minima loop below run purely on contiguous
                // arrays.
                for i in 0..b {
                    v2c_col[i] = totals[vars[i] as usize] - c2v_col[i];
                }
                for i in 0..b {
                    let x = v2c_col[i];
                    let mag = x.abs();
                    // Two-smallest recurrence as min/max plus a mask blend
                    // for the column index: the new second minimum is
                    // min(min2, max(min1, mag)) — if `mag` beats min1, the
                    // displaced min1 is the candidate, otherwise `mag`
                    // itself is. Exact value selection, no data-dependent
                    // branches.
                    let smaller = mag < min1[i];
                    min2[i] = min2[i].min(min1[i].max(mag));
                    min1[i] = min1[i].min(mag);
                    let mask = (smaller as u32).wrapping_neg();
                    min_col[i] = (jj & mask) | (min_col[i] & !mask);
                    negative_signs[i] += x.is_negative() as u32;
                }
            }
            for j in 0..d {
                let col = base + j * m + i0;
                let v2c_col = &v2c_t[col..col + b];
                let c2v_col = &mut c2v_t[col..col + b];
                let jj = j as u32;
                for i in 0..b {
                    let mag = correct(F::select(min_col[i] == jj, min2[i], min1[i]));
                    let flip = (negative_signs[i] + v2c_col[i].is_negative() as u32) & 1 == 1;
                    c2v_col[i] = mag.flip_sign_if(flip);
                }
            }
            i0 += b;
        }
    }
}

/// Check-node half-iteration for the table-driven sum-product rule over the
/// transposed planes: the prefix/suffix structure of the scalar
/// `TableSumProduct` kernel run column by column, so the serial boxplus
/// recurrences of a whole stripe of checks interleave. Check by check the
/// chain of dependent table lookups is the bottleneck (each one must retire
/// before the next starts); column by column every lane's chain advances one
/// link per pass over a dense array, and the out-of-order core overlaps
/// hundreds of them.
///
/// All accumulation runs in `f32` exactly like the scalar kernel, and the
/// `c2v` plane doubles as the suffix store — `f32 -> F -> f32` round-trips
/// are lossless in both precisions, so per check the operation sequence (and
/// therefore the output, bit for bit) is identical to
/// [`CheckRule::extrinsic_t`] on that check's messages.
pub(crate) fn blocked_table_sum_product_pass<F: LlrFloat>(
    blocked: &BlockedChecks,
    totals: &[F],
    v2c_t: &mut [F],
    c2v_t: &mut [F],
) {
    let table = boxplus_correction_table();
    let as32 = |x: F| x.to_f64() as f32;
    let of32 = |x: f32| F::from_f64(x as f64);
    let slot_vars = &blocked.slot_vars[..];
    for class in &blocked.classes {
        let d = class.degree;
        let m = class.checks.len();
        let base = class.slot_base;
        if d < 3 {
            // Degenerate checks take the rule's special-cased path.
            let mut tmp_in = [F::ZERO; 2];
            let mut tmp_out = [F::ZERO; 2];
            for i in 0..m {
                for (j, t) in tmp_in[..d].iter_mut().enumerate() {
                    let s = base + j * m + i;
                    *t = totals[slot_vars[s] as usize] - c2v_t[s];
                }
                CheckRule::TableSumProduct.extrinsic_t(&tmp_in[..d], &mut tmp_out[..d]);
                for (j, (&inp, &out)) in tmp_in[..d].iter().zip(&tmp_out[..d]).enumerate() {
                    let s = base + j * m + i;
                    v2c_t[s] = inp;
                    c2v_t[s] = out;
                }
            }
            continue;
        }
        let mut i0 = 0;
        while i0 < m {
            let b = STRIPE.min(m - i0);
            // Gather every column first: the suffix sweep below overwrites
            // `c2v`, which the gather still reads.
            for j in 0..d {
                let col = base + j * m + i0;
                let vars = &slot_vars[col..col + b];
                for i in 0..b {
                    v2c_t[col + i] = totals[vars[i] as usize] - c2v_t[col + i];
                }
            }
            // Suffix sweep into the c2v plane:
            // suffix[j] = in[j] ⊞ suffix[j+1], seeded with in[d-1] rounded
            // once to f32 (column 0's suffix is never read, so it is never
            // computed).
            let tail = base + (d - 1) * m + i0;
            for i in 0..b {
                c2v_t[tail + i] = of32(as32(v2c_t[tail + i]));
            }
            for j in (1..d - 1).rev() {
                let col = base + j * m + i0;
                for i in 0..b {
                    let s =
                        boxplus_table_with(table, as32(v2c_t[col + i]), as32(c2v_t[col + m + i]));
                    c2v_t[col + i] = of32(s);
                }
            }
            // Forward sweep: out[j] = prefix[j-1] ⊞ suffix[j+1], reading
            // each suffix column before the next iteration overwrites it.
            let mut prefix = [0.0f32; STRIPE];
            let col0 = base + i0;
            for i in 0..b {
                prefix[i] = as32(v2c_t[col0 + i]);
            }
            for i in 0..b {
                c2v_t[col0 + i] = c2v_t[col0 + m + i];
            }
            for j in 1..d - 1 {
                let col = base + j * m + i0;
                for i in 0..b {
                    let out = boxplus_table_with(table, prefix[i], as32(c2v_t[col + m + i]));
                    prefix[i] = boxplus_table_with(table, prefix[i], as32(v2c_t[col + i]));
                    c2v_t[col + i] = of32(out);
                }
            }
            for i in 0..b {
                c2v_t[tail + i] = of32(prefix[i]);
            }
            i0 += b;
        }
    }
}

/// Multi-frame check-node half-iteration over the transposed planes: the
/// batched counterpart of [`blocked_min_sum_pass`].
///
/// Layout: every plane slot and every variable owns `batch` consecutive
/// lanes, one per frame (`plane[slot * batch + frame]`,
/// `totals[var * batch + frame]` — frame-major interleaving, the GPU
/// multi-codeword trick). One `slot_vars` load then serves `batch` gathers
/// from consecutive addresses, amortizing the only indexed access of the
/// kernel across every frame in the batch; all other loops run over
/// contiguous lane runs exactly like the single-frame kernel.
///
/// Stripes shrink from [`STRIPE`] checks to `STRIPE / batch` so the state
/// arrays keep the same L1 footprint. Per (check, frame) lane the arithmetic
/// is identical, in identical order, to [`blocked_min_sum_pass`] on that
/// frame alone — striping groups lanes but never reorders a check's own
/// recurrence — so batched decodes are bit-identical per frame to
/// single-frame decodes at the same precision.
///
/// # Panics
///
/// Debug-asserts `1 <= batch <= STRIPE`.
#[inline(always)]
pub(crate) fn batched_min_sum_pass<F: LlrFloat>(
    blocked: &BlockedChecks,
    rule: &CheckRule,
    batch: usize,
    totals: &[F],
    v2c_t: &mut [F],
    c2v_t: &mut [F],
    correct: impl Fn(F) -> F,
) {
    debug_assert!((1..=STRIPE).contains(&batch), "batch {batch} out of range");
    let slot_vars = &blocked.slot_vars[..];
    for class in &blocked.classes {
        let d = class.degree;
        let m = class.checks.len();
        let base = class.slot_base;
        if d < 3 {
            // Degenerate checks take the rule's special-cased path, one
            // (check, frame) lane at a time.
            let mut tmp_in = [F::ZERO; 2];
            let mut tmp_out = [F::ZERO; 2];
            for i in 0..m {
                for fb in 0..batch {
                    for (j, t) in tmp_in[..d].iter_mut().enumerate() {
                        let s = base + j * m + i;
                        *t = totals[slot_vars[s] as usize * batch + fb] - c2v_t[s * batch + fb];
                    }
                    rule.extrinsic_t(&tmp_in[..d], &mut tmp_out[..d]);
                    for (j, (&inp, &out)) in tmp_in[..d].iter().zip(&tmp_out[..d]).enumerate() {
                        let s = base + j * m + i;
                        v2c_t[s * batch + fb] = inp;
                        c2v_t[s * batch + fb] = out;
                    }
                }
            }
            continue;
        }
        let checks_per_stripe = (STRIPE / batch).max(1);
        let mut i0 = 0;
        while i0 < m {
            let bc = checks_per_stripe.min(m - i0);
            let lanes = bc * batch;
            let mut min1 = [F::INFINITY; STRIPE];
            let mut min2 = [F::INFINITY; STRIPE];
            let mut min_col = [0u32; STRIPE];
            let mut negative_signs = [0u32; STRIPE];
            for j in 0..d {
                let col = base + j * m + i0;
                let vars = &slot_vars[col..col + bc];
                let pbase = col * batch;
                let v2c_col = &mut v2c_t[pbase..pbase + lanes];
                let c2v_col = &c2v_t[pbase..pbase + lanes];
                let jj = j as u32;
                for (i, &var) in vars.iter().enumerate() {
                    let tb = var as usize * batch;
                    let lb = i * batch;
                    for fb in 0..batch {
                        v2c_col[lb + fb] = totals[tb + fb] - c2v_col[lb + fb];
                    }
                }
                for l in 0..lanes {
                    let x = v2c_col[l];
                    let mag = x.abs();
                    let smaller = mag < min1[l];
                    min2[l] = min2[l].min(min1[l].max(mag));
                    min1[l] = min1[l].min(mag);
                    let mask = (smaller as u32).wrapping_neg();
                    min_col[l] = (jj & mask) | (min_col[l] & !mask);
                    negative_signs[l] += x.is_negative() as u32;
                }
            }
            for j in 0..d {
                let col = base + j * m + i0;
                let pbase = col * batch;
                let v2c_col = &v2c_t[pbase..pbase + lanes];
                let c2v_col = &mut c2v_t[pbase..pbase + lanes];
                let jj = j as u32;
                for l in 0..lanes {
                    let mag = correct(F::select(min_col[l] == jj, min2[l], min1[l]));
                    let flip = (negative_signs[l] + v2c_col[l].is_negative() as u32) & 1 == 1;
                    c2v_col[l] = mag.flip_sign_if(flip);
                }
            }
            i0 += bc;
        }
    }
}

/// Batched a-posteriori totals: per frame identical (bit-identical
/// summation order) to [`accumulate_totals_slotted`] — ascending edge
/// order, channel LLR added last — with every addition amortizing its
/// `edge_vars`/`edge_to_slot` loads across the `batch` frame lanes.
#[inline(always)]
pub(crate) fn batched_accumulate_totals_slotted<F: LlrFloat>(
    edge_vars: &[u32],
    edge_to_slot: &[u32],
    batch: usize,
    llr: &[F],
    c2v_t: &[F],
    totals: &mut [F],
) {
    totals.fill(F::ZERO);
    for (&v, &slot) in edge_vars.iter().zip(edge_to_slot) {
        let tb = v as usize * batch;
        let sb = slot as usize * batch;
        for fb in 0..batch {
            totals[tb + fb] += c2v_t[sb + fb];
        }
    }
    for (t, &l) in totals.iter_mut().zip(llr) {
        *t = l + *t;
    }
}

// ---------------------------------------------------------------------------
// Runtime SIMD dispatch.
//
// Each `*_tier` function selects among clones of the kernel above it,
// compiled with progressively wider `#[target_feature]` sets. The clones
// call the `#[inline(always)]` base kernel, so the whole loop nest inherits
// the wrapper's feature set and the auto-vectorizer emits 256-/512-bit code
// without a compile-time `target-cpu` floor. The clones are the SAME Rust —
// identical operation order, no contraction — so every tier is bit-identical
// (pinned by `tests/tiled.rs`). Callers resolve a `SimdTier` once per
// decoder via `SimdTier::resolve`, which guarantees the tier is supported,
// making the `unsafe` target-feature calls sound.

macro_rules! tier_kernel_clones {
    ($(#[$doc:meta])* $dispatch:ident, $base:ident, $avx2:ident, $avx512:ident;
     ($($arg:ident: $ty:ty),* $(,)?)) => {
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2")]
        unsafe fn $avx2<F: LlrFloat>($($arg: $ty,)* correct: impl Fn(F) -> F) {
            $base($($arg,)* correct);
        }

        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx512f")]
        unsafe fn $avx512<F: LlrFloat>($($arg: $ty,)* correct: impl Fn(F) -> F) {
            $base($($arg,)* correct);
        }

        $(#[$doc])*
        #[allow(clippy::too_many_arguments)]
        pub(crate) fn $dispatch<F: LlrFloat>(
            tier: SimdTier,
            $($arg: $ty,)*
            correct: impl Fn(F) -> F,
        ) {
            match tier {
                #[cfg(target_arch = "x86_64")]
                SimdTier::Avx2 => unsafe { $avx2($($arg,)* correct) },
                #[cfg(target_arch = "x86_64")]
                SimdTier::Avx512 => unsafe { $avx512($($arg,)* correct) },
                _ => $base($($arg,)* correct),
            }
        }
    };
}

macro_rules! tier_accumulate_clones {
    ($(#[$doc:meta])* $dispatch:ident, $base:ident, $avx2:ident, $avx512:ident;
     ($($arg:ident: $ty:ty),* $(,)?)) => {
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2")]
        unsafe fn $avx2<F: LlrFloat>($($arg: $ty),*) {
            $base($($arg),*);
        }

        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx512f")]
        unsafe fn $avx512<F: LlrFloat>($($arg: $ty),*) {
            $base($($arg),*);
        }

        $(#[$doc])*
        pub(crate) fn $dispatch<F: LlrFloat>(tier: SimdTier, $($arg: $ty),*) {
            match tier {
                #[cfg(target_arch = "x86_64")]
                SimdTier::Avx2 => unsafe { $avx2($($arg),*) },
                #[cfg(target_arch = "x86_64")]
                SimdTier::Avx512 => unsafe { $avx512($($arg),*) },
                _ => $base($($arg),*),
            }
        }
    };
}

tier_kernel_clones!(
    /// [`blocked_min_sum_pass`] dispatched onto the selected SIMD tier.
    blocked_min_sum_pass_tier, blocked_min_sum_pass,
    blocked_min_sum_pass_avx2, blocked_min_sum_pass_avx512;
    (blocked: &BlockedChecks, rule: &CheckRule, totals: &[F], v2c_t: &mut [F], c2v_t: &mut [F])
);

tier_kernel_clones!(
    /// [`batched_min_sum_pass`] dispatched onto the selected SIMD tier.
    batched_min_sum_pass_tier, batched_min_sum_pass,
    batched_min_sum_pass_avx2, batched_min_sum_pass_avx512;
    (
        blocked: &BlockedChecks,
        rule: &CheckRule,
        batch: usize,
        totals: &[F],
        v2c_t: &mut [F],
        c2v_t: &mut [F],
    )
);

tier_accumulate_clones!(
    /// [`accumulate_totals_slotted`] dispatched onto the selected SIMD tier.
    accumulate_totals_slotted_tier, accumulate_totals_slotted,
    accumulate_totals_slotted_avx2, accumulate_totals_slotted_avx512;
    (edge_vars: &[u32], edge_to_slot: &[u32], llr: &[F], c2v_t: &[F], totals: &mut [F])
);

tier_accumulate_clones!(
    /// [`batched_accumulate_totals_slotted`] dispatched onto the selected
    /// SIMD tier.
    batched_accumulate_totals_slotted_tier, batched_accumulate_totals_slotted,
    batched_accumulate_totals_slotted_avx2, batched_accumulate_totals_slotted_avx512;
    (
        edge_vars: &[u32],
        edge_to_slot: &[u32],
        batch: usize,
        llr: &[F],
        c2v_t: &[F],
        totals: &mut [F],
    )
);

/// [`syndrome_ok_totals`] for one frame lane of a batched totals plane.
pub(crate) fn syndrome_ok_totals_lane<F: LlrFloat>(
    graph: &TannerGraph,
    totals: &[F],
    batch: usize,
    frame: usize,
) -> bool {
    let offsets = graph.check_offsets();
    let edge_vars = graph.edge_vars();
    for c in 0..graph.check_count() {
        let range = offsets[c] as usize..offsets[c + 1] as usize;
        let mut parity = 0u32;
        for &v in &edge_vars[range] {
            parity ^= totals[v as usize * batch + frame].is_negative() as u32;
        }
        if parity != 0 {
            return false;
        }
    }
    true
}

/// `true` when the hard decisions implied by the totals' signs satisfy
/// every check equation. Equivalent to `syndrome_ok(graph,
/// &hard_decisions(totals))` but streams the check-major edge layout
/// without materialising a bit vector.
pub(crate) fn syndrome_ok_totals<F: LlrFloat>(graph: &TannerGraph, totals: &[F]) -> bool {
    let offsets = graph.check_offsets();
    let edge_vars = graph.edge_vars();
    for c in 0..graph.check_count() {
        let range = offsets[c] as usize..offsets[c + 1] as usize;
        let mut parity = 0u32;
        for &v in &edge_vars[range] {
            parity ^= totals[v as usize].is_negative() as u32;
        }
        if parity != 0 {
            return false;
        }
    }
    true
}

/// Writes the hard decisions (`total < 0` ⇒ bit 1) into a preallocated bit
/// vector of matching length.
///
/// # Panics
///
/// Panics if `out.len() != totals.len()`.
pub(crate) fn hard_decisions_into<F: LlrFloat>(totals: &[F], out: &mut dvbs2_ldpc::BitVec) {
    assert_eq!(out.len(), totals.len(), "length mismatch");
    for (i, &t) in totals.iter().enumerate() {
        out.set(i, t.is_negative());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stopping::{hard_decisions, syndrome_ok};
    use crate::test_support::small_code;

    #[test]
    fn accumulate_totals_matches_per_variable_gather() {
        let (_, graph) = small_code();
        let edges = graph.edge_count();
        let mut rng = crate::test_support::SplitMix64(9);
        let llr: Vec<f64> = (0..graph.var_count()).map(|_| rng.next_f64() - 0.5).collect();
        let c2v: Vec<f64> = (0..edges).map(|_| rng.next_f64() - 0.5).collect();
        let mut totals = vec![0.0f64; graph.var_count()];
        accumulate_totals(graph.edge_vars(), &llr, &c2v, &mut totals);
        for v in 0..graph.var_count() {
            let want: f64 =
                llr[v] + graph.var_edges(v).iter().map(|&e| c2v[e as usize]).sum::<f64>();
            // Bit-identical, not approximately equal: same summation order.
            assert_eq!(totals[v], want, "var {v}");
        }
    }

    #[test]
    fn fused_pass_matches_separate_gather_kernel_accumulate() {
        let (_, graph) = small_code();
        let edges = graph.edge_count();
        let mut rng = crate::test_support::SplitMix64(11);
        let llr: Vec<f64> = (0..graph.var_count()).map(|_| rng.next_f64() - 0.5).collect();
        let c2v_start: Vec<f64> = (0..edges).map(|_| rng.next_f64() - 0.5).collect();
        let mut totals = vec![0.0f64; graph.var_count()];
        accumulate_totals(graph.edge_vars(), &llr, &c2v_start, &mut totals);

        // Fused path.
        let rule = CheckRule::SumProduct;
        let mut v2c = vec![0.0f64; edges];
        let mut c2v = c2v_start.clone();
        let mut totals_next = vec![0.0f64; graph.var_count()];
        fused_check_pass(&graph, &rule, &llr, &totals, &mut v2c, &mut c2v, &mut totals_next);

        // Reference: explicit gather, per-check kernel, then accumulate.
        let mut ref_v2c = vec![0.0f64; edges];
        for (e, o) in ref_v2c.iter_mut().enumerate() {
            *o = totals[graph.var_of_edge(e)] - c2v_start[e];
        }
        let mut ref_c2v = c2v_start;
        for c in 0..graph.check_count() {
            let range = graph.check_edges(c);
            rule.extrinsic_t(&ref_v2c[range.clone()], &mut ref_c2v[range]);
        }
        let mut ref_totals = vec![0.0f64; graph.var_count()];
        accumulate_totals(graph.edge_vars(), &llr, &ref_c2v, &mut ref_totals);

        assert_eq!(c2v, ref_c2v);
        assert_eq!(totals_next, ref_totals); // bit-identical summation order
    }

    #[test]
    fn syndrome_and_decisions_agree_with_bitvec_path() {
        let (_, graph) = small_code();
        let mut rng = crate::test_support::SplitMix64(4);
        for _ in 0..4 {
            let totals: Vec<f64> = (0..graph.var_count()).map(|_| rng.next_f64() - 0.5).collect();
            let bits = hard_decisions(&totals);
            assert_eq!(syndrome_ok_totals(&graph, &totals), syndrome_ok(&graph, &bits));
            let mut out = dvbs2_ldpc::BitVec::zeros(totals.len());
            hard_decisions_into(&totals, &mut out);
            assert_eq!(out, bits);
        }
    }

    /// Brute-force min-sum with the "first strict minimum" tie-break: the
    /// retained minimum index is the first position whose magnitude is
    /// strictly smaller than everything before it. Works for any degree >= 2.
    fn first_strict_min_reference(ins: &[f64], outs: &mut [f64]) {
        let mut min1 = f64::INFINITY;
        let mut min2 = f64::INFINITY;
        let mut min_idx = 0usize;
        let mut neg = 0u32;
        for (j, &x) in ins.iter().enumerate() {
            let mag = x.abs();
            if mag < min1 {
                min2 = min1;
                min1 = mag;
                min_idx = j;
            } else if mag < min2 {
                min2 = mag;
            }
            neg += (x < 0.0) as u32;
        }
        for (j, (&x, o)) in ins.iter().zip(outs.iter_mut()).enumerate() {
            let mag = if j == min_idx { min2 } else { min1 };
            let flip = (neg - (x < 0.0) as u32) % 2 == 1;
            *o = if flip { -mag } else { mag };
        }
    }

    #[test]
    fn min_sum_tie_break_keeps_first_strict_minimum() {
        // Duplicate minima are the interesting case: coarse-grid magnitudes
        // make almost every check see an exact tie, and the retained index
        // must be the FIRST strict minimum in both the scalar rule and the
        // blocked two-pass kernel (mask-blend index tracking).
        let (_, graph) = small_code();
        let blocked = BlockedChecks::new(&graph);
        let edges = graph.edge_count();
        let mut rng = crate::test_support::SplitMix64(23);
        let totals: Vec<f64> = (0..graph.var_count())
            .map(|_| {
                let mag = (rng.next_u64() % 3 + 1) as f64 * 0.5;
                if rng.next_bool() {
                    -mag
                } else {
                    mag
                }
            })
            .collect();
        let rule = CheckRule::NormalizedMinSum(1.0);
        let mut v2c_t = vec![0.0f64; edges];
        let mut c2v_t = vec![0.0f64; edges];
        blocked_min_sum_pass(&blocked, &rule, &totals, &mut v2c_t, &mut c2v_t, |x| x);

        let edge_vars = graph.edge_vars();
        for c in 0..graph.check_count() {
            let range = graph.check_edges(c);
            let ins: Vec<f64> =
                edge_vars[range.clone()].iter().map(|&v| totals[v as usize]).collect();
            let mut want = vec![0.0; ins.len()];
            first_strict_min_reference(&ins, &mut want);
            let mut scalar = vec![0.0; ins.len()];
            rule.extrinsic_t(&ins, &mut scalar);
            assert_eq!(scalar, want, "check {c}: scalar rule");
            for (k, e) in range.enumerate() {
                let slot = blocked.edge_to_slot[e] as usize;
                assert_eq!(c2v_t[slot], want[k], "check {c} edge {e}: blocked kernel");
            }
        }
    }

    #[test]
    fn blocked_table_pass_matches_scalar_kernel_per_check() {
        // The column-major table-boxplus sweep must emit, check for check,
        // exactly the scalar `extrinsic_t` outputs — same f32 accumulation,
        // same operation order — in both plane precisions.
        fn run<F: LlrFloat>(seed: u64) {
            let (_, graph) = small_code();
            let blocked = BlockedChecks::new(&graph);
            let edges = graph.edge_count();
            let mut rng = crate::test_support::SplitMix64(seed);
            let totals: Vec<F> =
                (0..graph.var_count()).map(|_| F::from_f64(8.0 * rng.next_f64() - 4.0)).collect();
            let c2v_start: Vec<F> =
                (0..edges).map(|_| F::from_f64(2.0 * rng.next_f64() - 1.0)).collect();
            let mut v2c_t = vec![F::ZERO; edges];
            let mut c2v_t = c2v_start.clone();
            blocked_table_sum_product_pass(&blocked, &totals, &mut v2c_t, &mut c2v_t);

            let edge_vars = graph.edge_vars();
            for c in 0..graph.check_count() {
                let range = graph.check_edges(c);
                let ins: Vec<F> = range
                    .clone()
                    .map(|e| {
                        totals[edge_vars[e] as usize] - c2v_start[blocked.edge_to_slot[e] as usize]
                    })
                    .collect();
                let mut want = vec![F::ZERO; ins.len()];
                CheckRule::TableSumProduct.extrinsic_t(&ins, &mut want);
                for (k, e) in range.enumerate() {
                    let slot = blocked.edge_to_slot[e] as usize;
                    assert_eq!(v2c_t[slot], ins[k], "check {c} edge {e}: gather");
                    assert_eq!(c2v_t[slot], want[k], "check {c} edge {e}: extrinsic");
                }
            }
        }
        run::<f32>(29);
        run::<f64>(31);
    }

    #[test]
    fn f32_helpers_round_trip() {
        let llr = [1.5f64, -2.0, 0.25];
        let mut dst = [0.0f32; 3];
        load_llrs(&mut dst, &llr);
        assert_eq!(dst, [1.5f32, -2.0, 0.25]);
    }

    #[test]
    fn load_llrs_sanitizes_non_finite_inputs() {
        let raw = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 1e300, -1e300, 3.5, -0.25];
        let mut f64_dst = [0.0f64; 7];
        load_llrs(&mut f64_dst, &raw);
        assert_eq!(f64_dst, [0.0, LLR_CLAMP, -LLR_CLAMP, LLR_CLAMP, -LLR_CLAMP, 3.5, -0.25]);
        // Clamping happens in f64, so a huge finite f64 cannot sneak an inf
        // through the f32 narrowing.
        let mut f32_dst = [0.0f32; 7];
        load_llrs(&mut f32_dst, &raw);
        assert!(f32_dst.iter().all(|x| x.is_finite()));
        assert_eq!(f32_dst[5], 3.5f32);
    }
}
