//! Shared fixtures for decoder tests (also used by downstream crates'
//! test suites). Not part of the stable API.
//!
//! Self-contained: uses a SplitMix64 PRNG and Box–Muller noise so the
//! library itself needs no RNG dependency.

#![allow(missing_docs)]

use dvbs2_ldpc::{BitVec, CodeRate, DvbS2Code, FrameSize, TannerGraph};

/// A tiny deterministic PRNG (SplitMix64) for fixtures.
#[derive(Debug, Clone)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// One standard-normal sample (Box–Muller, cosine branch).
    pub fn next_gaussian(&mut self) -> f64 {
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

/// A short-frame rate-1/2 code: small enough for fast unit tests, large
/// enough to exercise all structure.
pub fn small_code() -> (DvbS2Code, TannerGraph) {
    let code = DvbS2Code::new(CodeRate::R1_2, FrameSize::Short).unwrap();
    let graph = code.tanner_graph();
    (code, graph)
}

/// Noise-free channel LLRs for a codeword: `+mag` for bit 0, `-mag` for 1.
pub fn llrs_for_codeword(cw: &BitVec, mag: f64) -> Vec<f64> {
    cw.iter().map(|b| if b { -mag } else { mag }).collect()
}

/// Encodes a random message and passes it through BPSK + AWGN at the given
/// `Eb/N0`, returning the codeword and the channel LLRs.
pub fn noisy_llrs(code: &DvbS2Code, ebn0_db: f64, seed: u64) -> (BitVec, Vec<f64>) {
    let params = *code.params();
    let enc = code.encoder().unwrap();
    let mut rng = SplitMix64(seed);
    let msg: BitVec = (0..params.k).map(|_| rng.next_bool()).collect();
    let cw = enc.encode(&msg).unwrap();
    let rate = params.k as f64 / params.n as f64;
    let sigma2 = 1.0 / (2.0 * rate * 10f64.powf(ebn0_db / 10.0));
    let sigma = sigma2.sqrt();
    let llrs = cw
        .iter()
        .map(|b| {
            let x = if b { -1.0 } else { 1.0 };
            let y = x + sigma * rng.next_gaussian();
            2.0 * y / sigma2
        })
        .collect();
    (cw, llrs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64(1);
        let mut b = SplitMix64(1);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn noisy_llrs_mostly_agree_with_codeword_at_high_snr() {
        let (code, _) = small_code();
        let (cw, llrs) = noisy_llrs(&code, 8.0, 3);
        let agreements = llrs.iter().enumerate().filter(|&(i, &l)| (l < 0.0) == cw.get(i)).count();
        assert!(agreements as f64 / llrs.len() as f64 > 0.99);
    }
}
