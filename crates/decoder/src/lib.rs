//! Message-passing decoders for DVB-S2 LDPC codes.
//!
//! Implements the decoding algorithms of the DATE 2005 paper *"A
//! Synthesizable IP Core for DVB-S2 LDPC Code Decoding"*:
//!
//! * [`FloodingDecoder`] — conventional two-phase belief propagation
//!   (the paper's Figure 2a baseline);
//! * [`ZigzagDecoder`] — the paper's optimized schedule with sequential
//!   forward updates through the degree-2 parity chain (Figure 2b), which
//!   converges in ≈ 30 iterations where flooding needs ≈ 40 and halves the
//!   parity-message storage;
//! * [`LayeredDecoder`] — a layered schedule (extension);
//! * [`QuantizedZigzagDecoder`] — the 5/6-bit fixed-point model that the
//!   cycle-accurate hardware core reproduces bit-exactly;
//! * [`CheckRule`] — sum-product (Eq. 5) and min-sum variants.
//!
//! # Example
//!
//! ```
//! use dvbs2_decoder::{Decoder, DecoderConfig, ZigzagDecoder};
//! use dvbs2_ldpc::{CodeRate, DvbS2Code, FrameSize};
//! use std::sync::Arc;
//! # fn main() -> Result<(), dvbs2_ldpc::CodeError> {
//! let code = DvbS2Code::new(CodeRate::R1_2, FrameSize::Short)?;
//! let graph = Arc::new(code.tanner_graph());
//! let mut decoder = ZigzagDecoder::new(graph, DecoderConfig::default());
//!
//! // A noise-free all-zero codeword: +1 LLR everywhere.
//! let llrs = vec![1.0; code.params().n];
//! let result = decoder.decode(&llrs);
//! assert!(result.converged);
//! assert_eq!(result.bits.count_ones(), 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod bitflip;
mod de;
mod engine;
mod flooding;
mod layered;
mod llr_ops;
mod qdecoder;
mod qsimd;
mod quant;
mod simd;
mod stopping;
mod threshold;
mod tile;
mod zigzag;

#[doc(hidden)]
pub mod test_support;

pub use bitflip::BitFlippingDecoder;
pub use de::{Density, DensityEvolution};
pub use engine::{Precision, LLR_CLAMP};
pub use flooding::FloodingDecoder;
pub use layered::LayeredDecoder;
pub use llr_ops::{boxplus, boxplus_min, boxplus_t, boxplus_table, CheckRule, LlrFloat};
pub use qdecoder::{ChainPartition, QuantizedZigzagDecoder};
pub use quant::{QBoxplus, QCheckArithmetic, Quantizer};
pub use simd::{detected_cpu_features, SimdTier};
pub use stopping::{
    hard_decisions, hard_decisions_int, hard_decisions_int_into, syndrome_ok, syndrome_weight,
};
pub use threshold::{
    ga_converges, ga_threshold_ebn0_db, ga_threshold_sigma, phi, phi_inv, DegreeDistribution,
};
pub use tile::{TileGeometry, TileSchedule, TiledBatchDecoder, MAX_TILE_WIDTH};
pub use zigzag::ZigzagDecoder;

use dvbs2_ldpc::BitVec;

/// Iteration policy and check-node rule shared by all decoders.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecoderConfig {
    /// Iteration cap. The paper uses 30 for the zigzag schedule (equivalent
    /// to 40 with the conventional schedule).
    pub max_iterations: usize,
    /// Stop as soon as the hard decisions satisfy every parity check.
    pub early_stop: bool,
    /// Check-node update rule.
    pub rule: CheckRule,
    /// Message precision. `F64` (the default) is bit-compatible with the
    /// original double-precision decoders; `F32` is the fast path.
    pub precision: Precision,
    /// Forced SIMD dispatch tier, or `None` (the default) to auto-detect
    /// the widest tier the CPU supports. Every tier computes bit-identical
    /// results; this knob exists for tests and benchmarks that pin a tier,
    /// and is per-decoder so parallel tests never race on the process-wide
    /// `DVBS2_SIMD` environment override.
    pub simd: Option<SimdTier>,
}

impl Default for DecoderConfig {
    fn default() -> Self {
        DecoderConfig {
            max_iterations: 30,
            early_stop: true,
            rule: CheckRule::SumProduct,
            precision: Precision::F64,
            simd: None,
        }
    }
}

impl DecoderConfig {
    /// The paper's operating point: 30 iterations, sum-product, early stop.
    pub fn paper() -> Self {
        Self::default()
    }

    /// Returns the config with a different iteration cap.
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Returns the config with a different check rule.
    pub fn with_rule(mut self, rule: CheckRule) -> Self {
        self.rule = rule;
        self
    }

    /// Returns the config with early termination enabled or disabled.
    pub fn with_early_stop(mut self, early_stop: bool) -> Self {
        self.early_stop = early_stop;
        self
    }

    /// Returns the config with a different message precision.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Returns the config pinned to a SIMD dispatch tier (`None` restores
    /// auto-detection).
    pub fn with_simd_tier(mut self, simd: Option<SimdTier>) -> Self {
        self.simd = simd;
        self
    }
}

/// The outcome of decoding one frame.
///
/// The `Default` value (empty bits, zero iterations, not converged) is the
/// natural starting point for [`Decoder::decode_into`], which sizes and
/// fills the bit vector on first use and then reuses it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DecodeResult {
    /// Hard decisions for the full codeword (`N` bits).
    pub bits: BitVec,
    /// Iterations actually executed.
    pub iterations: usize,
    /// Whether the hard decisions satisfy all parity checks.
    pub converged: bool,
}

impl DecodeResult {
    /// Counts information-bit errors against a reference codeword, looking
    /// only at the first `k` (systematic) positions.
    ///
    /// # Panics
    ///
    /// Panics if `reference.len() != self.bits.len()` or `k` exceeds it.
    pub fn info_bit_errors(&self, reference: &BitVec, k: usize) -> usize {
        assert_eq!(reference.len(), self.bits.len(), "length mismatch");
        assert!(k <= reference.len(), "k out of range");
        (0..k).filter(|&i| self.bits.get(i) != reference.get(i)).count()
    }
}

/// A frame decoder: channel LLRs in, hard decisions out.
///
/// Implementations own their scratch state, so one instance decodes frames
/// back to back without reallocating; create one instance per thread.
pub trait Decoder {
    /// Decodes one frame of channel LLRs (length = codeword length).
    ///
    /// # Panics
    ///
    /// Implementations panic if `channel_llrs` has the wrong length.
    fn decode(&mut self, channel_llrs: &[f64]) -> DecodeResult;

    /// Decodes one frame into a caller-owned result, reusing its buffers.
    ///
    /// Streaming callers decode frames back to back; the in-crate decoders
    /// override this to write hard decisions directly into `out.bits`, so a
    /// warm `decode_into` performs no allocation at all (the `alloc`
    /// integration test enforces this). The default implementation simply
    /// overwrites `out` with a fresh [`Decoder::decode`] result.
    ///
    /// # Panics
    ///
    /// Same as [`Decoder::decode`].
    fn decode_into(&mut self, channel_llrs: &[f64], out: &mut DecodeResult) {
        *out = self.decode(channel_llrs);
    }

    /// Replaces the iteration cap for subsequent decodes.
    ///
    /// The streaming pipeline's admission control sheds load by lowering
    /// the cap under pressure (trading error-rate margin for throughput,
    /// the paper's Table 3 knob) instead of dropping frames. The default is
    /// a no-op: a decoder that ignores the cap simply never sheds work.
    fn set_max_iterations(&mut self, max_iterations: usize) {
        let _ = max_iterations;
    }

    /// A short human-readable identifier for reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_builders_compose() {
        let c = DecoderConfig::paper()
            .with_max_iterations(40)
            .with_rule(CheckRule::NormalizedMinSum(0.75))
            .with_early_stop(false)
            .with_precision(Precision::F32);
        assert_eq!(c.max_iterations, 40);
        assert!(!c.early_stop);
        assert!(matches!(c.rule, CheckRule::NormalizedMinSum(_)));
        assert_eq!(c.precision, Precision::F32);
        assert_eq!(DecoderConfig::default().precision, Precision::F64);
    }

    #[test]
    fn info_bit_errors_counts_prefix_only() {
        let reference = BitVec::from_bools([false, false, true, true]);
        let bits = BitVec::from_bools([false, true, true, false]);
        let r = DecodeResult { bits, iterations: 1, converged: false };
        assert_eq!(r.info_bit_errors(&reference, 2), 1);
        assert_eq!(r.info_bit_errors(&reference, 4), 2);
    }
}
