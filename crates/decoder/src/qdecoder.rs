//! Fixed-point zigzag decoder — the bit-exact golden model of the hardware
//! functional units.
//!
//! Identical schedule to [`crate::ZigzagDecoder`] but with every message a
//! saturating `bits`-wide integer and the check rule evaluated by
//! [`QBoxplus`]. The cycle-accurate core in `dvbs2-hardware` must reproduce
//! this decoder's decisions exactly; the `quantization` bench compares its
//! BER against the float reference to reproduce the paper's 6-bit ≈ 0.1 dB
//! claim.

#![allow(clippy::needless_range_loop)] // one index drives several parallel slices

use crate::qsimd::SimdQuant;
use crate::quant::{QBoxplus, QCheckArithmetic, Quantizer};
use crate::simd::SimdTier;
use crate::stopping::{hard_decisions_int, hard_decisions_int_into, syndrome_ok};
use crate::{DecodeResult, Decoder, DecoderConfig};
use dvbs2_ldpc::{BitVec, TannerGraph};
use std::sync::Arc;

/// Hardware chain partitioning for [`QuantizedZigzagDecoder`]: cuts the
/// degree-2 parity chain into `lanes` parallel sub-chains with exactly the
/// boundary semantics of the hardware functional-unit array (forward
/// boundary one iteration staler, backward boundary one iteration fresher),
/// and optionally replays the hardware's per-check message input ordering.
///
/// With `lanes = 360` and an edge order derived from the core's connectivity
/// ROM and check-node schedule (`dvbs2_hardware::hw_chain_partition`), the
/// sequential software decoder becomes **bit-exact** against the hardware
/// `GoldenModel` — decoded words, iteration counts and convergence flags —
/// because the order-dependent quantized boxplus then sees identical
/// operands in identical order at every check. With `lanes = 1` and no edge
/// order it degenerates to the plain sequential zigzag.
#[derive(Debug, Clone)]
pub struct ChainPartition {
    lanes: usize,
    /// Flat check-major permutation: entry `c * d + i` is the position
    /// (within check `c`'s information edges, graph order) of the `i`-th
    /// message the hardware feeds its boxplus for that check. `None` keeps
    /// the graph's own (ascending variable index) order.
    edge_order: Option<Arc<[u32]>>,
}

impl ChainPartition {
    /// Creates a partition of `lanes` sub-chains with an optional per-check
    /// boxplus input ordering (see the type docs for the layout).
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    pub fn new(lanes: usize, edge_order: Option<Vec<u32>>) -> Self {
        assert!(lanes > 0, "a partition needs at least one sub-chain");
        ChainPartition { lanes, edge_order: edge_order.map(Arc::from) }
    }

    /// Number of parallel sub-chains.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The flat per-check input ordering, if one was supplied.
    pub fn edge_order(&self) -> Option<&[u32]> {
        self.edge_order.as_deref()
    }
}

/// Construction-time fusion of a [`ChainPartition`] into dedicated message
/// planes: the per-check schedule permutation is baked into the plane
/// *layout* so the partitioned sweep and both variable-node passes run with
/// zero extra indirection in their inner loops.
///
/// Layout: check `c` (lane `u = c / q_rows`, residue row `r = c % q_rows`)
/// owns the fixed-stride plane row `r · lanes + u` — the rows are laid out
/// in **sweep traversal order**, so the residue-major check sweep walks the
/// planes strictly linearly. Within a row, positions `0..info_d` hold the
/// check's information inputs already in hardware-schedule order (the
/// permutation is applied once here, at build time), and the last two
/// positions are written in place with the left/right parity-chain inputs
/// each sweep. The variable-node side gathers and scatters through
/// [`var_slots`](Self::var_slots), the per-variable list of absolute plane
/// indices, computed once from the same permutation.
#[derive(Debug, Clone)]
struct FusedPlan {
    lanes: usize,
    q_rows: usize,
    /// Plane row stride: `info_d + 2` (check 0 uses one slot fewer).
    stride: usize,
    /// Uniform per-check information degree.
    info_d: usize,
    /// For every information edge, in variable-major order (`v` ascending,
    /// then that variable's edges in graph order): its absolute index into
    /// the fused planes.
    var_slots: Vec<u32>,
}

impl FusedPlan {
    /// Bakes `partition`'s edge order (identity if `None`) into the fused
    /// layout for `graph`.
    ///
    /// # Panics
    ///
    /// Panics if the checks do not all have the same information degree —
    /// the fixed-stride row layout (and the hardware's functional-unit
    /// array) needs uniform rows. Every DVB-S2 code satisfies this.
    fn build(graph: &TannerGraph, partition: &ChainPartition) -> FusedPlan {
        let n_check = graph.check_count();
        let k = graph.info_len();
        let lanes = partition.lanes();
        let q_rows = n_check / lanes;
        let info_d = graph.check_edges(0).len() - 1;
        for c in 1..n_check {
            assert_eq!(
                graph.check_edges(c).len() - 2,
                info_d,
                "check {c}: non-uniform information degree; fused layout needs uniform rows"
            );
        }
        let stride = info_d + 2;
        let order = partition.edge_order();
        // Invert the per-check permutation into an edge -> plane-slot map,
        // then flatten it variable-major for the VN-side passes. Information
        // edges are the first `info_d` of each check's range (edges are
        // sorted by variable index and information variables come first).
        let mut edge_slot = vec![u32::MAX; graph.edge_count()];
        for c in 0..n_check {
            let start = graph.check_edges(c).start;
            let base = ((c % q_rows) * lanes + c / q_rows) * stride;
            for i in 0..info_d {
                let e = match order {
                    Some(ord) => start + ord[c * info_d + i] as usize,
                    None => start + i,
                };
                edge_slot[e] = (base + i) as u32;
            }
        }
        let mut var_slots = Vec::with_capacity(n_check * info_d);
        for v in 0..k {
            for &e in graph.var_edges(v) {
                let slot = edge_slot[e as usize];
                debug_assert_ne!(slot, u32::MAX, "information edge missing from fused layout");
                var_slots.push(slot);
            }
        }
        FusedPlan { lanes, q_rows, stride, info_d, var_slots }
    }

    /// Total fused-plane length.
    fn plane_len(&self) -> usize {
        self.lanes * self.q_rows * self.stride
    }
}

/// Quantized zigzag-schedule decoder.
///
/// # Chain-boundary semantics vs the hardware `GoldenModel`
///
/// This decoder runs the parity chain as **one** sequential zigzag over all
/// `N − K` checks: the forward input of check `c` is check `c − 1`'s output
/// from the *same* iteration, for every `c > 0`, and the backward messages
/// come from the previous iteration. The hardware golden model
/// (`dvbs2_hardware::GoldenModel`) instead runs **360 parallel sub-chains**
/// (one per functional unit), which changes the message freshness at the
/// `q = (N − K) / 360` sub-chain boundaries in two ways:
///
/// * the forward message *entering* a sub-chain's first check comes from the
///   **previous iteration** (this decoder would use the same iteration's
///   value from the preceding chain segment);
/// * the backward boundary message is written while processing row `0` but
///   read at row `q − 1` of the same sweep, making it **one iteration
///   fresher** than this decoder's strictly previous-iteration backward
///   update.
///
/// All non-boundary messages — `359/360` of the chain — are computed
/// identically, so in the default sequential mode the two models agree on
/// decoded words and differ only in rare per-frame iteration counts near
/// threshold, and the differential oracle holds that pair to a decoded-word
/// agreement contract. In **hardware-partitioned mode**
/// ([`QuantizedZigzagDecoder::with_partition`] with a [`ChainPartition`]
/// built by `dvbs2_hardware::hw_chain_partition`) this decoder reproduces
/// the hardware boundary semantics *and* the schedule's per-check input
/// ordering, and the oracle tightens the contract to full bit-exactness
/// against `GoldenModel` (the cycle-accurate `HardwareDecoder` is always
/// held bit-exact to `GoldenModel`). See `DESIGN.md` ("Chain-boundary
/// semantics") for the derivation.
#[derive(Debug, Clone)]
pub struct QuantizedZigzagDecoder {
    graph: Arc<TannerGraph>,
    arithmetic: QCheckArithmetic,
    max_iterations: usize,
    early_stop: bool,
    /// Hardware-partitioned check sweep (`None` = plain sequential zigzag).
    partition: Option<ChainPartition>,
    /// Permutation-baked plane layout for the partitioned sweep (`None` =
    /// sequential mode, or the reference LUT-indirection sweep from
    /// [`QuantizedZigzagDecoder::with_partition_indirect`]).
    fused: Option<FusedPlan>,
    /// Sub-chain-major SIMD lane plan (`None` = scalar paths only; built by
    /// [`QuantizedZigzagDecoder::with_partition`] when the partition and
    /// arithmetic are lane-expressible).
    simd: Option<Box<SimdQuant>>,
    v2c: Vec<i32>,
    c2v: Vec<i32>,
    backward: Vec<i32>,
    forward: Vec<i32>,
    /// Per-lane forward registers of the partitioned sweep.
    fwd_regs: Vec<i32>,
    /// Chain-boundary forward values from the previous iteration
    /// (partitioned mode's analogue of the functional units' boundary
    /// state).
    boundary: Vec<i32>,
    totals: Vec<i32>,
    scratch_in: Vec<i32>,
    scratch_out: Vec<i32>,
    /// Reused hard-decision scratch for the early-stop syndrome test.
    decisions: BitVec,
    /// Reused quantized-channel buffer for the float [`Decoder`] entry.
    qchannel: Vec<i32>,
}

impl QuantizedZigzagDecoder {
    /// Creates a decoder with the given quantizer (see
    /// [`Quantizer::paper_6bit`]) and iteration policy.
    ///
    /// # Panics
    ///
    /// Panics if the graph lacks the IRA parity chain (see
    /// [`TannerGraph::for_code`]).
    pub fn new(graph: Arc<TannerGraph>, quantizer: Quantizer, config: DecoderConfig) -> Self {
        Self::with_arithmetic(graph, QCheckArithmetic::lut(quantizer), config)
    }

    /// Creates a decoder with an explicit check-node arithmetic — the
    /// LUT-free [`QCheckArithmetic::min_sum_shift`] trades ~0.1–0.2 dB for
    /// a smaller functional unit.
    ///
    /// # Panics
    ///
    /// Same as [`QuantizedZigzagDecoder::new`].
    pub fn with_arithmetic(
        graph: Arc<TannerGraph>,
        arithmetic: QCheckArithmetic,
        config: DecoderConfig,
    ) -> Self {
        let n_check = graph.check_count();
        assert!(
            graph.info_len() < graph.var_count() && graph.var_count() - graph.info_len() == n_check,
            "quantized zigzag decoder needs an IRA graph from TannerGraph::for_code"
        );
        let edges = graph.edge_count();
        let max_degree = (0..n_check).map(|c| graph.check_degree(c)).max().unwrap_or(0);
        QuantizedZigzagDecoder {
            arithmetic,
            max_iterations: config.max_iterations,
            early_stop: config.early_stop,
            partition: None,
            fused: None,
            simd: None,
            v2c: vec![0; edges],
            c2v: vec![0; edges],
            backward: vec![0; n_check],
            forward: vec![0; n_check],
            fwd_regs: Vec::new(),
            boundary: Vec::new(),
            totals: vec![0; graph.var_count()],
            scratch_in: vec![0; max_degree],
            scratch_out: vec![0; max_degree],
            decisions: BitVec::zeros(graph.var_count()),
            qchannel: Vec::new(),
            graph,
        }
    }

    /// Creates a decoder that runs the check sweep in **hardware-partitioned
    /// mode**: `partition.lanes()` parallel sub-chains with the functional
    /// units' boundary freshness semantics, optionally replaying the
    /// hardware's per-check boxplus input ordering. With the LUT arithmetic
    /// and a partition from `dvbs2_hardware::hw_chain_partition`, decode
    /// results are bit-exact against the hardware `GoldenModel`.
    ///
    /// This is the hot path: the sub-chains are mapped onto SIMD lanes
    /// (sub-chain-major SoA `i16` planes, the software image of the paper's
    /// M = 360 functional-unit array) with scalar/AVX2/AVX-512 clones
    /// dispatched per `config.simd` / `DVBS2_SIMD` — see
    /// [`simd_tier`](Self::simd_tier). Combinations the lanes cannot
    /// express exactly fall back to the scalar fused sweep of
    /// [`with_partition_fused`](Self::with_partition_fused); both are
    /// bit-identical to the reference LUT-indirection sweep of
    /// [`with_partition_indirect`](Self::with_partition_indirect).
    ///
    /// # Panics
    ///
    /// Panics if the graph is not an IRA graph, if `n_check` is not
    /// divisible by `partition.lanes()`, if the partition's edge order is
    /// not a per-check permutation of the graph's information edges, if
    /// the checks do not all have the same information degree, or if
    /// `config.simd` forces a tier this CPU does not support.
    pub fn with_partition(
        graph: Arc<TannerGraph>,
        arithmetic: QCheckArithmetic,
        config: DecoderConfig,
        partition: ChainPartition,
    ) -> Self {
        let tier = SimdTier::resolve(config.simd);
        let mut dec = Self::with_partition_fused(graph, arithmetic, config, partition);
        dec.simd = SimdQuant::try_build(
            &dec.graph,
            dec.partition.as_ref().unwrap(),
            &dec.arithmetic,
            tier,
        )
        .map(Box::new);
        dec
    }

    /// [`with_partition`](Self::with_partition) pinned to the **scalar
    /// fused** sweep — no SIMD lane plan is built, every decode runs the
    /// permutation-baked `FusedPlan` path. This is the differential
    /// reference the lane kernels are held bit-exact against, and the
    /// benchmark baseline `speedup_quantized_simd_vs_fused` is measured
    /// from.
    ///
    /// # Panics
    ///
    /// Same as [`with_partition`](Self::with_partition), minus the SIMD
    /// tier resolution (`config.simd` is ignored).
    pub fn with_partition_fused(
        graph: Arc<TannerGraph>,
        arithmetic: QCheckArithmetic,
        config: DecoderConfig,
        partition: ChainPartition,
    ) -> Self {
        let mut dec = Self::with_partition_indirect(graph, arithmetic, config, partition);
        let plan = FusedPlan::build(&dec.graph, dec.partition.as_ref().unwrap());
        // The fused planes replace the edge-indexed ones (they are a
        // superset: every information edge gets a slot, plus two in-row
        // parity positions per check).
        dec.v2c = vec![0; plan.plane_len()];
        dec.c2v = vec![0; plan.plane_len()];
        dec.fused = Some(plan);
        dec
    }

    /// [`with_partition`](Self::with_partition) without construction-time
    /// fusion: the check sweep gathers and scatters through the per-check
    /// edge-order LUT on every message. Decode results are bit-identical to
    /// the fused mode; this reference path is kept for differential tests
    /// and as the benchmark baseline the fused layout is measured against.
    ///
    /// # Panics
    ///
    /// Same as [`with_partition`](Self::with_partition), minus the uniform
    /// information-degree requirement.
    pub fn with_partition_indirect(
        graph: Arc<TannerGraph>,
        arithmetic: QCheckArithmetic,
        config: DecoderConfig,
        partition: ChainPartition,
    ) -> Self {
        let mut dec = Self::with_arithmetic(graph, arithmetic, config);
        let n_check = dec.graph.check_count();
        let lanes = partition.lanes();
        assert!(
            n_check.is_multiple_of(lanes),
            "{n_check} checks cannot be cut into {lanes} equal sub-chains"
        );
        if let Some(order) = partition.edge_order() {
            // Every check contributes exactly `check_degree - 2` information
            // edges in an IRA graph (check 0 has one fewer *parity* edge,
            // not fewer information edges).
            let info_d = dec.graph.check_edges(0).len() - 1;
            assert_eq!(
                order.len(),
                n_check * info_d,
                "edge order must cover every check's information edges"
            );
            let mut seen = vec![false; info_d];
            for c in 0..n_check {
                let d = dec.graph.check_edges(c).len() - if c == 0 { 1 } else { 2 };
                assert_eq!(d, info_d, "check {c}: non-uniform information degree");
                seen.fill(false);
                for &pos in &order[c * info_d..(c + 1) * info_d] {
                    let pos = pos as usize;
                    assert!(
                        pos < info_d && !seen[pos],
                        "check {c}: edge order is not a permutation"
                    );
                    seen[pos] = true;
                }
            }
        }
        dec.fwd_regs = vec![0; lanes];
        dec.boundary = vec![0; lanes];
        dec.partition = Some(partition);
        dec
    }

    /// The hardware partition in use, if the decoder runs in partitioned
    /// mode.
    pub fn partition(&self) -> Option<&ChainPartition> {
        self.partition.as_ref()
    }

    /// The SIMD dispatch tier the lane-parallel check sweep runs, or
    /// `None` when decodes take a scalar path (sequential mode,
    /// LUT-indirection mode, [`with_partition_fused`](Self::with_partition_fused),
    /// or a partition/arithmetic the lanes cannot express exactly).
    pub fn simd_tier(&self) -> Option<SimdTier> {
        self.simd.as_ref().map(|s| s.tier())
    }

    /// The message quantizer in use.
    pub fn quantizer(&self) -> &Quantizer {
        self.arithmetic.quantizer()
    }

    /// Decodes pre-quantized channel LLRs. This is the entry point the
    /// hardware model is verified against.
    ///
    /// # Panics
    ///
    /// Panics if `channel.len() != graph.var_count()`.
    pub fn decode_quantized(&mut self, channel: &[i32]) -> DecodeResult {
        let mut out = DecodeResult::default();
        self.decode_quantized_into(channel, &mut out);
        out
    }

    /// Decodes pre-quantized channel LLRs into a caller-owned result,
    /// reusing its buffers (no allocation once `out.bits` has the codeword
    /// length).
    ///
    /// # Panics
    ///
    /// Panics if `channel.len() != graph.var_count()`.
    pub fn decode_quantized_into(&mut self, channel: &[i32], out: &mut DecodeResult) {
        if self.simd.is_some() && self.decode_simd_into(channel, out, None) {
            return;
        }
        if self.fused.is_some() {
            self.decode_fused_into(channel, out, None);
        } else {
            self.decode_unfused_into(channel, out, None);
        }
    }

    /// [`decode_quantized`](Self::decode_quantized) that additionally pushes
    /// one FNV-1a digest of the message state (information-edge c2v messages
    /// in hardware input order, then the forward and backward chain
    /// messages) per completed check sweep. The digest is computed over
    /// canonical (layout-independent) message order, so fused and
    /// LUT-indirection decoders over the same partition produce identical
    /// digest sequences — the per-iteration half of the fused-vs-indirect
    /// equivalence property.
    ///
    /// # Panics
    ///
    /// Panics if `channel.len() != graph.var_count()`.
    pub fn decode_quantized_traced(
        &mut self,
        channel: &[i32],
        digests: &mut Vec<u64>,
    ) -> DecodeResult {
        digests.clear();
        let mut out = DecodeResult::default();
        if self.simd.is_some() && self.decode_simd_into(channel, &mut out, Some(digests)) {
            return out;
        }
        digests.clear();
        if self.fused.is_some() {
            self.decode_fused_into(channel, &mut out, Some(digests));
        } else {
            self.decode_unfused_into(channel, &mut out, Some(digests));
        }
        out
    }

    /// SIMD lane decode. Returns `false` (state untouched) when the
    /// channel is not expressible in the i16 lane domain; the caller then
    /// runs the scalar fused path.
    fn decode_simd_into(
        &mut self,
        channel: &[i32],
        out: &mut DecodeResult,
        trace: Option<&mut Vec<u64>>,
    ) -> bool {
        let graph = Arc::clone(&self.graph);
        // The plan is moved out so its `&mut self`-shaped decode can run
        // against the decoder's shared scratch, then moved back.
        let mut simd = self.simd.take().expect("SIMD plan present");
        let ok = simd.decode_into(
            &graph,
            &self.arithmetic,
            self.max_iterations,
            self.early_stop,
            channel,
            &mut self.totals,
            &mut self.decisions,
            out,
            trace,
        );
        self.simd = Some(simd);
        ok
    }

    /// Sequential or LUT-indirection-partitioned decode (no fused plan).
    fn decode_unfused_into(
        &mut self,
        channel: &[i32],
        out: &mut DecodeResult,
        mut trace: Option<&mut Vec<u64>>,
    ) {
        let graph = Arc::clone(&self.graph);
        assert_eq!(channel.len(), graph.var_count(), "LLR length mismatch");
        let k = graph.info_len();
        let n_check = graph.check_count();
        let q = *self.arithmetic.quantizer();

        self.c2v.fill(0);
        self.backward.fill(0);
        self.boundary.fill(0);
        let partition = self.partition.clone();
        let mut iterations = 0;
        let mut converged = false;

        for _ in 0..self.max_iterations {
            iterations += 1;

            // Information variable nodes (Eq. 4, saturating outputs).
            for v in 0..k {
                let edges = graph.var_edges(v);
                let total: i32 =
                    channel[v] + edges.iter().map(|&e| self.c2v[e as usize]).sum::<i32>();
                for &e in edges {
                    self.v2c[e as usize] = q.saturate(total - self.c2v[e as usize]);
                }
            }

            match &partition {
                None => self.sequential_check_sweep(&graph, channel, q, k, n_check),
                Some(p) => self.partitioned_check_sweep(&graph, channel, q, k, n_check, p),
            }
            if let Some(digests) = trace.as_deref_mut() {
                digests.push(self.unfused_digest(&graph));
            }

            for v in 0..k {
                self.totals[v] = channel[v]
                    + graph.var_edges(v).iter().map(|&e| self.c2v[e as usize]).sum::<i32>();
            }
            for j in 0..n_check {
                self.totals[k + j] = channel[k + j]
                    + self.forward[j]
                    + if j + 1 < n_check { self.backward[j] } else { 0 };
            }
            if self.early_stop {
                hard_decisions_int_into(&self.totals, &mut self.decisions);
                if syndrome_ok(&graph, &self.decisions) {
                    converged = true;
                    break;
                }
            }
        }
        if out.bits.len() != self.totals.len() {
            out.bits = BitVec::zeros(self.totals.len());
        }
        hard_decisions_int_into(&self.totals, &mut out.bits);
        if !converged {
            converged = syndrome_ok(&graph, &out.bits);
        }
        out.iterations = iterations;
        out.converged = converged;
    }

    /// Sequential check sweep with immediate forward update: the ideal
    /// zigzag of the paper's Fig. 2b — one chain over all `N − K` checks.
    fn sequential_check_sweep(
        &mut self,
        graph: &TannerGraph,
        channel: &[i32],
        q: Quantizer,
        k: usize,
        n_check: usize,
    ) {
        let mut fwd_prev = 0i32;
        for c in 0..n_check {
            let range = graph.check_edges(c);
            let info_d = range.len() - if c == 0 { 1 } else { 2 };
            let start = range.start;
            for i in 0..info_d {
                self.scratch_in[i] = self.v2c[start + i];
            }
            let mut d = info_d;
            let left_pos = if c > 0 {
                self.scratch_in[d] = q.sat_add(channel[k + c - 1], fwd_prev);
                d += 1;
                Some(d - 1)
            } else {
                None
            };
            self.scratch_in[d] =
                q.sat_add(channel[k + c], if c + 1 < n_check { self.backward[c] } else { 0 });
            let right_pos = d;
            d += 1;

            self.arithmetic.extrinsic(&self.scratch_in[..d], &mut self.scratch_out[..d]);

            for i in 0..info_d {
                self.c2v[start + i] = self.scratch_out[i];
            }
            if let Some(p) = left_pos {
                self.backward[c - 1] = self.scratch_out[p];
            }
            fwd_prev = self.scratch_out[right_pos];
            self.forward[c] = fwd_prev;
        }
    }

    /// Hardware-partitioned check sweep: `lanes` parallel sub-chains of
    /// `q_rows = n_check / lanes` checks each, swept in ascending residue
    /// order exactly like the functional-unit array — lane `u` owns checks
    /// `u·q_rows..(u+1)·q_rows`, its forward register is seeded from the
    /// previous iteration's boundary state, and row-0 backward writes are
    /// consumed at row `q_rows − 1` of the *same* sweep. With an edge order,
    /// each check's boxplus inputs are gathered in the hardware schedule's
    /// order instead of the graph's, which is what makes the order-dependent
    /// quantized arithmetic bit-exact against the golden model.
    fn partitioned_check_sweep(
        &mut self,
        graph: &TannerGraph,
        channel: &[i32],
        q: Quantizer,
        k: usize,
        n_check: usize,
        partition: &ChainPartition,
    ) {
        let lanes = partition.lanes();
        let q_rows = n_check / lanes;
        let order = partition.edge_order();
        // begin_check_phase: seed every lane's forward register from the
        // previous iteration's boundary state.
        self.fwd_regs.copy_from_slice(&self.boundary);
        for r in 0..q_rows {
            for u in 0..lanes {
                let c = u * q_rows + r;
                let range = graph.check_edges(c);
                let info_d = range.len() - if c == 0 { 1 } else { 2 };
                let start = range.start;
                match order {
                    Some(ord) => {
                        let base = c * info_d;
                        for i in 0..info_d {
                            self.scratch_in[i] = self.v2c[start + ord[base + i] as usize];
                        }
                    }
                    None => {
                        for i in 0..info_d {
                            self.scratch_in[i] = self.v2c[start + i];
                        }
                    }
                }
                let mut d = info_d;
                let left_pos = if c > 0 {
                    self.scratch_in[d] = q.sat_add(channel[k + c - 1], self.fwd_regs[u]);
                    d += 1;
                    Some(d - 1)
                } else {
                    None
                };
                self.scratch_in[d] =
                    q.sat_add(channel[k + c], if c + 1 < n_check { self.backward[c] } else { 0 });
                let right_pos = d;
                d += 1;

                self.arithmetic.extrinsic(&self.scratch_in[..d], &mut self.scratch_out[..d]);

                match order {
                    Some(ord) => {
                        let base = c * info_d;
                        for i in 0..info_d {
                            self.c2v[start + ord[base + i] as usize] = self.scratch_out[i];
                        }
                    }
                    None => {
                        for i in 0..info_d {
                            self.c2v[start + i] = self.scratch_out[i];
                        }
                    }
                }
                if let Some(p) = left_pos {
                    self.backward[c - 1] = self.scratch_out[p];
                }
                self.fwd_regs[u] = self.scratch_out[right_pos];
                self.forward[c] = self.fwd_regs[u];
            }
        }
        // end_check_phase: store the boundary forwards for the next
        // iteration; lane 0 has no predecessor chain.
        for u in (1..lanes).rev() {
            self.boundary[u] = self.fwd_regs[u - 1];
        }
        self.boundary[0] = 0;
    }

    /// Fused-plane partitioned decode: the hot path.
    ///
    /// Equivalent to [`decode_unfused_into`](Self::decode_unfused_into)
    /// with a partition — bit-identical `DecodeResult`s — but restructured
    /// around the permutation-baked [`FusedPlan`] layout:
    ///
    /// * the check sweep walks the planes strictly linearly (rows are in
    ///   traversal order) and runs the boxplus kernel in place on each row —
    ///   no order LUT, no scratch copies;
    /// * the totals gather of iteration `t` and the variable-node pass of
    ///   iteration `t + 1` read the same messages, so they are fused into a
    ///   single pass at the top of the loop (integer addition is
    ///   order-independent, so every value is identical to the two-pass
    ///   formulation; parity totals are only materialized when the
    ///   early-stop test or the final decision needs them).
    fn decode_fused_into(
        &mut self,
        channel: &[i32],
        out: &mut DecodeResult,
        mut trace: Option<&mut Vec<u64>>,
    ) {
        let graph = Arc::clone(&self.graph);
        assert_eq!(channel.len(), graph.var_count(), "LLR length mismatch");
        let plan = self.fused.take().expect("fused plan present");
        let k = graph.info_len();
        let n_check = graph.check_count();
        let q = *self.arithmetic.quantizer();
        let (lanes, q_rows, stride, info_d) = (plan.lanes, plan.q_rows, plan.stride, plan.info_d);

        self.c2v.fill(0);
        self.backward.fill(0);
        self.boundary.fill(0);
        let mut iterations = 0;
        let mut converged = false;

        for it in 0..self.max_iterations {
            // Fused totals + variable-node pass: one walk over `var_slots`
            // computes iteration `it - 1`'s totals and iteration `it`'s
            // saturated v2c messages (Eq. 4). On entry (`it == 0`) the c2v
            // plane is all zero, so this degenerates to `totals = channel`.
            let mut pos = 0usize;
            for v in 0..k {
                let n_e = graph.var_edges(v).len();
                let slots = &plan.var_slots[pos..pos + n_e];
                let mut sum = 0i32;
                for &s in slots {
                    sum += self.c2v[s as usize];
                }
                let total = channel[v] + sum;
                self.totals[v] = total;
                for &s in slots {
                    let s = s as usize;
                    self.v2c[s] = q.saturate(total - self.c2v[s]);
                }
                pos += n_e;
            }
            if self.early_stop && it > 0 {
                for j in 0..n_check {
                    self.totals[k + j] = channel[k + j]
                        + self.forward[j]
                        + if j + 1 < n_check { self.backward[j] } else { 0 };
                }
                hard_decisions_int_into(&self.totals, &mut self.decisions);
                if syndrome_ok(&graph, &self.decisions) {
                    converged = true;
                    break;
                }
            }
            iterations += 1;

            // Check sweep: residue-major over the traversal-ordered rows,
            // so the plane walk is strictly linear. Lane `u` owns checks
            // `u*q_rows..(u+1)*q_rows`; its forward register is seeded from
            // the previous iteration's boundary state, and row-0 backward
            // writes are consumed at row `q_rows - 1` of the same sweep.
            //
            // All `lanes` checks of one residue row are mutually
            // independent (forward registers are lane-local; every
            // `backward` value read at row `r` was written at a different
            // residue row), so the sweep runs them in blocks of
            // [`FUSED_ROW_BLOCK`] adjacent rows: block-phased
            // reads-then-writes preserve the sequential sweep's
            // read-before-write order exactly, and the interleaved LUT
            // kernel below turns one serial boxplus chain per check into
            // `blk` chains advancing in lockstep — the chain's lookup
            // latency is the sweep's bottleneck, not arithmetic throughput.
            self.fwd_regs.copy_from_slice(&self.boundary);
            for r in 0..q_rows {
                let mut u0 = 0usize;
                while u0 < lanes {
                    let blk = FUSED_ROW_BLOCK.min(lanes - u0);
                    let base = (r * lanes + u0) * stride;
                    // Left/right parity-chain inputs, written in place
                    // after the pre-permuted information inputs.
                    for x in 0..blk {
                        let u = u0 + x;
                        let c = u * q_rows + r;
                        let row = base + x * stride;
                        if c > 0 {
                            self.v2c[row + info_d] =
                                q.sat_add(channel[k + c - 1], self.fwd_regs[u]);
                            self.v2c[row + info_d + 1] = q.sat_add(
                                channel[k + c],
                                if c + 1 < n_check { self.backward[c] } else { 0 },
                            );
                        } else {
                            self.v2c[row + info_d] = q.sat_add(channel[k], self.backward[0]);
                        }
                    }
                    // Check 0's short row (no left parity input) keeps the
                    // scalar path; every other LUT block runs interleaved.
                    let interleaved = match &self.arithmetic {
                        QCheckArithmetic::Lut(bp) if !(r == 0 && u0 == 0) => {
                            lut_extrinsic_rows(
                                bp,
                                &self.v2c,
                                &mut self.c2v,
                                base,
                                stride,
                                info_d + 2,
                                blk,
                            );
                            true
                        }
                        _ => false,
                    };
                    if !interleaved {
                        for x in 0..blk {
                            let c = (u0 + x) * q_rows + r;
                            let row = base + x * stride;
                            let d = if c > 0 { info_d + 2 } else { info_d + 1 };
                            self.arithmetic
                                .extrinsic(&self.v2c[row..row + d], &mut self.c2v[row..row + d]);
                        }
                    }
                    for x in 0..blk {
                        let u = u0 + x;
                        let c = u * q_rows + r;
                        let row = base + x * stride;
                        if c > 0 {
                            self.backward[c - 1] = self.c2v[row + info_d];
                            self.fwd_regs[u] = self.c2v[row + info_d + 1];
                        } else {
                            self.fwd_regs[u] = self.c2v[row + info_d];
                        }
                        self.forward[c] = self.fwd_regs[u];
                    }
                    u0 += blk;
                }
            }
            for u in (1..lanes).rev() {
                self.boundary[u] = self.fwd_regs[u - 1];
            }
            self.boundary[0] = 0;
            if let Some(digests) = trace.as_deref_mut() {
                digests.push(fused_digest(&plan, &self.c2v, &self.forward, &self.backward));
            }
        }

        if !converged {
            // The loop ended right after a sweep: fold it into the totals.
            let mut pos = 0usize;
            for v in 0..k {
                let n_e = graph.var_edges(v).len();
                let mut sum = 0i32;
                for &s in &plan.var_slots[pos..pos + n_e] {
                    sum += self.c2v[s as usize];
                }
                self.totals[v] = channel[v] + sum;
                pos += n_e;
            }
            for j in 0..n_check {
                self.totals[k + j] = channel[k + j]
                    + self.forward[j]
                    + if j + 1 < n_check { self.backward[j] } else { 0 };
            }
        }
        if out.bits.len() != self.totals.len() {
            out.bits = BitVec::zeros(self.totals.len());
        }
        hard_decisions_int_into(&self.totals, &mut out.bits);
        if !converged {
            converged = syndrome_ok(&graph, &out.bits);
        }
        out.iterations = iterations;
        out.converged = converged;
        self.fused = Some(plan);
    }

    /// Canonical message digest for the sequential / LUT-indirection paths:
    /// same stream as [`fused_digest`] (information c2v in hardware input
    /// order per check, then forward, then backward).
    fn unfused_digest(&self, graph: &TannerGraph) -> u64 {
        let order = self.partition.as_ref().and_then(|p| p.edge_order());
        let mut h = Fnv::new();
        for c in 0..graph.check_count() {
            let range = graph.check_edges(c);
            let info_d = range.len() - if c == 0 { 1 } else { 2 };
            let start = range.start;
            match order {
                Some(ord) => {
                    let base = c * info_d;
                    for i in 0..info_d {
                        h.write_i32(self.c2v[start + ord[base + i] as usize]);
                    }
                }
                None => {
                    for i in 0..info_d {
                        h.write_i32(self.c2v[start + i]);
                    }
                }
            }
        }
        for &x in &self.forward {
            h.write_i32(x);
        }
        for &x in &self.backward {
            h.write_i32(x);
        }
        h.finish()
    }

    /// Quantizes float channel LLRs.
    ///
    /// Non-finite inputs degrade gracefully through the quantizer's
    /// saturation: `±inf` pins to the extreme level and `NaN` maps to `0`
    /// (an erasure), matching the float decoders' sanitization policy.
    pub fn quantize_channel(&self, channel_llrs: &[f64]) -> Vec<i32> {
        let q = self.arithmetic.quantizer();
        channel_llrs.iter().map(|&l| q.quantize(l)).collect()
    }

    /// Hard decisions of the last decode (full codeword).
    pub fn last_decisions(&self) -> BitVec {
        hard_decisions_int(&self.totals)
    }
}

/// Rows per interleaved block of the fused check sweep: enough independent
/// boxplus chains to cover the LUT combine's load-to-use latency, few
/// enough that the block's prefix state and plane rows stay register- and
/// L1-resident.
const FUSED_ROW_BLOCK: usize = 8;

/// [`QBoxplus::extrinsic`] over `rows <= FUSED_ROW_BLOCK` consecutive
/// fused-plane rows of uniform degree `d`, advancing every row's
/// prefix/suffix recurrence in lockstep. Per row the operation sequence is
/// exactly the scalar kernel's (same combines, same order, suffix stored in
/// the out plane), so the outputs are bit-identical — only the *scheduling*
/// across independent rows changes.
#[inline]
fn lut_extrinsic_rows(
    bp: &QBoxplus,
    v2c: &[i32],
    c2v: &mut [i32],
    base: usize,
    stride: usize,
    d: usize,
    rows: usize,
) {
    debug_assert!((1..=FUSED_ROW_BLOCK).contains(&rows) && d >= 3);
    // Suffix sweep into the out plane (a row's position-0 suffix is never
    // read, so it is never computed).
    for x in 0..rows {
        let rb = base + x * stride;
        c2v[rb + d - 1] = v2c[rb + d - 1];
    }
    for i in (1..d - 1).rev() {
        for x in 0..rows {
            let rb = base + x * stride;
            c2v[rb + i] = bp.combine(v2c[rb + i], c2v[rb + i + 1]);
        }
    }
    let mut prefix = [0i32; FUSED_ROW_BLOCK];
    for x in 0..rows {
        let rb = base + x * stride;
        prefix[x] = v2c[rb];
        c2v[rb] = c2v[rb + 1];
    }
    for i in 1..d - 1 {
        for x in 0..rows {
            let rb = base + x * stride;
            let out = bp.combine(prefix[x], c2v[rb + i + 1]);
            prefix[x] = bp.combine(prefix[x], v2c[rb + i]);
            c2v[rb + i] = out;
        }
    }
    for x in 0..rows {
        c2v[base + x * stride + d - 1] = prefix[x];
    }
}

/// Canonical message digest of a fused-plane decode state: per check (in
/// check order), the information c2v messages in hardware input order, then
/// the forward and backward chain messages. Layout-independent — matches
/// [`QuantizedZigzagDecoder::unfused_digest`] value-for-value.
fn fused_digest(plan: &FusedPlan, c2v: &[i32], forward: &[i32], backward: &[i32]) -> u64 {
    let mut h = Fnv::new();
    for c in 0..plan.lanes * plan.q_rows {
        let row = ((c % plan.q_rows) * plan.lanes + c / plan.q_rows) * plan.stride;
        for &x in &c2v[row..row + plan.info_d] {
            h.write_i32(x);
        }
    }
    for &x in forward {
        h.write_i32(x);
    }
    for &x in backward {
        h.write_i32(x);
    }
    h.finish()
}

/// Minimal FNV-1a 64-bit hasher for the per-iteration message digests
/// (shared with the SIMD lane path in `qsimd`, whose digests must match
/// this module's value for value).
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    #[inline]
    pub(crate) fn write_i32(&mut self, x: i32) {
        for b in x.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

impl Decoder for QuantizedZigzagDecoder {
    fn decode(&mut self, channel_llrs: &[f64]) -> DecodeResult {
        let mut out = DecodeResult::default();
        self.decode_into(channel_llrs, &mut out);
        out
    }

    fn decode_into(&mut self, channel_llrs: &[f64], out: &mut DecodeResult) {
        let q = *self.arithmetic.quantizer();
        // The buffer is moved out so `decode_quantized_into(&mut self, ..)`
        // can run while reading it, then moved back for reuse.
        let mut qchannel = std::mem::take(&mut self.qchannel);
        qchannel.clear();
        qchannel.extend(channel_llrs.iter().map(|&l| q.quantize(l)));
        self.decode_quantized_into(&qchannel, out);
        self.qchannel = qchannel;
    }

    fn set_max_iterations(&mut self, max_iterations: usize) {
        self.max_iterations = max_iterations;
    }

    fn name(&self) -> &'static str {
        "quantized zigzag"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{noisy_llrs, small_code};

    fn decoder(bits: u32) -> (dvbs2_ldpc::DvbS2Code, QuantizedZigzagDecoder) {
        let (code, graph) = small_code();
        let dec = QuantizedZigzagDecoder::new(
            Arc::new(graph),
            Quantizer::new(bits, 0.5),
            DecoderConfig::default(),
        );
        (code, dec)
    }

    #[test]
    fn corrects_noisy_frame_with_6_bits() {
        let (code, mut dec) = decoder(6);
        let (cw, llrs) = noisy_llrs(&code, 3.2, 21);
        let out = dec.decode(&llrs);
        assert!(out.converged);
        assert_eq!(out.bits, cw);
    }

    #[test]
    fn corrects_noisy_frame_with_5_bits_at_higher_snr() {
        let (code, mut dec) = decoder(5);
        let (cw, llrs) = noisy_llrs(&code, 4.0, 22);
        let out = dec.decode(&llrs);
        assert_eq!(out.bits, cw);
    }

    #[test]
    fn decode_is_deterministic() {
        let (code, mut dec) = decoder(6);
        let (_, llrs) = noisy_llrs(&code, 2.6, 23);
        let a = dec.decode(&llrs);
        let b = dec.decode(&llrs);
        assert_eq!(a.bits, b.bits);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn quantized_channel_is_saturated() {
        let (_, dec) = decoder(6);
        let q = dec.quantize_channel(&[1000.0, -1000.0, 0.2]);
        assert_eq!(q, vec![31, -31, 0]);
    }

    #[test]
    fn min_sum_arithmetic_also_decodes() {
        use crate::quant::QCheckArithmetic;
        let (code, graph) = small_code();
        let mut dec = QuantizedZigzagDecoder::with_arithmetic(
            Arc::new(graph),
            QCheckArithmetic::min_sum_shift(Quantizer::paper_6bit(), 2),
            DecoderConfig::default(),
        );
        let (cw, llrs) = noisy_llrs(&code, 3.4, 61);
        let out = dec.decode(&llrs);
        assert!(out.converged);
        assert_eq!(out.bits, cw);
    }

    #[test]
    fn lut_arithmetic_beats_min_sum_near_threshold() {
        use crate::quant::QCheckArithmetic;
        let (code, graph) = small_code();
        let graph = Arc::new(graph);
        let q = Quantizer::paper_6bit();
        let mut lut = QuantizedZigzagDecoder::new(Arc::clone(&graph), q, DecoderConfig::default());
        let mut msd = QuantizedZigzagDecoder::with_arithmetic(
            Arc::clone(&graph),
            QCheckArithmetic::min_sum_shift(q, 2),
            DecoderConfig::default(),
        );
        let mut lut_iters = 0usize;
        let mut ms_iters = 0usize;
        for seed in 0..4 {
            let (_, llrs) = noisy_llrs(&code, 1.6, 7000 + seed);
            lut_iters += lut.decode(&llrs).iterations;
            ms_iters += msd.decode(&llrs).iterations;
        }
        // The exact rule converges at least as fast in aggregate.
        assert!(lut_iters <= ms_iters, "lut {lut_iters} vs min-sum {ms_iters}");
    }

    #[test]
    fn single_lane_partition_matches_sequential() {
        // One sub-chain with no reordering degenerates to the plain
        // sequential zigzag: boundary[0] is pinned to 0, so the forward
        // register threads through the whole chain exactly like fwd_prev.
        let (code, graph) = small_code();
        let graph = Arc::new(graph);
        let q = Quantizer::paper_6bit();
        let mut seq = QuantizedZigzagDecoder::new(Arc::clone(&graph), q, DecoderConfig::default());
        let mut part = QuantizedZigzagDecoder::with_partition(
            Arc::clone(&graph),
            QCheckArithmetic::lut(q),
            DecoderConfig::default(),
            ChainPartition::new(1, None),
        );
        for seed in 0..3u64 {
            let (_, llrs) = noisy_llrs(&code, 2.4, 4000 + seed);
            let a = seq.decode(&llrs);
            let b = part.decode(&llrs);
            assert_eq!(a.bits, b.bits, "seed {seed}: decoded words differ");
            assert_eq!(a.iterations, b.iterations, "seed {seed}: iteration counts differ");
            assert_eq!(a.converged, b.converged, "seed {seed}: convergence flags differ");
        }
    }

    #[test]
    fn partitioned_mode_decodes_with_360_lanes() {
        // Without an edge order the 360-lane sweep is not bit-exact to the
        // sequential decoder, but it is still a valid decoder: it must
        // correct a comfortably-above-threshold frame.
        let (code, graph) = small_code();
        let mut dec = QuantizedZigzagDecoder::with_partition(
            Arc::new(graph),
            QCheckArithmetic::lut(Quantizer::paper_6bit()),
            DecoderConfig::default(),
            ChainPartition::new(360, None),
        );
        let (cw, llrs) = noisy_llrs(&code, 3.2, 41);
        let out = dec.decode(&llrs);
        assert!(out.converged);
        assert_eq!(out.bits, cw);
    }

    #[test]
    fn fused_partition_matches_indirect_partition() {
        // The construction-time fused layout must reproduce the reference
        // LUT-indirection sweep exactly: full DecodeResult plus the
        // per-iteration message digests, under a non-trivial edge order.
        let (code, graph) = small_code();
        let graph = Arc::new(graph);
        let q = Quantizer::paper_6bit();
        let n_check = graph.check_count();
        let info_d = graph.check_edges(0).len() - 1;
        // Reversing each check's inputs exercises the order-dependence of
        // the quantized boxplus without needing the hardware schedule.
        let order: Vec<u32> = (0..n_check).flat_map(|_| (0..info_d as u32).rev()).collect();
        let mut fused = QuantizedZigzagDecoder::with_partition(
            Arc::clone(&graph),
            QCheckArithmetic::lut(q),
            DecoderConfig::default(),
            ChainPartition::new(360, Some(order.clone())),
        );
        let mut indirect = QuantizedZigzagDecoder::with_partition_indirect(
            Arc::clone(&graph),
            QCheckArithmetic::lut(q),
            DecoderConfig::default(),
            ChainPartition::new(360, Some(order)),
        );
        let (mut da, mut db) = (Vec::new(), Vec::new());
        for seed in 0..3u64 {
            let (_, llrs) = noisy_llrs(&code, 2.4, 5000 + seed);
            let channel = fused.quantize_channel(&llrs);
            let a = fused.decode_quantized_traced(&channel, &mut da);
            let b = indirect.decode_quantized_traced(&channel, &mut db);
            assert_eq!(a, b, "seed {seed}: results diverged");
            assert_eq!(da, db, "seed {seed}: per-iteration digests diverged");
            assert_eq!(da.len(), a.iterations, "seed {seed}: one digest per sweep");
        }
    }

    #[test]
    #[should_panic(expected = "equal sub-chains")]
    fn partition_lanes_must_divide_check_count() {
        let (_, graph) = small_code();
        QuantizedZigzagDecoder::with_partition(
            Arc::new(graph),
            QCheckArithmetic::lut(Quantizer::paper_6bit()),
            DecoderConfig::default(),
            ChainPartition::new(7, None),
        );
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn partition_edge_order_must_be_a_permutation() {
        let (_, graph) = small_code();
        let info_d = graph.check_edges(0).len() - 1;
        let n_check = graph.check_count();
        // Position 0 repeated for every check: covers the length check but
        // fails the per-check permutation test.
        let order = vec![0u32; n_check * info_d];
        QuantizedZigzagDecoder::with_partition(
            Arc::new(graph),
            QCheckArithmetic::lut(Quantizer::paper_6bit()),
            DecoderConfig::default(),
            ChainPartition::new(360, Some(order)),
        );
    }

    #[test]
    #[should_panic(expected = "at least one sub-chain")]
    fn partition_rejects_zero_lanes() {
        ChainPartition::new(0, None);
    }

    #[test]
    fn tracks_float_zigzag_at_moderate_snr() {
        use crate::zigzag::ZigzagDecoder;
        let (code, graph) = small_code();
        let graph = Arc::new(graph);
        let mut qdec = QuantizedZigzagDecoder::new(
            Arc::clone(&graph),
            Quantizer::paper_6bit(),
            DecoderConfig::default(),
        );
        let mut fdec = ZigzagDecoder::new(Arc::clone(&graph), DecoderConfig::default());
        let mut agree = 0;
        const TRIALS: usize = 5;
        for seed in 0..TRIALS as u64 {
            let (cw, llrs) = noisy_llrs(&code, 3.4, 3000 + seed);
            let qd = qdec.decode(&llrs);
            let fd = fdec.decode(&llrs);
            if qd.bits == cw && fd.bits == cw {
                agree += 1;
            }
        }
        // 6-bit quantization costs ~0.1 dB: at 3.4 dB both decode reliably.
        assert_eq!(agree, TRIALS);
    }
}
