//! Fixed-point zigzag decoder — the bit-exact golden model of the hardware
//! functional units.
//!
//! Identical schedule to [`crate::ZigzagDecoder`] but with every message a
//! saturating `bits`-wide integer and the check rule evaluated by
//! [`QBoxplus`]. The cycle-accurate core in `dvbs2-hardware` must reproduce
//! this decoder's decisions exactly; the `quantization` bench compares its
//! BER against the float reference to reproduce the paper's 6-bit ≈ 0.1 dB
//! claim.

#![allow(clippy::needless_range_loop)] // one index drives several parallel slices

use crate::quant::{QCheckArithmetic, Quantizer};
use crate::stopping::{hard_decisions_int, hard_decisions_int_into, syndrome_ok};
use crate::{DecodeResult, Decoder, DecoderConfig};
use dvbs2_ldpc::{BitVec, TannerGraph};
use std::sync::Arc;

/// Quantized zigzag-schedule decoder.
///
/// # Chain-boundary semantics vs the hardware `GoldenModel`
///
/// This decoder runs the parity chain as **one** sequential zigzag over all
/// `N − K` checks: the forward input of check `c` is check `c − 1`'s output
/// from the *same* iteration, for every `c > 0`, and the backward messages
/// come from the previous iteration. The hardware golden model
/// (`dvbs2_hardware::GoldenModel`) instead runs **360 parallel sub-chains**
/// (one per functional unit), which changes the message freshness at the
/// `q = (N − K) / 360` sub-chain boundaries in two ways:
///
/// * the forward message *entering* a sub-chain's first check comes from the
///   **previous iteration** (this decoder would use the same iteration's
///   value from the preceding chain segment);
/// * the backward boundary message is written while processing row `0` but
///   read at row `q − 1` of the same sweep, making it **one iteration
///   fresher** than this decoder's strictly previous-iteration backward
///   update.
///
/// All non-boundary messages — `359/360` of the chain — are computed
/// identically, so the two models agree on decoded words and differ only in
/// rare per-frame iteration counts near threshold. The differential oracle
/// therefore holds them to a decoded-word agreement contract, not message
/// bit-exactness; the cycle-accurate `HardwareDecoder` *is* held bit-exact
/// to `GoldenModel`. See `DESIGN.md` ("Chain-boundary semantics") for the
/// derivation.
#[derive(Debug, Clone)]
pub struct QuantizedZigzagDecoder {
    graph: Arc<TannerGraph>,
    arithmetic: QCheckArithmetic,
    max_iterations: usize,
    early_stop: bool,
    v2c: Vec<i32>,
    c2v: Vec<i32>,
    backward: Vec<i32>,
    forward: Vec<i32>,
    totals: Vec<i32>,
    scratch_in: Vec<i32>,
    scratch_out: Vec<i32>,
    /// Reused hard-decision scratch for the early-stop syndrome test.
    decisions: BitVec,
    /// Reused quantized-channel buffer for the float [`Decoder`] entry.
    qchannel: Vec<i32>,
}

impl QuantizedZigzagDecoder {
    /// Creates a decoder with the given quantizer (see
    /// [`Quantizer::paper_6bit`]) and iteration policy.
    ///
    /// # Panics
    ///
    /// Panics if the graph lacks the IRA parity chain (see
    /// [`TannerGraph::for_code`]).
    pub fn new(graph: Arc<TannerGraph>, quantizer: Quantizer, config: DecoderConfig) -> Self {
        Self::with_arithmetic(graph, QCheckArithmetic::lut(quantizer), config)
    }

    /// Creates a decoder with an explicit check-node arithmetic — the
    /// LUT-free [`QCheckArithmetic::min_sum_shift`] trades ~0.1–0.2 dB for
    /// a smaller functional unit.
    ///
    /// # Panics
    ///
    /// Same as [`QuantizedZigzagDecoder::new`].
    pub fn with_arithmetic(
        graph: Arc<TannerGraph>,
        arithmetic: QCheckArithmetic,
        config: DecoderConfig,
    ) -> Self {
        let n_check = graph.check_count();
        assert!(
            graph.info_len() < graph.var_count() && graph.var_count() - graph.info_len() == n_check,
            "quantized zigzag decoder needs an IRA graph from TannerGraph::for_code"
        );
        let edges = graph.edge_count();
        let max_degree = (0..n_check).map(|c| graph.check_degree(c)).max().unwrap_or(0);
        QuantizedZigzagDecoder {
            arithmetic,
            max_iterations: config.max_iterations,
            early_stop: config.early_stop,
            v2c: vec![0; edges],
            c2v: vec![0; edges],
            backward: vec![0; n_check],
            forward: vec![0; n_check],
            totals: vec![0; graph.var_count()],
            scratch_in: vec![0; max_degree],
            scratch_out: vec![0; max_degree],
            decisions: BitVec::zeros(graph.var_count()),
            qchannel: Vec::new(),
            graph,
        }
    }

    /// The message quantizer in use.
    pub fn quantizer(&self) -> &Quantizer {
        self.arithmetic.quantizer()
    }

    /// Decodes pre-quantized channel LLRs. This is the entry point the
    /// hardware model is verified against.
    ///
    /// # Panics
    ///
    /// Panics if `channel.len() != graph.var_count()`.
    pub fn decode_quantized(&mut self, channel: &[i32]) -> DecodeResult {
        let mut out = DecodeResult::default();
        self.decode_quantized_into(channel, &mut out);
        out
    }

    /// Decodes pre-quantized channel LLRs into a caller-owned result,
    /// reusing its buffers (no allocation once `out.bits` has the codeword
    /// length).
    ///
    /// # Panics
    ///
    /// Panics if `channel.len() != graph.var_count()`.
    pub fn decode_quantized_into(&mut self, channel: &[i32], out: &mut DecodeResult) {
        let graph = Arc::clone(&self.graph);
        assert_eq!(channel.len(), graph.var_count(), "LLR length mismatch");
        let k = graph.info_len();
        let n_check = graph.check_count();
        let q = *self.arithmetic.quantizer();

        self.c2v.fill(0);
        self.backward.fill(0);
        let mut iterations = 0;
        let mut converged = false;

        for _ in 0..self.max_iterations {
            iterations += 1;

            // Information variable nodes (Eq. 4, saturating outputs).
            for v in 0..k {
                let edges = graph.var_edges(v);
                let total: i32 =
                    channel[v] + edges.iter().map(|&e| self.c2v[e as usize]).sum::<i32>();
                for &e in edges {
                    self.v2c[e as usize] = q.saturate(total - self.c2v[e as usize]);
                }
            }

            // Sequential check sweep with immediate forward update.
            let mut fwd_prev = 0i32;
            for c in 0..n_check {
                let range = graph.check_edges(c);
                let info_d = range.len() - if c == 0 { 1 } else { 2 };
                let start = range.start;
                for i in 0..info_d {
                    self.scratch_in[i] = self.v2c[start + i];
                }
                let mut d = info_d;
                let left_pos = if c > 0 {
                    self.scratch_in[d] = q.sat_add(channel[k + c - 1], fwd_prev);
                    d += 1;
                    Some(d - 1)
                } else {
                    None
                };
                self.scratch_in[d] =
                    q.sat_add(channel[k + c], if c + 1 < n_check { self.backward[c] } else { 0 });
                let right_pos = d;
                d += 1;

                self.arithmetic.extrinsic(&self.scratch_in[..d], &mut self.scratch_out[..d]);

                for i in 0..info_d {
                    self.c2v[start + i] = self.scratch_out[i];
                }
                if let Some(p) = left_pos {
                    self.backward[c - 1] = self.scratch_out[p];
                }
                fwd_prev = self.scratch_out[right_pos];
                self.forward[c] = fwd_prev;
            }

            for v in 0..k {
                self.totals[v] = channel[v]
                    + graph.var_edges(v).iter().map(|&e| self.c2v[e as usize]).sum::<i32>();
            }
            for j in 0..n_check {
                self.totals[k + j] = channel[k + j]
                    + self.forward[j]
                    + if j + 1 < n_check { self.backward[j] } else { 0 };
            }
            if self.early_stop {
                hard_decisions_int_into(&self.totals, &mut self.decisions);
                if syndrome_ok(&graph, &self.decisions) {
                    converged = true;
                    break;
                }
            }
        }
        if out.bits.len() != self.totals.len() {
            out.bits = BitVec::zeros(self.totals.len());
        }
        hard_decisions_int_into(&self.totals, &mut out.bits);
        if !converged {
            converged = syndrome_ok(&graph, &out.bits);
        }
        out.iterations = iterations;
        out.converged = converged;
    }

    /// Quantizes float channel LLRs.
    ///
    /// Non-finite inputs degrade gracefully through the quantizer's
    /// saturation: `±inf` pins to the extreme level and `NaN` maps to `0`
    /// (an erasure), matching the float decoders' sanitization policy.
    pub fn quantize_channel(&self, channel_llrs: &[f64]) -> Vec<i32> {
        let q = self.arithmetic.quantizer();
        channel_llrs.iter().map(|&l| q.quantize(l)).collect()
    }

    /// Hard decisions of the last decode (full codeword).
    pub fn last_decisions(&self) -> BitVec {
        hard_decisions_int(&self.totals)
    }
}

impl Decoder for QuantizedZigzagDecoder {
    fn decode(&mut self, channel_llrs: &[f64]) -> DecodeResult {
        let mut out = DecodeResult::default();
        self.decode_into(channel_llrs, &mut out);
        out
    }

    fn decode_into(&mut self, channel_llrs: &[f64], out: &mut DecodeResult) {
        let q = *self.arithmetic.quantizer();
        // The buffer is moved out so `decode_quantized_into(&mut self, ..)`
        // can run while reading it, then moved back for reuse.
        let mut qchannel = std::mem::take(&mut self.qchannel);
        qchannel.clear();
        qchannel.extend(channel_llrs.iter().map(|&l| q.quantize(l)));
        self.decode_quantized_into(&qchannel, out);
        self.qchannel = qchannel;
    }

    fn set_max_iterations(&mut self, max_iterations: usize) {
        self.max_iterations = max_iterations;
    }

    fn name(&self) -> &'static str {
        "quantized zigzag"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{noisy_llrs, small_code};

    fn decoder(bits: u32) -> (dvbs2_ldpc::DvbS2Code, QuantizedZigzagDecoder) {
        let (code, graph) = small_code();
        let dec = QuantizedZigzagDecoder::new(
            Arc::new(graph),
            Quantizer::new(bits, 0.5),
            DecoderConfig::default(),
        );
        (code, dec)
    }

    #[test]
    fn corrects_noisy_frame_with_6_bits() {
        let (code, mut dec) = decoder(6);
        let (cw, llrs) = noisy_llrs(&code, 3.2, 21);
        let out = dec.decode(&llrs);
        assert!(out.converged);
        assert_eq!(out.bits, cw);
    }

    #[test]
    fn corrects_noisy_frame_with_5_bits_at_higher_snr() {
        let (code, mut dec) = decoder(5);
        let (cw, llrs) = noisy_llrs(&code, 4.0, 22);
        let out = dec.decode(&llrs);
        assert_eq!(out.bits, cw);
    }

    #[test]
    fn decode_is_deterministic() {
        let (code, mut dec) = decoder(6);
        let (_, llrs) = noisy_llrs(&code, 2.6, 23);
        let a = dec.decode(&llrs);
        let b = dec.decode(&llrs);
        assert_eq!(a.bits, b.bits);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn quantized_channel_is_saturated() {
        let (_, dec) = decoder(6);
        let q = dec.quantize_channel(&[1000.0, -1000.0, 0.2]);
        assert_eq!(q, vec![31, -31, 0]);
    }

    #[test]
    fn min_sum_arithmetic_also_decodes() {
        use crate::quant::QCheckArithmetic;
        let (code, graph) = small_code();
        let mut dec = QuantizedZigzagDecoder::with_arithmetic(
            Arc::new(graph),
            QCheckArithmetic::min_sum_shift(Quantizer::paper_6bit(), 2),
            DecoderConfig::default(),
        );
        let (cw, llrs) = noisy_llrs(&code, 3.4, 61);
        let out = dec.decode(&llrs);
        assert!(out.converged);
        assert_eq!(out.bits, cw);
    }

    #[test]
    fn lut_arithmetic_beats_min_sum_near_threshold() {
        use crate::quant::QCheckArithmetic;
        let (code, graph) = small_code();
        let graph = Arc::new(graph);
        let q = Quantizer::paper_6bit();
        let mut lut = QuantizedZigzagDecoder::new(Arc::clone(&graph), q, DecoderConfig::default());
        let mut msd = QuantizedZigzagDecoder::with_arithmetic(
            Arc::clone(&graph),
            QCheckArithmetic::min_sum_shift(q, 2),
            DecoderConfig::default(),
        );
        let mut lut_iters = 0usize;
        let mut ms_iters = 0usize;
        for seed in 0..4 {
            let (_, llrs) = noisy_llrs(&code, 1.6, 7000 + seed);
            lut_iters += lut.decode(&llrs).iterations;
            ms_iters += msd.decode(&llrs).iterations;
        }
        // The exact rule converges at least as fast in aggregate.
        assert!(lut_iters <= ms_iters, "lut {lut_iters} vs min-sum {ms_iters}");
    }

    #[test]
    fn tracks_float_zigzag_at_moderate_snr() {
        use crate::zigzag::ZigzagDecoder;
        let (code, graph) = small_code();
        let graph = Arc::new(graph);
        let mut qdec = QuantizedZigzagDecoder::new(
            Arc::clone(&graph),
            Quantizer::paper_6bit(),
            DecoderConfig::default(),
        );
        let mut fdec = ZigzagDecoder::new(Arc::clone(&graph), DecoderConfig::default());
        let mut agree = 0;
        const TRIALS: usize = 5;
        for seed in 0..TRIALS as u64 {
            let (cw, llrs) = noisy_llrs(&code, 3.4, 3000 + seed);
            let qd = qdec.decode(&llrs);
            let fd = fdec.decode(&llrs);
            if qd.bits == cw && fd.bits == cw {
                agree += 1;
            }
        }
        // 6-bit quantization costs ~0.1 dB: at 3.4 dB both decode reliably.
        assert_eq!(agree, TRIALS);
    }
}
