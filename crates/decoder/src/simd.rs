//! Runtime SIMD dispatch for the message-engine kernels.
//!
//! The workspace pins `-C target-cpu=x86-64-v3` in `.cargo/config.toml`,
//! which bakes AVX2 into *every* function — a build that crashes with
//! `SIGILL` on a pre-Haswell core and cannot be probed at runtime. This
//! module replaces the pin as the sole vector story: the hot kernels have
//! `#[target_feature]`-compiled AVX2 and AVX-512 clones, and a
//! [`SimdTier`] chosen once per decoder (via
//! [`is_x86_feature_detected!`](std::arch::is_x86_feature_detected))
//! selects among them per call. A baseline `x86-64` build therefore still
//! runs the vector paths on capable hardware, and a v3 build still runs —
//! the pin becomes a codegen default, not a hard floor.
//!
//! All tiers are **bit-identical**: the clones contain the same Rust (and
//! the same operation order), and rustc performs no floating-point
//! contraction, so wider registers change throughput, never results. The
//! property tests in `tests/tiled.rs` pin this across every available tier.

/// One rung of the runtime dispatch ladder.
///
/// Ordered from narrowest to widest; [`SimdTier::detect`] picks the highest
/// rung the running CPU supports (or the one forced via the `DVBS2_SIMD`
/// environment variable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdTier {
    /// Portable baseline: whatever the build's `target-cpu` allows.
    Scalar,
    /// 256-bit paths compiled with `#[target_feature(enable = "avx2")]`.
    Avx2,
    /// 512-bit paths compiled with `#[target_feature(enable = "avx512f")]`.
    Avx512,
}

impl SimdTier {
    /// Every tier, narrowest first (the order of the dispatch ladder).
    pub const ALL: [SimdTier; 3] = [SimdTier::Scalar, SimdTier::Avx2, SimdTier::Avx512];

    /// The tier to use on this machine: the `DVBS2_SIMD` environment
    /// variable (`scalar` / `avx2` / `avx512`) when set, otherwise the
    /// widest tier the CPU reports.
    ///
    /// The environment override is process-global — tests that need a
    /// specific tier should use
    /// [`DecoderConfig::with_simd_tier`](crate::DecoderConfig::with_simd_tier)
    /// instead, which is per-decoder and race-free under a parallel test
    /// runner.
    ///
    /// # Panics
    ///
    /// Panics if `DVBS2_SIMD` names an unknown tier or one the CPU does not
    /// support (a silent fallback would defeat the point of forcing it).
    pub fn detect() -> SimdTier {
        match std::env::var("DVBS2_SIMD") {
            Ok(name) => {
                let tier = match name.to_ascii_lowercase().as_str() {
                    "scalar" => SimdTier::Scalar,
                    "avx2" => SimdTier::Avx2,
                    "avx512" => SimdTier::Avx512,
                    other => panic!(
                        "DVBS2_SIMD={other:?} is not a dispatch tier \
                         (expected scalar, avx2 or avx512)"
                    ),
                };
                assert!(
                    tier.is_available(),
                    "DVBS2_SIMD requested {tier:?}, which this CPU does not support"
                );
                tier
            }
            Err(_) => Self::best_available(),
        }
    }

    /// Resolves an explicit per-decoder override (`Some`) or falls back to
    /// [`SimdTier::detect`] (`None`).
    ///
    /// # Panics
    ///
    /// Panics if the forced tier is not available on this CPU.
    pub fn resolve(forced: Option<SimdTier>) -> SimdTier {
        match forced {
            Some(tier) => {
                assert!(
                    tier.is_available(),
                    "decoder configured for {tier:?}, which this CPU does not support"
                );
                tier
            }
            None => Self::detect(),
        }
    }

    /// The widest tier the running CPU supports.
    pub fn best_available() -> SimdTier {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                return SimdTier::Avx512;
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                return SimdTier::Avx2;
            }
        }
        SimdTier::Scalar
    }

    /// Whether the running CPU can execute this tier's kernels.
    pub fn is_available(self) -> bool {
        match self {
            SimdTier::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            SimdTier::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "x86_64")]
            SimdTier::Avx512 => std::arch::is_x86_feature_detected!("avx512f"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }

    /// Every tier the running CPU supports, narrowest first.
    pub fn available() -> Vec<SimdTier> {
        Self::ALL.into_iter().filter(|t| t.is_available()).collect()
    }

    /// Whether the 512-bit **integer-lane** kernels can run: 512-bit `i16`
    /// min/max/abs/compare need AVX-512BW (and VL for the mixed-width
    /// remainders) on top of the AVX-512F that [`SimdTier::Avx512`] gates
    /// on. True on every AVX-512 server core since Skylake-SP; the
    /// quantized dispatch falls back to the AVX2 clone — still bit
    /// identical — on the rare F-only parts, keeping the float kernels'
    /// tier semantics unchanged.
    pub(crate) fn wide_i16_available() -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            std::arch::is_x86_feature_detected!("avx512bw")
                && std::arch::is_x86_feature_detected!("avx512vl")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    }

    /// Stable lower-case identifier (what benchmark reports emit).
    pub fn name(self) -> &'static str {
        match self {
            SimdTier::Scalar => "scalar",
            SimdTier::Avx2 => "avx2",
            SimdTier::Avx512 => "avx512",
        }
    }
}

/// The vector-relevant CPU features the running machine reports, for
/// benchmark `cpu` blocks. Empty on non-x86-64 targets.
pub fn detected_cpu_features() -> Vec<&'static str> {
    #[cfg(target_arch = "x86_64")]
    {
        let mut features = Vec::new();
        macro_rules! probe {
            ($($name:tt),*) => {$(
                if std::arch::is_x86_feature_detected!($name) {
                    features.push($name);
                }
            )*};
        }
        probe!("sse4.2", "avx", "avx2", "fma", "avx512f", "avx512bw", "avx512vl");
        features
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_is_always_available() {
        assert!(SimdTier::Scalar.is_available());
        assert!(SimdTier::available().contains(&SimdTier::Scalar));
    }

    #[test]
    fn best_available_is_listed_as_available() {
        let best = SimdTier::best_available();
        assert!(best.is_available());
        assert_eq!(SimdTier::available().last(), Some(&best));
    }

    #[test]
    fn resolve_honours_explicit_tier() {
        assert_eq!(SimdTier::resolve(Some(SimdTier::Scalar)), SimdTier::Scalar);
    }

    #[test]
    fn names_are_stable() {
        let names: Vec<_> = SimdTier::ALL.iter().map(|t| t.name()).collect();
        assert_eq!(names, ["scalar", "avx2", "avx512"]);
    }

    #[test]
    #[cfg(target_arch = "x86_64")]
    fn detected_features_match_tier_availability() {
        let features = detected_cpu_features();
        assert_eq!(features.contains(&"avx2"), SimdTier::Avx2.is_available());
        assert_eq!(features.contains(&"avx512f"), SimdTier::Avx512.is_available());
    }
}
