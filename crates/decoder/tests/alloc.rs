//! Steady-state allocation audit for the message-passing decoders.
//!
//! The engines preallocate every message plane and working buffer in
//! `new()`; after a warm-up decode, each subsequent `decode()` must perform
//! exactly ONE heap allocation — the `BitVec` handed back in the result —
//! and match it with one deallocation. A counting global allocator enforces
//! this; the test lives in its own integration-test binary so no other
//! test's allocations can leak into the counters.

use dvbs2_decoder::test_support::{noisy_llrs, small_code};
use dvbs2_decoder::{
    CheckRule, DecodeResult, Decoder, DecoderConfig, FloodingDecoder, LayeredDecoder, Precision,
    QuantizedZigzagDecoder, Quantizer, ZigzagDecoder,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);
static DEALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Runs `decode` on three frames after a warm-up and asserts that each call
/// allocated exactly once (the returned bit vector) and freed exactly once
/// (the previous result, dropped between calls).
fn assert_single_allocation_per_decode(name: &str, decoder: &mut dyn Decoder, llrs: &[f64]) {
    let mut results = vec![decoder.decode(llrs)]; // warm-up
    for round in 0..3 {
        let before_alloc = ALLOCATIONS.load(Ordering::SeqCst);
        let before_dealloc = DEALLOCATIONS.load(Ordering::SeqCst);
        let result = decoder.decode(llrs);
        let allocated = ALLOCATIONS.load(Ordering::SeqCst) - before_alloc;
        let deallocated = DEALLOCATIONS.load(Ordering::SeqCst) - before_dealloc;
        assert_eq!(
            allocated, 1,
            "{name} round {round}: expected the result BitVec to be the only \
             allocation, saw {allocated}"
        );
        assert_eq!(
            deallocated, 0,
            "{name} round {round}: decode freed {deallocated} buffers mid-flight"
        );
        results.push(result); // keep results alive outside the measured window
    }
    drop(results);
}

/// Runs `decode_into` on three frames after a warm-up and asserts that the
/// reused result makes warm decodes fully allocation-free — the contract
/// the streaming pipeline's per-worker scratch relies on.
fn assert_zero_allocation_decode_into(name: &str, decoder: &mut dyn Decoder, llrs: &[f64]) {
    let mut out = DecodeResult::default();
    decoder.decode_into(llrs, &mut out); // warm-up: sizes out.bits
    let reference = out.clone();
    for round in 0..3 {
        let before_alloc = ALLOCATIONS.load(Ordering::SeqCst);
        let before_dealloc = DEALLOCATIONS.load(Ordering::SeqCst);
        decoder.decode_into(llrs, &mut out);
        let allocated = ALLOCATIONS.load(Ordering::SeqCst) - before_alloc;
        let deallocated = DEALLOCATIONS.load(Ordering::SeqCst) - before_dealloc;
        assert_eq!(allocated, 0, "{name} round {round}: decode_into allocated {allocated}");
        assert_eq!(deallocated, 0, "{name} round {round}: decode_into freed {deallocated}");
    }
    assert_eq!(out, reference, "{name}: decode_into must be deterministic across reuse");
}

#[test]
fn decode_into_is_allocation_free_after_warm_up() {
    let (code, graph) = small_code();
    let graph = Arc::new(graph);
    let (_, llrs) = noisy_llrs(&code, 1.4, 31);

    let configs = [
        ("sum-product f64", DecoderConfig::default()),
        ("min-sum f64", DecoderConfig::default().with_rule(CheckRule::NormalizedMinSum(0.8))),
        ("sum-product f32", DecoderConfig::default().with_precision(Precision::F32)),
    ];
    for (label, config) in configs {
        let mut flooding = FloodingDecoder::new(Arc::clone(&graph), config);
        assert_zero_allocation_decode_into(&format!("flooding {label}"), &mut flooding, &llrs);
        let mut zigzag = ZigzagDecoder::new(Arc::clone(&graph), config);
        assert_zero_allocation_decode_into(&format!("zigzag {label}"), &mut zigzag, &llrs);
        let mut layered = LayeredDecoder::new(Arc::clone(&graph), config);
        assert_zero_allocation_decode_into(&format!("layered {label}"), &mut layered, &llrs);
    }
    // The quantized decoder reuses both its channel buffer and its
    // hard-decision scratch through the same entry point.
    let mut quantized = QuantizedZigzagDecoder::new(
        Arc::clone(&graph),
        Quantizer::paper_6bit(),
        DecoderConfig::default(),
    );
    assert_zero_allocation_decode_into("quantized 6-bit", &mut quantized, &llrs);
}

#[test]
fn decoders_do_not_allocate_after_warm_up() {
    let (code, graph) = small_code();
    let graph = Arc::new(graph);
    let (_, llrs) = noisy_llrs(&code, 1.4, 31);

    let configs = [
        ("sum-product f64", DecoderConfig::default()),
        ("min-sum f64", DecoderConfig::default().with_rule(CheckRule::NormalizedMinSum(0.8))),
        ("sum-product f32", DecoderConfig::default().with_precision(Precision::F32)),
    ];
    for (label, config) in configs {
        let mut flooding = FloodingDecoder::new(Arc::clone(&graph), config);
        assert_single_allocation_per_decode(&format!("flooding {label}"), &mut flooding, &llrs);
        let mut zigzag = ZigzagDecoder::new(Arc::clone(&graph), config);
        assert_single_allocation_per_decode(&format!("zigzag {label}"), &mut zigzag, &llrs);
        let mut layered = LayeredDecoder::new(Arc::clone(&graph), config);
        assert_single_allocation_per_decode(&format!("layered {label}"), &mut layered, &llrs);
    }
}
