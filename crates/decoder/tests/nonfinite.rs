//! Regression tests for non-finite channel LLRs.
//!
//! A demodulator bug (or a saturated AGC) can hand the decoder `±inf` or
//! `NaN` soft bits. Before sanitization, an `inf` input made the check-node
//! gather compute `inf - inf = NaN`, which then spread through every
//! message plane. Every float decoder now clamps at its ingestion boundary
//! (`NaN` → erasure, `±inf` → `±LLR_CLAMP`), and the quantized decoder's
//! saturating quantizer has the same policy by construction, so frames
//! containing garbage samples decode like frames containing erasures.

use dvbs2_decoder::test_support::{llrs_for_codeword, small_code};
use dvbs2_decoder::{
    BitFlippingDecoder, CheckRule, Decoder, DecoderConfig, FloodingDecoder, LayeredDecoder,
    Precision, QuantizedZigzagDecoder, Quantizer, ZigzagDecoder,
};
use dvbs2_ldpc::BitVec;
use std::sync::Arc;

/// Every soft decoder in the matrix, both precisions where applicable.
fn soft_decoders(graph: &Arc<dvbs2_ldpc::TannerGraph>) -> Vec<Box<dyn Decoder>> {
    let f64_cfg = DecoderConfig::default();
    let f32_cfg = DecoderConfig::default().with_precision(Precision::F32);
    let ms_cfg = DecoderConfig::default().with_rule(CheckRule::NormalizedMinSum(0.8));
    vec![
        Box::new(FloodingDecoder::new(Arc::clone(graph), f64_cfg)),
        Box::new(FloodingDecoder::new(Arc::clone(graph), f32_cfg)),
        Box::new(FloodingDecoder::new(Arc::clone(graph), ms_cfg)),
        Box::new(ZigzagDecoder::new(Arc::clone(graph), f64_cfg)),
        Box::new(ZigzagDecoder::new(Arc::clone(graph), f32_cfg)),
        Box::new(LayeredDecoder::new(Arc::clone(graph), f64_cfg)),
        Box::new(QuantizedZigzagDecoder::new(Arc::clone(graph), Quantizer::paper_6bit(), f64_cfg)),
    ]
}

/// A clean codeword with a handful of non-finite samples must still decode:
/// `NaN` is an erasure the surrounding checks repair, and sign-consistent
/// `±inf` saturates instead of poisoning the message planes.
#[test]
fn frame_with_scattered_non_finite_llrs_decodes() {
    let (code, graph) = small_code();
    let graph = Arc::new(graph);
    let enc = code.encoder().unwrap();
    let msg: BitVec = (0..code.params().k).map(|i| i % 7 == 0).collect();
    let cw = enc.encode(&msg).unwrap();

    let mut llrs = llrs_for_codeword(&cw, 5.0);
    // Erasures anywhere; infinities with the *correct* sign (a saturated
    // but honest sample), plus one huge finite value that would overflow
    // f32 without the f64-domain clamp.
    for &i in &[7usize, 901, 4444, 12003] {
        llrs[i] = f64::NAN;
    }
    for &i in &[40usize, 2000, 9000] {
        llrs[i] = if cw.get(i) { f64::NEG_INFINITY } else { f64::INFINITY };
    }
    llrs[5000] = if cw.get(5000) { -1e300 } else { 1e300 };

    for mut dec in soft_decoders(&graph) {
        let out = dec.decode(&llrs);
        assert!(out.converged, "{}: did not converge on non-finite frame", dec.name());
        assert_eq!(out.bits, cw, "{}: wrong codeword", dec.name());
    }
}

/// The sanitization contract, stated exactly: decoding a frame containing
/// `NaN`/`±inf` is bit-identical to decoding the same frame with those
/// samples replaced by their sanitized values (`0.0` and `±LLR_CLAMP`).
/// This holds even for a *wrong-sign* infinity — an unrecoverable lie about
/// one bit, which behaves like any hugely confident wrong finite sample
/// instead of cascading `NaN` through the message planes.
#[test]
fn non_finite_frame_decodes_identically_to_sanitized_frame() {
    use dvbs2_decoder::LLR_CLAMP;
    let (code, graph) = small_code();
    let graph = Arc::new(graph);
    let enc = code.encoder().unwrap();
    let msg: BitVec = (0..code.params().k).map(|i| i % 3 == 0).collect();
    let cw = enc.encode(&msg).unwrap();

    let base = llrs_for_codeword(&cw, 5.0);
    let mut raw = base.clone();
    let mut sanitized = base;
    // A wrong-sign infinity, a right-sign infinity and an erasure.
    raw[123] = if cw.get(123) { f64::INFINITY } else { f64::NEG_INFINITY };
    sanitized[123] = if cw.get(123) { LLR_CLAMP } else { -LLR_CLAMP };
    raw[4567] = if cw.get(4567) { f64::NEG_INFINITY } else { f64::INFINITY };
    sanitized[4567] = if cw.get(4567) { -LLR_CLAMP } else { LLR_CLAMP };
    raw[9001] = f64::NAN;
    sanitized[9001] = 0.0;

    for mut dec in soft_decoders(&graph) {
        let a = dec.decode(&raw);
        let b = dec.decode(&sanitized);
        assert_eq!(a, b, "{}: non-finite frame diverged from sanitized frame", dec.name());
        let c = dec.decode(&raw);
        assert_eq!(a, c, "{}: non-finite input broke determinism", dec.name());
    }
}

/// An all-`NaN` frame carries no information at all; the sanitized LLRs are
/// all zero, whose hard decisions form the all-zero codeword.
#[test]
fn all_nan_frame_degrades_to_erasure() {
    let (code, graph) = small_code();
    let graph = Arc::new(graph);
    let llrs = vec![f64::NAN; code.params().n];
    for mut dec in soft_decoders(&graph) {
        let out = dec.decode(&llrs);
        assert!(out.converged, "{}: all-zero word satisfies every check", dec.name());
        assert_eq!(out.bits.count_ones(), 0, "{}", dec.name());
    }
}

/// The hard-decision baseline has no message arithmetic to poison, but its
/// sign test must still map non-finite samples deterministically.
#[test]
fn bit_flipping_handles_non_finite_signs() {
    let (code, graph) = small_code();
    let graph = Arc::new(graph);
    let enc = code.encoder().unwrap();
    let msg: BitVec = (0..code.params().k).map(|i| i % 11 == 0).collect();
    let cw = enc.encode(&msg).unwrap();
    let mut llrs = llrs_for_codeword(&cw, 4.0);
    // NaN compares non-negative, so it lands on bit 0: plant erasures where
    // the codeword already has zeros and true-sign infinities elsewhere.
    let mut planted = 0;
    for (i, llr) in llrs.iter_mut().enumerate().take(cw.len()) {
        if !cw.get(i) && planted < 3 {
            *llr = f64::NAN;
            planted += 1;
        }
    }
    llrs[60] = if cw.get(60) { f64::NEG_INFINITY } else { f64::INFINITY };
    let mut dec = BitFlippingDecoder::new(graph, DecoderConfig::default());
    let out = dec.decode(&llrs);
    assert!(out.converged);
    assert_eq!(out.bits, cw);
}
