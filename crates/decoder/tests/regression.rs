//! Golden-vector regression: the SoA message-engine decoders must be
//! *behaviorally identical* to the original scalar implementations — same
//! hard decisions AND same iteration counts on every frame.
//!
//! The references below are the pre-refactor `FloodingDecoder` and
//! `ZigzagDecoder` embedded verbatim (modulo renaming and the public-API
//! surface they run against). They intentionally keep the original
//! associativity — `channel + edges.map(c2v).sum::<f64>()`, scratch-copy
//! check updates, forward/backward parity arrays — so any rounding drift in
//! the refactored engines shows up as a bit-level mismatch here.

// Verbatim seed code: lint style kept as shipped.
#![allow(clippy::needless_range_loop)]

use dvbs2_decoder::test_support::{noisy_llrs, small_code};
use dvbs2_decoder::{
    hard_decisions, syndrome_ok, CheckRule, DecodeResult, Decoder, DecoderConfig, FloodingDecoder,
    LayeredDecoder, TileSchedule, TiledBatchDecoder, ZigzagDecoder,
};
use dvbs2_ldpc::TannerGraph;
use std::sync::Arc;

/// The seed repository's flooding decoder, embedded as a reference.
struct SeedFlooding {
    graph: Arc<TannerGraph>,
    config: DecoderConfig,
    v2c: Vec<f64>,
    c2v: Vec<f64>,
    totals: Vec<f64>,
    scratch_in: Vec<f64>,
    scratch_out: Vec<f64>,
}

impl SeedFlooding {
    fn new(graph: Arc<TannerGraph>, config: DecoderConfig) -> Self {
        let edges = graph.edge_count();
        let vars = graph.var_count();
        let max_degree = (0..graph.check_count()).map(|c| graph.check_degree(c)).max().unwrap_or(0);
        SeedFlooding {
            graph,
            config,
            v2c: vec![0.0; edges],
            c2v: vec![0.0; edges],
            totals: vec![0.0; vars],
            scratch_in: vec![0.0; max_degree],
            scratch_out: vec![0.0; max_degree],
        }
    }

    fn decode(&mut self, channel_llrs: &[f64]) -> DecodeResult {
        let graph = Arc::clone(&self.graph);
        self.c2v.fill(0.0);
        let mut iterations = 0;
        let mut converged = false;

        for _ in 0..self.config.max_iterations {
            iterations += 1;
            for v in 0..graph.var_count() {
                let edges = graph.var_edges(v);
                let total: f64 =
                    channel_llrs[v] + edges.iter().map(|&e| self.c2v[e as usize]).sum::<f64>();
                self.totals[v] = total;
                for &e in edges {
                    self.v2c[e as usize] = total - self.c2v[e as usize];
                }
            }
            for c in 0..graph.check_count() {
                let range = graph.check_edges(c);
                let d = range.len();
                for (i, e) in range.clone().enumerate() {
                    self.scratch_in[i] = self.v2c[e];
                }
                self.config.rule.extrinsic(&self.scratch_in[..d], &mut self.scratch_out[..d]);
                for (i, e) in range.enumerate() {
                    self.c2v[e] = self.scratch_out[i];
                }
            }
            if self.config.early_stop {
                for v in 0..graph.var_count() {
                    self.totals[v] = channel_llrs[v]
                        + graph.var_edges(v).iter().map(|&e| self.c2v[e as usize]).sum::<f64>();
                }
                if syndrome_ok(&graph, &hard_decisions(&self.totals)) {
                    converged = true;
                    break;
                }
            }
        }
        if !self.config.early_stop || !converged {
            for v in 0..graph.var_count() {
                self.totals[v] = channel_llrs[v]
                    + graph.var_edges(v).iter().map(|&e| self.c2v[e as usize]).sum::<f64>();
            }
            converged = syndrome_ok(&graph, &hard_decisions(&self.totals));
        }
        DecodeResult { bits: hard_decisions(&self.totals), iterations, converged }
    }
}

/// The seed repository's zigzag decoder, embedded as a reference.
struct SeedZigzag {
    graph: Arc<TannerGraph>,
    config: DecoderConfig,
    v2c: Vec<f64>,
    c2v: Vec<f64>,
    backward: Vec<f64>,
    forward: Vec<f64>,
    totals: Vec<f64>,
    scratch_in: Vec<f64>,
    scratch_out: Vec<f64>,
}

impl SeedZigzag {
    fn new(graph: Arc<TannerGraph>, config: DecoderConfig) -> Self {
        let n_check = graph.check_count();
        let edges = graph.edge_count();
        let max_degree = (0..n_check).map(|c| graph.check_degree(c)).max().unwrap_or(0);
        SeedZigzag {
            graph,
            config,
            v2c: vec![0.0; edges],
            c2v: vec![0.0; edges],
            backward: vec![0.0; n_check],
            forward: vec![0.0; n_check],
            totals: vec![0.0; 0],
            scratch_in: vec![0.0; max_degree],
            scratch_out: vec![0.0; max_degree],
        }
    }

    fn info_degree(&self, c: usize) -> usize {
        self.graph.check_degree(c) - if c == 0 { 1 } else { 2 }
    }

    fn decode(&mut self, channel_llrs: &[f64]) -> DecodeResult {
        let graph = Arc::clone(&self.graph);
        let k = graph.info_len();
        let n_check = graph.check_count();

        self.c2v.fill(0.0);
        self.backward.fill(0.0);
        self.totals = vec![0.0; graph.var_count()];
        let mut iterations = 0;
        let mut converged = false;

        for _ in 0..self.config.max_iterations {
            iterations += 1;

            for v in 0..k {
                let edges = graph.var_edges(v);
                let total: f64 =
                    channel_llrs[v] + edges.iter().map(|&e| self.c2v[e as usize]).sum::<f64>();
                self.totals[v] = total;
                for &e in edges {
                    self.v2c[e as usize] = total - self.c2v[e as usize];
                }
            }

            let mut fwd_prev = 0.0;
            for c in 0..n_check {
                let info_d = self.info_degree(c);
                let range = graph.check_edges(c);
                let start = range.start;
                for i in 0..info_d {
                    self.scratch_in[i] = self.v2c[start + i];
                }
                let mut d = info_d;
                let left_pos = if c > 0 {
                    self.scratch_in[d] = channel_llrs[k + c - 1] + fwd_prev;
                    d += 1;
                    Some(d - 1)
                } else {
                    None
                };
                self.scratch_in[d] =
                    channel_llrs[k + c] + if c + 1 < n_check { self.backward[c] } else { 0.0 };
                let right_pos = d;
                d += 1;

                self.config.rule.extrinsic(&self.scratch_in[..d], &mut self.scratch_out[..d]);

                for i in 0..info_d {
                    self.c2v[start + i] = self.scratch_out[i];
                }
                if let Some(p) = left_pos {
                    self.backward[c - 1] = self.scratch_out[p];
                }
                fwd_prev = self.scratch_out[right_pos];
                self.forward[c] = fwd_prev;
            }

            for v in 0..k {
                self.totals[v] = channel_llrs[v]
                    + graph.var_edges(v).iter().map(|&e| self.c2v[e as usize]).sum::<f64>();
            }
            for j in 0..n_check {
                self.totals[k + j] = channel_llrs[k + j]
                    + self.forward[j]
                    + if j + 1 < n_check { self.backward[j] } else { 0.0 };
            }
            if self.config.early_stop && syndrome_ok(&graph, &hard_decisions(&self.totals)) {
                converged = true;
                break;
            }
        }
        if !converged {
            converged = syndrome_ok(&graph, &hard_decisions(&self.totals));
        }
        DecodeResult { bits: hard_decisions(&self.totals), iterations, converged }
    }
}

/// A scalar reference for the layered schedule: the running-totals sweep
/// with per-check scratch copies, written in the plain per-frame form the
/// lane kernels were ported from. Pins the schedule's totals/early-stop
/// behavior so the tiled lane port cannot drift.
struct SeedLayered {
    graph: Arc<TannerGraph>,
    config: DecoderConfig,
    c2v: Vec<f64>,
    totals: Vec<f64>,
    scratch_in: Vec<f64>,
    scratch_out: Vec<f64>,
}

impl SeedLayered {
    fn new(graph: Arc<TannerGraph>, config: DecoderConfig) -> Self {
        let edges = graph.edge_count();
        let vars = graph.var_count();
        let max_degree = (0..graph.check_count()).map(|c| graph.check_degree(c)).max().unwrap_or(0);
        SeedLayered {
            graph,
            config,
            c2v: vec![0.0; edges],
            totals: vec![0.0; vars],
            scratch_in: vec![0.0; max_degree],
            scratch_out: vec![0.0; max_degree],
        }
    }

    fn decode(&mut self, channel_llrs: &[f64]) -> DecodeResult {
        let graph = Arc::clone(&self.graph);
        self.c2v.fill(0.0);
        self.totals.copy_from_slice(channel_llrs);
        let mut iterations = 0;
        let mut converged = false;

        for _ in 0..self.config.max_iterations {
            iterations += 1;
            for c in 0..graph.check_count() {
                let range = graph.check_edges(c);
                let d = range.len();
                for (i, e) in range.clone().enumerate() {
                    let v = graph.edge_vars()[e] as usize;
                    self.scratch_in[i] = self.totals[v] - self.c2v[e];
                }
                self.config.rule.extrinsic(&self.scratch_in[..d], &mut self.scratch_out[..d]);
                for (i, e) in range.enumerate() {
                    let v = graph.edge_vars()[e] as usize;
                    self.totals[v] += self.scratch_out[i] - self.c2v[e];
                    self.c2v[e] = self.scratch_out[i];
                }
            }
            if self.config.early_stop && syndrome_ok(&graph, &hard_decisions(&self.totals)) {
                converged = true;
                break;
            }
        }
        if !converged {
            converged = syndrome_ok(&graph, &hard_decisions(&self.totals));
        }
        DecodeResult { bits: hard_decisions(&self.totals), iterations, converged }
    }
}

/// Frames spanning the interesting regimes on the N = 16200 rate-1/2 code:
/// clean convergence, slow convergence near threshold, and undecodable.
fn frame_seeds() -> Vec<(f64, u64)> {
    let mut frames = Vec::new();
    for seed in 0..4 {
        frames.push((2.0, 9000 + seed)); // converges in a few iterations
        frames.push((1.0, 9100 + seed)); // near threshold, many iterations
    }
    frames.push((0.2, 9200)); // below threshold: hits the iteration cap
    frames
}

fn assert_matches_seed(config: DecoderConfig) {
    let (code, graph) = small_code();
    assert_eq!(code.params().n, 16200, "regression fixture is the short frame");
    let graph = Arc::new(graph);
    let mut new_flood = FloodingDecoder::new(Arc::clone(&graph), config);
    let mut new_zigzag = ZigzagDecoder::new(Arc::clone(&graph), config);
    let mut new_layered = LayeredDecoder::new(Arc::clone(&graph), config);
    let mut seed_flood = SeedFlooding::new(Arc::clone(&graph), config);
    let mut seed_zigzag = SeedZigzag::new(Arc::clone(&graph), config);
    let mut seed_layered = SeedLayered::new(Arc::clone(&graph), config);

    for (ebn0_db, seed) in frame_seeds() {
        let (_, llrs) = noisy_llrs(&code, ebn0_db, seed);
        let f_new = new_flood.decode(&llrs);
        let f_old = seed_flood.decode(&llrs);
        assert_eq!(
            f_new, f_old,
            "flooding diverged from seed at Eb/N0 {ebn0_db} dB, frame seed {seed}"
        );
        let z_new = new_zigzag.decode(&llrs);
        let z_old = seed_zigzag.decode(&llrs);
        assert_eq!(
            z_new, z_old,
            "zigzag diverged from seed at Eb/N0 {ebn0_db} dB, frame seed {seed}"
        );
        let l_new = new_layered.decode(&llrs);
        let l_old = seed_layered.decode(&llrs);
        assert_eq!(
            l_new, l_old,
            "layered diverged from seed at Eb/N0 {ebn0_db} dB, frame seed {seed}"
        );
    }
}

/// The tiled batch decoder against the seed references directly: the whole
/// regression frame set decoded as one ragged-tiled, two-thread batch per
/// schedule must reproduce the seed decoders' results frame for frame —
/// the migrated zigzag/layered lane kernels carry the same totals and
/// early-stop behavior as the originals, with no single-frame decoder in
/// the comparison chain.
fn assert_tiled_matches_seed(config: DecoderConfig) {
    let (code, graph) = small_code();
    let graph = Arc::new(graph);
    let frames: Vec<Vec<f64>> =
        frame_seeds().iter().map(|&(db, s)| noisy_llrs(&code, db, s).1).collect();
    let views: Vec<&[f64]> = frames.iter().map(|f| f.as_slice()).collect();
    let mut seed_flood = SeedFlooding::new(Arc::clone(&graph), config);
    let mut seed_zigzag = SeedZigzag::new(Arc::clone(&graph), config);
    let mut seed_layered = SeedLayered::new(Arc::clone(&graph), config);
    for schedule in [TileSchedule::Flooding, TileSchedule::Zigzag, TileSchedule::Layered] {
        let mut tiled = TiledBatchDecoder::new(Arc::clone(&graph), config, schedule, views.len())
            .with_tile_width(2)
            .with_threads(2);
        let got = tiled.decode_batch(&views);
        for (i, llrs) in frames.iter().enumerate() {
            let want = match schedule {
                TileSchedule::Flooding => seed_flood.decode(llrs),
                TileSchedule::Zigzag => seed_zigzag.decode(llrs),
                TileSchedule::Layered => seed_layered.decode(llrs),
            };
            assert_eq!(got[i], want, "tiled {schedule:?} diverged from seed on frame {i}");
        }
    }
}

#[test]
fn soa_engines_match_seed_sum_product() {
    assert_matches_seed(DecoderConfig::default());
}

#[test]
fn soa_engines_match_seed_min_sum() {
    assert_matches_seed(DecoderConfig::default().with_rule(CheckRule::NormalizedMinSum(0.8)));
}

#[test]
fn soa_engines_match_seed_without_early_stop() {
    // Exercises the fixed-iteration path (the benchmark configuration).
    let config = DecoderConfig::default().with_max_iterations(12).with_early_stop(false);
    assert_matches_seed(config);
}

#[test]
fn tiled_engines_match_seed_min_sum() {
    // f64 keeps the comparison bit-exact against the double-precision seed
    // embeds; the tiled kernels are min-sum only.
    assert_tiled_matches_seed(DecoderConfig::default().with_rule(CheckRule::NormalizedMinSum(0.8)));
}

#[test]
fn tiled_engines_match_seed_without_early_stop() {
    let config = DecoderConfig::default()
        .with_rule(CheckRule::OffsetMinSum(0.15))
        .with_max_iterations(12)
        .with_early_stop(false);
    assert_tiled_matches_seed(config);
}
