//! Property tests pinning the quantized SIMD lane path's transparency
//! contract: for every available dispatch tier, every tested sub-chain
//! count (including ragged vector tails), both quantized arithmetics and
//! non-trivial edge orders, the lane-parallel decoder is **bit-exact** —
//! full `DecodeResult` plus per-iteration message digests — against the
//! scalar fused reference sweep.
//!
//! Tiers are forced through the per-decoder `DecoderConfig::with_simd_tier`
//! hook (race-free under the parallel test runner; the process-global
//! `DVBS2_SIMD` variable is exercised end-to-end by the CI matrix instead).
//! Unavailable tiers are skipped — except by the test that pins the panic.

use dvbs2_decoder::test_support::{noisy_llrs, small_code, SplitMix64};
use dvbs2_decoder::{
    ChainPartition, DecoderConfig, QCheckArithmetic, QuantizedZigzagDecoder, Quantizer, SimdTier,
};
use dvbs2_ldpc::TannerGraph;
use std::sync::Arc;

/// Sub-chain counts that divide small_code's 9000 checks: small ragged
/// widths where the vector kernels are all remainder, a mid width, and the
/// hardware's 360 (= 11 × 32 + 8, so even the 32-lane AVX-512 kernels end
/// in a ragged tail).
const LANE_COUNTS: [usize; 4] = [5, 9, 75, 360];

fn arithmetics() -> Vec<(&'static str, QCheckArithmetic)> {
    vec![
        ("lut", QCheckArithmetic::lut(Quantizer::paper_6bit())),
        ("min-sum", QCheckArithmetic::min_sum_shift(Quantizer::paper_6bit(), 2)),
        ("lut-5bit", QCheckArithmetic::lut(Quantizer::paper_5bit())),
    ]
}

/// Decodes `frames` with both decoders and asserts full-result plus
/// per-iteration digest equality.
fn assert_bit_exact(
    simd: &mut QuantizedZigzagDecoder,
    fused: &mut QuantizedZigzagDecoder,
    channels: &[Vec<i32>],
    what: &str,
) {
    let (mut da, mut db) = (Vec::new(), Vec::new());
    for (i, channel) in channels.iter().enumerate() {
        let a = simd.decode_quantized_traced(channel, &mut da);
        let b = fused.decode_quantized_traced(channel, &mut db);
        assert_eq!(a, b, "{what}: frame {i} results diverged");
        assert_eq!(da, db, "{what}: frame {i} per-iteration digests diverged");
        assert_eq!(da.len(), a.iterations, "{what}: frame {i} one digest per sweep");
    }
}

fn noisy_channels(dec: &QuantizedZigzagDecoder, n: usize, base_seed: u64) -> Vec<Vec<i32>> {
    let (code, _) = small_code();
    (0..n)
        .map(|i| {
            let (_, llrs) = noisy_llrs(&code, 2.2 + 0.4 * (i % 3) as f64, base_seed + i as u64);
            dec.quantize_channel(&llrs)
        })
        .collect()
}

/// The core contract: every available tier × every lane count × every
/// arithmetic is bit-exact against the scalar fused sweep, digests and all.
#[test]
fn simd_matches_fused_across_tiers_lane_counts_and_arithmetics() {
    let (_, graph) = small_code();
    let graph = Arc::new(graph);
    for tier in SimdTier::available() {
        let config = DecoderConfig::default().with_simd_tier(Some(tier));
        for (name, arith) in arithmetics() {
            for lanes in LANE_COUNTS {
                let mut simd = QuantizedZigzagDecoder::with_partition(
                    Arc::clone(&graph),
                    arith.clone(),
                    config,
                    ChainPartition::new(lanes, None),
                );
                assert_eq!(
                    simd.simd_tier(),
                    Some(tier),
                    "{name} lanes {lanes}: SIMD plan should build and record its tier"
                );
                let mut fused = QuantizedZigzagDecoder::with_partition_fused(
                    Arc::clone(&graph),
                    arith.clone(),
                    config,
                    ChainPartition::new(lanes, None),
                );
                let channels = noisy_channels(&simd, 2, 9100 + lanes as u64);
                assert_bit_exact(
                    &mut simd,
                    &mut fused,
                    &channels,
                    &format!("{name} tier {tier:?} lanes {lanes}"),
                );
            }
        }
    }
}

/// A non-trivial per-check edge order (each check's inputs reversed) must
/// be replayed identically by the baked SoA planes — the order-dependent
/// quantized boxplus sees its operands in schedule order in both paths.
#[test]
fn edge_order_fidelity_is_preserved() {
    let (_, graph) = small_code();
    let graph = Arc::new(graph);
    let n_check = graph.check_count();
    let info_d = graph.check_edges(0).len() - 1;
    let order: Vec<u32> = (0..n_check).flat_map(|_| (0..info_d as u32).rev()).collect();
    for tier in SimdTier::available() {
        let config = DecoderConfig::default().with_simd_tier(Some(tier));
        let mut simd = QuantizedZigzagDecoder::with_partition(
            Arc::clone(&graph),
            QCheckArithmetic::lut(Quantizer::paper_6bit()),
            config,
            ChainPartition::new(360, Some(order.clone())),
        );
        let mut fused = QuantizedZigzagDecoder::with_partition_fused(
            Arc::clone(&graph),
            QCheckArithmetic::lut(Quantizer::paper_6bit()),
            config,
            ChainPartition::new(360, Some(order.clone())),
        );
        let channels = noisy_channels(&simd, 2, 9400);
        assert_bit_exact(&mut simd, &mut fused, &channels, &format!("reversed order {tier:?}"));
    }
}

/// Channels pinned to the quantizer rails drive every saturating add and
/// clamp in the i16 kernels; the lane path must saturate exactly like the
/// scalar `sat_add` / clamp chain.
#[test]
fn rail_saturated_channels_stay_bit_exact() {
    let (_, graph) = small_code();
    let graph = Arc::new(graph);
    for (name, arith, max_mag) in [
        ("lut", QCheckArithmetic::lut(Quantizer::paper_6bit()), 31i32),
        ("min-sum", QCheckArithmetic::min_sum_shift(Quantizer::paper_6bit(), 2), 31i32),
        ("lut-5bit", QCheckArithmetic::lut(Quantizer::paper_5bit()), 15i32),
    ] {
        let config = DecoderConfig::default();
        let mut simd = QuantizedZigzagDecoder::with_partition(
            Arc::clone(&graph),
            arith.clone(),
            config,
            ChainPartition::new(360, None),
        );
        let mut fused = QuantizedZigzagDecoder::with_partition_fused(
            Arc::clone(&graph),
            arith,
            config,
            ChainPartition::new(360, None),
        );
        let n = graph.var_count();
        let mut rng = SplitMix64(0x5A7);
        // All-positive rail, alternating rails, and random rail-heavy mixes
        // (three-quarters of the values pinned to ±max_mag).
        let mut channels: Vec<Vec<i32>> = vec![
            vec![max_mag; n],
            (0..n).map(|i| if i % 2 == 0 { max_mag } else { -max_mag }).collect(),
        ];
        channels.push(
            (0..n)
                .map(|_| match rng.next_u64() % 8 {
                    0..=2 => max_mag,
                    3..=5 => -max_mag,
                    6 => (rng.next_u64() % (max_mag as u64 + 1)) as i32,
                    _ => -((rng.next_u64() % (max_mag as u64 + 1)) as i32),
                })
                .collect(),
        );
        assert_bit_exact(&mut simd, &mut fused, &channels, &format!("{name} rails"));
    }
}

/// A raw quantized channel outside the i16 rail gate falls back to the
/// scalar fused sweep for that frame — same results, no panic.
#[test]
fn out_of_rail_channel_falls_back_to_fused() {
    let (_, graph) = small_code();
    let graph = Arc::new(graph);
    let mk = |fused: bool| {
        let build = if fused {
            QuantizedZigzagDecoder::with_partition_fused
        } else {
            QuantizedZigzagDecoder::with_partition
        };
        build(
            Arc::clone(&graph),
            QCheckArithmetic::lut(Quantizer::paper_6bit()),
            DecoderConfig::default(),
            ChainPartition::new(360, None),
        )
    };
    let mut simd = mk(false);
    let mut fused = mk(true);
    assert!(simd.simd_tier().is_some());
    // A parity value beyond max_mag = 31: legal for the scalar i32 planes,
    // outside the SIMD plan's saturation headroom guarantee.
    let mut channel = vec![1i32; graph.var_count()];
    channel[graph.info_len() + 3] = 1000;
    let (mut da, mut db) = (Vec::new(), Vec::new());
    let a = simd.decode_quantized_traced(&channel, &mut da);
    let b = fused.decode_quantized_traced(&channel, &mut db);
    assert_eq!(a, b, "fallback frame results diverged");
    assert_eq!(da, db, "fallback frame digests diverged");
}

/// A partition the SIMD plan cannot serve (single-row sub-chains) reports
/// no tier and still decodes bit-exactly through the fused fallback.
#[test]
fn ineligible_partition_reports_no_simd_plan() {
    let (_, graph) = small_code();
    let graph = Arc::new(graph);
    let lanes = graph.check_count(); // q_rows = 1
    let mut simd = QuantizedZigzagDecoder::with_partition(
        Arc::clone(&graph),
        QCheckArithmetic::lut(Quantizer::paper_6bit()),
        DecoderConfig::default(),
        ChainPartition::new(lanes, None),
    );
    assert_eq!(simd.simd_tier(), None);
    let mut fused = QuantizedZigzagDecoder::with_partition_fused(
        Arc::clone(&graph),
        QCheckArithmetic::lut(Quantizer::paper_6bit()),
        DecoderConfig::default(),
        ChainPartition::new(lanes, None),
    );
    let channels = noisy_channels(&simd, 1, 9700);
    assert_bit_exact(&mut simd, &mut fused, &channels, "q_rows = 1");
}

/// Forcing an unavailable tier panics at construction instead of silently
/// falling back.
#[test]
fn unavailable_forced_tier_panics() {
    let unavailable: Vec<SimdTier> =
        SimdTier::ALL.into_iter().filter(|t| !t.is_available()).collect();
    for tier in unavailable {
        let (_, graph): (_, TannerGraph) = small_code();
        let config = DecoderConfig::default().with_simd_tier(Some(tier));
        let result = std::panic::catch_unwind(|| {
            QuantizedZigzagDecoder::with_partition(
                Arc::new(graph),
                QCheckArithmetic::lut(Quantizer::paper_6bit()),
                config,
                ChainPartition::new(360, None),
            )
        });
        assert!(result.is_err(), "{tier:?} should be rejected on this CPU");
    }
}
