//! Property tests pinning the tiled batch decoder's transparency contract:
//! for every schedule, precision, min-sum rule, SIMD dispatch tier, tile
//! width (including ragged tails) and thread count, a tiled batch decode is
//! **bit-identical per frame** — full `DecodeResult`, i.e. hard decisions,
//! iteration count and convergence flag — to the matching single-frame
//! decoder.
//!
//! Tiers are forced through the per-decoder `DecoderConfig::with_simd_tier`
//! hook (race-free under the parallel test runner; the process-global
//! `DVBS2_SIMD` variable is exercised end-to-end by the CI matrix instead).
//! Unavailable tiers are skipped, so the suite passes on any x86-64 CPU and
//! on non-x86 targets — on this ladder `scalar` is always available.

use dvbs2_decoder::test_support::{noisy_llrs, small_code};
use dvbs2_decoder::{
    CheckRule, Decoder, DecoderConfig, FloodingDecoder, LayeredDecoder, Precision, SimdTier,
    TileSchedule, TiledBatchDecoder, ZigzagDecoder,
};
use dvbs2_ldpc::TannerGraph;
use std::sync::Arc;

const SCHEDULES: [TileSchedule; 3] =
    [TileSchedule::Flooding, TileSchedule::Zigzag, TileSchedule::Layered];

fn single_frame(
    graph: &Arc<TannerGraph>,
    config: DecoderConfig,
    schedule: TileSchedule,
) -> Box<dyn Decoder> {
    match schedule {
        TileSchedule::Flooding => Box::new(FloodingDecoder::new(Arc::clone(graph), config)),
        TileSchedule::Zigzag => Box::new(ZigzagDecoder::new(Arc::clone(graph), config)),
        TileSchedule::Layered => Box::new(LayeredDecoder::new(Arc::clone(graph), config)),
    }
}

/// Mixed-difficulty frames: early converger, mid-waterfall stragglers and
/// an undecodable frame that pins the iteration-cap path, so lanes of one
/// tile latch at different iterations.
fn frames(code: &dvbs2_ldpc::DvbS2Code, n: usize, base_seed: u64) -> Vec<Vec<f64>> {
    let ebn0 = [4.0, 2.6, 2.4, 0.5, 2.8];
    (0..n).map(|i| noisy_llrs(code, ebn0[i % ebn0.len()], base_seed + i as u64).1).collect()
}

fn assert_tiled_matches_single(
    schedule: TileSchedule,
    config: DecoderConfig,
    width: usize,
    threads: usize,
    n_frames: usize,
    seed: u64,
) {
    let (code, graph) = small_code();
    let graph = Arc::new(graph);
    let frames = frames(&code, n_frames, seed);
    let views: Vec<&[f64]> = frames.iter().map(|f| f.as_slice()).collect();
    let mut tiled = TiledBatchDecoder::new(Arc::clone(&graph), config, schedule, n_frames)
        .with_tile_width(width)
        .with_threads(threads);
    let mut single = single_frame(&graph, config, schedule);
    let got = tiled.decode_batch(&views);
    for (i, frame) in frames.iter().enumerate() {
        let want = single.decode(frame);
        assert_eq!(
            got[i], want,
            "{schedule:?} {:?} {:?} tier {:?} width {width} threads {threads} frame {i}",
            config.rule, config.precision, config.simd,
        );
    }
}

/// The full dispatch matrix: every schedule × every available SIMD tier,
/// with the precision/rule pairing alternating so both precisions and both
/// min-sum rules are covered per tier. Tiles of width 3 over 5 frames give
/// one full tile plus a ragged 2-frame tail.
#[test]
fn tiled_matches_single_frame_across_schedules_and_tiers() {
    for schedule in SCHEDULES {
        for (t, tier) in SimdTier::available().into_iter().enumerate() {
            for (precision, rule) in [
                (Precision::F32, CheckRule::NormalizedMinSum(0.8)),
                (Precision::F64, CheckRule::OffsetMinSum(0.15)),
            ] {
                let config = DecoderConfig::default()
                    .with_rule(rule)
                    .with_precision(precision)
                    .with_simd_tier(Some(tier));
                assert_tiled_matches_single(schedule, config, 3, 1, 5, 700 + 10 * t as u64);
            }
        }
    }
}

/// Scalar and vector tiers must agree bit for bit (rustc performs no FP
/// contraction, so wider registers change throughput, never results).
#[test]
fn all_available_tiers_agree_bit_for_bit() {
    let (code, graph) = small_code();
    let graph = Arc::new(graph);
    let frames = frames(&code, 4, 7100);
    let views: Vec<&[f64]> = frames.iter().map(|f| f.as_slice()).collect();
    for schedule in SCHEDULES {
        let mut per_tier = Vec::new();
        for tier in SimdTier::available() {
            let config = DecoderConfig::default()
                .with_rule(CheckRule::NormalizedMinSum(0.8))
                .with_precision(Precision::F32)
                .with_simd_tier(Some(tier));
            let mut dec =
                TiledBatchDecoder::new(Arc::clone(&graph), config, schedule, 4).with_tile_width(2);
            per_tier.push((tier, dec.decode_batch(&views)));
        }
        let (base_tier, baseline) = &per_tier[0];
        for (tier, results) in &per_tier[1..] {
            assert_eq!(results, baseline, "{schedule:?}: {tier:?} diverged from {base_tier:?}");
        }
    }
}

/// Every tile width — from the degenerate single-frame regime through
/// ragged tails to one tile swallowing the whole batch — yields the same
/// results.
#[test]
fn tile_width_never_changes_results() {
    let config = DecoderConfig::default()
        .with_rule(CheckRule::NormalizedMinSum(0.8))
        .with_precision(Precision::F32);
    for schedule in SCHEDULES {
        for width in [1, 2, 3, 5, 7] {
            assert_tiled_matches_single(schedule, config, width, 1, 5, 7200);
        }
    }
}

/// Thread-parallel tiles are dealt statically, so any thread count gives
/// identical results (including more threads than tiles).
#[test]
fn thread_count_never_changes_results() {
    let config = DecoderConfig::default()
        .with_rule(CheckRule::OffsetMinSum(0.15))
        .with_precision(Precision::F32);
    for schedule in SCHEDULES {
        for threads in [1, 2, 4, 9] {
            assert_tiled_matches_single(schedule, config, 2, threads, 6, 7300);
        }
    }
}

/// With early stop disabled every lane runs to the cap — the benchmark
/// contract — and the per-lane finalize still matches single-frame.
#[test]
fn fixed_iteration_contract_matches_single_frame() {
    let config = DecoderConfig::default()
        .with_rule(CheckRule::NormalizedMinSum(0.8))
        .with_precision(Precision::F64)
        .with_max_iterations(8)
        .with_early_stop(false);
    for schedule in SCHEDULES {
        assert_tiled_matches_single(schedule, config, 3, 2, 4, 7400);
    }
}

/// Forcing an unavailable tier panics instead of silently falling back.
#[test]
fn unavailable_forced_tier_panics() {
    let unavailable: Vec<SimdTier> =
        SimdTier::ALL.into_iter().filter(|t| !t.is_available()).collect();
    for tier in unavailable {
        let (_, graph) = small_code();
        let config = DecoderConfig::default()
            .with_rule(CheckRule::NormalizedMinSum(0.8))
            .with_simd_tier(Some(tier));
        let result = std::panic::catch_unwind(|| {
            TiledBatchDecoder::new(Arc::new(graph), config, TileSchedule::Flooding, 2)
        });
        assert!(result.is_err(), "{tier:?} should be rejected on this CPU");
    }
}
