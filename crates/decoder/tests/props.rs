//! Property-based tests for decoder arithmetic.

#![allow(clippy::needless_range_loop)] // one index drives several parallel slices

use dvbs2_decoder::{
    boxplus, boxplus_min, boxplus_table, CheckRule, QBoxplus, QCheckArithmetic, Quantizer,
};
use proptest::prelude::*;

fn finite_llr() -> impl Strategy<Value = f64> {
    -25.0..25.0f64
}

/// One check node's inputs at a random degree in `2..=30` — the degree range
/// DVB-S2 check nodes actually take (4..=30 in the standard, plus the
/// degenerate degrees the kernels special-case).
fn check_inputs() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(finite_llr(), 2..31)
}

/// Pairwise-fold reference for one extrinsic output: combines every input
/// except `skip` with the rule's *pairwise* operator, applying the min-sum
/// correction once at the end. This is the textbook definition the O(d)
/// kernels (prefix/suffix boxplus, two-smallest min-sum) must reproduce.
fn pairwise_fold(rule: &CheckRule, incoming: &[f64], skip: usize) -> f64 {
    let others = incoming.iter().enumerate().filter(|&(j, _)| j != skip).map(|(_, &v)| v);
    match *rule {
        CheckRule::SumProduct => others.reduce(boxplus).unwrap_or(0.0),
        CheckRule::NormalizedMinSum(alpha) => others.reduce(boxplus_min).unwrap_or(0.0) * alpha,
        CheckRule::OffsetMinSum(beta) => {
            let m = others.reduce(boxplus_min).unwrap_or(0.0);
            (m.abs() - beta).max(0.0).copysign(m)
        }
        CheckRule::TableSumProduct => {
            // The table kernel is *not* fold-order independent: corrections
            // are read with truncating 1/16 bins, so reassociating the chain
            // moves arguments across bin boundaries. The exact contract is
            // the prefix/suffix decomposition: edge `i` emits
            // `lfold(0..i) ⊞ rfold(i+1..d)` with the left fold accumulating
            // as the first operand and the right fold as the second — the
            // same operation sequences the O(d) kernel performs.
            let d = incoming.len();
            if d == 2 {
                // Degenerate pass-through: no boxplus, no f32 round-trip.
                return incoming[1 - skip];
            }
            let lfold = |r: std::ops::Range<usize>| {
                incoming[r].iter().map(|&v| v as f32).reduce(boxplus_table)
            };
            let rfold = |r: std::ops::Range<usize>| {
                incoming[r].iter().rev().map(|&v| v as f32).reduce(|acc, x| boxplus_table(x, acc))
            };
            let out = match (lfold(0..skip), rfold(skip + 1..d)) {
                (Some(a), Some(b)) => boxplus_table(a, b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => 0.0,
            };
            out as f64
        }
    }
}

/// Reference min-sum with the "first strict minimum" tie-break: the overall
/// minimum index retained for the "exclude self" outputs is the first
/// position strictly smaller than all earlier magnitudes. Duplicate minima
/// make the choice observable: the edge at `min_idx` emits `min2` (equal in
/// magnitude but possibly different in sign from what a last-minimum
/// implementation would emit when signs differ between the tied inputs).
fn first_strict_min(mags: &[i32]) -> (i32, i32, usize) {
    let (mut min1, mut min2, mut min_idx) = (i32::MAX, i32::MAX, 0usize);
    for (i, &m) in mags.iter().enumerate() {
        if m < min1 {
            min2 = min1;
            min1 = m;
            min_idx = i;
        } else if m < min2 {
            min2 = m;
        }
    }
    (min1, min2, min_idx)
}

proptest! {
    /// `QCheckArithmetic::MinSumShift` and the float `NormalizedMinSum` rule
    /// implement the tie-break independently (integer loop vs masked blend in
    /// the engine kernel behind `extrinsic_t`); on integer-valued inputs with
    /// forced duplicate minima both must match the same brute-force
    /// first-strict-minimum reference edge for edge.
    #[test]
    fn min_sum_tie_break_is_first_strict_minimum(
        vals in prop::collection::vec(-3i32..=3, 3..12),
        shift in 1u32..=3,
    ) {
        let mags: Vec<i32> = vals.iter().map(|v| v.abs()).collect();
        let (min1, min2, min_idx) = first_strict_min(&mags);
        let neg = vals.iter().filter(|&&v| v < 0).count();

        // Integer path (alpha = 1 - 2^-shift as subtract-shifted-self).
        let arith = QCheckArithmetic::min_sum_shift(Quantizer::paper_6bit(), shift);
        let mut out = vec![0i32; vals.len()];
        arith.extrinsic(&vals, &mut out);
        for i in 0..vals.len() {
            let mag = if i == min_idx { min2 } else { min1 };
            let mag = mag - (mag >> shift);
            let sign = if (neg - usize::from(vals[i] < 0)) % 2 == 1 { -1 } else { 1 };
            prop_assert_eq!(out[i], sign * mag, "shift {} edge {}", shift, i);
        }

        // Float path on the same values (alpha = 1.0 keeps outputs exact).
        let fvals: Vec<f64> = vals.iter().map(|&v| v as f64).collect();
        let mut fout = vec![0.0f64; vals.len()];
        CheckRule::NormalizedMinSum(1.0).extrinsic_t(&fvals, &mut fout);
        for i in 0..vals.len() {
            let mag = f64::from(if i == min_idx { min2 } else { min1 });
            let flip = (neg - usize::from(fvals[i] < 0.0)) % 2 == 1;
            let want = if flip { -mag } else { mag };
            prop_assert_eq!(fout[i], want, "float edge {}", i);
        }
    }

    /// Boxplus is commutative.
    #[test]
    fn boxplus_commutative(a in finite_llr(), b in finite_llr()) {
        prop_assert!((boxplus(a, b) - boxplus(b, a)).abs() < 1e-12);
    }

    /// Boxplus is associative (within numerical tolerance).
    #[test]
    fn boxplus_associative(a in finite_llr(), b in finite_llr(), c in finite_llr()) {
        let left = boxplus(boxplus(a, b), c);
        let right = boxplus(a, boxplus(b, c));
        prop_assert!((left - right).abs() < 1e-9, "{left} vs {right}");
    }

    /// |a ⊞ b| <= min(|a|, |b|) and sign(a ⊞ b) = sign(a) sign(b).
    #[test]
    fn boxplus_contracts_and_multiplies_signs(a in finite_llr(), b in finite_llr()) {
        let out = boxplus(a, b);
        prop_assert!(out.abs() <= a.abs().min(b.abs()) + 1e-12);
        if a != 0.0 && b != 0.0 && out != 0.0 {
            prop_assert_eq!(out.signum(), a.signum() * b.signum());
        }
    }

    /// Min-sum magnitude dominates sum-product magnitude.
    #[test]
    fn min_sum_dominates(a in finite_llr(), b in finite_llr()) {
        prop_assert!(boxplus_min(a, b).abs() + 1e-12 >= boxplus(a, b).abs());
    }

    /// Quantizer is monotone and saturating.
    #[test]
    fn quantizer_monotone(x in -100.0..100.0f64, y in -100.0..100.0f64) {
        let q = Quantizer::paper_6bit();
        let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
        prop_assert!(q.quantize(lo) <= q.quantize(hi));
        prop_assert!(q.quantize(x).abs() <= q.max_mag());
    }

    /// Dequantize(quantize(x)) is within half a step for in-range x
    /// (the paper 6-bit quantizer spans ±7.75).
    #[test]
    fn quantizer_round_trip(x in -7.5..7.5f64) {
        let q = Quantizer::paper_6bit();
        let back = q.dequantize(q.quantize(x));
        prop_assert!((back - x).abs() <= q.step() / 2.0 + 1e-12);
    }

    /// Integer boxplus matches the float rule within one step.
    #[test]
    fn qboxplus_tracks_float(a in -31i32..=31, b in -31i32..=31) {
        let q = Quantizer::paper_6bit();
        let bp = QBoxplus::new(q);
        let exact = boxplus(q.dequantize(a), q.dequantize(b));
        let approx = q.dequantize(bp.combine(a, b));
        prop_assert!((exact - approx).abs() <= q.step() + 1e-9,
            "a={a} b={b}: exact {exact}, approx {approx}");
    }

    /// Integer boxplus is commutative and sign-correct.
    #[test]
    fn qboxplus_commutative(a in -31i32..=31, b in -31i32..=31) {
        let bp = QBoxplus::new(Quantizer::paper_6bit());
        prop_assert_eq!(bp.combine(a, b), bp.combine(b, a));
        let out = bp.combine(a, b);
        if a != 0 && b != 0 && out != 0 {
            prop_assert_eq!(out.signum(), a.signum() * b.signum());
        }
    }

    /// The O(d) prefix/suffix sum-product kernel matches the pairwise
    /// boxplus fold at every random degree in 2..=30. f64 tolerance 1e-9
    /// absolute: the kernel and the fold associate the boxplus chain
    /// differently, and boxplus is only associative up to rounding.
    #[test]
    fn sum_product_kernel_matches_pairwise_fold(incoming in check_inputs()) {
        let mut out = vec![0.0; incoming.len()];
        CheckRule::SumProduct.extrinsic(&incoming, &mut out);
        for i in 0..incoming.len() {
            let want = pairwise_fold(&CheckRule::SumProduct, &incoming, i);
            prop_assert!(
                (out[i] - want).abs() < 1e-9,
                "degree {} edge {i}: kernel {} vs fold {want}",
                incoming.len(),
                out[i]
            );
        }
    }

    /// The table-driven sum-product kernel matches its prefix/suffix
    /// reference *bit-exactly*: edge `i` is `lfold(0..i) ⊞ rfold(i+1..d)`
    /// over [`boxplus_table`], recomputed naively per edge. The O(d) kernel
    /// shares the folds across edges but performs the identical f32
    /// operation sequences, so any divergence is a real kernel bug, not
    /// rounding.
    #[test]
    fn table_sum_product_kernel_matches_prefix_suffix_fold(incoming in check_inputs()) {
        let mut out = vec![0.0; incoming.len()];
        CheckRule::TableSumProduct.extrinsic(&incoming, &mut out);
        for i in 0..incoming.len() {
            let want = pairwise_fold(&CheckRule::TableSumProduct, &incoming, i);
            prop_assert!(
                out[i] == want,
                "degree {} edge {i}: kernel {} vs fold {want}",
                incoming.len(),
                out[i]
            );
        }
    }

    /// The two-smallest min-sum kernel matches the pairwise min-sum fold
    /// *exactly* in f64: taking a minimum never rounds, and the single
    /// final alpha/beta correction is the same operation in both.
    #[test]
    fn min_sum_kernel_matches_pairwise_fold(incoming in check_inputs()) {
        for rule in [CheckRule::NormalizedMinSum(0.8), CheckRule::OffsetMinSum(0.15)] {
            let mut out = vec![0.0; incoming.len()];
            rule.extrinsic(&incoming, &mut out);
            for i in 0..incoming.len() {
                let want = pairwise_fold(&rule, &incoming, i);
                prop_assert!(
                    out[i] == want,
                    "{rule:?} degree {} edge {i}: kernel {} vs fold {want}",
                    incoming.len(),
                    out[i]
                );
            }
        }
    }

    /// The f32 fast-path kernels track the f64 kernels within 1e-3 relative
    /// (plus a 1e-3 absolute floor near zero). Documented budget: each f32
    /// boxplus carries ~1e-7 relative rounding error and a degree-30 check
    /// chains at most 29 of them, so 1e-3 is two orders of margin; min-sum
    /// is exact in both precisions apart from the final correction multiply.
    #[test]
    fn f32_kernels_track_f64_within_documented_tolerance(incoming in check_inputs()) {
        let in32: Vec<f32> = incoming.iter().map(|&x| x as f32).collect();
        for rule in [
            CheckRule::SumProduct,
            CheckRule::NormalizedMinSum(0.8),
            CheckRule::OffsetMinSum(0.15),
        ] {
            let mut out64 = vec![0.0f64; incoming.len()];
            let mut out32 = vec![0.0f32; incoming.len()];
            rule.extrinsic_t(&incoming, &mut out64);
            rule.extrinsic_t(&in32, &mut out32);
            for i in 0..incoming.len() {
                let err = (out32[i] as f64 - out64[i]).abs();
                prop_assert!(
                    err <= 1e-3 * (1.0 + out64[i].abs()),
                    "{rule:?} degree {} edge {i}: f32 {} vs f64 {} (err {err:.3e})",
                    incoming.len(),
                    out32[i],
                    out64[i]
                );
            }
        }
    }

    /// Check-rule extrinsic outputs never exceed the smallest other input
    /// magnitude for min-sum with alpha = 1.
    #[test]
    fn extrinsic_bounded(values in prop::collection::vec(finite_llr(), 3..12)) {
        let mut out = vec![0.0; values.len()];
        CheckRule::NormalizedMinSum(1.0).extrinsic(&values, &mut out);
        for i in 0..values.len() {
            let min_other = values
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, v)| v.abs())
                .fold(f64::INFINITY, f64::min);
            prop_assert!(out[i].abs() <= min_other + 1e-12);
        }
    }
}
