//! Property-based tests for decoder arithmetic.

#![allow(clippy::needless_range_loop)] // one index drives several parallel slices

use dvbs2_decoder::{boxplus, boxplus_min, CheckRule, QBoxplus, Quantizer};
use proptest::prelude::*;

fn finite_llr() -> impl Strategy<Value = f64> {
    -25.0..25.0f64
}

proptest! {
    /// Boxplus is commutative.
    #[test]
    fn boxplus_commutative(a in finite_llr(), b in finite_llr()) {
        prop_assert!((boxplus(a, b) - boxplus(b, a)).abs() < 1e-12);
    }

    /// Boxplus is associative (within numerical tolerance).
    #[test]
    fn boxplus_associative(a in finite_llr(), b in finite_llr(), c in finite_llr()) {
        let left = boxplus(boxplus(a, b), c);
        let right = boxplus(a, boxplus(b, c));
        prop_assert!((left - right).abs() < 1e-9, "{left} vs {right}");
    }

    /// |a ⊞ b| <= min(|a|, |b|) and sign(a ⊞ b) = sign(a) sign(b).
    #[test]
    fn boxplus_contracts_and_multiplies_signs(a in finite_llr(), b in finite_llr()) {
        let out = boxplus(a, b);
        prop_assert!(out.abs() <= a.abs().min(b.abs()) + 1e-12);
        if a != 0.0 && b != 0.0 && out != 0.0 {
            prop_assert_eq!(out.signum(), a.signum() * b.signum());
        }
    }

    /// Min-sum magnitude dominates sum-product magnitude.
    #[test]
    fn min_sum_dominates(a in finite_llr(), b in finite_llr()) {
        prop_assert!(boxplus_min(a, b).abs() + 1e-12 >= boxplus(a, b).abs());
    }

    /// Quantizer is monotone and saturating.
    #[test]
    fn quantizer_monotone(x in -100.0..100.0f64, y in -100.0..100.0f64) {
        let q = Quantizer::paper_6bit();
        let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
        prop_assert!(q.quantize(lo) <= q.quantize(hi));
        prop_assert!(q.quantize(x).abs() <= q.max_mag());
    }

    /// Dequantize(quantize(x)) is within half a step for in-range x
    /// (the paper 6-bit quantizer spans ±7.75).
    #[test]
    fn quantizer_round_trip(x in -7.5..7.5f64) {
        let q = Quantizer::paper_6bit();
        let back = q.dequantize(q.quantize(x));
        prop_assert!((back - x).abs() <= q.step() / 2.0 + 1e-12);
    }

    /// Integer boxplus matches the float rule within one step.
    #[test]
    fn qboxplus_tracks_float(a in -31i32..=31, b in -31i32..=31) {
        let q = Quantizer::paper_6bit();
        let bp = QBoxplus::new(q);
        let exact = boxplus(q.dequantize(a), q.dequantize(b));
        let approx = q.dequantize(bp.combine(a, b));
        prop_assert!((exact - approx).abs() <= q.step() + 1e-9,
            "a={a} b={b}: exact {exact}, approx {approx}");
    }

    /// Integer boxplus is commutative and sign-correct.
    #[test]
    fn qboxplus_commutative(a in -31i32..=31, b in -31i32..=31) {
        let bp = QBoxplus::new(Quantizer::paper_6bit());
        prop_assert_eq!(bp.combine(a, b), bp.combine(b, a));
        let out = bp.combine(a, b);
        if a != 0 && b != 0 && out != 0 {
            prop_assert_eq!(out.signum(), a.signum() * b.signum());
        }
    }

    /// Check-rule extrinsic outputs never exceed the smallest other input
    /// magnitude for min-sum with alpha = 1.
    #[test]
    fn extrinsic_bounded(values in prop::collection::vec(finite_llr(), 3..12)) {
        let mut out = vec![0.0; values.len()];
        CheckRule::NormalizedMinSum(1.0).extrinsic(&values, &mut out);
        for i in 0..values.len() {
            let min_other = values
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, v)| v.abs())
                .fold(f64::INFINITY, f64::min);
            prop_assert!(out[i].abs() <= min_other + 1e-12);
        }
    }
}
