//! Channel capacity and Shannon limits for the binary-input AWGN channel.
//!
//! The paper quotes the DVB-S2 LDPC codes as operating "≈ 0.7 dB to
//! Shannon". This module computes the reference point: the minimum `Eb/N0`
//! at which a rate-`R` code over binary-input AWGN can be error free.

use crate::llr::noise_sigma;

/// Capacity in bits/dimension of the binary-input AWGN channel with
/// unit-amplitude signaling and noise deviation `sigma`.
///
/// `C = 1 - E[ log2(1 + e^{-L}) ]` with `L = 2(1+n)/sigma^2`,
/// `n ~ N(0, sigma^2)`, evaluated by Simpson integration over `±10 sigma`.
///
/// ```
/// use dvbs2_channel::biawgn_capacity;
/// let c = biawgn_capacity(1.0); // Eb/N0 = 0 dB at R = 1/2
/// assert!(c > 0.48 && c < 0.52);
/// ```
///
/// # Panics
///
/// Panics if `sigma` is not positive.
pub fn biawgn_capacity(sigma: f64) -> f64 {
    assert!(sigma > 0.0, "sigma must be positive, got {sigma}");
    let steps = 4000usize;
    let lo = -10.0 * sigma;
    let hi = 10.0 * sigma;
    let h = (hi - lo) / steps as f64;
    let integrand = |n: f64| -> f64 {
        let pdf =
            (-n * n / (2.0 * sigma * sigma)).exp() / (sigma * (2.0 * std::f64::consts::PI).sqrt());
        let l = 2.0 * (1.0 + n) / (sigma * sigma);
        // log2(1 + e^{-l}), numerically stable for large |l|.
        let log_term = if l > 40.0 {
            (-l).exp() / std::f64::consts::LN_2
        } else if l < -40.0 {
            -l / std::f64::consts::LN_2
        } else {
            (1.0 + (-l).exp()).ln() / std::f64::consts::LN_2
        };
        pdf * log_term
    };
    // Simpson's rule.
    let mut sum = integrand(lo) + integrand(hi);
    for i in 1..steps {
        let w = if i % 2 == 1 { 4.0 } else { 2.0 };
        sum += w * integrand(lo + i as f64 * h);
    }
    1.0 - sum * h / 3.0
}

/// Minimum `Eb/N0` in dB for reliable rate-`rate` transmission over
/// binary-input AWGN (the "Shannon limit" the paper measures against).
///
/// ```
/// use dvbs2_channel::shannon_limit_biawgn_db;
/// let limit = shannon_limit_biawgn_db(0.5);
/// assert!((limit - 0.188).abs() < 0.05); // classic R = 1/2 BPSK threshold
/// ```
///
/// # Panics
///
/// Panics if `rate` is not in `(0, 1)`.
pub fn shannon_limit_biawgn_db(rate: f64) -> f64 {
    assert!(rate > 0.0 && rate < 1.0, "rate must be in (0,1), got {rate}");
    let capacity_at = |ebn0_db: f64| biawgn_capacity(noise_sigma(ebn0_db, rate));
    let (mut lo, mut hi) = (-3.0f64, 20.0f64);
    debug_assert!(capacity_at(lo) < rate && capacity_at(hi) > rate);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if capacity_at(mid) < rate {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Minimum `Eb/N0` in dB over the *unconstrained* real AWGN channel,
/// `Eb/N0 = (2^{2R} - 1) / (2R)`.
///
/// # Panics
///
/// Panics if `rate` is not positive.
pub fn shannon_limit_unconstrained_db(rate: f64) -> f64 {
    assert!(rate > 0.0, "rate must be positive, got {rate}");
    let linear = (2f64.powf(2.0 * rate) - 1.0) / (2.0 * rate);
    10.0 * linear.log10()
}

/// The ultimate (rate → 0) Shannon limit, `ln 2` = −1.59 dB, useful as a
/// sanity floor in reports.
pub fn ultimate_shannon_limit_db() -> f64 {
    10.0 * std::f64::consts::LN_2.log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_increases_with_snr() {
        assert!(biawgn_capacity(0.5) > biawgn_capacity(1.0));
        assert!(biawgn_capacity(1.0) > biawgn_capacity(2.0));
    }

    #[test]
    fn capacity_saturates_at_one_bit() {
        let c = biawgn_capacity(0.05);
        assert!(c > 0.999 && c <= 1.0 + 1e-9, "c = {c}");
    }

    #[test]
    fn capacity_vanishes_at_low_snr() {
        assert!(biawgn_capacity(20.0) < 0.01);
    }

    #[test]
    fn r12_limit_matches_literature() {
        // Known value: 0.187 dB for rate 1/2 on BI-AWGN.
        let l = shannon_limit_biawgn_db(0.5);
        assert!((l - 0.187).abs() < 0.03, "limit {l}");
    }

    #[test]
    fn constrained_limit_dominates_unconstrained() {
        for rate in [0.25, 0.5, 0.75, 0.9] {
            let bi = shannon_limit_biawgn_db(rate);
            let un = shannon_limit_unconstrained_db(rate);
            assert!(bi >= un - 1e-6, "rate {rate}: {bi} < {un}");
        }
    }

    #[test]
    fn limits_increase_with_rate() {
        let limits: Vec<f64> =
            [0.25, 0.4, 0.5, 0.6, 0.75, 0.9].iter().map(|&r| shannon_limit_biawgn_db(r)).collect();
        for pair in limits.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn ultimate_limit_value() {
        assert!((ultimate_shannon_limit_db() + 1.592).abs() < 0.01);
    }
}
