//! Generic constellations with max-log demapping, including the DVB-S2
//! 16APSK and 32APSK rings.
//!
//! DVB-S2 pairs its LDPC codes with QPSK, 8PSK, 16APSK (4+12 rings) and
//! 32APSK (4+12+16). [`Constellation`] holds an arbitrary labeled symbol
//! set, normalized to unit average energy, and performs exact-structure
//! max-log bit-LLR demapping; the DVB-S2 APSK constructors use the
//! standard's ring geometry with its rate-dependent radius ratios.

use dvbs2_ldpc::BitVec;
use std::f64::consts::PI;

/// An arbitrary 2-D constellation: `points[label]` is the symbol of the
/// bit label `label`, average symbol energy 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Constellation {
    points: Vec<(f64, f64)>,
    bits_per_symbol: usize,
}

impl Constellation {
    /// Builds a constellation from labeled points (index = bit label) and
    /// normalizes it to unit average energy.
    ///
    /// # Panics
    ///
    /// Panics unless the point count is a power of two ≥ 2.
    pub fn new(points: Vec<(f64, f64)>) -> Self {
        let m = points.len();
        assert!(m >= 2 && m.is_power_of_two(), "need a power-of-two constellation, got {m}");
        let energy: f64 = points.iter().map(|&(i, q)| i * i + q * q).sum::<f64>() / m as f64;
        let scale = energy.sqrt().recip();
        Constellation {
            points: points.into_iter().map(|(i, q)| (i * scale, q * scale)).collect(),
            bits_per_symbol: m.trailing_zeros() as usize,
        }
    }

    /// The DVB-S2 16APSK constellation (4 inner + 12 outer symbols) with
    /// ring ratio `gamma = r2/r1` (the standard uses 2.57–3.15 depending on
    /// rate; 3.15 belongs to rate 2/3).
    ///
    /// Labeling: the two MSBs select the quadrant-ish sector, LSBs the ring
    /// position — Gray-like within each ring, matching the standard's
    /// structure (exact annex labeling differs only in a relabeling that
    /// does not change max-log performance under AWGN).
    ///
    /// # Panics
    ///
    /// Panics unless `gamma > 1`.
    pub fn apsk16(gamma: f64) -> Self {
        assert!(gamma > 1.0, "ring ratio must exceed 1, got {gamma}");
        let r1 = 1.0;
        let r2 = gamma;
        let mut points = vec![(0.0, 0.0); 16];
        // Inner ring: labels 0b11xx-style positions; use labels 12..16 for
        // the 4 inner points (the standard puts the inner QPSK on one MSB
        // pattern), at odd multiples of 45 degrees.
        for (k, label) in (12..16).enumerate() {
            let phase = PI / 4.0 + k as f64 * PI / 2.0;
            points[label] = (r1 * phase.cos(), r1 * phase.sin());
        }
        // Outer ring: 12 points at odd multiples of 15 degrees.
        for (k, point) in points.iter_mut().take(12).enumerate() {
            let phase = PI / 12.0 + k as f64 * PI / 6.0;
            *point = (r2 * phase.cos(), r2 * phase.sin());
        }
        Constellation::new(points)
    }

    /// The DVB-S2 32APSK constellation (4+12+16 rings) with ratios
    /// `gamma1 = r2/r1`, `gamma2 = r3/r1` (standard: e.g. 2.53/4.30 at
    /// rate 3/4).
    ///
    /// # Panics
    ///
    /// Panics unless `1 < gamma1 < gamma2`.
    pub fn apsk32(gamma1: f64, gamma2: f64) -> Self {
        assert!(gamma1 > 1.0 && gamma2 > gamma1, "need 1 < gamma1 < gamma2");
        let mut points = vec![(0.0, 0.0); 32];
        for (k, label) in (28..32).enumerate() {
            let phase = PI / 4.0 + k as f64 * PI / 2.0;
            points[label] = (phase.cos(), phase.sin());
        }
        for (k, label) in (16..28).enumerate() {
            let phase = PI / 12.0 + k as f64 * PI / 6.0;
            points[label] = (gamma1 * phase.cos(), gamma1 * phase.sin());
        }
        for (k, point) in points.iter_mut().take(16).enumerate() {
            let phase = PI / 16.0 + k as f64 * PI / 8.0;
            *point = (gamma2 * phase.cos(), gamma2 * phase.sin());
        }
        Constellation::new(points)
    }

    /// Coded bits per symbol.
    pub fn bits_per_symbol(&self) -> usize {
        self.bits_per_symbol
    }

    /// The (unit-energy) symbol of a bit label.
    pub fn point(&self, label: usize) -> (f64, f64) {
        self.points[label]
    }

    /// Noise deviation per real dimension at `Eb/N0` (dB) for rate `rate`
    /// (unit-energy symbols carrying `bits_per_symbol` coded bits).
    ///
    /// # Panics
    ///
    /// Panics unless `rate` is in `(0, 1]`.
    pub fn noise_sigma(&self, ebn0_db: f64, rate: f64) -> f64 {
        assert!(rate > 0.0 && rate <= 1.0, "rate must be in (0,1], got {rate}");
        let ebn0 = crate::db_to_linear(ebn0_db);
        (1.0 / (2.0 * self.bits_per_symbol as f64 * rate * ebn0)).sqrt()
    }

    /// Maps bits to interleaved (I, Q) samples.
    ///
    /// # Panics
    ///
    /// Panics unless the bit count divides by `bits_per_symbol`.
    pub fn modulate(&self, bits: &BitVec) -> Vec<f64> {
        let m = self.bits_per_symbol;
        assert_eq!(bits.len() % m, 0, "bit count must divide by {m}");
        let mut out = Vec::with_capacity(bits.len() / m * 2);
        for s in 0..bits.len() / m {
            let mut label = 0usize;
            for b in 0..m {
                label = (label << 1) | usize::from(bits.get(s * m + b));
            }
            let (i, q) = self.points[label];
            out.push(i);
            out.push(q);
        }
        out
    }

    /// Max-log bit LLRs from interleaved (I, Q) samples.
    ///
    /// # Panics
    ///
    /// Panics if `sigma <= 0` or the sample count is odd.
    pub fn demap(&self, samples: &[f64], sigma: f64) -> Vec<f64> {
        assert!(sigma > 0.0, "sigma must be positive");
        assert_eq!(samples.len() % 2, 0, "samples come in (I, Q) pairs");
        let m = self.bits_per_symbol;
        let inv_2s2 = 1.0 / (2.0 * sigma * sigma);
        let mut out = Vec::with_capacity(samples.len() / 2 * m);
        let mut metric = vec![0.0f64; self.points.len()];
        for pair in samples.chunks_exact(2) {
            for (label, &(si, sq)) in self.points.iter().enumerate() {
                let d2 = (pair[0] - si) * (pair[0] - si) + (pair[1] - sq) * (pair[1] - sq);
                metric[label] = -d2 * inv_2s2;
            }
            for b in 0..m {
                let mask = 1usize << (m - 1 - b);
                let mut best0 = f64::NEG_INFINITY;
                let mut best1 = f64::NEG_INFINITY;
                for (label, &v) in metric.iter().enumerate() {
                    if label & mask == 0 {
                        best0 = best0.max(v);
                    } else {
                        best1 = best1.max(v);
                    }
                }
                out.push(best0 - best1);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_constellations() -> Vec<Constellation> {
        vec![Constellation::apsk16(3.15), Constellation::apsk32(2.53, 4.30)]
    }

    #[test]
    fn unit_average_energy() {
        for c in all_constellations() {
            let m = 1usize << c.bits_per_symbol();
            let energy: f64 =
                (0..m).map(|l| c.point(l)).map(|(i, q)| i * i + q * q).sum::<f64>() / m as f64;
            assert!((energy - 1.0).abs() < 1e-12, "{energy}");
        }
    }

    #[test]
    fn points_are_distinct() {
        for c in all_constellations() {
            let m = 1usize << c.bits_per_symbol();
            for a in 0..m {
                for b in a + 1..m {
                    let (ai, aq) = c.point(a);
                    let (bi, bq) = c.point(b);
                    assert!((ai - bi).abs() + (aq - bq).abs() > 1e-9, "labels {a} and {b} collide");
                }
            }
        }
    }

    #[test]
    fn apsk16_has_three_plus_one_rings() {
        let c = Constellation::apsk16(3.15);
        let radii: Vec<f64> =
            (0..16).map(|l| c.point(l)).map(|(i, q)| (i * i + q * q).sqrt()).collect();
        let inner = radii[12..].iter().copied().fold(f64::MAX, f64::min);
        let outer = radii[..12].iter().copied().fold(0.0f64, f64::max);
        assert!((outer / inner - 3.15).abs() < 1e-9, "ring ratio {}", outer / inner);
    }

    #[test]
    fn noiseless_round_trip() {
        for c in all_constellations() {
            let m = c.bits_per_symbol();
            let bits: BitVec = (0..(1usize << m) * m).map(|i| (i * 7) % 3 == 0).collect();
            let samples = c.modulate(&bits);
            let llrs = c.demap(&samples, 0.05);
            assert_eq!(llrs.len(), bits.len());
            for (i, &l) in llrs.iter().enumerate() {
                assert_eq!(l < 0.0, bits.get(i), "{m}-bit constellation, bit {i}");
            }
        }
    }

    #[test]
    fn denser_constellations_give_weaker_llrs() {
        // Same noise level: 32APSK bit decisions are less reliable than
        // 16APSK ones on average.
        let c16 = Constellation::apsk16(3.15);
        let c32 = Constellation::apsk32(2.53, 4.30);
        let mean_abs = |c: &Constellation| -> f64 {
            let m = c.bits_per_symbol();
            let bits: BitVec = (0..(1usize << m) * m).map(|i| i % 2 == 0).collect();
            let llrs = c.demap(&c.modulate(&bits), 0.2);
            llrs.iter().map(|l| l.abs()).sum::<f64>() / llrs.len() as f64
        };
        assert!(mean_abs(&c32) < mean_abs(&c16));
    }

    #[test]
    fn noise_sigma_scales_with_order() {
        let c16 = Constellation::apsk16(3.15);
        let c32 = Constellation::apsk32(2.53, 4.30);
        assert!(c32.noise_sigma(2.0, 0.5) < c16.noise_sigma(2.0, 0.5));
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rejects_non_power_of_two() {
        let _ = Constellation::new(vec![(1.0, 0.0), (0.0, 1.0), (-1.0, 0.0)]);
    }
}
