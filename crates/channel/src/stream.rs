//! Frame-tagged LLR streams: the demodulator-facing contract of a
//! streaming decode service.
//!
//! A continuous DVB-S2 reception is a sequence of demapped soft-bit frames,
//! each tagged with its position in the stream and the MODCOD slot it was
//! transmitted under (the receiver learns the MODCOD from the PLHEADER
//! before the payload arrives). The decode pipeline consumes exactly this
//! shape. Sources are *index-addressed* and deterministic — frame `i` is
//! the same bits no matter when or where it is generated — so a
//! multi-threaded pipeline run can be replayed bit-identically by a
//! single-threaded reference decode over the same source.

/// Identity of one frame within a continuous stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FrameTag {
    /// Global position in the stream (0-based, gap-free).
    pub stream_index: u64,
    /// Opaque MODCOD slot; the service layer maps it onto a code/decoder
    /// pair (see `dvbs2::ModcodTable`).
    pub modcod: usize,
}

/// One demapped frame: a tag plus its channel LLRs (codeword length).
#[derive(Debug, Clone, PartialEq)]
pub struct LlrFrame {
    /// The frame's stream identity.
    pub tag: FrameTag,
    /// Soft bits in the decoder's LLR convention (positive favors bit 0).
    pub llrs: Vec<f64>,
}

/// A deterministic, index-addressed source of tagged LLR frames.
///
/// Determinism in the index is the load-bearing property: it decouples
/// frame content from generation order, which is what lets the pipeline
/// soak compare a work-stealing multi-threaded decode against an in-order
/// single-threaded one, frame by frame.
pub trait LlrSource {
    /// The tag of frame `index` (its MODCOD slot in particular).
    fn tag(&self, index: u64) -> FrameTag;

    /// Writes frame `index`'s LLRs into `out`, resizing it as needed.
    fn fill(&mut self, index: u64, out: &mut Vec<f64>);

    /// Materializes frame `index` as an owned [`LlrFrame`].
    fn frame(&mut self, index: u64) -> LlrFrame {
        let tag = self.tag(index);
        let mut llrs = Vec::new();
        self.fill(index, &mut llrs);
        LlrFrame { tag, llrs }
    }
}

/// Iterator adapter yielding frames `0..limit` of a source in order.
#[derive(Debug)]
pub struct FrameStream<S> {
    source: S,
    next: u64,
    limit: u64,
}

impl<S: LlrSource> FrameStream<S> {
    /// Streams the first `limit` frames of `source`.
    pub fn new(source: S, limit: u64) -> Self {
        FrameStream { source, next: 0, limit }
    }

    /// The underlying source (e.g. to re-generate a frame for comparison).
    pub fn source_mut(&mut self) -> &mut S {
        &mut self.source
    }
}

impl<S: LlrSource> Iterator for FrameStream<S> {
    type Item = LlrFrame;

    fn next(&mut self) -> Option<LlrFrame> {
        if self.next >= self.limit {
            return None;
        }
        let frame = self.source.frame(self.next);
        self.next += 1;
        Some(frame)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = (self.limit - self.next) as usize;
        (remaining, Some(remaining))
    }
}

/// Identity of one logical stream inside a multi-tenant service: which
/// tenant owns it and which of that tenant's streams it is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamKey {
    /// Owning tenant (service-level admission budgets are per tenant).
    pub tenant: u32,
    /// Stream id within the tenant.
    pub stream: u32,
}

impl StreamKey {
    /// Convenience constructor.
    pub fn new(tenant: u32, stream: u32) -> Self {
        StreamKey { tenant, stream }
    }
}

/// One demapped frame of a tenant-tagged stream: the owning stream, the
/// frame's position *within that stream*, and the LLR payload.
#[derive(Debug, Clone, PartialEq)]
pub struct TaggedLlrFrame {
    /// The stream this frame belongs to.
    pub key: StreamKey,
    /// 0-based, gap-free position within the stream.
    pub seq: u64,
    /// MODCOD slot of the frame.
    pub modcod: usize,
    /// Channel LLRs (codeword length).
    pub llrs: Vec<f64>,
}

/// A deterministic bundle of per-stream [`LlrSource`]s — the many-client
/// traffic shape a sharded decode service ingests.
///
/// Each inner source is addressed by the *per-stream* frame index, so frame
/// `(key, seq)` has identical bits no matter how the streams' submissions
/// interleave — the property that lets a sharded run be checked against a
/// single-threaded per-stream reference decode.
#[derive(Debug)]
pub struct MultiStreamSource<S> {
    streams: Vec<(StreamKey, S)>,
}

impl<S: LlrSource> MultiStreamSource<S> {
    /// Bundles per-stream sources. Keys must be distinct.
    ///
    /// # Panics
    ///
    /// Panics on an empty bundle or duplicate keys.
    pub fn new(streams: Vec<(StreamKey, S)>) -> Self {
        assert!(!streams.is_empty(), "a multi-stream source needs at least one stream");
        let mut keys: Vec<StreamKey> = streams.iter().map(|(k, _)| *k).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), streams.len(), "stream keys must be distinct");
        MultiStreamSource { streams }
    }

    /// Number of streams in the bundle.
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// Whether the bundle is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// The key of stream `index` (bundle order).
    pub fn key(&self, index: usize) -> StreamKey {
        self.streams[index].0
    }

    /// Materializes frame `seq` of stream `index` (bundle order).
    pub fn frame(&mut self, index: usize, seq: u64) -> TaggedLlrFrame {
        let (key, source) = &mut self.streams[index];
        let inner = source.frame(seq);
        TaggedLlrFrame { key: *key, seq, modcod: inner.tag.modcod, llrs: inner.llrs }
    }

    /// Frame `global_index` of the round-robin interleaving of every
    /// stream: stream `global_index % len`, per-stream seq
    /// `global_index / len` — a deterministic arrival order for open-loop
    /// load generation.
    pub fn round_robin(&mut self, global_index: u64) -> TaggedLlrFrame {
        let n = self.streams.len() as u64;
        self.frame((global_index % n) as usize, global_index / n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::mix_seed;

    /// A toy source: two alternating "MODCODs" with different lengths and
    /// per-index seeded contents.
    struct ToySource {
        seed: u64,
    }

    impl LlrSource for ToySource {
        fn tag(&self, index: u64) -> FrameTag {
            FrameTag { stream_index: index, modcod: (index % 2) as usize }
        }

        fn fill(&mut self, index: u64, out: &mut Vec<f64>) {
            let len = if index.is_multiple_of(2) { 4 } else { 6 };
            out.clear();
            let s = mix_seed(self.seed, index);
            out.extend((0..len).map(|i| (s.wrapping_add(i) % 13) as f64 - 6.0));
        }
    }

    #[test]
    fn frames_are_deterministic_in_the_index() {
        let mut a = ToySource { seed: 7 };
        let mut b = ToySource { seed: 7 };
        // Generation order must not matter.
        let f3 = a.frame(3);
        let f0 = a.frame(0);
        assert_eq!(b.frame(0), f0);
        assert_eq!(b.frame(3), f3);
        assert_ne!(ToySource { seed: 8 }.frame(0), f0, "seed must matter");
    }

    #[test]
    fn multi_stream_frames_are_deterministic_and_key_tagged() {
        let mk = || {
            MultiStreamSource::new(vec![
                (StreamKey::new(0, 0), ToySource { seed: 3 }),
                (StreamKey::new(0, 1), ToySource { seed: 4 }),
                (StreamKey::new(1, 0), ToySource { seed: 5 }),
            ])
        };
        let mut a = mk();
        let mut b = mk();
        // Generation order must not matter, and each stream keeps its own
        // per-stream index space.
        let f = a.frame(2, 7);
        assert_eq!(f.key, StreamKey::new(1, 0));
        assert_eq!(f.seq, 7);
        assert_eq!(b.frame(2, 7), f);
        assert_ne!(b.frame(1, 7).llrs, f.llrs, "streams draw independent content");
        // Round-robin interleaving: global index 5 → stream 2, seq 1.
        let rr = a.round_robin(5);
        assert_eq!((rr.key, rr.seq), (StreamKey::new(1, 0), 1));
        assert_eq!(rr, b.frame(2, 1));
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn multi_stream_rejects_duplicate_keys() {
        let _ = MultiStreamSource::new(vec![
            (StreamKey::new(0, 0), ToySource { seed: 1 }),
            (StreamKey::new(0, 0), ToySource { seed: 2 }),
        ]);
    }

    #[test]
    fn stream_yields_indexed_frames_in_order() {
        let frames: Vec<LlrFrame> = FrameStream::new(ToySource { seed: 1 }, 5).collect();
        assert_eq!(frames.len(), 5);
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(f.tag.stream_index, i as u64);
            assert_eq!(f.tag.modcod, i % 2);
            assert_eq!(f.llrs.len(), if i % 2 == 0 { 4 } else { 6 });
        }
    }
}
