//! Frame-tagged LLR streams: the demodulator-facing contract of a
//! streaming decode service.
//!
//! A continuous DVB-S2 reception is a sequence of demapped soft-bit frames,
//! each tagged with its position in the stream and the MODCOD slot it was
//! transmitted under (the receiver learns the MODCOD from the PLHEADER
//! before the payload arrives). The decode pipeline consumes exactly this
//! shape. Sources are *index-addressed* and deterministic — frame `i` is
//! the same bits no matter when or where it is generated — so a
//! multi-threaded pipeline run can be replayed bit-identically by a
//! single-threaded reference decode over the same source.

/// Identity of one frame within a continuous stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FrameTag {
    /// Global position in the stream (0-based, gap-free).
    pub stream_index: u64,
    /// Opaque MODCOD slot; the service layer maps it onto a code/decoder
    /// pair (see `dvbs2::ModcodTable`).
    pub modcod: usize,
}

/// One demapped frame: a tag plus its channel LLRs (codeword length).
#[derive(Debug, Clone, PartialEq)]
pub struct LlrFrame {
    /// The frame's stream identity.
    pub tag: FrameTag,
    /// Soft bits in the decoder's LLR convention (positive favors bit 0).
    pub llrs: Vec<f64>,
}

/// A deterministic, index-addressed source of tagged LLR frames.
///
/// Determinism in the index is the load-bearing property: it decouples
/// frame content from generation order, which is what lets the pipeline
/// soak compare a work-stealing multi-threaded decode against an in-order
/// single-threaded one, frame by frame.
pub trait LlrSource {
    /// The tag of frame `index` (its MODCOD slot in particular).
    fn tag(&self, index: u64) -> FrameTag;

    /// Writes frame `index`'s LLRs into `out`, resizing it as needed.
    fn fill(&mut self, index: u64, out: &mut Vec<f64>);

    /// Materializes frame `index` as an owned [`LlrFrame`].
    fn frame(&mut self, index: u64) -> LlrFrame {
        let tag = self.tag(index);
        let mut llrs = Vec::new();
        self.fill(index, &mut llrs);
        LlrFrame { tag, llrs }
    }
}

/// Iterator adapter yielding frames `0..limit` of a source in order.
#[derive(Debug)]
pub struct FrameStream<S> {
    source: S,
    next: u64,
    limit: u64,
}

impl<S: LlrSource> FrameStream<S> {
    /// Streams the first `limit` frames of `source`.
    pub fn new(source: S, limit: u64) -> Self {
        FrameStream { source, next: 0, limit }
    }

    /// The underlying source (e.g. to re-generate a frame for comparison).
    pub fn source_mut(&mut self) -> &mut S {
        &mut self.source
    }
}

impl<S: LlrSource> Iterator for FrameStream<S> {
    type Item = LlrFrame;

    fn next(&mut self) -> Option<LlrFrame> {
        if self.next >= self.limit {
            return None;
        }
        let frame = self.source.frame(self.next);
        self.next += 1;
        Some(frame)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = (self.limit - self.next) as usize;
        (remaining, Some(remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::mix_seed;

    /// A toy source: two alternating "MODCODs" with different lengths and
    /// per-index seeded contents.
    struct ToySource {
        seed: u64,
    }

    impl LlrSource for ToySource {
        fn tag(&self, index: u64) -> FrameTag {
            FrameTag { stream_index: index, modcod: (index % 2) as usize }
        }

        fn fill(&mut self, index: u64, out: &mut Vec<f64>) {
            let len = if index.is_multiple_of(2) { 4 } else { 6 };
            out.clear();
            let s = mix_seed(self.seed, index);
            out.extend((0..len).map(|i| (s.wrapping_add(i) % 13) as f64 - 6.0));
        }
    }

    #[test]
    fn frames_are_deterministic_in_the_index() {
        let mut a = ToySource { seed: 7 };
        let mut b = ToySource { seed: 7 };
        // Generation order must not matter.
        let f3 = a.frame(3);
        let f0 = a.frame(0);
        assert_eq!(b.frame(0), f0);
        assert_eq!(b.frame(3), f3);
        assert_ne!(ToySource { seed: 8 }.frame(0), f0, "seed must matter");
    }

    #[test]
    fn stream_yields_indexed_frames_in_order() {
        let frames: Vec<LlrFrame> = FrameStream::new(ToySource { seed: 1 }, 5).collect();
        assert_eq!(frames.len(), 5);
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(f.tag.stream_index, i as u64);
            assert_eq!(f.tag.modcod, i % 2);
            assert_eq!(f.llrs.len(), if i % 2 == 0 { 4 } else { 6 });
        }
    }
}
