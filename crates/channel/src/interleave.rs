//! The DVB-S2 block bit interleaver.
//!
//! For 8PSK (and higher orders) the standard interleaves each FEC frame
//! through a column-wise block interleaver before mapping, so that the
//! unequal bit reliabilities of one symbol spread across the codeword.
//! Bits are written column by column into `columns` columns of
//! `rows = N / columns` and read row by row.

/// A rows × columns block interleaver.
///
/// ```
/// use dvbs2_channel::BlockInterleaver;
/// let il = BlockInterleaver::new(12, 3);
/// let data: Vec<u32> = (0..12).collect();
/// let mixed = il.interleave(&data);
/// let back = il.deinterleave(&mixed);
/// assert_eq!(back, data);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockInterleaver {
    len: usize,
    rows: usize,
    columns: usize,
}

impl BlockInterleaver {
    /// Creates an interleaver for blocks of `len` items in `columns`
    /// columns.
    ///
    /// # Panics
    ///
    /// Panics unless `columns >= 1` divides `len`.
    pub fn new(len: usize, columns: usize) -> Self {
        assert!(columns >= 1, "need at least one column");
        assert_eq!(len % columns, 0, "{columns} columns must divide block length {len}");
        BlockInterleaver { len, rows: len / columns, columns }
    }

    /// The DVB-S2 interleaver for 8PSK frames of `frame_len` bits
    /// (3 columns).
    pub fn dvbs2_8psk(frame_len: usize) -> Self {
        BlockInterleaver::new(frame_len, 3)
    }

    /// Block length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` for a zero-length block (never for DVB-S2 frames).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Output index of input position `i`: written down column `i / rows`
    /// at row `i % rows`, read out row-major.
    #[inline]
    pub fn output_index(&self, i: usize) -> usize {
        debug_assert!(i < self.len);
        let column = i / self.rows;
        let row = i % self.rows;
        row * self.columns + column
    }

    /// Permutes a block (codeword bits before mapping).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.len()`.
    pub fn interleave<T: Copy + Default>(&self, data: &[T]) -> Vec<T> {
        assert_eq!(data.len(), self.len, "block length mismatch");
        let mut out = vec![T::default(); self.len];
        for (i, &v) in data.iter().enumerate() {
            out[self.output_index(i)] = v;
        }
        out
    }

    /// Inverse permutation (received LLRs after demapping).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.len()`.
    pub fn deinterleave<T: Copy + Default>(&self, data: &[T]) -> Vec<T> {
        assert_eq!(data.len(), self.len, "block length mismatch");
        let mut out = vec![T::default(); self.len];
        for i in 0..self.len {
            out[i] = data[self.output_index(i)];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_any_block() {
        let il = BlockInterleaver::new(64_800, 3);
        let data: Vec<u32> = (0..64_800).collect();
        assert_eq!(il.deinterleave(&il.interleave(&data)), data);
    }

    #[test]
    fn is_a_permutation() {
        let il = BlockInterleaver::new(30, 3);
        let mut seen = [false; 30];
        for i in 0..30 {
            let o = il.output_index(i);
            assert!(!seen[o], "index {o} hit twice");
            seen[o] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn column_write_row_read_layout() {
        // 6 items, 3 columns, 2 rows: columns are [0,1], [2,3], [4,5];
        // rows read as 0,2,4 then 1,3,5.
        let il = BlockInterleaver::new(6, 3);
        let mixed = il.interleave(&[0u8, 1, 2, 3, 4, 5]);
        assert_eq!(mixed, vec![0, 2, 4, 1, 3, 5]);
    }

    #[test]
    fn consecutive_bits_land_in_different_symbols() {
        // The purpose of the interleaver: the 3 bits of one 8PSK symbol
        // (consecutive output positions) come from distant input positions.
        let il = BlockInterleaver::dvbs2_8psk(16_200);
        let rows = 16_200 / 3;
        for symbol in [0usize, 100, 5_000] {
            let inputs: Vec<usize> = (0..3)
                .map(|b| (0..16_200).find(|&i| il.output_index(i) == symbol * 3 + b).unwrap())
                .collect();
            for pair in inputs.windows(2) {
                assert!(pair[1].abs_diff(pair[0]) >= rows, "{inputs:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn rejects_nondividing_columns() {
        let _ = BlockInterleaver::new(10, 3);
    }
}
