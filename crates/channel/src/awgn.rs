//! Additive white Gaussian noise generation.
//!
//! A self-contained Box–Muller Gaussian source keeps the workspace free of
//! extra dependencies and makes noise realizations a pure function of the
//! seed, which the Monte-Carlo harness relies on for reproducibility.

use rand::Rng;

/// A standard-normal sample source using the Box–Muller transform.
///
/// ```
/// use dvbs2_channel::GaussianSource;
/// use rand::{SeedableRng, rngs::SmallRng};
/// let mut rng = SmallRng::seed_from_u64(1);
/// let mut gauss = GaussianSource::new();
/// let x: f64 = gauss.sample(&mut rng);
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone, Default)]
pub struct GaussianSource {
    spare: Option<f64>,
}

impl GaussianSource {
    /// Creates a source with no cached spare sample.
    pub fn new() -> Self {
        GaussianSource { spare: None }
    }

    /// Draws one `N(0, 1)` sample.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Box–Muller: u1 in (0,1] avoids ln(0).
        let u1: f64 = 1.0 - rng.random::<f64>();
        let u2: f64 = rng.random::<f64>();
        let radius = (-2.0 * u1.ln()).sqrt();
        let (sin, cos) = (std::f64::consts::TAU * u2).sin_cos();
        self.spare = Some(radius * sin);
        radius * cos
    }
}

/// An AWGN channel with fixed noise standard deviation per real dimension.
#[derive(Debug, Clone)]
pub struct AwgnChannel {
    sigma: f64,
    gauss: GaussianSource,
}

impl AwgnChannel {
    /// Creates a channel adding `N(0, sigma^2)` noise to each sample.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is not positive and finite.
    pub fn new(sigma: f64) -> Self {
        assert!(sigma > 0.0 && sigma.is_finite(), "sigma must be positive, got {sigma}");
        AwgnChannel { sigma, gauss: GaussianSource::new() }
    }

    /// The noise standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Adds noise to `samples` in place.
    pub fn corrupt<R: Rng + ?Sized>(&mut self, rng: &mut R, samples: &mut [f64]) {
        for s in samples {
            *s += self.sigma * self.gauss.sample(rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_moments_are_close() {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut g = GaussianSource::new();
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn gaussian_tail_mass_is_reasonable() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut g = GaussianSource::new();
        let n = 100_000;
        let beyond_2: usize = (0..n).filter(|_| g.sample(&mut rng).abs() > 2.0).count();
        let frac = beyond_2 as f64 / n as f64;
        // P(|Z| > 2) = 4.55 %.
        assert!((frac - 0.0455).abs() < 0.005, "tail fraction {frac}");
    }

    #[test]
    fn channel_noise_has_requested_power() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut ch = AwgnChannel::new(0.5);
        let mut samples = vec![1.0f64; 100_000];
        ch.corrupt(&mut rng, &mut samples);
        let var = samples.iter().map(|y| (y - 1.0) * (y - 1.0)).sum::<f64>() / samples.len() as f64;
        assert!((var - 0.25).abs() < 0.01, "noise var {var}");
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let run = || {
            let mut rng = SmallRng::seed_from_u64(9);
            let mut ch = AwgnChannel::new(1.0);
            let mut s = vec![0.0f64; 16];
            ch.corrupt(&mut rng, &mut s);
            s
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn rejects_nonpositive_sigma() {
        let _ = AwgnChannel::new(0.0);
    }
}
