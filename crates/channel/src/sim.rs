//! Multi-threaded Monte-Carlo BER/FER estimation.
//!
//! The harness is decoder-agnostic: callers provide a factory that builds a
//! per-thread frame simulator (encode → modulate → corrupt → decode →
//! count errors). Results are exact counts, reproducible given per-thread
//! seeds derived from the caller's seed.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The result of simulating one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FrameOutcome {
    /// Information-bit errors after decoding.
    pub bit_errors: usize,
    /// Information bits carried by the frame (`K`).
    pub info_bits: usize,
    /// Whether the frame decoded incorrectly.
    pub frame_error: bool,
    /// Decoder iterations spent on this frame.
    pub iterations: usize,
}

/// Stopping rule for a Monte-Carlo run: stop at `max_frames`, or earlier
/// once `target_frame_errors` frame errors have been observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StopRule {
    /// Hard cap on simulated frames.
    pub max_frames: usize,
    /// Early-out threshold on accumulated frame errors (0 disables).
    pub target_frame_errors: usize,
}

impl StopRule {
    /// A rule with only a frame cap.
    pub fn frames(max_frames: usize) -> Self {
        StopRule { max_frames, target_frame_errors: 0 }
    }
}

/// Accumulated error statistics of a Monte-Carlo run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BerEstimate {
    /// Frames simulated.
    pub frames: usize,
    /// Total information-bit errors.
    pub bit_errors: usize,
    /// Total frame errors.
    pub frame_errors: usize,
    /// Total information bits simulated.
    pub info_bits: usize,
    /// Total decoder iterations.
    pub total_iterations: usize,
}

impl BerEstimate {
    /// Bit error rate; 0 when nothing was simulated.
    pub fn ber(&self) -> f64 {
        if self.info_bits == 0 { 0.0 } else { self.bit_errors as f64 / self.info_bits as f64 }
    }

    /// Frame error rate.
    pub fn fer(&self) -> f64 {
        if self.frames == 0 { 0.0 } else { self.frame_errors as f64 / self.frames as f64 }
    }

    /// Mean decoder iterations per frame.
    pub fn avg_iterations(&self) -> f64 {
        if self.frames == 0 { 0.0 } else { self.total_iterations as f64 / self.frames as f64 }
    }

    /// Merges another estimate into this one.
    pub fn merge(&mut self, other: &BerEstimate) {
        self.frames += other.frames;
        self.bit_errors += other.bit_errors;
        self.frame_errors += other.frame_errors;
        self.info_bits += other.info_bits;
        self.total_iterations += other.total_iterations;
    }

    /// Records one frame outcome.
    pub fn record(&mut self, outcome: FrameOutcome) {
        self.frames += 1;
        self.bit_errors += outcome.bit_errors;
        self.info_bits += outcome.info_bits;
        self.total_iterations += outcome.iterations;
        if outcome.frame_error {
            self.frame_errors += 1;
        }
    }
}

/// Runs frames across `threads` worker threads until the stop rule fires.
///
/// `make_worker(thread_index)` is called once inside each thread and must
/// return a closure simulating one frame per call. Derive per-thread RNG
/// seeds from `thread_index` for reproducibility.
///
/// ```
/// use dvbs2_channel::{monte_carlo, FrameOutcome, StopRule};
/// let est = monte_carlo(2, StopRule::frames(100), |_t| {
///     move || FrameOutcome { bit_errors: 1, info_bits: 100, frame_error: true, iterations: 5 }
/// });
/// assert_eq!(est.frames, 100);
/// assert!((est.ber() - 0.01).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if `threads == 0` or `stop.max_frames == 0`.
pub fn monte_carlo<W, F>(threads: usize, stop: StopRule, make_worker: W) -> BerEstimate
where
    W: Fn(usize) -> F + Sync,
    F: FnMut() -> FrameOutcome,
{
    assert!(threads > 0, "need at least one thread");
    assert!(stop.max_frames > 0, "max_frames must be positive");
    let claimed = AtomicUsize::new(0);
    let frame_errors = AtomicUsize::new(0);
    let total = Mutex::new(BerEstimate::default());

    std::thread::scope(|scope| {
        for t in 0..threads {
            let claimed = &claimed;
            let frame_errors = &frame_errors;
            let total = &total;
            let make_worker = &make_worker;
            scope.spawn(move || {
                let mut simulate = make_worker(t);
                let mut local = BerEstimate::default();
                loop {
                    if stop.target_frame_errors > 0
                        && frame_errors.load(Ordering::Relaxed) >= stop.target_frame_errors
                    {
                        break;
                    }
                    if claimed.fetch_add(1, Ordering::Relaxed) >= stop.max_frames {
                        break;
                    }
                    let outcome = simulate();
                    if outcome.frame_error {
                        frame_errors.fetch_add(1, Ordering::Relaxed);
                    }
                    local.record(outcome);
                }
                total.lock().expect("no panics hold the lock").merge(&local);
            });
        }
    });
    total.into_inner().expect("all workers joined")
}

/// Default worker-thread count: the available parallelism, capped at 16.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(4, |n| n.get().min(16))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_counts_with_frame_cap() {
        let est = monte_carlo(4, StopRule::frames(1000), |_| {
            move || FrameOutcome { bit_errors: 2, info_bits: 50, frame_error: false, iterations: 3 }
        });
        assert_eq!(est.frames, 1000);
        assert_eq!(est.bit_errors, 2000);
        assert_eq!(est.info_bits, 50_000);
        assert_eq!(est.frame_errors, 0);
        assert!((est.avg_iterations() - 3.0).abs() < 1e-12);
        assert_eq!(est.fer(), 0.0);
    }

    #[test]
    fn early_stop_on_frame_errors() {
        let stop = StopRule { max_frames: 1_000_000, target_frame_errors: 50 };
        let est = monte_carlo(4, stop, |_| {
            move || FrameOutcome { bit_errors: 10, info_bits: 100, frame_error: true, iterations: 1 }
        });
        assert!(est.frame_errors >= 50);
        // Overshoot bounded by in-flight frames.
        assert!(est.frames < 50 + 4 * 16 + 64, "frames {}", est.frames);
    }

    #[test]
    fn single_thread_is_supported() {
        let est = monte_carlo(1, StopRule::frames(10), |_| {
            let mut count = 0usize;
            move || {
                count += 1;
                FrameOutcome {
                    bit_errors: count % 2,
                    info_bits: 10,
                    frame_error: count % 2 == 1,
                    iterations: count,
                }
            }
        });
        assert_eq!(est.frames, 10);
        assert_eq!(est.frame_errors, 5);
        assert_eq!(est.bit_errors, 5);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = BerEstimate { frames: 1, bit_errors: 2, frame_errors: 1, info_bits: 10, total_iterations: 4 };
        let b = a;
        a.merge(&b);
        assert_eq!(a.frames, 2);
        assert_eq!(a.bit_errors, 4);
        assert_eq!(a.info_bits, 20);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let _ = monte_carlo(0, StopRule::frames(1), |_| move || FrameOutcome::default());
    }
}
