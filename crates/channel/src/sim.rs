//! Multi-threaded Monte-Carlo BER/FER estimation.
//!
//! The harness is decoder-agnostic: callers provide a factory that builds a
//! per-thread frame simulator (encode → modulate → corrupt → decode →
//! count errors). Frames are indexed globally and seeded per index (see
//! [`mix_seed`]), so results are exact counts, bit-reproducible for a given
//! seed at any thread count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The result of simulating one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FrameOutcome {
    /// Information-bit errors after decoding.
    pub bit_errors: usize,
    /// Information bits carried by the frame (`K`).
    pub info_bits: usize,
    /// Whether the frame decoded incorrectly.
    pub frame_error: bool,
    /// Decoder iterations spent on this frame.
    pub iterations: usize,
}

/// Stopping rule for a Monte-Carlo run: stop at `max_frames`, or earlier
/// once `target_frame_errors` frame errors have been observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StopRule {
    /// Hard cap on simulated frames.
    pub max_frames: usize,
    /// Early-out threshold on accumulated frame errors (0 disables).
    pub target_frame_errors: usize,
}

impl StopRule {
    /// A rule with only a frame cap.
    pub fn frames(max_frames: usize) -> Self {
        StopRule { max_frames, target_frame_errors: 0 }
    }
}

/// Accumulated error statistics of a Monte-Carlo run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BerEstimate {
    /// Frames simulated.
    pub frames: usize,
    /// Total information-bit errors.
    pub bit_errors: usize,
    /// Total frame errors.
    pub frame_errors: usize,
    /// Total information bits simulated.
    pub info_bits: usize,
    /// Total decoder iterations.
    pub total_iterations: usize,
}

impl BerEstimate {
    /// Bit error rate; 0 when nothing was simulated.
    pub fn ber(&self) -> f64 {
        if self.info_bits == 0 {
            0.0
        } else {
            self.bit_errors as f64 / self.info_bits as f64
        }
    }

    /// Frame error rate.
    pub fn fer(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.frame_errors as f64 / self.frames as f64
        }
    }

    /// Mean decoder iterations per frame.
    pub fn avg_iterations(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.total_iterations as f64 / self.frames as f64
        }
    }

    /// Merges another estimate into this one.
    pub fn merge(&mut self, other: &BerEstimate) {
        self.frames += other.frames;
        self.bit_errors += other.bit_errors;
        self.frame_errors += other.frame_errors;
        self.info_bits += other.info_bits;
        self.total_iterations += other.total_iterations;
    }

    /// Records one frame outcome.
    pub fn record(&mut self, outcome: FrameOutcome) {
        self.frames += 1;
        self.bit_errors += outcome.bit_errors;
        self.info_bits += outcome.info_bits;
        self.total_iterations += outcome.iterations;
        if outcome.frame_error {
            self.frame_errors += 1;
        }
    }
}

/// Runs frames in fixed-size chunks across work-stealing worker threads,
/// with results that are **bit-reproducible** for a given seed regardless
/// of the thread count or scheduling.
///
/// Frames carry global indices `0..stop.max_frames`, grouped into chunks of
/// `chunk_frames` consecutive indices. Idle workers atomically claim the
/// next unclaimed chunk (work stealing — no static striping, so an unlucky
/// thread never becomes the straggler) and call the frame closure once per
/// index. Because the closure receives the *global frame index*, callers
/// derive an independent RNG stream per frame (see [`mix_seed`]) and every
/// frame's outcome is independent of which thread simulates it.
///
/// Early termination is deterministic: the run's result is the merge of the
/// shortest chunk *prefix* `0..=s` whose cumulative frame errors reach
/// `stop.target_frame_errors` (or of all chunks when the target is 0 or
/// never reached). Chunks beyond the stop prefix are discarded, so two runs
/// always merge exactly the same frames; at most one in-flight chunk per
/// thread is wasted.
///
/// ```
/// use dvbs2_channel::{monte_carlo_frames, FrameOutcome, StopRule};
/// let run = |threads| {
///     monte_carlo_frames(threads, StopRule::frames(100), 8, |_t| {
///         move |frame: u64| FrameOutcome {
///             bit_errors: (frame % 3 == 0) as usize,
///             info_bits: 10,
///             frame_error: frame % 3 == 0,
///             iterations: 1,
///         }
///     })
/// };
/// assert_eq!(run(1), run(4)); // identical counts, any thread count
/// ```
///
/// # Panics
///
/// Panics if `threads == 0`, `stop.max_frames == 0` or `chunk_frames == 0`.
pub fn monte_carlo_frames<W, F>(
    threads: usize,
    stop: StopRule,
    chunk_frames: usize,
    make_worker: W,
) -> BerEstimate
where
    W: Fn(usize) -> F + Sync,
    F: FnMut(u64) -> FrameOutcome,
{
    monte_carlo_batches(threads, stop, chunk_frames, |t| {
        let mut simulate = make_worker(t);
        move |first: u64, count: usize| (first..first + count as u64).map(&mut simulate).collect()
    })
}

/// The chunk-granular core of [`monte_carlo_frames`]: the worker closure
/// receives a whole chunk — `(first_frame, count)` for the consecutive
/// global indices `first_frame..first_frame + count` — and returns one
/// [`FrameOutcome`] per index, in order.
///
/// This is the entry point for **multi-frame batched decoders** (the
/// decoder crate's tiled batch decoder) that amortize graph traversal
/// across codewords: a worker can generate the chunk's noise realizations
/// (seeded per global index, so outcomes stay bit-reproducible at any
/// thread count) and decode them in one batched call. The chunking, work
/// stealing and deterministic early-out are identical to
/// [`monte_carlo_frames`], which is implemented on top of this by mapping
/// the per-frame closure over each chunk. Thread-parallel frame lanes
/// compose: this function's per-thread workers each hold their own batch
/// decoder, so `threads × tile lanes` is the full parallelism product.
///
/// # Panics
///
/// Panics if `threads == 0`, `stop.max_frames == 0`, `chunk_frames == 0`,
/// or a worker returns a vector whose length is not `count`.
pub fn monte_carlo_batches<W, F>(
    threads: usize,
    stop: StopRule,
    chunk_frames: usize,
    make_worker: W,
) -> BerEstimate
where
    W: Fn(usize) -> F + Sync,
    F: FnMut(u64, usize) -> Vec<FrameOutcome>,
{
    assert!(threads > 0, "need at least one thread");
    assert!(stop.max_frames > 0, "max_frames must be positive");
    assert!(chunk_frames > 0, "chunk_frames must be positive");
    let n_chunks = stop.max_frames.div_ceil(chunk_frames);
    let next_chunk = AtomicUsize::new(0);

    struct Progress {
        /// Per-chunk results, filled as workers complete them.
        results: Vec<Option<BerEstimate>>,
        /// First chunk index not yet folded into the in-order prefix.
        frontier: usize,
        /// Cumulative frame errors over chunks `0..frontier`.
        prefix_errors: usize,
        /// Last chunk of the stop prefix, once the target is reached.
        stop_at: Option<usize>,
    }
    let progress = Mutex::new(Progress {
        results: vec![None; n_chunks],
        frontier: 0,
        prefix_errors: 0,
        stop_at: None,
    });

    std::thread::scope(|scope| {
        for t in 0..threads {
            let next_chunk = &next_chunk;
            let progress = &progress;
            let make_worker = &make_worker;
            scope.spawn(move || {
                let mut simulate = make_worker(t);
                loop {
                    let chunk = next_chunk.fetch_add(1, Ordering::Relaxed);
                    if chunk >= n_chunks {
                        break;
                    }
                    {
                        let p = progress.lock().expect("no panics hold the lock");
                        if p.stop_at.is_some_and(|s| chunk > s) {
                            break;
                        }
                    }
                    let mut local = BerEstimate::default();
                    let first = (chunk * chunk_frames) as u64;
                    let last = ((chunk + 1) * chunk_frames).min(stop.max_frames) as u64;
                    let count = (last - first) as usize;
                    let outcomes = simulate(first, count);
                    assert_eq!(outcomes.len(), count, "worker must return one outcome per frame");
                    for outcome in outcomes {
                        local.record(outcome);
                    }
                    let mut p = progress.lock().expect("no panics hold the lock");
                    p.results[chunk] = Some(local);
                    // Fold completed chunks into the prefix strictly in index
                    // order; the stop decision therefore depends only on the
                    // per-chunk outcomes, never on completion order.
                    while p.stop_at.is_none() && p.frontier < n_chunks {
                        let Some(done) = p.results[p.frontier] else { break };
                        p.prefix_errors += done.frame_errors;
                        if stop.target_frame_errors > 0
                            && p.prefix_errors >= stop.target_frame_errors
                        {
                            p.stop_at = Some(p.frontier);
                        }
                        p.frontier += 1;
                    }
                }
            });
        }
    });

    let p = progress.into_inner().expect("all workers joined");
    let merged_until = p.stop_at.map_or(n_chunks, |s| s + 1);
    let mut total = BerEstimate::default();
    for chunk in 0..merged_until {
        let done = p.results[chunk].expect("chunks inside the stop prefix completed");
        total.merge(&done);
    }
    total
}

/// Derives an independent RNG seed for one stream (e.g. one frame index)
/// from a base seed, via two SplitMix64 mixing rounds.
///
/// Used with [`monte_carlo_frames`] to give every global frame index its
/// own reproducible noise realization, decoupled from thread scheduling.
pub fn mix_seed(seed: u64, stream: u64) -> u64 {
    let mut state = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut mix = || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    mix();
    mix()
}

/// Default worker-thread count: the available parallelism, capped at 16.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(4, |n| n.get().min(16))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_counts_with_frame_cap() {
        let est = monte_carlo_frames(4, StopRule::frames(1000), 16, |_| {
            |_frame: u64| FrameOutcome {
                bit_errors: 2,
                info_bits: 50,
                frame_error: false,
                iterations: 3,
            }
        });
        assert_eq!(est.frames, 1000);
        assert_eq!(est.bit_errors, 2000);
        assert_eq!(est.info_bits, 50_000);
        assert_eq!(est.frame_errors, 0);
        assert!((est.avg_iterations() - 3.0).abs() < 1e-12);
        assert_eq!(est.fer(), 0.0);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = BerEstimate {
            frames: 1,
            bit_errors: 2,
            frame_errors: 1,
            info_bits: 10,
            total_iterations: 4,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.frames, 2);
        assert_eq!(a.bit_errors, 4);
        assert_eq!(a.info_bits, 20);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let _ = monte_carlo_frames(0, StopRule::frames(1), 1, |_| {
            |_frame: u64| FrameOutcome::default()
        });
    }

    /// A deterministic per-frame outcome keyed on the global index.
    fn frame_outcome(frame: u64) -> FrameOutcome {
        let noisy = mix_seed(42, frame).is_multiple_of(7);
        FrameOutcome {
            bit_errors: if noisy { 3 } else { 0 },
            info_bits: 20,
            frame_error: noisy,
            iterations: 1 + (frame % 5) as usize,
        }
    }

    #[test]
    fn chunked_run_is_identical_across_thread_counts() {
        let stop = StopRule::frames(509); // deliberately not a chunk multiple
        let reference = monte_carlo_frames(1, stop, 16, |_| frame_outcome);
        assert_eq!(reference.frames, 509);
        for threads in [2, 3, 8] {
            for chunk in [1, 16, 64] {
                let est = monte_carlo_frames(threads, stop, chunk, |_| frame_outcome);
                assert_eq!(est, reference, "threads {threads} chunk {chunk}");
            }
        }
    }

    #[test]
    fn chunked_early_out_is_deterministic_and_bounded() {
        let stop = StopRule { max_frames: 1_000_000, target_frame_errors: 25 };
        let reference = monte_carlo_frames(1, stop, 8, |_| frame_outcome);
        assert!(reference.frame_errors >= 25);
        // Stop prefix = whole chunks, so overshoot is below one extra chunk.
        assert!(reference.frame_errors < 25 + 8);
        for threads in [2, 7] {
            let est = monte_carlo_frames(threads, stop, 8, |_| frame_outcome);
            assert_eq!(est, reference, "threads {threads}");
        }
    }

    #[test]
    fn batched_workers_match_per_frame_workers() {
        let stop = StopRule { max_frames: 400, target_frame_errors: 10 };
        let reference = monte_carlo_frames(1, stop, 16, |_| frame_outcome);
        for threads in [1, 4] {
            let est = monte_carlo_batches(threads, stop, 16, |_| {
                |first: u64, count: usize| {
                    (first..first + count as u64).map(frame_outcome).collect()
                }
            });
            assert_eq!(est, reference, "threads {threads}");
        }
    }

    // The length assert fires on a worker thread, so the panic that reaches
    // the test is the scope's propagated one.
    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn short_batch_is_rejected() {
        let _ = monte_carlo_batches(1, StopRule::frames(10), 4, |_| {
            |_first: u64, _count: usize| vec![FrameOutcome::default()]
        });
    }

    #[test]
    fn chunked_run_visits_each_frame_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        let est = monte_carlo_frames(4, StopRule::frames(100), 7, |_| {
            |frame: u64| {
                hits[frame as usize].fetch_add(1, Ordering::Relaxed);
                FrameOutcome { bit_errors: 0, info_bits: 1, frame_error: false, iterations: 1 }
            }
        });
        assert_eq!(est.frames, 100);
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn mix_seed_separates_streams() {
        // Different streams from one seed must not collide or correlate
        // trivially; spot-check distinctness.
        let mut seen = std::collections::HashSet::new();
        for stream in 0..1000 {
            assert!(seen.insert(mix_seed(0xD5B2, stream)), "stream {stream}");
        }
        assert_ne!(mix_seed(1, 0), mix_seed(2, 0));
    }
}
