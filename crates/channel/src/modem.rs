//! Bit-to-symbol mapping and LLR demapping.
//!
//! DVB-S2 transmits LDPC codewords over QPSK, 8PSK, 16APSK or 32APSK. For
//! decoder evaluation the paper's experiments reduce to the per-dimension
//! AWGN behaviour, so BPSK and Gray QPSK place one coded bit of amplitude 1
//! on each real dimension (bit 0 → `+1`, bit 1 → `-1`, matching
//! [`crate::bpsk_llr`]). Gray-mapped 8PSK with max-log demapping is
//! included as the standard's next modulation step (used together with the
//! [`crate::BlockInterleaver`]).

use crate::llr::{bpsk_llr, db_to_linear};
use dvbs2_ldpc::BitVec;

/// Gray ordering of 3-bit labels around the 8PSK circle.
const GRAY8: [u8; 8] = [0b000, 0b001, 0b011, 0b010, 0b110, 0b111, 0b101, 0b100];

/// Supported modulations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Modulation {
    /// One bit per real sample.
    #[default]
    Bpsk,
    /// Gray-mapped QPSK: even bits on I, odd bits on Q; equivalent to two
    /// independent BPSK channels.
    Qpsk,
    /// Gray-mapped 8PSK (unit-radius circle), max-log demapping.
    Psk8,
}

impl Modulation {
    /// Coded bits per complex symbol.
    pub fn bits_per_symbol(self) -> usize {
        match self {
            Modulation::Bpsk => 1,
            Modulation::Qpsk => 2,
            Modulation::Psk8 => 3,
        }
    }

    /// Noise standard deviation per real dimension at `Eb/N0` (dB) for a
    /// code of (true) rate `rate` under this modulation's normalization.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `(0, 1]`.
    pub fn noise_sigma(self, ebn0_db: f64, rate: f64) -> f64 {
        assert!(rate > 0.0 && rate <= 1.0, "rate must be in (0,1], got {rate}");
        let ebn0 = db_to_linear(ebn0_db);
        match self {
            // Unit amplitude per dimension: energy 1 per coded bit.
            Modulation::Bpsk | Modulation::Qpsk => (1.0 / (2.0 * rate * ebn0)).sqrt(),
            // Unit-energy symbols carrying 3 coded bits.
            Modulation::Psk8 => (1.0 / (6.0 * rate * ebn0)).sqrt(),
        }
    }

    /// Maps a codeword to real-dimension samples.
    ///
    /// BPSK/QPSK yield one `±1` sample per bit; 8PSK yields an (I, Q) pair
    /// per 3 bits on the unit circle.
    ///
    /// # Panics
    ///
    /// For 8PSK, panics unless the bit count is divisible by 3.
    pub fn modulate(self, bits: &BitVec) -> Vec<f64> {
        match self {
            Modulation::Bpsk | Modulation::Qpsk => {
                bits.iter().map(|b| if b { -1.0 } else { 1.0 }).collect()
            }
            Modulation::Psk8 => {
                assert_eq!(bits.len() % 3, 0, "8PSK needs a multiple of 3 bits");
                let mut out = Vec::with_capacity(bits.len() / 3 * 2);
                for s in 0..bits.len() / 3 {
                    let label = (u8::from(bits.get(3 * s)) << 2)
                        | (u8::from(bits.get(3 * s + 1)) << 1)
                        | u8::from(bits.get(3 * s + 2));
                    let (i, q) = Self::psk8_point(label);
                    out.push(i);
                    out.push(q);
                }
                out
            }
        }
    }

    /// Constellation point of a 3-bit Gray label.
    fn psk8_point(label: u8) -> (f64, f64) {
        let k = GRAY8.iter().position(|&g| g == label).expect("3-bit label") as f64;
        let phase = (2.0 * k + 1.0) * std::f64::consts::PI / 8.0;
        (phase.cos(), phase.sin())
    }

    /// Demaps noisy samples into channel LLRs (positive favours bit 0).
    ///
    /// BPSK/QPSK use the exact per-dimension LLR `2y/σ²`; 8PSK uses the
    /// max-log approximation over the eight candidate symbols.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is not positive, or (8PSK) on an odd sample count.
    pub fn demap(self, samples: &[f64], sigma: f64) -> Vec<f64> {
        assert!(sigma > 0.0, "sigma must be positive, got {sigma}");
        match self {
            Modulation::Bpsk | Modulation::Qpsk => {
                samples.iter().map(|&y| bpsk_llr(y, 1.0, sigma)).collect()
            }
            Modulation::Psk8 => {
                assert_eq!(samples.len() % 2, 0, "8PSK samples come in (I, Q) pairs");
                let inv_2s2 = 1.0 / (2.0 * sigma * sigma);
                let mut out = Vec::with_capacity(samples.len() / 2 * 3);
                for pair in samples.chunks_exact(2) {
                    let (yi, yq) = (pair[0], pair[1]);
                    // Metric per candidate label: -|y - s|^2 / (2 sigma^2).
                    let mut metric = [0.0f64; 8];
                    for label in 0..8u8 {
                        let (si, sq) = Self::psk8_point(label);
                        let d2 = (yi - si) * (yi - si) + (yq - sq) * (yq - sq);
                        metric[label as usize] = -d2 * inv_2s2;
                    }
                    for bit in 0..3 {
                        let mask = 1 << (2 - bit);
                        let best = |want_one: bool| -> f64 {
                            (0..8u8)
                                .filter(|&l| ((l & mask) != 0) == want_one)
                                .map(|l| metric[l as usize])
                                .fold(f64::NEG_INFINITY, f64::max)
                        };
                        out.push(best(false) - best(true));
                    }
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_convention_zero_is_plus_one() {
        let bits = BitVec::from_bools([false, true, true, false]);
        let s = Modulation::Bpsk.modulate(&bits);
        assert_eq!(s, vec![1.0, -1.0, -1.0, 1.0]);
    }

    #[test]
    fn demap_recovers_hard_decisions_noiselessly() {
        let bits = BitVec::from_bools([false, true, false, true, true, false]);
        for modem in [Modulation::Bpsk, Modulation::Qpsk, Modulation::Psk8] {
            let s = modem.modulate(&bits);
            let llrs = modem.demap(&s, 0.3);
            assert_eq!(llrs.len(), bits.len(), "{modem:?}");
            for (i, &l) in llrs.iter().enumerate() {
                assert_eq!(l < 0.0, bits.get(i), "{modem:?} bit {i}");
            }
        }
    }

    #[test]
    fn llr_magnitude_scales_with_snr() {
        let bits = BitVec::from_bools([false]);
        let s = Modulation::Bpsk.modulate(&bits);
        let strong = Modulation::Bpsk.demap(&s, 0.5)[0];
        let weak = Modulation::Bpsk.demap(&s, 1.5)[0];
        assert!(strong > weak);
    }

    #[test]
    fn bits_per_symbol() {
        assert_eq!(Modulation::Bpsk.bits_per_symbol(), 1);
        assert_eq!(Modulation::Qpsk.bits_per_symbol(), 2);
        assert_eq!(Modulation::Psk8.bits_per_symbol(), 3);
    }

    #[test]
    fn psk8_symbols_have_unit_energy() {
        for label in 0..8u8 {
            let (i, q) = Modulation::psk8_point(label);
            assert!((i * i + q * q - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn psk8_gray_neighbours_differ_in_one_bit() {
        for k in 0..8 {
            let a = GRAY8[k];
            let b = GRAY8[(k + 1) % 8];
            assert_eq!((a ^ b).count_ones(), 1, "{a:03b} vs {b:03b}");
        }
    }

    #[test]
    fn psk8_mapping_is_a_bijection() {
        let mut points: Vec<(i64, i64)> = (0..8u8)
            .map(|l| {
                let (i, q) = Modulation::psk8_point(l);
                ((i * 1e9) as i64, (q * 1e9) as i64)
            })
            .collect();
        points.sort_unstable();
        points.dedup();
        assert_eq!(points.len(), 8);
    }

    #[test]
    fn noise_sigma_orders_by_spectral_efficiency() {
        // At the same Eb/N0 and rate, denser modulations tolerate less
        // noise per dimension under these normalizations.
        let bpsk = Modulation::Bpsk.noise_sigma(2.0, 0.5);
        let psk8 = Modulation::Psk8.noise_sigma(2.0, 0.5);
        assert!(psk8 < bpsk);
    }

    #[test]
    #[should_panic(expected = "multiple of 3")]
    fn psk8_rejects_ragged_blocks() {
        let bits = BitVec::from_bools([false, true]);
        let _ = Modulation::Psk8.modulate(&bits);
    }
}
