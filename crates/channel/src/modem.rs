//! Bit-to-symbol mapping and LLR demapping.
//!
//! DVB-S2 transmits LDPC codewords over QPSK, 8PSK, 16APSK or 32APSK. For
//! decoder evaluation the paper's experiments reduce to the per-dimension
//! AWGN behaviour, so BPSK and Gray QPSK place one coded bit of amplitude 1
//! on each real dimension (bit 0 → `+1`, bit 1 → `-1`, matching
//! [`crate::bpsk_llr`]). Gray-mapped 8PSK with max-log demapping is
//! included as the standard's next modulation step (used together with the
//! [`crate::BlockInterleaver`]).

use crate::apsk::Constellation;
use crate::llr::{bpsk_llr, db_to_linear};
use dvbs2_ldpc::BitVec;

/// Gray ordering of 3-bit labels around the 8PSK circle.
const GRAY8: [u8; 8] = [0b000, 0b001, 0b011, 0b010, 0b110, 0b111, 0b101, 0b100];

/// Ring ratio of the [`Modulation::Apsk16`] constellation (the standard's
/// value for rate 2/3, the ratio the workspace pins its 16APSK MODCODs to).
pub const APSK16_GAMMA: f64 = 3.15;

/// Ring ratios of the [`Modulation::Apsk32`] constellation (the standard's
/// values for rate 3/4).
pub const APSK32_GAMMA: (f64, f64) = (2.53, 4.30);

/// Supported modulations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Modulation {
    /// One bit per real sample.
    #[default]
    Bpsk,
    /// Gray-mapped QPSK: even bits on I, odd bits on Q; equivalent to two
    /// independent BPSK channels.
    Qpsk,
    /// Gray-mapped 8PSK (unit-radius circle), max-log demapping.
    Psk8,
    /// DVB-S2 16APSK (4+12 rings, ratio [`APSK16_GAMMA`]), max-log
    /// demapping via [`Constellation::apsk16`].
    Apsk16,
    /// DVB-S2 32APSK (4+12+16 rings, ratios [`APSK32_GAMMA`]), max-log
    /// demapping via [`Constellation::apsk32`].
    Apsk32,
}

impl Modulation {
    /// Coded bits per complex symbol.
    pub fn bits_per_symbol(self) -> usize {
        match self {
            Modulation::Bpsk => 1,
            Modulation::Qpsk => 2,
            Modulation::Psk8 => 3,
            Modulation::Apsk16 => 4,
            Modulation::Apsk32 => 5,
        }
    }

    /// The APSK constellation backing this modulation, if it is one of the
    /// ring modulations (PSK paths have dedicated closed-form demappers).
    fn constellation(self) -> Option<Constellation> {
        match self {
            Modulation::Apsk16 => Some(Constellation::apsk16(APSK16_GAMMA)),
            Modulation::Apsk32 => Some(Constellation::apsk32(APSK32_GAMMA.0, APSK32_GAMMA.1)),
            _ => None,
        }
    }

    /// Noise standard deviation per real dimension at `Eb/N0` (dB) for a
    /// code of (true) rate `rate` under this modulation's normalization.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `(0, 1]`.
    pub fn noise_sigma(self, ebn0_db: f64, rate: f64) -> f64 {
        assert!(rate > 0.0 && rate <= 1.0, "rate must be in (0,1], got {rate}");
        let ebn0 = db_to_linear(ebn0_db);
        match self {
            // Unit amplitude per dimension: energy 1 per coded bit.
            Modulation::Bpsk | Modulation::Qpsk => (1.0 / (2.0 * rate * ebn0)).sqrt(),
            // Unit-energy symbols carrying `bits_per_symbol` coded bits.
            Modulation::Psk8 | Modulation::Apsk16 | Modulation::Apsk32 => {
                (1.0 / (2.0 * self.bits_per_symbol() as f64 * rate * ebn0)).sqrt()
            }
        }
    }

    /// Maps a codeword to real-dimension samples.
    ///
    /// BPSK/QPSK yield one `±1` sample per bit; the symbol modulations
    /// yield an (I, Q) pair per `bits_per_symbol` bits.
    ///
    /// # Panics
    ///
    /// For symbol modulations, panics unless the bit count is divisible by
    /// `bits_per_symbol`.
    pub fn modulate(self, bits: &BitVec) -> Vec<f64> {
        if let Some(c) = self.constellation() {
            return c.modulate(bits);
        }
        match self {
            Modulation::Bpsk | Modulation::Qpsk => {
                bits.iter().map(|b| if b { -1.0 } else { 1.0 }).collect()
            }
            Modulation::Psk8 => {
                assert_eq!(bits.len() % 3, 0, "8PSK needs a multiple of 3 bits");
                let mut out = Vec::with_capacity(bits.len() / 3 * 2);
                for s in 0..bits.len() / 3 {
                    let label = (u8::from(bits.get(3 * s)) << 2)
                        | (u8::from(bits.get(3 * s + 1)) << 1)
                        | u8::from(bits.get(3 * s + 2));
                    let (i, q) = Self::psk8_point(label);
                    out.push(i);
                    out.push(q);
                }
                out
            }
            Modulation::Apsk16 | Modulation::Apsk32 => unreachable!("handled via constellation"),
        }
    }

    /// Constellation point of a 3-bit Gray label.
    fn psk8_point(label: u8) -> (f64, f64) {
        let k = GRAY8.iter().position(|&g| g == label).expect("3-bit label") as f64;
        let phase = (2.0 * k + 1.0) * std::f64::consts::PI / 8.0;
        (phase.cos(), phase.sin())
    }

    /// Demaps noisy samples into channel LLRs (positive favours bit 0).
    ///
    /// BPSK/QPSK use the exact per-dimension LLR `2y/σ²`; the symbol
    /// modulations use the max-log approximation over their candidate
    /// symbol sets.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is not positive, or (symbol modulations) on an odd
    /// sample count.
    pub fn demap(self, samples: &[f64], sigma: f64) -> Vec<f64> {
        assert!(sigma > 0.0, "sigma must be positive, got {sigma}");
        if let Some(c) = self.constellation() {
            return c.demap(samples, sigma);
        }
        match self {
            Modulation::Bpsk | Modulation::Qpsk => {
                samples.iter().map(|&y| bpsk_llr(y, 1.0, sigma)).collect()
            }
            Modulation::Psk8 => {
                assert_eq!(samples.len() % 2, 0, "8PSK samples come in (I, Q) pairs");
                let inv_2s2 = 1.0 / (2.0 * sigma * sigma);
                let mut out = Vec::with_capacity(samples.len() / 2 * 3);
                for pair in samples.chunks_exact(2) {
                    let (yi, yq) = (pair[0], pair[1]);
                    // Metric per candidate label: -|y - s|^2 / (2 sigma^2).
                    let mut metric = [0.0f64; 8];
                    for label in 0..8u8 {
                        let (si, sq) = Self::psk8_point(label);
                        let d2 = (yi - si) * (yi - si) + (yq - sq) * (yq - sq);
                        metric[label as usize] = -d2 * inv_2s2;
                    }
                    for bit in 0..3 {
                        let mask = 1 << (2 - bit);
                        let best = |want_one: bool| -> f64 {
                            (0..8u8)
                                .filter(|&l| ((l & mask) != 0) == want_one)
                                .map(|l| metric[l as usize])
                                .fold(f64::NEG_INFINITY, f64::max)
                        };
                        out.push(best(false) - best(true));
                    }
                }
                out
            }
            Modulation::Apsk16 | Modulation::Apsk32 => unreachable!("handled via constellation"),
        }
    }

    /// The DVB-S2 block bit interleaver this modulation's frames pass
    /// through before mapping (`None` for BPSK/QPSK, which the standard
    /// maps directly): 3 columns for 8PSK, 4 for 16APSK, 5 for 32APSK.
    pub fn interleaver(self, frame_len: usize) -> Option<crate::BlockInterleaver> {
        match self {
            Modulation::Bpsk | Modulation::Qpsk => None,
            _ => Some(crate::BlockInterleaver::new(frame_len, self.bits_per_symbol())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_convention_zero_is_plus_one() {
        let bits = BitVec::from_bools([false, true, true, false]);
        let s = Modulation::Bpsk.modulate(&bits);
        assert_eq!(s, vec![1.0, -1.0, -1.0, 1.0]);
    }

    #[test]
    fn demap_recovers_hard_decisions_noiselessly() {
        let bits = BitVec::from_bools([false, true, false, true, true, false]);
        for modem in [Modulation::Bpsk, Modulation::Qpsk, Modulation::Psk8] {
            let s = modem.modulate(&bits);
            let llrs = modem.demap(&s, 0.3);
            assert_eq!(llrs.len(), bits.len(), "{modem:?}");
            for (i, &l) in llrs.iter().enumerate() {
                assert_eq!(l < 0.0, bits.get(i), "{modem:?} bit {i}");
            }
        }
    }

    #[test]
    fn llr_magnitude_scales_with_snr() {
        let bits = BitVec::from_bools([false]);
        let s = Modulation::Bpsk.modulate(&bits);
        let strong = Modulation::Bpsk.demap(&s, 0.5)[0];
        let weak = Modulation::Bpsk.demap(&s, 1.5)[0];
        assert!(strong > weak);
    }

    #[test]
    fn bits_per_symbol() {
        assert_eq!(Modulation::Bpsk.bits_per_symbol(), 1);
        assert_eq!(Modulation::Qpsk.bits_per_symbol(), 2);
        assert_eq!(Modulation::Psk8.bits_per_symbol(), 3);
        assert_eq!(Modulation::Apsk16.bits_per_symbol(), 4);
        assert_eq!(Modulation::Apsk32.bits_per_symbol(), 5);
    }

    #[test]
    fn apsk_demap_recovers_hard_decisions_noiselessly() {
        // 20 bits = lcm(4, 5): a whole number of symbols for both orders.
        let bits: BitVec = (0..20).map(|i| (i * 7) % 3 == 0).collect();
        for modem in [Modulation::Apsk16, Modulation::Apsk32] {
            let s = modem.modulate(&bits);
            assert_eq!(s.len(), bits.len() / modem.bits_per_symbol() * 2, "{modem:?}");
            let llrs = modem.demap(&s, 0.08);
            assert_eq!(llrs.len(), bits.len(), "{modem:?}");
            for (i, &l) in llrs.iter().enumerate() {
                assert_eq!(l < 0.0, bits.get(i), "{modem:?} bit {i}");
            }
        }
    }

    #[test]
    fn apsk_variants_match_their_constellations() {
        // The enum paths are thin delegates: bit-identical to calling the
        // underlying constellation directly.
        let bits: BitVec = (0..40).map(|i| i % 3 == 1).collect();
        let direct16 = Constellation::apsk16(APSK16_GAMMA);
        let direct32 = Constellation::apsk32(APSK32_GAMMA.0, APSK32_GAMMA.1);
        for (modem, c) in [(Modulation::Apsk16, direct16), (Modulation::Apsk32, direct32)] {
            let samples = modem.modulate(&bits);
            assert_eq!(samples, c.modulate(&bits));
            assert_eq!(modem.demap(&samples, 0.3), c.demap(&samples, 0.3));
            assert_eq!(modem.noise_sigma(2.0, 0.5), c.noise_sigma(2.0, 0.5));
        }
    }

    #[test]
    fn interleaver_columns_follow_the_standard() {
        assert_eq!(Modulation::Bpsk.interleaver(16_200), None);
        assert_eq!(Modulation::Qpsk.interleaver(16_200), None);
        for (modem, columns) in
            [(Modulation::Psk8, 3), (Modulation::Apsk16, 4), (Modulation::Apsk32, 5)]
        {
            for frame_len in [16_200usize, 64_800] {
                let il = modem.interleaver(frame_len).expect("symbol modulations interleave");
                assert_eq!(il.len(), frame_len);
                // Consecutive output bits (one symbol) come from distant
                // input positions: column stride = rows.
                let rows = frame_len / columns;
                let first_row: Vec<usize> = (0..columns)
                    .map(|b| (0..frame_len).find(|&i| il.output_index(i) == b).unwrap())
                    .collect();
                for pair in first_row.windows(2) {
                    assert_eq!(pair[1] - pair[0], rows, "{modem:?} {frame_len}");
                }
            }
        }
    }

    #[test]
    fn psk8_symbols_have_unit_energy() {
        for label in 0..8u8 {
            let (i, q) = Modulation::psk8_point(label);
            assert!((i * i + q * q - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn psk8_gray_neighbours_differ_in_one_bit() {
        for k in 0..8 {
            let a = GRAY8[k];
            let b = GRAY8[(k + 1) % 8];
            assert_eq!((a ^ b).count_ones(), 1, "{a:03b} vs {b:03b}");
        }
    }

    #[test]
    fn psk8_mapping_is_a_bijection() {
        let mut points: Vec<(i64, i64)> = (0..8u8)
            .map(|l| {
                let (i, q) = Modulation::psk8_point(l);
                ((i * 1e9) as i64, (q * 1e9) as i64)
            })
            .collect();
        points.sort_unstable();
        points.dedup();
        assert_eq!(points.len(), 8);
    }

    #[test]
    fn noise_sigma_orders_by_spectral_efficiency() {
        // At the same Eb/N0 and rate, denser modulations tolerate less
        // noise per dimension under these normalizations.
        let bpsk = Modulation::Bpsk.noise_sigma(2.0, 0.5);
        let psk8 = Modulation::Psk8.noise_sigma(2.0, 0.5);
        assert!(psk8 < bpsk);
    }

    #[test]
    #[should_panic(expected = "multiple of 3")]
    fn psk8_rejects_ragged_blocks() {
        let bits = BitVec::from_bools([false, true]);
        let _ = Modulation::Psk8.modulate(&bits);
    }
}
