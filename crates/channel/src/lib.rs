//! Communications substrate for the DVB-S2 LDPC decoder reproduction:
//! modulation, AWGN, LLR conventions, channel capacity, and a multi-threaded
//! Monte-Carlo BER/FER harness.
//!
//! # Example: one noisy transmission
//!
//! ```
//! use dvbs2_channel::{AwgnChannel, Modulation, noise_sigma};
//! use dvbs2_ldpc::BitVec;
//! use rand::{SeedableRng, rngs::SmallRng};
//!
//! let bits = BitVec::from_bools([false, true, true, false]);
//! let mut samples = Modulation::Bpsk.modulate(&bits);
//! let sigma = noise_sigma(1.0, 0.5);
//! let mut rng = SmallRng::seed_from_u64(1);
//! AwgnChannel::new(sigma).corrupt(&mut rng, &mut samples);
//! let llrs = Modulation::Bpsk.demap(&samples, sigma);
//! assert_eq!(llrs.len(), 4);
//! ```

#![warn(missing_docs)]

mod apsk;
mod awgn;
mod capacity;
mod interleave;
mod llr;
mod modem;
mod sim;
mod stream;

pub use apsk::Constellation;
pub use awgn::{AwgnChannel, GaussianSource};
pub use capacity::{
    biawgn_capacity, shannon_limit_biawgn_db, shannon_limit_unconstrained_db,
    ultimate_shannon_limit_db,
};
pub use interleave::BlockInterleaver;
pub use llr::{bpsk_llr, db_to_linear, ebn0_to_esn0_db, linear_to_db, noise_sigma};
pub use modem::{Modulation, APSK16_GAMMA, APSK32_GAMMA};
pub use sim::{
    default_threads, mix_seed, monte_carlo_batches, monte_carlo_frames, BerEstimate, FrameOutcome,
    StopRule,
};
pub use stream::{
    FrameStream, FrameTag, LlrFrame, LlrSource, MultiStreamSource, StreamKey, TaggedLlrFrame,
};
