//! Log-likelihood-ratio conventions and SNR conversions.
//!
//! Throughout this workspace an LLR is `ln(P(bit = 0) / P(bit = 1))`:
//! positive values favour bit 0 (BPSK symbol `+1`), negative values favour
//! bit 1 (symbol `-1`). For a BPSK symbol received as `y = x + n`,
//! `n ~ N(0, sigma^2)`, the channel LLR is `2 y / sigma^2`.

/// Converts decibels to a linear power ratio.
///
/// ```
/// use dvbs2_channel::db_to_linear;
/// assert!((db_to_linear(3.0) - 1.9953).abs() < 1e-4);
/// ```
pub fn db_to_linear(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Converts a linear power ratio to decibels.
///
/// # Panics
///
/// Panics if `linear <= 0`.
pub fn linear_to_db(linear: f64) -> f64 {
    assert!(linear > 0.0, "power ratio must be positive, got {linear}");
    10.0 * linear.log10()
}

/// Converts `Eb/N0` (per information bit) to `Es/N0` (per channel symbol)
/// for a code of rate `rate` and a modulation carrying `bits_per_symbol`.
///
/// `Es/N0 = Eb/N0 * rate * bits_per_symbol`.
pub fn ebn0_to_esn0_db(ebn0_db: f64, rate: f64, bits_per_symbol: usize) -> f64 {
    ebn0_db + linear_to_db(rate * bits_per_symbol as f64)
}

/// Noise standard deviation per real dimension at a given `Eb/N0` in dB.
///
/// The modems in this workspace put one coded bit of amplitude 1 on each
/// real dimension (BPSK: `±1`; Gray QPSK: `±1` on I and Q independently).
/// With `N0 = 2 sigma^2`, the energy per information bit is `1/rate`, so
/// `sigma^2 = 1 / (2 * rate * Eb/N0)` for every such modulation.
///
/// # Panics
///
/// Panics if `rate` is not in `(0, 1]`.
pub fn noise_sigma(ebn0_db: f64, rate: f64) -> f64 {
    assert!(rate > 0.0 && rate <= 1.0, "rate must be in (0,1], got {rate}");
    let ebn0 = db_to_linear(ebn0_db);
    (1.0 / (2.0 * rate * ebn0)).sqrt()
}

/// Channel LLR of a received BPSK sample `y` (amplitude `a`, noise `sigma`).
#[inline]
pub fn bpsk_llr(y: f64, amplitude: f64, sigma: f64) -> f64 {
    2.0 * amplitude * y / (sigma * sigma)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_round_trip() {
        for db in [-10.0, 0.0, 0.5, 3.0, 20.0] {
            assert!((linear_to_db(db_to_linear(db)) - db).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_db_is_unity() {
        assert!((db_to_linear(0.0) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn esn0_accounts_for_rate_and_order() {
        // R = 1/2, QPSK: Es/N0 = Eb/N0 + 10log10(1) = Eb/N0.
        let esn0 = ebn0_to_esn0_db(2.0, 0.5, 2);
        assert!((esn0 - 2.0).abs() < 1e-12);
        // R = 1/2, BPSK: Es/N0 = Eb/N0 - 3.01 dB.
        let esn0 = ebn0_to_esn0_db(2.0, 0.5, 1);
        assert!((esn0 - (2.0 - 3.0103)).abs() < 1e-3);
    }

    #[test]
    fn sigma_decreases_with_snr() {
        let lo = noise_sigma(0.0, 0.5);
        let hi = noise_sigma(6.0, 0.5);
        assert!(hi < lo);
        // At Eb/N0 = 0 dB, R = 1/2: sigma^2 = 1/(2*0.5*1) = 1.
        assert!((lo - 1.0).abs() < 1e-12);
    }

    #[test]
    fn llr_sign_follows_sample_sign() {
        assert!(bpsk_llr(0.7, 1.0, 0.8) > 0.0);
        assert!(bpsk_llr(-0.7, 1.0, 0.8) < 0.0);
        assert_eq!(bpsk_llr(0.0, 1.0, 0.8), 0.0);
    }

    #[test]
    #[should_panic(expected = "rate must be in (0,1]")]
    fn sigma_rejects_bad_rate() {
        let _ = noise_sigma(1.0, 1.5);
    }
}
