//! The complete DVB-S2 FEC chain: outer BCH + inner LDPC.
//!
//! The paper's IP core decodes the inner LDPC code; in the standard it sits
//! between a BCH outer decoder and the demapper. [`FecChain`] wires the
//! whole path: `K_bch` data bits → BCH encode → LDPC encode → channel →
//! LDPC decode → BCH correct → data. The outer code corrects up to `t`
//! residual errors per frame, which is what removes the LDPC error floor
//! at quasi-error-free operating points.

use crate::{DecoderKind, SystemConfig};
use dvbs2_bch::{BchCode, BchDecoder, BchEncoder};
use dvbs2_decoder::{
    Decoder, FloodingDecoder, LayeredDecoder, QuantizedZigzagDecoder, ZigzagDecoder,
};
use dvbs2_ldpc::{BitVec, CodeError, DvbS2Code, Encoder, TannerGraph};
use std::sync::Arc;

/// Result of decoding one FEC frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FecDecodeResult {
    /// The recovered `K_bch` data bits (best effort when `bch_corrected`
    /// is `None`).
    pub data: BitVec,
    /// Whether the LDPC inner decoder converged to a codeword.
    pub ldpc_converged: bool,
    /// LDPC iterations spent.
    pub ldpc_iterations: usize,
    /// Errors corrected by the outer BCH decoder, or `None` if the residual
    /// pattern exceeded its capability `t`.
    pub bch_corrected: Option<usize>,
}

/// The concatenated BCH + LDPC forward-error-correction chain.
///
/// For Monte-Carlo error-rate runs over this chain, drive it from
/// [`dvbs2_channel::monte_carlo_frames`] (or
/// [`crate::Dvbs2System::simulate_ber`], which wraps it): the chunked API is
/// bit-reproducible for a given seed at any thread count.
pub struct FecChain {
    config: SystemConfig,
    ldpc: DvbS2Code,
    graph: Arc<TannerGraph>,
    ldpc_encoder: Encoder,
    bch_encoder: BchEncoder,
    bch_decoder: BchDecoder,
    inner: Box<dyn Decoder + Send>,
}

impl std::fmt::Debug for FecChain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FecChain")
            .field("rate", &self.config.rate)
            .field("frame", &self.config.frame)
            .field("inner", &self.inner.name())
            .finish()
    }
}

impl FecChain {
    /// Builds the chain for a system configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError`] for undefined rate/frame combinations.
    pub fn new(config: SystemConfig) -> Result<Self, CodeError> {
        let ldpc = DvbS2Code::new(config.rate, config.frame)?;
        let graph = Arc::new(ldpc.tanner_graph());
        let ldpc_encoder = ldpc.encoder()?;
        let bch = BchCode::new(config.rate, config.frame)?;
        debug_assert_eq!(bch.params().n, ldpc.params().k);
        let inner: Box<dyn Decoder + Send> = match config.decoder {
            DecoderKind::Flooding => {
                Box::new(FloodingDecoder::new(Arc::clone(&graph), config.decoder_config))
            }
            DecoderKind::Zigzag => {
                Box::new(ZigzagDecoder::new(Arc::clone(&graph), config.decoder_config))
            }
            DecoderKind::Layered => {
                Box::new(LayeredDecoder::new(Arc::clone(&graph), config.decoder_config))
            }
            DecoderKind::Quantized(q) => {
                Box::new(QuantizedZigzagDecoder::new(Arc::clone(&graph), q, config.decoder_config))
            }
            DecoderKind::BitFlipping => Box::new(dvbs2_decoder::BitFlippingDecoder::new(
                Arc::clone(&graph),
                config.decoder_config,
            )),
        };
        Ok(FecChain {
            bch_encoder: BchEncoder::new(bch.clone()),
            bch_decoder: BchDecoder::new(bch),
            config,
            ldpc,
            graph,
            ldpc_encoder,
            inner,
        })
    }

    /// Number of data bits per FEC frame (`K_bch`).
    pub fn data_len(&self) -> usize {
        self.bch_encoder.code().params().k
    }

    /// Number of channel bits per FEC frame (`N_ldpc`).
    pub fn frame_len(&self) -> usize {
        self.ldpc.params().n
    }

    /// The inner LDPC code.
    pub fn ldpc(&self) -> &DvbS2Code {
        &self.ldpc
    }

    /// The shared Tanner graph of the inner code.
    pub fn graph(&self) -> &Arc<TannerGraph> {
        &self.graph
    }

    /// Overall information rate `K_bch / N_ldpc`.
    pub fn rate(&self) -> f64 {
        self.data_len() as f64 / self.frame_len() as f64
    }

    /// Encodes `K_bch` data bits into an `N_ldpc`-bit channel frame.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::MessageLength`] on a wrong-length input.
    pub fn encode(&self, data: &BitVec) -> Result<BitVec, CodeError> {
        let bch_word = self.bch_encoder.encode(data)?;
        self.ldpc_encoder.encode(&bch_word)
    }

    /// Decodes one frame of channel LLRs through both codes.
    ///
    /// # Panics
    ///
    /// Panics if `llrs.len() != N_ldpc`.
    pub fn decode(&mut self, llrs: &[f64]) -> FecDecodeResult {
        let inner = self.inner.decode(llrs);
        let k_ldpc = self.ldpc.params().k;
        let received: BitVec = (0..k_ldpc).map(|i| inner.bits.get(i)).collect();
        match self.bch_decoder.decode(&received) {
            Ok(outcome) => {
                let data = (0..self.data_len()).map(|i| outcome.codeword.get(i)).collect();
                FecDecodeResult {
                    data,
                    ldpc_converged: inner.converged,
                    ldpc_iterations: inner.iterations,
                    bch_corrected: Some(outcome.corrected),
                }
            }
            Err(_) => FecDecodeResult {
                data: (0..self.data_len()).map(|i| received.get(i)).collect(),
                ldpc_converged: inner.converged,
                ldpc_iterations: inner.iterations,
                bch_corrected: None,
            },
        }
    }

    /// Draws a random data block.
    pub fn random_data<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> BitVec {
        self.bch_encoder.random_message(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dvbs2System;
    use dvbs2_channel::{noise_sigma, AwgnChannel, Modulation};
    use dvbs2_ldpc::{CodeRate, FrameSize};
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    fn chain() -> FecChain {
        FecChain::new(SystemConfig {
            rate: CodeRate::R1_2,
            frame: FrameSize::Short,
            ..SystemConfig::default()
        })
        .unwrap()
    }

    fn transmit(chain: &FecChain, rng: &mut impl Rng, ebn0_db: f64) -> (BitVec, Vec<f64>) {
        let data = chain.random_data(rng);
        let frame = chain.encode(&data).unwrap();
        let mut samples = Modulation::Bpsk.modulate(&frame);
        let sigma = noise_sigma(ebn0_db, chain.rate());
        AwgnChannel::new(sigma).corrupt(rng, &mut samples);
        (data, Modulation::Bpsk.demap(&samples, sigma))
    }

    #[test]
    fn clean_chain_round_trips() {
        let mut c = chain();
        let mut rng = SmallRng::seed_from_u64(1);
        let (data, llrs) = transmit(&c, &mut rng, 4.0);
        let out = c.decode(&llrs);
        assert_eq!(out.bch_corrected, Some(0));
        assert!(out.ldpc_converged);
        assert_eq!(out.data, data);
    }

    #[test]
    fn bch_cleans_residual_ldpc_errors() {
        // Force residual errors by capping the LDPC decoder very low, then
        // let the outer code finish the job when few bits remain wrong.
        let mut c = FecChain::new(SystemConfig {
            rate: CodeRate::R1_2,
            frame: FrameSize::Short,
            decoder_config: dvbs2_decoder::DecoderConfig::default().with_max_iterations(30),
            ..SystemConfig::default()
        })
        .unwrap();
        let mut rng = SmallRng::seed_from_u64(22);
        let mut cleaned = 0usize;
        for _ in 0..20 {
            let (data, llrs) = transmit(&c, &mut rng, 1.05);
            let out = c.decode(&llrs);
            if out.bch_corrected.unwrap_or(0) > 0 && out.data == data {
                cleaned += 1;
            }
        }
        // Near threshold at least some frames must be rescued by BCH.
        // (Statistically stable for the fixed seed.)
        assert!(cleaned > 0, "expected BCH to clean at least one frame");
    }

    #[test]
    fn rates_compose() {
        let c = chain();
        let expected = c.data_len() as f64 / c.frame_len() as f64;
        assert!((c.rate() - expected).abs() < 1e-12);
        assert_eq!(c.frame_len(), 16_200);
        assert_eq!(c.data_len(), 7_032);
    }

    #[test]
    fn bbframe_travels_the_whole_stack() {
        // User bits -> BBFRAME -> BCH -> LDPC -> channel -> LDPC -> BCH ->
        // BBFRAME -> user bits: the complete DVB-S2 transmit/receive path.
        use crate::framing::{assemble_bbframe, extract_bbframe, BbHeader};
        let mut c = chain();
        let payload: BitVec = (0..2000).map(|i| i % 11 == 0).collect();
        let header = BbHeader { matype: 0xC000, upl: 1504, sync: 0x47, ..BbHeader::default() };
        let data = assemble_bbframe(header, &payload, c.data_len()).unwrap();
        let frame = c.encode(&data).unwrap();
        let mut samples = Modulation::Bpsk.modulate(&frame);
        let sigma = noise_sigma(2.5, c.rate());
        let mut rng = SmallRng::seed_from_u64(8);
        AwgnChannel::new(sigma).corrupt(&mut rng, &mut samples);
        let out = c.decode(&Modulation::Bpsk.demap(&samples, sigma));
        assert_eq!(out.bch_corrected, Some(0));
        let (recovered_header, recovered) = extract_bbframe(&out.data).unwrap();
        assert_eq!(recovered_header.sync, 0x47);
        assert_eq!(recovered, payload);
    }

    #[test]
    fn data_and_system_frames_are_compatible() {
        // The FEC chain's LDPC layer matches Dvbs2System's code.
        let c = chain();
        let sys = Dvbs2System::new(SystemConfig {
            rate: CodeRate::R1_2,
            frame: FrameSize::Short,
            ..SystemConfig::default()
        })
        .unwrap();
        assert_eq!(sys.params().k, c.ldpc().params().k);
    }
}
