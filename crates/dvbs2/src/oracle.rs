//! Differential decode oracle: cross-decoder equivalence fuzzing.
//!
//! The paper's evaluation rests on one invariant — the cycle-accurate core
//! is bit-identical to the algorithmic decoders — and PR 1 added a second
//! (f32) numeric path whose agreement was sampled, not enforced. This module
//! turns the invariant into a standing oracle: a seeded case generator
//! (rate × frame size × Eb/N0 × quantizer × arithmetic) runs one frame
//! through the full decoder matrix and checks explicit pairwise contracts.
//!
//! # Equivalence classes
//!
//! | class | members | contract |
//! |---|---|---|
//! | timed/untimed | [`HardwareDecoder`] ↔ [`GoldenModel`] | full [`DecodeResult`] equality plus per-iteration message-digest equality, bit for bit, converged or not, **with or without an injected [`RamFault`]** (both models carry the same fault) |
//! | boundary-exact | golden ↔ [`QuantizedZigzagDecoder`] in hardware-partitioned mode ([`hw_chain_partition`]) | full [`DecodeResult`] equality — the partition replays the 360 sub-chains and the schedule's per-check input order |
//! | fixed-point | golden ↔ sequential [`QuantizedZigzagDecoder`] (LUT) | agreement on *decoded words* only — the parallel golden model deliberately deviates from the sequential zigzag at the 360 chain boundaries |
//! | float schedules | flooding / zigzag / layered (f64) | all converged members produce the same codeword |
//! | precision | engine f32 ↔ f64 (same schedule/rule) | both-converged ⇒ same codeword |
//! | bit flipping | [`BitFlippingDecoder`] alone | iteration cap; converged ⇒ clean syndrome and syndrome weight not above the channel hard decisions' — *never* word agreement (see `run_case`) |
//! | everyone | every soft decoder | `converged` ⇒ clean syndrome; iterations ≤ cap |
//! | timing | hardware cycle stats | must reproduce the [`simulate_cn_phase`] memory model at the case's fuzzed `p_io` |
//!
//! Converged decoders from *different* classes must also agree on the
//! decoded word: two distinct valid codewords would mean an undetected
//! error, which at DVB-S2 minimum distances does not happen at the
//! operating points the generator draws from.
//!
//! # Reproducing a failure
//!
//! Every violation carries the case's canonical one-line spec
//! ([`CaseSpec`]'s `Display`/`FromStr` round-trip). Feed it back with
//! `cargo run --release -p dvbs2-bench --bin diff_fuzz -- --repro '<spec>'`,
//! or shrink it first with [`shrink_case`].

use crate::{Dvbs2System, SystemConfig};
use dvbs2_channel::{mix_seed, Modulation};
use dvbs2_decoder::{
    syndrome_ok, syndrome_weight, BitFlippingDecoder, ChainPartition, CheckRule, DecodeResult,
    Decoder, DecoderConfig, FloodingDecoder, LayeredDecoder, Precision, QCheckArithmetic,
    QuantizedZigzagDecoder, Quantizer, SimdTier, ZigzagDecoder,
};
use dvbs2_hardware::{
    hw_chain_partition, optimize_schedule, simulate_cn_phase, AccessStats, AnnealOptions,
    Arbitration, CnSchedule, ConnectivityRom, CoreConfig, DecoderFabric, FabricConfig,
    FaultActivation, FaultScenario, FuFault, GoldenModel, HardwareDecoder, HwDecodeOutput,
    MemoryConfig, RamFault, TimedRamFault,
};
use dvbs2_ldpc::{BitVec, CodeRate, DvbS2Code, FrameSize, TannerGraph, PARALLELISM};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::str::FromStr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Check-node arithmetic selector for the quantized decoders under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithmeticKind {
    /// The paper's QBoxplus correction LUT.
    Lut,
    /// Shift-based normalized min-sum with the given shift (`alpha = 1 - 2^-shift`).
    MinSumShift(u32),
}

impl ArithmeticKind {
    fn build(self, quantizer: Quantizer) -> QCheckArithmetic {
        match self {
            ArithmeticKind::Lut => QCheckArithmetic::lut(quantizer),
            ArithmeticKind::MinSumShift(shift) => QCheckArithmetic::min_sum_shift(quantizer, shift),
        }
    }
}

impl fmt::Display for ArithmeticKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArithmeticKind::Lut => write!(f, "lut"),
            ArithmeticKind::MinSumShift(shift) => write!(f, "msshift{shift}"),
        }
    }
}

/// Which check-node processing order the timed decoders run under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ScheduleKind {
    /// Row order as the connectivity ROM lists it.
    #[default]
    Natural,
    /// The annealer's conflict-minimized order (Section 3.2), computed with
    /// a fixed deterministic seed and a bounded move budget so cases stay
    /// reproducible and cheap.
    Annealed,
}

impl fmt::Display for ScheduleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleKind::Natural => write!(f, "natural"),
            ScheduleKind::Annealed => write!(f, "annealed"),
        }
    }
}

/// One generated differential test case: everything needed to reproduce a
/// frame and the decoder matrix bit for bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaseSpec {
    /// Per-case RNG seed (drives message bits and channel noise).
    pub seed: u64,
    /// Code rate.
    pub rate: CodeRate,
    /// Frame size.
    pub frame: FrameSize,
    /// Channel Eb/N0 in dB.
    pub ebn0_db: f64,
    /// Quantizer resolution in bits (5 or 6, the paper's two options).
    pub quantizer_bits: u32,
    /// Arithmetic for the min-sum quantized decoder under test.
    pub arithmetic: ArithmeticKind,
    /// Iteration cap for every decoder in the matrix.
    pub max_iterations: usize,
    /// Syndrome-based early termination for every decoder in the matrix.
    pub early_stop: bool,
    /// Check-node schedule for the timed decoders (hardware and golden).
    pub schedule: ScheduleKind,
    /// Memory subsystem (banks × write ports × FU latency) of the timed
    /// decoders; the cycle contracts are checked against this configuration,
    /// not the paper default.
    pub memory: MemoryConfig,
    /// I/O parallelism of the timed core — fuzzed so the
    /// `io_cycles == ceil(n / p_io)` contract is exercised at more than the
    /// paper's default of 10.
    pub p_io: usize,
    /// Channel modulation. 8PSK routes the frame through the DVB-S2 block
    /// interleaver and the max-log demapper, so interleaved LLR ordering
    /// reaches every decoder.
    pub modulation: Modulation,
    /// Fault scenario injected into *both* the timed core and the golden
    /// model (empty = healthy hardware): up to four concurrent RAM faults,
    /// each permanent, iteration-windowed, or probabilistically active per
    /// commit, plus an optional stuck FU output lane. Word addresses are
    /// reduced modulo the code's RAM size (and FU units modulo 360) at run
    /// time, so a spec stays valid when the shrinker demotes the frame
    /// size.
    pub fault: FaultScenario,
    /// Core count of the multi-core [`DecoderFabric`] cross-check (1 =
    /// single core, fabric contracts skipped). When above 1, the case frame
    /// plus `fabric - 1` derived frames run through a `fabric`-core fabric
    /// with a modeled interconnect, and every frame must stay bit-exact —
    /// results *and* per-iteration digests — against the single
    /// [`HardwareDecoder`], with cycle counts that decompose exactly and
    /// stay monotone-sane against the serial schedule.
    pub fabric: usize,
    /// SIMD dispatch tier forced on the software quantized lane decoder
    /// (`None` = auto-detect, the legacy behaviour). The generator never
    /// draws this dimension — the partition and fault sweeps fan every case
    /// out across *all* available tiers themselves — but a violation found
    /// at a specific tier records it here so the repro string replays the
    /// exact kernel that diverged.
    pub simd: Option<SimdTier>,
}

impl CaseSpec {
    /// The case's quantizer.
    pub fn quantizer(&self) -> Quantizer {
        match self.quantizer_bits {
            5 => Quantizer::paper_5bit(),
            _ => Quantizer::paper_6bit(),
        }
    }

    /// Deterministically generates case `index` of a run keyed by
    /// `master_seed`. The distribution is chosen to exercise both
    /// convergence regimes: Eb/N0 offsets from −0.4 dB (most frames fail)
    /// to +1.6 dB (most frames decode) around a per-rate anchor near the
    /// waterfall. Every eighth case uses a Normal frame at a reduced
    /// iteration cap; the rest are Short frames. Timed-decoder variation:
    /// about a third of Short-frame cases run an annealed check-node
    /// schedule (Normal frames keep the natural order — annealing them
    /// would dominate a run's cost), and memory configurations are drawn
    /// from a small set spanning starved (2 banks, 1 port) to generous
    /// (8 banks) subsystems.
    pub fn generate(master_seed: u64, index: u64) -> CaseSpec {
        let mut s = mix_seed(master_seed, index);
        let mut next = move || {
            // SplitMix64 output chain keyed off the mixed case seed.
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let frame = if index % 8 == 7 { FrameSize::Normal } else { FrameSize::Short };
        let rate = loop {
            let r = CodeRate::ALL[(next() % CodeRate::ALL.len() as u64) as usize];
            // R 9/10 is defined only for Normal frames in the standard.
            if frame == FrameSize::Normal || r != CodeRate::R9_10 {
                break r;
            }
        };
        let offset = [-0.4, 0.0, 0.6, 1.6][(next() % 4) as usize];
        let max_iterations = match frame {
            FrameSize::Short => 4 + (next() % 5) as usize, // 4..=8
            FrameSize::Normal => 2 + (next() % 3) as usize, // 2..=4
        };
        let schedule = if frame == FrameSize::Short && next() % 3 == 0 {
            ScheduleKind::Annealed
        } else {
            ScheduleKind::Natural
        };
        let memory = match next() % 4 {
            0 => MemoryConfig { banks: 2, write_ports: 1, fu_latency: 3 },
            1 => MemoryConfig { banks: 4, write_ports: 2, fu_latency: 8 },
            2 => MemoryConfig { banks: 8, write_ports: 2, fu_latency: 4 },
            _ => MemoryConfig::default(),
        };
        let quantizer_bits = if next() % 4 == 0 { 5 } else { 6 };
        let arithmetic = ArithmeticKind::MinSumShift(1 + (next() % 3) as u32);
        let early_stop = next() % 4 != 0;
        // New dimensions draw strictly after the original ones, so a given
        // (master_seed, index) keeps its pre-PR-4 rate/frame/memory/... .
        let p_io = [4, 7, 16, 10][(next() % 4) as usize];
        // Exactly one draw keeps downstream dimensions aligned with runs
        // recorded before QPSK joined the pool; the APSK arms reuse the
        // values that previously mapped to extra BPSK weight, so the fault
        // draws below still see the same random stream.
        let modulation = match next() % 5 {
            0 => Modulation::Psk8,
            1 => Modulation::Qpsk,
            2 => Modulation::Apsk16,
            3 => Modulation::Apsk32,
            _ => Modulation::Bpsk,
        };
        let mut fault = FaultScenario::none();
        if next() % 4 == 0 {
            let word = (next() % 1024) as usize;
            let primary = if next() % 2 == 0 {
                RamFault::StuckWord { word, value: (next() % 63) as i32 - 31 }
            } else {
                RamFault::FlippedBits { word, mask: 1 + (next() % 31) as i32 }
            };
            // Scenario extensions draw strictly after the original fault
            // draws, so a given (master_seed, index) keeps its pre-PR-7
            // fault word and kind. Half the faulted cases stay permanent;
            // the rest become iteration-windowed or per-commit random
            // upsets.
            let activation = match next() % 4 {
                0 => {
                    let from = (next() % 3) as u32;
                    FaultActivation::Window { from, until: from + 1 + (next() % 4) as u32 }
                }
                1 => FaultActivation::Random {
                    seed: next() as u32,
                    per_mille: 50 + (next() % 451) as u32,
                },
                _ => FaultActivation::Permanent,
            };
            fault.push_ram(TimedRamFault { fault: primary, activation });
            // A third of faulted cases carry a second, independent
            // permanent defect to exercise multi-fault interaction.
            if next() % 3 == 0 {
                let word = (next() % 1024) as usize;
                let second = if next() % 2 == 0 {
                    RamFault::StuckWord { word, value: (next() % 63) as i32 - 31 }
                } else {
                    RamFault::FlippedBits { word, mask: 1 + (next() % 31) as i32 }
                };
                fault.push_ram(TimedRamFault::permanent(second));
            }
        }
        // Independent datapath-defect dimension: one in eight cases runs
        // with a stuck sign or magnitude lane in one functional unit.
        if next() % 8 == 0 {
            let unit = (next() % PARALLELISM as u64) as usize;
            let fu = if next() % 2 == 0 {
                FuFault::StuckSign { unit, negative: next() % 2 == 0 }
            } else {
                FuFault::StuckMag { unit, value: (next() % 32) as i32 }
            };
            fault.set_fu(Some(fu));
        }
        // Fabric dimension, drawn strictly after every earlier dimension
        // (append-only discipline, see the p_io comment above): about a
        // quarter of cases re-run the frame through a multi-core
        // DecoderFabric and cross-check it against the single core. Normal
        // frames cap at two cores — each extra core is a whole extra
        // Normal-frame decode plus its single-core reference.
        let fabric = match next() % 8 {
            0 => 2,
            1 => 4,
            2 => 3,
            _ => 1,
        };
        let fabric = if frame == FrameSize::Normal { fabric.min(2) } else { fabric };
        CaseSpec {
            seed: mix_seed(master_seed ^ 0x0DD5_B2C0_DEC0_DE00, index),
            rate,
            frame,
            // Denser symbol modulations sit further up in Eb/N0: roughly
            // +2 dB for 8PSK, +4.5 dB for 16APSK and +7 dB for 32APSK
            // relative to the BPSK/QPSK anchor at these rates, keeping both
            // convergence regimes populated for every constellation.
            ebn0_db: anchor_ebn0_db(rate) + offset + modulation_offset_db(modulation),
            quantizer_bits,
            arithmetic,
            max_iterations,
            early_stop,
            schedule,
            memory,
            p_io,
            modulation,
            fault,
            fabric,
            // Never drawn (append-only RNG discipline): the sweeps fan each
            // case across every available tier instead of sampling one.
            simd: None,
        }
    }
}

impl fmt::Display for CaseSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let frame = match self.frame {
            FrameSize::Normal => "normal",
            FrameSize::Short => "short",
        };
        let modulation = match self.modulation {
            Modulation::Bpsk => "bpsk",
            Modulation::Qpsk => "qpsk",
            Modulation::Psk8 => "8psk",
            Modulation::Apsk16 => "16apsk",
            Modulation::Apsk32 => "32apsk",
        };
        write!(
            f,
            // `{}` on f64 prints the shortest exactly-round-tripping form:
            // the repro string must reproduce the noise realization bit for
            // bit, so ebn0 cannot be rounded for display.
            "seed={} rate={} frame={frame} ebn0={} q={} arith={} iters={} early={} \
             sched={} mem={}x{}x{} pio={} mod={modulation}",
            self.seed,
            self.rate,
            self.ebn0_db,
            self.quantizer_bits,
            self.arithmetic,
            self.max_iterations,
            self.early_stop,
            self.schedule,
            self.memory.banks,
            self.memory.write_ports,
            self.memory.fu_latency,
            self.p_io,
        )?;
        // `fabric=1` (the single core, no fabric cross-check) is omitted so
        // repro strings recorded before the fabric dimension existed stay
        // the canonical spelling of the cases they name.
        if self.fabric > 1 {
            write!(f, " fabric={}", self.fabric)?;
        }
        // `simd=` is omitted when the tier is auto-detected, so repro
        // strings recorded before the SIMD dimension existed stay the
        // canonical spelling of the cases they name.
        if let Some(tier) = self.simd {
            write!(f, " simd={}", tier.name())?;
        }
        if self.fault.is_empty() {
            return Ok(());
        }
        // A single permanent RAM fault prints exactly as it did before the
        // scenario grammar existed, so historical repro strings stay the
        // canonical spelling of the cases they name.
        write!(f, " fault=")?;
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| {
            if first {
                first = false;
                Ok(())
            } else {
                write!(f, ",")
            }
        };
        for timed in self.fault.ram_faults() {
            sep(f)?;
            match timed.fault {
                RamFault::StuckWord { word, value } => write!(f, "stuck@{word}:{value}")?,
                RamFault::FlippedBits { word, mask } => write!(f, "flip@{word}:{mask}")?,
            }
            match timed.activation {
                FaultActivation::Permanent => {}
                FaultActivation::Window { from, until } => write!(f, "~{from}..{until}")?,
                FaultActivation::Random { seed, per_mille } => {
                    write!(f, "~p{per_mille}:{seed}")?;
                }
            }
        }
        if let Some(fu) = self.fault.fu_fault() {
            sep(f)?;
            match fu {
                FuFault::StuckSign { unit, negative } => {
                    write!(f, "fusign@{unit}:{}", if negative { '-' } else { '+' })?;
                }
                FuFault::StuckMag { unit, value } => write!(f, "fumag@{unit}:{value}")?,
            }
        }
        Ok(())
    }
}

/// Error parsing a [`CaseSpec`] repro string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCaseError(String);

impl fmt::Display for ParseCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid case spec: {}", self.0)
    }
}

impl std::error::Error for ParseCaseError {}

impl FromStr for CaseSpec {
    type Err = ParseCaseError;

    /// Parses the `Display` form, e.g.
    /// `seed=7 rate=2/3 frame=short ebn0=2.4 q=6 arith=msshift2 iters=6 early=true`.
    ///
    /// The `sched=`, `mem=BxPxL`, `pio=`, `mod=`, `fabric=`, `simd=` and
    /// `fault=` keys are optional and default to the natural schedule, the
    /// paper memory configuration, `p_io = 10`, BPSK, a single core (no
    /// fabric cross-check), an auto-detected SIMD tier, and healthy
    /// hardware, so repro strings recorded before those dimensions existed
    /// still parse. `simd=scalar|avx2|avx512` forces that dispatch tier on
    /// the software quantized lane decoder (replay panics if the host CPU
    /// lacks it, like `DVBS2_SIMD`).
    ///
    /// `fault=` takes a comma-separated list of fault atoms
    /// (`fault=none` is also accepted):
    ///
    /// * `stuck@WORD:VALUE` / `flip@WORD:MASK` — a RAM defect, permanent
    ///   unless followed by an activation suffix: `~FROM..UNTIL` confines
    ///   it to a half-open iteration window, `~pPER_MILLE:SEED` makes each
    ///   commit independently corrupt with probability `PER_MILLE/1000`;
    /// * `fusign@UNIT:+` / `fusign@UNIT:-` — a functional unit whose
    ///   output sign lane is stuck;
    /// * `fumag@UNIT:VALUE` — a functional unit whose output magnitude
    ///   lanes are stuck at `VALUE`.
    ///
    /// Pre-scenario strings (`fault=stuck@W:V`, `fault=flip@W:M`) are a
    /// strict subset of this grammar and keep their exact meaning.
    fn from_str(text: &str) -> Result<Self, Self::Err> {
        let err = |what: &str| ParseCaseError(format!("{what} in {text:?}"));
        let mut fields: HashMap<&str, &str> = HashMap::new();
        for token in text.split_whitespace() {
            let (key, value) = token.split_once('=').ok_or_else(|| err("missing '='"))?;
            fields.insert(key, value);
        }
        let get = |key: &str| fields.get(key).copied().ok_or_else(|| err(key));
        let arith = match get("arith")? {
            "lut" => ArithmeticKind::Lut,
            other => match other.strip_prefix("msshift").and_then(|s| s.parse().ok()) {
                Some(shift) => ArithmeticKind::MinSumShift(shift),
                None => return Err(err("arith")),
            },
        };
        let schedule = match fields.get("sched").copied() {
            None | Some("natural") => ScheduleKind::Natural,
            Some("annealed") => ScheduleKind::Annealed,
            Some(_) => return Err(err("sched")),
        };
        let memory = match fields.get("mem").copied() {
            None => MemoryConfig::default(),
            Some(spec) => {
                let mut parts = spec.split('x').map(|p| p.parse::<usize>());
                match (parts.next(), parts.next(), parts.next(), parts.next()) {
                    (Some(Ok(banks)), Some(Ok(write_ports)), Some(Ok(fu_latency)), None)
                        if banks > 0 && write_ports > 0 =>
                    {
                        MemoryConfig { banks, write_ports, fu_latency }
                    }
                    _ => return Err(err("mem")),
                }
            }
        };
        let p_io = match fields.get("pio").copied() {
            None => 10,
            Some(spec) => match spec.parse::<usize>() {
                Ok(p) if p > 0 => p,
                _ => return Err(err("pio")),
            },
        };
        let modulation = match fields.get("mod").copied() {
            None | Some("bpsk") => Modulation::Bpsk,
            Some("qpsk") => Modulation::Qpsk,
            Some("8psk") => Modulation::Psk8,
            Some("16apsk") => Modulation::Apsk16,
            Some("32apsk") => Modulation::Apsk32,
            Some(_) => return Err(err("mod")),
        };
        let fabric = match fields.get("fabric").copied() {
            None => 1,
            Some(spec) => match spec.parse::<usize>() {
                Ok(p) if p > 0 => p,
                _ => return Err(err("fabric")),
            },
        };
        let simd = match fields.get("simd").copied() {
            None => None,
            Some("scalar") => Some(SimdTier::Scalar),
            Some("avx2") => Some(SimdTier::Avx2),
            Some("avx512") => Some(SimdTier::Avx512),
            Some(_) => return Err(err("simd")),
        };
        let fault = match fields.get("fault").copied() {
            None | Some("none") => FaultScenario::none(),
            Some(spec) => {
                let parse_pair = |body: &str| -> Option<(usize, i32)> {
                    let (word, arg) = body.split_once(':')?;
                    Some((word.parse().ok()?, arg.parse().ok()?))
                };
                let parse_activation = |suffix: &str| -> Option<FaultActivation> {
                    if let Some(body) = suffix.strip_prefix('p') {
                        let (per_mille, seed) = body.split_once(':')?;
                        Some(FaultActivation::Random {
                            seed: seed.parse().ok()?,
                            per_mille: per_mille.parse().ok()?,
                        })
                    } else {
                        let (from, until) = suffix.split_once("..")?;
                        Some(FaultActivation::Window {
                            from: from.parse().ok()?,
                            until: until.parse().ok()?,
                        })
                    }
                };
                let mut scenario = FaultScenario::none();
                for atom in spec.split(',') {
                    if let Some(body) = atom.strip_prefix("fusign@") {
                        let fu = match body.split_once(':') {
                            Some((unit, "+")) => FuFault::StuckSign {
                                unit: unit.parse().map_err(|_| err("fault"))?,
                                negative: false,
                            },
                            Some((unit, "-")) => FuFault::StuckSign {
                                unit: unit.parse().map_err(|_| err("fault"))?,
                                negative: true,
                            },
                            _ => return Err(err("fault")),
                        };
                        scenario.set_fu(Some(fu));
                    } else if let Some((unit, value)) =
                        atom.strip_prefix("fumag@").and_then(parse_pair)
                    {
                        scenario.set_fu(Some(FuFault::StuckMag { unit, value }));
                    } else {
                        let (base, activation) = match atom.split_once('~') {
                            Some((base, suffix)) => {
                                (base, parse_activation(suffix).ok_or_else(|| err("fault"))?)
                            }
                            None => (atom, FaultActivation::Permanent),
                        };
                        let ram = if let Some((word, value)) =
                            base.strip_prefix("stuck@").and_then(parse_pair)
                        {
                            RamFault::StuckWord { word, value }
                        } else if let Some((word, mask)) =
                            base.strip_prefix("flip@").and_then(parse_pair)
                        {
                            RamFault::FlippedBits { word, mask }
                        } else {
                            return Err(err("fault"));
                        };
                        if !scenario.push_ram(TimedRamFault { fault: ram, activation }) {
                            return Err(err("fault"));
                        }
                    }
                }
                scenario
            }
        };
        Ok(CaseSpec {
            seed: get("seed")?.parse().map_err(|_| err("seed"))?,
            rate: get("rate")?.parse().map_err(|_| err("rate"))?,
            frame: match get("frame")? {
                "normal" => FrameSize::Normal,
                "short" => FrameSize::Short,
                _ => return Err(err("frame")),
            },
            ebn0_db: get("ebn0")?.parse().map_err(|_| err("ebn0"))?,
            quantizer_bits: get("q")?.parse().map_err(|_| err("q"))?,
            arithmetic: arith,
            max_iterations: get("iters")?.parse().map_err(|_| err("iters"))?,
            early_stop: get("early")?.parse().map_err(|_| err("early"))?,
            schedule,
            memory,
            p_io,
            modulation,
            fault,
            fabric,
            simd,
        })
    }
}

/// Rough Eb/N0 (dB) of each rate's waterfall region — anchor for the
/// generator's offsets, not a calibrated threshold.
/// Generator Eb/N0 offset per modulation: denser constellations need more
/// SNR to keep the decodes-mostly/fails-mostly mix the offsets produce on
/// BPSK. QPSK shares the BPSK anchor (per-dimension identical channel).
fn modulation_offset_db(modulation: Modulation) -> f64 {
    match modulation {
        Modulation::Bpsk | Modulation::Qpsk => 0.0,
        Modulation::Psk8 => 2.0,
        Modulation::Apsk16 => 4.5,
        Modulation::Apsk32 => 7.0,
    }
}

fn anchor_ebn0_db(rate: CodeRate) -> f64 {
    match rate {
        CodeRate::R1_4 => 0.8,
        CodeRate::R1_3 => 0.9,
        CodeRate::R2_5 => 1.0,
        CodeRate::R1_2 => 1.4,
        CodeRate::R3_5 => 1.9,
        CodeRate::R2_3 => 2.4,
        CodeRate::R3_4 => 2.8,
        CodeRate::R4_5 => 3.2,
        CodeRate::R5_6 => 3.5,
        CodeRate::R8_9 => 4.2,
        CodeRate::R9_10 => 4.4,
    }
}

/// One violated contract, with enough context to reproduce it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Index of the case in its run (0-based).
    pub case_index: u64,
    /// The generating case (its `Display` form is the repro string).
    pub case: CaseSpec,
    /// Short identifier of the violated contract.
    pub contract: &'static str,
    /// Human-readable mismatch description.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "case {} [{}] {}: {}", self.case_index, self.contract, self.case, self.detail)
    }
}

/// Options for an oracle run.
#[derive(Debug, Clone, Copy)]
pub struct OracleConfig {
    /// Seed of the whole run (each case derives its own stream).
    pub master_seed: u64,
    /// Number of generated cases.
    pub cases: u64,
    /// Worker threads (cases are independent; results are deterministic
    /// regardless of this value).
    pub threads: usize,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig { master_seed: 0xD1FF, cases: 64, threads: dvbs2_channel::default_threads() }
    }
}

/// Outcome of an oracle run.
#[derive(Debug, Clone, Default)]
pub struct OracleReport {
    /// Cases executed.
    pub cases: u64,
    /// Distinct code rates covered.
    pub rates_covered: Vec<CodeRate>,
    /// Distinct frame sizes covered.
    pub frames_covered: Vec<FrameSize>,
    /// All contract violations, ordered by case index.
    pub violations: Vec<Violation>,
}

impl OracleReport {
    /// `true` when no contract was violated.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Immutable per-(rate, frame) machinery: building the code, graph and ROM
/// dominates a case's cost, so these are shared by every schedule/memory
/// variant of the code point.
struct CodeContext {
    system: Dvbs2System,
    graph: Arc<TannerGraph>,
    rom: ConnectivityRom,
}

impl CodeContext {
    fn new(rate: CodeRate, frame: FrameSize) -> Self {
        let system = Dvbs2System::new(SystemConfig { rate, frame, ..SystemConfig::default() })
            .expect("generator only emits defined rate/frame combinations");
        let graph = Arc::clone(system.graph());
        let rom = ConnectivityRom::build(system.params(), system.code().table());
        CodeContext { system, graph, rom }
    }
}

/// Per-(rate, frame, schedule, memory) machinery layered over a shared
/// [`CodeContext`]: the check-node schedule (annealing one is itself
/// expensive) and the memory-model stats the timing contracts compare
/// against, both under the case's [`MemoryConfig`].
struct CaseContext {
    code: Arc<CodeContext>,
    schedule: CnSchedule,
    /// Check-phase stats of one iteration under this context's schedule
    /// and memory configuration.
    check_phase: AccessStats,
    /// Hardware chain partition for this schedule — lets the software
    /// decoder replay the golden model bit for bit (`hw_chain_partition`
    /// walks every check once, so it is cached with the schedule).
    partition: ChainPartition,
}

impl CaseContext {
    fn new(code: Arc<CodeContext>, kind: ScheduleKind, memory: MemoryConfig) -> Self {
        let schedule = match kind {
            ScheduleKind::Natural => CnSchedule::natural(&code.rom),
            // Fixed seed + bounded move budget: deterministic for a given
            // (rate, frame, memory) and cheap enough for fuzz runs while
            // still reordering rows substantially.
            ScheduleKind::Annealed => {
                optimize_schedule(
                    &code.rom,
                    memory,
                    AnnealOptions { moves: 600, ..AnnealOptions::default() },
                )
                .schedule
            }
        };
        let check_phase = simulate_cn_phase(memory, &schedule.read_sequence(), code.rom.row_len());
        let partition = hw_chain_partition(&code.rom, &schedule, &code.graph);
        CaseContext { code, schedule, check_phase, partition }
    }

    fn system(&self) -> &Dvbs2System {
        &self.code.system
    }

    fn graph(&self) -> &Arc<TannerGraph> {
        &self.code.graph
    }

    fn code(&self) -> &DvbS2Code {
        self.code.system.code()
    }
}

type CodeKey = ((u32, u32), usize);
type CaseKey = (CodeKey, ScheduleKind, (usize, usize, usize));

/// Two-level cache: code contexts by (rate, frame), case contexts by
/// (rate, frame, schedule, memory). A run mixing schedules and memory
/// configurations builds each expensive code context exactly once.
#[derive(Default)]
struct ContextCache {
    codes: Mutex<HashMap<CodeKey, Arc<CodeContext>>>,
    cases: Mutex<HashMap<CaseKey, Arc<CaseContext>>>,
}

fn code_key(rate: CodeRate, frame: FrameSize) -> CodeKey {
    (rate.fraction(), frame.codeword_len())
}

fn code_context_for(cache: &ContextCache, rate: CodeRate, frame: FrameSize) -> Arc<CodeContext> {
    let key = code_key(rate, frame);
    if let Some(ctx) = cache.codes.lock().expect("no panics hold the lock").get(&key) {
        return Arc::clone(ctx);
    }
    // Build outside the lock: Normal-frame contexts take a while and other
    // workers should not serialize on them.
    let built = Arc::new(CodeContext::new(rate, frame));
    let mut map = cache.codes.lock().expect("no panics hold the lock");
    Arc::clone(map.entry(key).or_insert(built))
}

fn context_for(
    cache: &ContextCache,
    rate: CodeRate,
    frame: FrameSize,
    kind: ScheduleKind,
    memory: MemoryConfig,
) -> Arc<CaseContext> {
    let key = (code_key(rate, frame), kind, (memory.banks, memory.write_ports, memory.fu_latency));
    if let Some(ctx) = cache.cases.lock().expect("no panics hold the lock").get(&key) {
        return Arc::clone(ctx);
    }
    let code = code_context_for(cache, rate, frame);
    let built = Arc::new(CaseContext::new(code, kind, memory));
    let mut map = cache.cases.lock().expect("no panics hold the lock");
    Arc::clone(map.entry(key).or_insert(built))
}

/// One decoder's outcome inside the matrix.
struct MatrixEntry {
    name: &'static str,
    result: DecodeResult,
    /// Whether this entry joins the converged-word agreement pool. Faulted
    /// timed decoders opt out: a corrupted RAM may legitimately settle on a
    /// different valid codeword than the healthy decoders.
    word_contract: bool,
}

/// Reduces a scenario's fault words into the code's RAM (and FU units into
/// the 360-wide array) so one repro string stays valid across frame sizes
/// (the shrinker demotes Normal to Short).
fn clamp_fault(fault: FaultScenario, words: usize) -> FaultScenario {
    let mut out = FaultScenario::none();
    for timed in fault.ram_faults() {
        let clamped = match timed.fault {
            RamFault::StuckWord { word, value } => {
                RamFault::StuckWord { word: word % words, value }
            }
            RamFault::FlippedBits { word, mask } => {
                RamFault::FlippedBits { word: word % words, mask }
            }
        };
        out.push_ram(TimedRamFault { fault: clamped, activation: timed.activation });
    }
    if let Some(fu) = fault.fu_fault() {
        out.set_fu(Some(match fu {
            FuFault::StuckSign { unit, negative } => {
                FuFault::StuckSign { unit: unit % PARALLELISM, negative }
            }
            FuFault::StuckMag { unit, value } => {
                FuFault::StuckMag { unit: unit % PARALLELISM, value }
            }
        }));
    }
    out
}

/// Runs the full decoder matrix on one generated case and returns any
/// contract violations (empty = clean).
pub fn run_case(case_index: u64, case: &CaseSpec) -> Vec<Violation> {
    let cache = ContextCache::default();
    run_case_with(case_index, case, &cache)
}

fn run_case_with(case_index: u64, case: &CaseSpec, cache: &ContextCache) -> Vec<Violation> {
    let ctx = context_for(cache, case.rate, case.frame, case.schedule, case.memory);
    let mut violations = Vec::new();
    let mut violate = |contract: &'static str, detail: String| {
        violations.push(Violation { case_index, case: *case, contract, detail });
    };

    let mut rng = SmallRng::seed_from_u64(case.seed);
    let frame = ctx.system().transmit_frame_with(&mut rng, case.ebn0_db, case.modulation);
    let quantizer = case.quantizer();
    let float_config = DecoderConfig {
        max_iterations: case.max_iterations,
        early_stop: case.early_stop,
        rule: CheckRule::SumProduct,
        precision: Precision::F64,
        simd: case.simd,
    };

    // --- the decoder matrix -------------------------------------------------
    let mut entries: Vec<MatrixEntry> = Vec::new();
    {
        let g = |precision| float_config.with_precision(precision);
        let mut push = |name: &'static str, result: DecodeResult| {
            entries.push(MatrixEntry { name, result, word_contract: true });
        };
        push(
            "flooding-f64",
            FloodingDecoder::new(Arc::clone(ctx.graph()), g(Precision::F64)).decode(&frame.llrs),
        );
        push(
            "flooding-f32",
            FloodingDecoder::new(Arc::clone(ctx.graph()), g(Precision::F32)).decode(&frame.llrs),
        );
        push(
            "zigzag-f64",
            ZigzagDecoder::new(Arc::clone(ctx.graph()), g(Precision::F64)).decode(&frame.llrs),
        );
        push(
            "zigzag-f32",
            ZigzagDecoder::new(Arc::clone(ctx.graph()), g(Precision::F32)).decode(&frame.llrs),
        );
        push(
            "layered-f64",
            LayeredDecoder::new(Arc::clone(ctx.graph()), g(Precision::F64)).decode(&frame.llrs),
        );
        // Min-sum engine kernel, both precisions (flooding routes min-sum
        // rules through the blocked two-pass kernel).
        let ms = float_config.with_rule(CheckRule::NormalizedMinSum(0.75));
        push(
            "flooding-ms-f64",
            FloodingDecoder::new(Arc::clone(ctx.graph()), ms).decode(&frame.llrs),
        );
        push(
            "flooding-ms-f32",
            FloodingDecoder::new(Arc::clone(ctx.graph()), ms.with_precision(Precision::F32))
                .decode(&frame.llrs),
        );
        // Fixed-point decoders.
        push(
            "qzigzag-lut",
            QuantizedZigzagDecoder::new(Arc::clone(ctx.graph()), quantizer, float_config)
                .decode(&frame.llrs),
        );
        push(
            "qzigzag-minsum",
            QuantizedZigzagDecoder::with_arithmetic(
                Arc::clone(ctx.graph()),
                case.arithmetic.build(quantizer),
                float_config,
            )
            .decode(&frame.llrs),
        );
    }

    // --- timed/untimed bit-exact class --------------------------------------
    let core_config = CoreConfig {
        quantizer,
        max_iterations: case.max_iterations,
        early_stop: case.early_stop,
        memory: case.memory,
        p_io: case.p_io,
    };
    let fault = clamp_fault(case.fault, ctx.code.rom.words());
    let mut hw = HardwareDecoder::new(ctx.code(), ctx.schedule.clone(), core_config);
    let mut golden = GoldenModel::new(
        ctx.code(),
        ctx.schedule.clone(),
        quantizer,
        case.max_iterations,
        case.early_stop,
    );
    hw.set_scenario(fault);
    golden.set_scenario(fault);
    let channel = hw.quantize_channel(&frame.llrs);
    let mut hw_trace = Vec::new();
    let mut golden_trace = Vec::new();
    let hw_out = hw.decode_quantized_traced(&channel, &mut hw_trace);
    let golden_out = golden.decode_quantized_traced(&channel, &mut golden_trace);
    if hw_out.result != golden_out {
        violate(
            "hw-golden-bitexact",
            format!(
                "hardware (converged={} iters={}) != golden (converged={} iters={}), {} differing bits",
                hw_out.result.converged,
                hw_out.result.iterations,
                golden_out.converged,
                golden_out.iterations,
                count_diff(&hw_out.result.bits, &golden_out.bits),
            ),
        );
    }
    if hw_trace != golden_trace {
        violate(
            "hw-golden-trace",
            format!(
                "per-iteration message digests diverged at iteration {} of {}",
                hw_trace.iter().zip(&golden_trace).position(|(a, b)| a != b).unwrap_or(0) + 1,
                hw_trace.len().max(golden_trace.len()),
            ),
        );
    }
    if case_index.is_multiple_of(16) {
        // Determinism spot check: an identical rerun must be bit-identical.
        let again = hw.decode_quantized(&channel);
        if again.result != hw_out.result || again.cycles != hw_out.cycles {
            violate("hw-determinism", "rerun of the same channel frame diverged".to_owned());
        }
    }
    // A faulted core opts out of the cross-decoder word pool: corrupted
    // messages may legitimately converge to a different valid codeword.
    entries.push(MatrixEntry {
        name: "hardware",
        result: hw_out.result.clone(),
        word_contract: fault.is_empty(),
    });

    // --- boundary-exact class: golden vs partitioned software decoder ------
    // The partitioned software decoder has no RAM to corrupt, so the
    // bit-exact comparison only holds against a healthy golden model.
    if fault.is_empty() {
        let mut partitioned = QuantizedZigzagDecoder::with_partition(
            Arc::clone(ctx.graph()),
            QCheckArithmetic::lut(quantizer),
            float_config,
            ctx.partition.clone(),
        );
        let part_out = partitioned.decode_quantized(&channel);
        if part_out != golden_out {
            violate(
                "golden-partitioned-bitexact",
                format!(
                    "partitioned qzigzag (converged={} iters={}) != golden (converged={} iters={}), {} differing bits",
                    part_out.converged,
                    part_out.iterations,
                    golden_out.converged,
                    golden_out.iterations,
                    count_diff(&part_out.bits, &golden_out.bits),
                ),
            );
        }
        entries.push(MatrixEntry {
            name: "qzigzag-partitioned",
            result: part_out,
            word_contract: true,
        });
    }

    // --- bit flipping: explicit weaker contract -----------------------------
    // Gallager-B is *deliberately* excluded from the converged-word pool:
    // when it converges, its hard decisions form a valid codeword, but from
    // a hard-decision channel several dB past its own threshold that
    // codeword is regularly a *different* one than the soft decoders agree
    // on (miscorrection), so word agreement would raise false alarms on
    // correct behavior. It also early-stops unconditionally (there is no
    // fixed-iteration mode to contract on). What it must guarantee: the cap
    // is respected, and a converged word leaves no unsatisfied check —
    // i.e. the syndrome weight never ends above the channel hard
    // decisions' starting weight.
    {
        let mut bitflip = BitFlippingDecoder::new(Arc::clone(ctx.graph()), float_config);
        let bf_out = bitflip.decode(&frame.llrs);
        if bf_out.iterations > case.max_iterations {
            violate(
                "iteration-cap",
                format!(
                    "bit-flipping: {} iterations > cap {}",
                    bf_out.iterations, case.max_iterations
                ),
            );
        }
        if bf_out.converged {
            let start: BitVec = frame.llrs.iter().map(|&l| l < 0.0).collect();
            let start_weight = syndrome_weight(ctx.graph(), &start);
            let end_weight = syndrome_weight(ctx.graph(), &bf_out.bits);
            if end_weight > start_weight {
                violate(
                    "bitflip-syndrome-weight",
                    format!(
                        "converged with syndrome weight {end_weight} above the channel's {start_weight}"
                    ),
                );
            }
            if end_weight != 0 {
                violate(
                    "converged-syndrome",
                    format!("bit-flipping: converged with {end_weight} unsatisfied checks"),
                );
            }
        }
    }

    // --- per-decoder contracts ----------------------------------------------
    for e in &entries {
        if e.result.iterations > case.max_iterations {
            violate(
                "iteration-cap",
                format!(
                    "{}: {} iterations > cap {}",
                    e.name, e.result.iterations, case.max_iterations
                ),
            );
        }
        if !case.early_stop && e.result.iterations != case.max_iterations {
            violate(
                "fixed-iterations",
                format!(
                    "{}: ran {} iterations with early_stop off (cap {})",
                    e.name, e.result.iterations, case.max_iterations
                ),
            );
        }
        if e.result.converged && !syndrome_ok(ctx.graph(), &e.result.bits) {
            violate("converged-syndrome", format!("{}: converged with a dirty syndrome", e.name));
        }
    }

    // --- cross-decoder agreement on converged words -------------------------
    if let Some(first) = entries.iter().find(|e| e.word_contract && e.result.converged) {
        for e in entries.iter().filter(|e| e.word_contract && e.result.converged) {
            if e.result.bits != first.result.bits {
                violate(
                    "converged-agreement",
                    format!(
                        "{} and {} both converged but differ in {} bits",
                        first.name,
                        e.name,
                        count_diff(&first.result.bits, &e.result.bits),
                    ),
                );
            }
        }
    }

    // --- timing contracts ----------------------------------------------------
    let cycles = &hw_out.cycles;
    let n = ctx.system().params().n;
    if cycles.io_cycles != n.div_ceil(core_config.p_io) {
        violate(
            "cycle-io",
            format!("io_cycles {} != ceil({n}/{})", cycles.io_cycles, core_config.p_io),
        );
    }
    if cycles.total_cycles
        != cycles.io_cycles + cycles.info_phase_cycles + cycles.check_phase_cycles
    {
        violate("cycle-total", format!("total {} is not io+info+check", cycles.total_cycles));
    }
    let per_iter = ctx.check_phase.total_cycles;
    if cycles.check_phase_cycles != cycles.iterations * per_iter {
        violate(
            "cycle-check-phase",
            format!(
                "check_phase_cycles {} != {} iterations x {per_iter} (simulate_cn_phase)",
                cycles.check_phase_cycles, cycles.iterations
            ),
        );
    }
    if cycles.max_buffer < ctx.check_phase.max_buffer {
        violate(
            "cycle-buffer",
            format!(
                "max_buffer {} below the memory model's check-phase bound {}",
                cycles.max_buffer, ctx.check_phase.max_buffer
            ),
        );
    }

    // --- fabric class: multi-core fabric vs the single core ------------------
    if case.fabric > 1 {
        violations.extend(fabric_contracts(
            case_index,
            case,
            &ctx,
            core_config,
            fault,
            &mut rng,
            &channel,
            &mut hw,
            &hw_out,
            &hw_trace,
            &golden_trace,
        ));
    }

    violations
}

/// The fabric contract set for one case with `case.fabric > 1`: the case
/// frame plus `fabric - 1` frames derived from the case's own RNG
/// continuation run through a `fabric`-core [`DecoderFabric`] (modeled
/// interconnect: link latency 2, round-robin bus). Timing and data are
/// separated by construction, so every frame must be bit-exact — full
/// output, cycle breakdown, and per-iteration digests — against a fresh
/// single-core decode, and the measured cycles must decompose exactly and
/// stay monotone-sane against the serial schedule.
#[allow(clippy::too_many_arguments)] // one call site per driver; a struct would just rename the list
fn fabric_contracts(
    case_index: u64,
    case: &CaseSpec,
    ctx: &CaseContext,
    core_config: CoreConfig,
    fault: FaultScenario,
    rng: &mut SmallRng,
    channel: &[i32],
    hw: &mut HardwareDecoder,
    hw_out: &HwDecodeOutput,
    hw_trace: &[u64],
    golden_trace: &[u64],
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut violate = |contract: &'static str, detail: String| {
        violations.push(Violation { case_index, case: *case, contract, detail });
    };
    let n = ctx.system().params().n;
    let fabric_config = FabricConfig {
        cores: case.fabric,
        core: core_config,
        link_latency: 2,
        arbitration: Arbitration::RoundRobin { start: 0 },
        double_buffer: false,
    };
    let link = fabric_config.link_latency as u64;
    let mut fabric = DecoderFabric::new(ctx.code(), ctx.schedule.clone(), fabric_config);
    fabric.set_scenario(fault);
    let mut frames: Vec<Vec<i32>> = vec![channel.to_vec()];
    for _ in 1..case.fabric {
        let extra = ctx.system().transmit_frame_with(rng, case.ebn0_db, case.modulation);
        frames.push(hw.quantize_channel(&extra.llrs));
    }
    let mut fabric_traces: Vec<Vec<u64>> = Vec::new();
    let fab = fabric.decode_quantized_batch_traced(&frames, &mut fabric_traces);
    for (i, channel) in frames.iter().enumerate() {
        // Frame 0 already has its single-core reference (`hw_out`);
        // the derived frames get a fresh one from the same decoder.
        let mut single_trace = Vec::new();
        let single = if i == 0 {
            single_trace.extend_from_slice(hw_trace);
            hw_out.clone()
        } else {
            hw.decode_quantized_traced(channel, &mut single_trace)
        };
        if fab.outputs[i] != single {
            violate(
                    "fabric-hw-bitexact",
                    format!(
                        "frame {i}: fabric (converged={} iters={} cycles={}) != single core (converged={} iters={} cycles={}), {} differing bits",
                        fab.outputs[i].result.converged,
                        fab.outputs[i].result.iterations,
                        fab.outputs[i].cycles.total_cycles,
                        single.result.converged,
                        single.result.iterations,
                        single.cycles.total_cycles,
                        count_diff(&fab.outputs[i].result.bits, &single.result.bits),
                    ),
                );
        }
        if fabric_traces[i] != single_trace {
            violate(
                "fabric-hw-trace",
                format!(
                    "frame {i}: fabric digests diverged from the single core at iteration {} of {}",
                    fabric_traces[i]
                        .iter()
                        .zip(single_trace.iter())
                        .position(|(a, b)| a != b)
                        .unwrap_or(0)
                        + 1,
                    fabric_traces[i].len().max(single_trace.len()),
                ),
            );
        }
    }
    // Frame 0 must also line up with the untimed golden model's digests
    // (transitively true when fabric == hw and hw == golden, but checked
    // directly so a fabric divergence is attributed even when the
    // hw-golden contract fails in the same case).
    if fabric_traces[0] != golden_trace {
        violate(
            "fabric-golden-trace",
            "fabric frame 0 digests diverged from the golden model".to_owned(),
        );
    }
    // Cycle contracts: every span decomposes exactly into its parts,
    // per-frame decode occupancy matches the core's own breakdown, and
    // the makespan is monotone-sane — never slower than the serial
    // schedule (plus per-frame link crossings), never faster than the
    // shared bus allows.
    for (tm, out) in fab.timings.iter().zip(&fab.outputs) {
        let parts = tm.io_beats as u64
            + tm.load_stall_cycles
            + tm.input_wait_cycles
            + tm.decode_cycles as u64
            + 2 * link;
        if tm.span_cycles() != parts {
            violate(
                "fabric-span-decomposition",
                format!(
                    "frame {}: span {} != io {} + stall {} + wait {} + decode {} + 2x link {link}",
                    tm.frame,
                    tm.span_cycles(),
                    tm.io_beats,
                    tm.load_stall_cycles,
                    tm.input_wait_cycles,
                    tm.decode_cycles,
                ),
            );
        }
        if tm.decode_cycles != out.cycles.info_phase_cycles + out.cycles.check_phase_cycles {
            violate(
                "fabric-decode-cycles",
                format!(
                    "frame {}: fabric decode occupancy {} != core info {} + check {}",
                    tm.frame,
                    tm.decode_cycles,
                    out.cycles.info_phase_cycles,
                    out.cycles.check_phase_cycles,
                ),
            );
        }
        if tm.io_beats != n.div_ceil(core_config.p_io) {
            violate(
                "fabric-io-beats",
                format!("frame {}: {} beats != ceil({n}/{})", tm.frame, tm.io_beats, case.p_io),
            );
        }
    }
    let serial = DecoderFabric::serial_cycles(&fab.outputs) + fab.outputs.len() as u64 * 2 * link;
    if fab.stats.makespan_cycles > serial {
        violate(
            "fabric-makespan-monotone",
            format!(
                "{} cores took {} cycles, above the serial bound {serial}",
                case.fabric, fab.stats.makespan_cycles
            ),
        );
    }
    let total_beats = (frames.len() * n.div_ceil(core_config.p_io)) as u64;
    if fab.stats.bus_busy_cycles != total_beats {
        violate(
            "fabric-bus-beats",
            format!("bus busy {} cycles != {total_beats} frame beats", fab.stats.bus_busy_cycles),
        );
    }
    if fab.stats.makespan_cycles < total_beats {
        violate(
            "fabric-makespan-bus-bound",
            format!(
                "makespan {} below the bus serialization floor {total_beats}",
                fab.stats.makespan_cycles
            ),
        );
    }

    violations
}

fn count_diff(a: &BitVec, b: &BitVec) -> usize {
    if a.len() != b.len() {
        return a.len().max(b.len());
    }
    (0..a.len()).filter(|&i| a.get(i) != b.get(i)).count()
}

/// Runs `config.cases` generated cases across worker threads and collects
/// every contract violation. Deterministic for a given `master_seed`
/// regardless of `threads`.
pub fn run(config: &OracleConfig) -> OracleReport {
    let threads = config.threads.max(1);
    let next = AtomicUsize::new(0);
    let violations: Mutex<Vec<Violation>> = Mutex::new(Vec::new());
    let cache = ContextCache::default();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed) as u64;
                if index >= config.cases {
                    break;
                }
                let case = CaseSpec::generate(config.master_seed, index);
                let found = run_case_with(index, &case, &cache);
                if !found.is_empty() {
                    violations.lock().expect("no panics hold the lock").extend(found);
                }
            });
        }
    });
    let mut violations = violations.into_inner().expect("all workers joined");
    violations.sort_by_key(|v| v.case_index);

    let mut rates_covered = Vec::new();
    let mut frames_covered = Vec::new();
    for index in 0..config.cases {
        let case = CaseSpec::generate(config.master_seed, index);
        if !rates_covered.contains(&case.rate) {
            rates_covered.push(case.rate);
        }
        if !frames_covered.contains(&case.frame) {
            frames_covered.push(case.frame);
        }
    }
    OracleReport { cases: config.cases, rates_covered, frames_covered, violations }
}

/// Forces a fault scenario onto a generated case: keeps the generator's
/// scenario when it drew one, otherwise derives a deterministic one from
/// the case seed. This is how the fault-differential sweep guarantees that
/// *every* case exercises the corrupted write path. Derived scenarios span
/// the full dimension: permanent, windowed and random activations, a
/// second concurrent defect, and stuck FU lanes.
fn force_fault(mut case: CaseSpec) -> CaseSpec {
    if case.fault.is_empty() {
        let x = mix_seed(case.seed, 0xFA07);
        let word = (x % 1024) as usize;
        let primary = if x & 1 == 0 {
            RamFault::StuckWord { word, value: ((x >> 10) % 63) as i32 - 31 }
        } else {
            RamFault::FlippedBits { word, mask: 1 + ((x >> 10) % 31) as i32 }
        };
        let activation = match (x >> 16) % 4 {
            0 => {
                let from = ((x >> 18) % 3) as u32;
                FaultActivation::Window { from, until: from + 1 + ((x >> 20) % 4) as u32 }
            }
            1 => FaultActivation::Random {
                seed: (x >> 24) as u32,
                per_mille: 50 + ((x >> 18) % 451) as u32,
            },
            _ => FaultActivation::Permanent,
        };
        case.fault.push_ram(TimedRamFault { fault: primary, activation });
        if (x >> 5).is_multiple_of(3) {
            let word = ((x >> 32) % 1024) as usize;
            case.fault.push_ram(TimedRamFault::permanent(if (x >> 6) & 1 == 0 {
                RamFault::StuckWord { word, value: ((x >> 42) % 63) as i32 - 31 }
            } else {
                RamFault::FlippedBits { word, mask: 1 + ((x >> 42) % 31) as i32 }
            }));
        }
        if (x >> 7).is_multiple_of(4) {
            let unit = ((x >> 48) % PARALLELISM as u64) as usize;
            case.fault.set_fu(Some(if (x >> 8) & 1 == 0 {
                FuFault::StuckSign { unit, negative: (x >> 9) & 1 == 0 }
            } else {
                FuFault::StuckMag { unit, value: ((x >> 56) % 32) as i32 }
            }));
        }
    }
    case
}

/// One fault-differential case: the faulted timed core against the equally
/// faulted golden model, bit for bit.
fn run_fault_case(case_index: u64, case: &CaseSpec, cache: &ContextCache) -> Vec<Violation> {
    let ctx = context_for(cache, case.rate, case.frame, case.schedule, case.memory);
    let mut violations = Vec::new();
    let mut violate = |contract: &'static str, detail: String| {
        violations.push(Violation { case_index, case: *case, contract, detail });
    };

    let mut rng = SmallRng::seed_from_u64(case.seed);
    let frame = ctx.system().transmit_frame_with(&mut rng, case.ebn0_db, case.modulation);
    let quantizer = case.quantizer();
    let core_config = CoreConfig {
        quantizer,
        max_iterations: case.max_iterations,
        early_stop: case.early_stop,
        memory: case.memory,
        p_io: case.p_io,
    };
    let fault = clamp_fault(case.fault, ctx.code.rom.words());
    let mut hw = HardwareDecoder::new(ctx.code(), ctx.schedule.clone(), core_config);
    let mut golden = GoldenModel::new(
        ctx.code(),
        ctx.schedule.clone(),
        quantizer,
        case.max_iterations,
        case.early_stop,
    );
    hw.set_scenario(fault);
    golden.set_scenario(fault);
    let channel = hw.quantize_channel(&frame.llrs);
    let mut hw_trace = Vec::new();
    let mut golden_trace = Vec::new();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let hw_out = hw.decode_quantized_traced(&channel, &mut hw_trace);
        let golden_out = golden.decode_quantized_traced(&channel, &mut golden_trace);
        (hw_out, golden_out)
    }));
    let (hw_out, golden_out) = match outcome {
        Err(_) => {
            violate("fault-panic", format!("{fault:?}: faulted decode panicked"));
            return violations;
        }
        Ok(pair) => pair,
    };
    if hw_out.result != golden_out {
        violate(
            "hw-golden-bitexact",
            format!(
                "{fault:?}: hardware (converged={} iters={}) != golden (converged={} iters={}), {} differing bits",
                hw_out.result.converged,
                hw_out.result.iterations,
                golden_out.converged,
                golden_out.iterations,
                count_diff(&hw_out.result.bits, &golden_out.bits),
            ),
        );
    }
    if hw_trace != golden_trace {
        violate(
            "hw-golden-trace",
            format!(
                "{fault:?}: message digests diverged at iteration {} of {}",
                hw_trace.iter().zip(&golden_trace).position(|(a, b)| a != b).unwrap_or(0) + 1,
                hw_trace.len().max(golden_trace.len()),
            ),
        );
    }
    // Graceful degradation still applies under the differential contract.
    if hw_out.result.iterations > case.max_iterations {
        violate("fault-hang", format!("{fault:?}: exceeded the iteration cap"));
    }
    if hw_out.result.converged && !syndrome_ok(ctx.graph(), &hw_out.result.bits) {
        violate("fault-syndrome", format!("{fault:?}: converged with a dirty syndrome"));
    }

    // --- software lane-path differential -------------------------------------
    // The partitioned software decoder has no RAM to corrupt, so the faulted
    // golden model is not its reference — but the fault sweep's config space
    // (arithmetic × quantizer × iteration caps × channel realizations) is
    // exactly where the SIMD lane kernels must stay transparent. Pin the
    // lane path against the scalar fused sweep at every available dispatch
    // tier, results and per-iteration digests.
    let sw_config = DecoderConfig {
        max_iterations: case.max_iterations,
        early_stop: case.early_stop,
        rule: CheckRule::SumProduct,
        precision: Precision::F64,
        simd: None,
    };
    let mut fused = QuantizedZigzagDecoder::with_partition_fused(
        Arc::clone(ctx.graph()),
        case.arithmetic.build(quantizer),
        sw_config,
        ctx.partition.clone(),
    );
    let mut fused_trace = Vec::new();
    let fused_out = fused.decode_quantized_traced(&channel, &mut fused_trace);
    for tier in SimdTier::available() {
        let mut lane = QuantizedZigzagDecoder::with_partition(
            Arc::clone(ctx.graph()),
            case.arithmetic.build(quantizer),
            sw_config.with_simd_tier(Some(tier)),
            ctx.partition.clone(),
        );
        let mut lane_trace = Vec::new();
        let lane_out = lane.decode_quantized_traced(&channel, &mut lane_trace);
        if lane_out != fused_out || lane_trace != fused_trace {
            let mut vcase = *case;
            vcase.simd = Some(tier);
            violations.push(Violation {
                case_index,
                case: vcase,
                contract: "simd-fused-bitexact",
                detail: format!(
                    "{} lane path (converged={} iters={}) != scalar fused \
                     (converged={} iters={}), {} differing bits, digests diverged at \
                     iteration {} of {}",
                    tier.name(),
                    lane_out.converged,
                    lane_out.iterations,
                    fused_out.converged,
                    fused_out.iterations,
                    count_diff(&lane_out.bits, &fused_out.bits),
                    lane_trace.iter().zip(&fused_trace).position(|(a, b)| a != b).unwrap_or(0) + 1,
                    lane_trace.len().max(fused_trace.len()),
                ),
            });
        }
    }
    violations
}

/// Runs `config.cases` generated cases with a fault scenario forced onto
/// every one and checks the fault-differential contract: the faulted
/// [`HardwareDecoder`] must be bit-exact — decisions *and* per-iteration
/// message digests — against the equally-faulted [`GoldenModel`].
/// Deterministic for a given `master_seed` regardless of `threads`.
pub fn run_fault_differential(config: &OracleConfig) -> OracleReport {
    let threads = config.threads.max(1);
    let next = AtomicUsize::new(0);
    let violations: Mutex<Vec<Violation>> = Mutex::new(Vec::new());
    let cache = ContextCache::default();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed) as u64;
                if index >= config.cases {
                    break;
                }
                let case = force_fault(CaseSpec::generate(config.master_seed, index));
                let found = run_fault_case(index, &case, &cache);
                if !found.is_empty() {
                    violations.lock().expect("no panics hold the lock").extend(found);
                }
            });
        }
    });
    let mut violations = violations.into_inner().expect("all workers joined");
    violations.sort_by_key(|v| v.case_index);

    let mut rates_covered = Vec::new();
    let mut frames_covered = Vec::new();
    for index in 0..config.cases {
        let case = CaseSpec::generate(config.master_seed, index);
        if !rates_covered.contains(&case.rate) {
            rates_covered.push(case.rate);
        }
        if !frames_covered.contains(&case.frame) {
            frames_covered.push(case.frame);
        }
    }
    OracleReport { cases: config.cases, rates_covered, frames_covered, violations }
}

/// Forces the fabric dimension onto a generated case: keeps the
/// generator's core count when it drew one, otherwise derives a
/// deterministic P ∈ {2, 3, 4} from the case seed. Normal frames demote to
/// Short (re-homing the Normal-only R 9/10 onto R 8/9) so a ≥1000-case
/// sweep stays affordable — the main oracle run covers Normal-frame
/// fabrics organically.
fn force_fabric(mut case: CaseSpec) -> CaseSpec {
    if case.fabric < 2 {
        case.fabric = 2 + (mix_seed(case.seed, 0xFAB0) % 3) as usize;
    }
    if case.frame == FrameSize::Normal {
        case.frame = FrameSize::Short;
        if case.rate == CodeRate::R9_10 {
            case.rate = CodeRate::R8_9;
        }
    }
    case
}

/// One fabric-differential case: the timed core and golden model must
/// agree as usual, and the multi-core fabric must satisfy the full fabric
/// contract set ([`fabric_contracts`]) on top.
fn run_fabric_case(case_index: u64, case: &CaseSpec, cache: &ContextCache) -> Vec<Violation> {
    let ctx = context_for(cache, case.rate, case.frame, case.schedule, case.memory);
    let mut violations = Vec::new();

    let mut rng = SmallRng::seed_from_u64(case.seed);
    let frame = ctx.system().transmit_frame_with(&mut rng, case.ebn0_db, case.modulation);
    let quantizer = case.quantizer();
    let core_config = CoreConfig {
        quantizer,
        max_iterations: case.max_iterations,
        early_stop: case.early_stop,
        memory: case.memory,
        p_io: case.p_io,
    };
    let fault = clamp_fault(case.fault, ctx.code.rom.words());
    let mut hw = HardwareDecoder::new(ctx.code(), ctx.schedule.clone(), core_config);
    let mut golden = GoldenModel::new(
        ctx.code(),
        ctx.schedule.clone(),
        quantizer,
        case.max_iterations,
        case.early_stop,
    );
    hw.set_scenario(fault);
    golden.set_scenario(fault);
    let channel = hw.quantize_channel(&frame.llrs);
    let mut hw_trace = Vec::new();
    let mut golden_trace = Vec::new();
    let hw_out = hw.decode_quantized_traced(&channel, &mut hw_trace);
    let golden_out = golden.decode_quantized_traced(&channel, &mut golden_trace);
    if hw_out.result != golden_out || hw_trace != golden_trace {
        violations.push(Violation {
            case_index,
            case: *case,
            contract: "hw-golden-bitexact",
            detail: format!(
                "single core diverged from golden before the fabric ran ({} differing bits)",
                count_diff(&hw_out.result.bits, &golden_out.bits),
            ),
        });
    }
    violations.extend(fabric_contracts(
        case_index,
        case,
        &ctx,
        core_config,
        fault,
        &mut rng,
        &channel,
        &mut hw,
        &hw_out,
        &hw_trace,
        &golden_trace,
    ));
    violations
}

/// Runs `config.cases` generated cases with the fabric dimension forced
/// onto every one — odd indices additionally carry a forced fault
/// scenario, so roughly half the sweep exercises the corrupted write path
/// through the fabric — and checks the single-core differential plus the
/// full fabric contract set. Deterministic for a given `master_seed`
/// regardless of `threads`.
pub fn run_fabric_sweep(config: &OracleConfig) -> OracleReport {
    let threads = config.threads.max(1);
    let next = AtomicUsize::new(0);
    let violations: Mutex<Vec<Violation>> = Mutex::new(Vec::new());
    let cache = ContextCache::default();
    let case_for = |index: u64| {
        let case = force_fabric(CaseSpec::generate(config.master_seed, index));
        if index % 2 == 1 {
            force_fault(case)
        } else {
            case
        }
    };
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed) as u64;
                if index >= config.cases {
                    break;
                }
                let case = case_for(index);
                let found = run_fabric_case(index, &case, &cache);
                if !found.is_empty() {
                    violations.lock().expect("no panics hold the lock").extend(found);
                }
            });
        }
    });
    let mut violations = violations.into_inner().expect("all workers joined");
    violations.sort_by_key(|v| v.case_index);

    let mut rates_covered = Vec::new();
    let mut frames_covered = Vec::new();
    for index in 0..config.cases {
        let case = case_for(index);
        if !rates_covered.contains(&case.rate) {
            rates_covered.push(case.rate);
        }
        if !frames_covered.contains(&case.frame) {
            frames_covered.push(case.frame);
        }
    }
    OracleReport { cases: config.cases, rates_covered, frames_covered, violations }
}

/// Verifies the boundary-exact equivalence class across **every defined
/// rate/frame code point** — all 11 Normal-frame rates plus the 10
/// Short-frame rates (R 9/10 is Normal-only in the standard): the LUT
/// [`QuantizedZigzagDecoder`] in hardware-partitioned mode must reproduce
/// the [`GoldenModel`]'s full [`DecodeResult`] — decoded word, iteration
/// count and convergence flag — at two operating points per code point
/// (early-stopping above the waterfall, fixed-iteration below it). Each
/// point additionally runs the SIMD lane path at **every available dispatch
/// tier**, which must match the golden result and the scalar fused sweep's
/// per-iteration message digests; violations record the tier in the repro
/// string.
pub fn run_partition_sweep(master_seed: u64, threads: usize) -> OracleReport {
    const CONFIGS: [(f64, bool, usize); 2] = [(0.4, true, 8), (-0.4, false, 4)];
    let mut points: Vec<(CodeRate, FrameSize)> =
        CodeRate::ALL.iter().map(|&r| (r, FrameSize::Normal)).collect();
    points.extend(
        CodeRate::ALL.iter().filter(|&&r| r != CodeRate::R9_10).map(|&r| (r, FrameSize::Short)),
    );
    let total = (points.len() * CONFIGS.len()) as u64;
    let threads = threads.max(1);
    let next = AtomicUsize::new(0);
    let violations: Mutex<Vec<Violation>> = Mutex::new(Vec::new());
    let cache = ContextCache::default();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed) as u64;
                if index >= total {
                    break;
                }
                let (rate, frame) = points[(index as usize) / CONFIGS.len()];
                let (offset, early_stop, max_iterations) = CONFIGS[(index as usize) % CONFIGS.len()];
                let case = CaseSpec {
                    seed: mix_seed(master_seed, index),
                    rate,
                    frame,
                    ebn0_db: anchor_ebn0_db(rate) + offset,
                    quantizer_bits: 6,
                    arithmetic: ArithmeticKind::Lut,
                    max_iterations,
                    early_stop,
                    schedule: ScheduleKind::Natural,
                    memory: MemoryConfig::default(),
                    p_io: 10,
                    modulation: Modulation::Bpsk,
                    fault: FaultScenario::none(),
                    fabric: 1,
                    simd: None,
                };
                let ctx =
                    context_for(&cache, case.rate, case.frame, case.schedule, case.memory);
                let mut rng = SmallRng::seed_from_u64(case.seed);
                let frame = ctx.system().transmit_frame(&mut rng, case.ebn0_db);
                let quantizer = case.quantizer();
                let mut golden = GoldenModel::new(
                    ctx.code(),
                    ctx.schedule.clone(),
                    quantizer,
                    case.max_iterations,
                    case.early_stop,
                );
                let sw_config = DecoderConfig {
                    max_iterations: case.max_iterations,
                    early_stop: case.early_stop,
                    rule: CheckRule::SumProduct,
                    precision: Precision::F64,
                    simd: None,
                };
                // Scalar fused sweep: the boundary-exact reference for both
                // the golden comparison and the per-tier digest comparison
                // (golden traces hash hardware RAM state, a different format,
                // so lane digests are pinned against the fused sweep's).
                let mut fused = QuantizedZigzagDecoder::with_partition_fused(
                    Arc::clone(ctx.graph()),
                    QCheckArithmetic::lut(quantizer),
                    sw_config,
                    ctx.partition.clone(),
                );
                let channel = golden.quantize_channel(&frame.llrs);
                let golden_out = golden.decode_quantized(&channel);
                let mut fused_trace = Vec::new();
                let fused_out = fused.decode_quantized_traced(&channel, &mut fused_trace);
                if fused_out != golden_out {
                    let v = Violation {
                        case_index: index,
                        case,
                        contract: "golden-partitioned-bitexact",
                        detail: format!(
                            "partitioned qzigzag (converged={} iters={}) != golden (converged={} iters={}), {} differing bits",
                            fused_out.converged,
                            fused_out.iterations,
                            golden_out.converged,
                            golden_out.iterations,
                            count_diff(&fused_out.bits, &golden_out.bits),
                        ),
                    };
                    violations.lock().expect("no panics hold the lock").push(v);
                }
                // Every available SIMD dispatch tier must reproduce the
                // golden DecodeResult *and* the fused sweep's per-iteration
                // message digests; a divergence records the tier in the
                // repro string.
                for tier in SimdTier::available() {
                    let mut lane = QuantizedZigzagDecoder::with_partition(
                        Arc::clone(ctx.graph()),
                        QCheckArithmetic::lut(quantizer),
                        sw_config.with_simd_tier(Some(tier)),
                        ctx.partition.clone(),
                    );
                    let mut lane_trace = Vec::new();
                    let lane_out = lane.decode_quantized_traced(&channel, &mut lane_trace);
                    if lane_out == golden_out && lane_out == fused_out && lane_trace == fused_trace
                    {
                        continue;
                    }
                    let v = Violation {
                        case_index: index,
                        case: CaseSpec { simd: Some(tier), ..case },
                        contract: "simd-partitioned-bitexact",
                        detail: format!(
                            "{} lane path (converged={} iters={}) != golden (converged={} iters={}) / fused, {} differing bits vs golden, digests diverged at iteration {} of {}",
                            tier.name(),
                            lane_out.converged,
                            lane_out.iterations,
                            golden_out.converged,
                            golden_out.iterations,
                            count_diff(&lane_out.bits, &golden_out.bits),
                            lane_trace
                                .iter()
                                .zip(&fused_trace)
                                .position(|(a, b)| a != b)
                                .unwrap_or(0)
                                + 1,
                            lane_trace.len().max(fused_trace.len()),
                        ),
                    };
                    violations.lock().expect("no panics hold the lock").push(v);
                }
            });
        }
    });
    let mut violations = violations.into_inner().expect("all workers joined");
    violations.sort_by_key(|v| v.case_index);
    OracleReport {
        cases: total,
        rates_covered: CodeRate::ALL.to_vec(),
        frames_covered: vec![FrameSize::Normal, FrameSize::Short],
        violations,
    }
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// Outcome of the fault-injection sweep: decoders must degrade gracefully —
/// wrong bits at worst, never a panic, a hang, or a `converged` flag on a
/// dirty syndrome.
#[derive(Debug, Clone, Default)]
pub struct FaultReport {
    /// Fault scenarios executed.
    pub scenarios: usize,
    /// Contract violations (panics are caught and reported here).
    pub violations: Vec<Violation>,
}

impl FaultReport {
    /// `true` when every scenario degraded gracefully.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs the fault-injection suite on one (rate, frame) point:
///
/// * stuck and bit-flipped RAM words in the hardware model, plus
///   multi-word, iteration-windowed, per-commit-random, and stuck-FU-lane
///   scenarios;
/// * an all-zero LLR frame (erased channel) through the whole matrix —
///   degrades to the all-zero codeword, which is valid, so decoders
///   legitimately report convergence;
/// * all-saturated LLR frames with adversarial random signs (floats use
///   large-but-finite magnitudes: infinities would turn check-node
///   gathers into `inf - inf = NaN`);
/// * a near-threshold noisy frame 0.4 dB below the rate's anchor.
pub fn run_fault_suite(rate: CodeRate, frame: FrameSize, master_seed: u64) -> FaultReport {
    let cache = ContextCache::default();
    let ctx = context_for(&cache, rate, frame, ScheduleKind::Natural, MemoryConfig::default());
    let mut report = FaultReport::default();
    let quantizer = Quantizer::paper_6bit();
    let core_config =
        CoreConfig { quantizer, max_iterations: 6, early_stop: true, ..CoreConfig::default() };
    let base = CaseSpec {
        seed: master_seed,
        rate,
        frame,
        ebn0_db: anchor_ebn0_db(rate),
        quantizer_bits: 6,
        arithmetic: ArithmeticKind::Lut,
        max_iterations: core_config.max_iterations,
        early_stop: true,
        schedule: ScheduleKind::Natural,
        memory: MemoryConfig::default(),
        p_io: 10,
        modulation: Modulation::Bpsk,
        fault: FaultScenario::none(),
        fabric: 1,
        simd: None,
    };
    let mut violate = |index: usize, contract: &'static str, detail: String| {
        report.violations.push(Violation {
            case_index: index as u64,
            case: base,
            contract,
            detail,
        });
    };

    let n = ctx.system().params().n;
    let mut rng = SmallRng::seed_from_u64(master_seed);
    let noisy = ctx.system().transmit_frame(&mut rng, base.ebn0_db - 0.4);

    // Fault scenarios on the near-threshold frame (the interesting regime:
    // the fault competes with real noise): stuck/flipped RAM words at
    // several positions, then multi-word, iteration-windowed, per-commit
    // random, and stuck-FU-lane scenarios.
    let words = ctx.code.rom.words();
    let singles = [
        RamFault::StuckWord { word: 0, value: quantizer.max_mag() },
        RamFault::StuckWord { word: words / 2, value: -quantizer.max_mag() },
        RamFault::StuckWord { word: words - 1, value: 0 },
        RamFault::FlippedBits { word: words / 3, mask: 0b1 },
        RamFault::FlippedBits { word: 2 * words / 3, mask: 0b11111 },
    ];
    let mut scenarios: Vec<FaultScenario> = singles.into_iter().map(FaultScenario::from).collect();
    scenarios.push(
        FaultScenario::single(RamFault::StuckWord { word: 0, value: quantizer.max_mag() })
            .with_ram(TimedRamFault::permanent(RamFault::FlippedBits {
                word: words / 2,
                mask: 0b111,
            })),
    );
    scenarios.push(FaultScenario::none().with_ram(TimedRamFault {
        fault: RamFault::StuckWord { word: words / 4, value: -quantizer.max_mag() },
        activation: FaultActivation::Window { from: 1, until: 3 },
    }));
    scenarios.push(FaultScenario::none().with_ram(TimedRamFault {
        fault: RamFault::FlippedBits { word: words / 5, mask: 0b1111 },
        activation: FaultActivation::Random { seed: master_seed as u32, per_mille: 250 },
    }));
    scenarios
        .push(FaultScenario::none().with_fu(Some(FuFault::StuckSign { unit: 17, negative: true })));
    scenarios.push(
        FaultScenario::single(RamFault::FlippedBits { word: words / 7, mask: 0b10 })
            .with_fu(Some(FuFault::StuckMag { unit: PARALLELISM - 1, value: 0 })),
    );
    for (i, fault) in scenarios.into_iter().enumerate() {
        report.scenarios += 1;
        let mut hw = HardwareDecoder::new(ctx.code(), ctx.schedule.clone(), core_config);
        hw.set_scenario(fault);
        let outcome = catch_unwind(AssertUnwindSafe(|| hw.decode(&noisy.llrs)));
        match outcome {
            Err(_) => violate(i, "fault-panic", format!("{fault:?}: decode panicked")),
            Ok(out) => {
                if out.result.iterations > core_config.max_iterations {
                    violate(i, "fault-hang", format!("{fault:?}: exceeded the iteration cap"));
                }
                if out.result.converged && !syndrome_ok(ctx.graph(), &out.result.bits) {
                    violate(
                        i,
                        "fault-syndrome",
                        format!("{fault:?}: converged with a dirty syndrome"),
                    );
                }
            }
        }
    }

    // Degenerate channel frames through the full matrix (no RAM fault).
    let zeros = vec![0.0f64; n];
    let mut saturated = vec![0.0f64; n];
    for (i, llr) in saturated.iter_mut().enumerate() {
        // Large but finite: +/-1e4 saturates every quantizer and drives the
        // float decoders to their plateaus without producing inf - inf.
        *llr = if mix_seed(master_seed, i as u64) & 1 == 0 { 1e4 } else { -1e4 };
    }
    for (name, llrs) in [("all-zero", &zeros), ("all-saturated", &saturated)] {
        report.scenarios += 1;
        let checked = catch_unwind(AssertUnwindSafe(|| {
            let mut sub = Vec::new();
            let float_config = DecoderConfig {
                max_iterations: base.max_iterations,
                early_stop: true,
                rule: CheckRule::SumProduct,
                precision: Precision::F64,
                simd: None,
            };
            sub.push(FloodingDecoder::new(Arc::clone(ctx.graph()), float_config).decode(llrs));
            sub.push(
                ZigzagDecoder::new(
                    Arc::clone(ctx.graph()),
                    float_config.with_precision(Precision::F32),
                )
                .decode(llrs),
            );
            sub.push(LayeredDecoder::new(Arc::clone(ctx.graph()), float_config).decode(llrs));
            sub.push(
                QuantizedZigzagDecoder::new(Arc::clone(ctx.graph()), quantizer, float_config)
                    .decode(llrs),
            );
            let mut hw = HardwareDecoder::new(ctx.code(), ctx.schedule.clone(), core_config);
            sub.push(hw.decode(llrs).result);
            sub
        }));
        match checked {
            Err(_) => violate(10, "fault-panic", format!("{name} frame: a decoder panicked")),
            Ok(results) => {
                for r in results {
                    if r.iterations > base.max_iterations {
                        violate(10, "fault-hang", format!("{name}: exceeded the iteration cap"));
                    }
                    if r.converged && !syndrome_ok(ctx.graph(), &r.bits) {
                        violate(
                            10,
                            "fault-syndrome",
                            format!("{name}: converged with a dirty syndrome"),
                        );
                    }
                }
            }
        }
    }

    report
}

// ---------------------------------------------------------------------------
// Failure shrinking
// ---------------------------------------------------------------------------

/// Greedily reduces a failing case to a minimal reproducer, preserving its
/// identity (seed, rate, arithmetic — the parts that select *which* bug
/// fires) while shrinking everything that only makes the report bigger:
/// fewer iterations, Short instead of Normal frames, the default 6-bit
/// quantizer, fixed-iteration (`early_stop = false`) operation, the
/// natural schedule, the default memory configuration, the default
/// `p_io = 10`, BPSK modulation, and a simpler (or absent) fault scenario —
/// the FU fault drops first, then RAM faults drop one at a time,
/// activations simplify toward permanent, a stuck word shrinks toward
/// value `0`, and a flipped word toward mask `1`.
///
/// `still_fails` must return `true` when a candidate case still reproduces
/// the original failure; the shrinker keeps the smallest candidate that does.
pub fn shrink_case<F: FnMut(&CaseSpec) -> bool>(
    failing: &CaseSpec,
    mut still_fails: F,
) -> CaseSpec {
    let mut best = *failing;
    loop {
        let mut candidates: Vec<CaseSpec> = Vec::new();
        if best.max_iterations > 1 {
            candidates.push(CaseSpec { max_iterations: best.max_iterations / 2, ..best });
            candidates.push(CaseSpec { max_iterations: best.max_iterations - 1, ..best });
        }
        if best.frame == FrameSize::Normal && best.rate != CodeRate::R9_10 {
            candidates.push(CaseSpec { frame: FrameSize::Short, ..best });
        }
        if best.early_stop {
            candidates.push(CaseSpec { early_stop: false, ..best });
        }
        if best.quantizer_bits != 6 {
            candidates.push(CaseSpec { quantizer_bits: 6, ..best });
        }
        if best.schedule != ScheduleKind::Natural {
            candidates.push(CaseSpec { schedule: ScheduleKind::Natural, ..best });
        }
        if best.memory != MemoryConfig::default() {
            candidates.push(CaseSpec { memory: MemoryConfig::default(), ..best });
        }
        if best.p_io != 10 {
            candidates.push(CaseSpec { p_io: 10, ..best });
        }
        if best.modulation != Modulation::Bpsk {
            candidates.push(CaseSpec { modulation: Modulation::Bpsk, ..best });
        }
        if best.fabric > 1 {
            // Prefer dropping the fabric dimension outright; otherwise
            // shave one core at a time so a contention-dependent failure
            // keeps the smallest fabric that still shows it.
            candidates.push(CaseSpec { fabric: 1, ..best });
            candidates.push(CaseSpec { fabric: best.fabric - 1, ..best });
        }
        if best.simd.is_some() {
            // A failure that survives at the auto-detected tier is not
            // kernel-specific; drop the forced tier from the repro string.
            candidates.push(CaseSpec { simd: None, ..best });
        }
        if best.fault.fu_fault().is_some() {
            candidates.push(CaseSpec { fault: best.fault.with_fu(None), ..best });
        }
        let rams: Vec<TimedRamFault> = best.fault.ram_faults().copied().collect();
        let rebuild = |rams: &[TimedRamFault]| {
            let mut s = FaultScenario::none();
            for t in rams {
                s.push_ram(*t);
            }
            s.with_fu(best.fault.fu_fault())
        };
        for i in 0..rams.len() {
            // Drop fault `i` entirely (one fault shrinks to no fault).
            let mut fewer = rams.clone();
            fewer.remove(i);
            candidates.push(CaseSpec { fault: rebuild(&fewer), ..best });
            // Simplify fault `i` in place: activation toward permanent,
            // stuck value toward 0, flip mask toward 1.
            if rams[i].activation != FaultActivation::Permanent {
                let mut simpler = rams.clone();
                simpler[i].activation = FaultActivation::Permanent;
                candidates.push(CaseSpec { fault: rebuild(&simpler), ..best });
            }
            match rams[i].fault {
                RamFault::StuckWord { word, value } if value != 0 => {
                    let mut simpler = rams.clone();
                    simpler[i].fault = RamFault::StuckWord { word, value: 0 };
                    candidates.push(CaseSpec { fault: rebuild(&simpler), ..best });
                }
                RamFault::FlippedBits { word, mask } if mask != 1 => {
                    let mut simpler = rams.clone();
                    simpler[i].fault = RamFault::FlippedBits { word, mask: 1 };
                    candidates.push(CaseSpec { fault: rebuild(&simpler), ..best });
                }
                _ => {}
            }
        }
        match candidates.into_iter().find(|c| still_fails(c)) {
            Some(smaller) => best = smaller,
            None => return best,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_draws_every_modulation_with_the_right_anchor() {
        let mut seen = [false; 5]; // [bpsk, qpsk, 8psk, 16apsk, 32apsk]
        for index in 0..200u64 {
            let case = CaseSpec::generate(0xC0FE, index);
            match case.modulation {
                Modulation::Bpsk => seen[0] = true,
                Modulation::Qpsk => seen[1] = true,
                Modulation::Psk8 => seen[2] = true,
                Modulation::Apsk16 => seen[3] = true,
                Modulation::Apsk32 => seen[4] = true,
            }
            // QPSK shares the BPSK anchor (per-dimension identical channel,
            // so no dB shift); the symbol modulations keep their density
            // offsets (+2 / +4.5 / +7 dB).
            let delta =
                case.ebn0_db - anchor_ebn0_db(case.rate) - modulation_offset_db(case.modulation);
            let offsets: &[f64] = &[-0.4, 0.0, 0.6, 1.6];
            assert!(
                offsets.iter().any(|&o| (delta - o).abs() < 1e-9),
                "index {index}: {} offset {delta}",
                case.modulation as u8,
            );
        }
        assert!(seen.iter().all(|&s| s), "modulation coverage: {seen:?}");
    }

    #[test]
    fn qpsk_cases_round_trip_through_their_repro_string() {
        let case = CaseSpec { modulation: Modulation::Qpsk, ..CaseSpec::generate(7, 3) };
        let parsed: CaseSpec = case.to_string().parse().unwrap();
        assert_eq!(parsed, case);
    }

    #[test]
    fn apsk_cases_round_trip_through_their_repro_string() {
        for modulation in [Modulation::Apsk16, Modulation::Apsk32] {
            let case = CaseSpec { modulation, ..CaseSpec::generate(7, 3) };
            let parsed: CaseSpec = case.to_string().parse().unwrap();
            assert_eq!(parsed, case);
            assert!(case.to_string().contains("apsk"), "{case}");
        }
    }

    #[test]
    fn pre_scenario_fault_strings_parse_to_the_same_single_fault() {
        // Backward-compatibility pin: every pre-scenario `fault=` spelling
        // must parse to a scenario holding exactly that single permanent
        // RAM fault — structurally equal to what the old `Option<RamFault>`
        // API injected (`set_fault` is defined as that conversion, so
        // structural equality pins behavioral identity) — and must print
        // back byte-identically.
        let base = CaseSpec { fault: FaultScenario::none(), ..CaseSpec::generate(7, 3) };
        for (spec, fault) in [
            ("stuck@421:-31", RamFault::StuckWord { word: 421, value: -31 }),
            ("stuck@0:0", RamFault::StuckWord { word: 0, value: 0 }),
            ("flip@97:31", RamFault::FlippedBits { word: 97, mask: 31 }),
            ("flip@1023:1", RamFault::FlippedBits { word: 1023, mask: 1 }),
        ] {
            let text = format!("{base} fault={spec}");
            let parsed: CaseSpec = text.parse().unwrap();
            assert_eq!(parsed.fault.as_single_permanent(), Some(fault), "{spec}");
            assert_eq!(parsed.fault, FaultScenario::from(fault), "{spec}");
            assert_eq!(parsed.to_string(), text, "legacy spelling must stay canonical");
        }
        let healthy: CaseSpec = format!("{base} fault=none").parse().unwrap();
        assert!(healthy.fault.is_empty());
    }

    #[test]
    fn scenario_fault_strings_round_trip() {
        let base = CaseSpec::generate(7, 3);
        let scenarios = [
            // Multi-fault with a window, plus a stuck FU sign lane.
            FaultScenario::none()
                .with_ram(TimedRamFault {
                    fault: RamFault::StuckWord { word: 12, value: -3 },
                    activation: FaultActivation::Window { from: 1, until: 4 },
                })
                .with_ram(TimedRamFault::permanent(RamFault::FlippedBits { word: 900, mask: 17 }))
                .with_fu(Some(FuFault::StuckSign { unit: 359, negative: true })),
            // Per-commit random upset.
            FaultScenario::none().with_ram(TimedRamFault {
                fault: RamFault::FlippedBits { word: 7, mask: 1 },
                activation: FaultActivation::Random { seed: 77, per_mille: 333 },
            }),
            // FU-only scenarios.
            FaultScenario::none().with_fu(Some(FuFault::StuckMag { unit: 0, value: 9 })),
            FaultScenario::none().with_fu(Some(FuFault::StuckSign { unit: 17, negative: false })),
            // A window that covers the power-on fill.
            FaultScenario::none().with_ram(TimedRamFault {
                fault: RamFault::StuckWord { word: 0, value: 31 },
                activation: FaultActivation::Window { from: 0, until: 1 },
            }),
        ];
        for scenario in scenarios {
            let case = CaseSpec { fault: scenario, ..base };
            let parsed: CaseSpec = case.to_string().parse().unwrap();
            assert_eq!(parsed, case, "{case}");
        }
    }

    #[test]
    fn generated_fault_scenarios_round_trip_and_cover_the_dimension() {
        let (mut multi, mut window, mut random, mut fu) = (false, false, false, false);
        for index in 0..400u64 {
            let case = CaseSpec::generate(0xFA01_7EE7, index);
            let parsed: CaseSpec = case.to_string().parse().unwrap();
            assert_eq!(parsed, case, "index {index}");
            multi |= case.fault.ram_fault_count() > 1;
            fu |= case.fault.fu_fault().is_some();
            for t in case.fault.ram_faults() {
                match t.activation {
                    FaultActivation::Window { .. } => window = true,
                    FaultActivation::Random { .. } => random = true,
                    FaultActivation::Permanent => {}
                }
            }
        }
        assert!(
            multi && window && random && fu,
            "coverage: multi={multi} window={window} random={random} fu={fu}"
        );
    }

    #[test]
    fn forced_faults_are_never_empty_and_span_the_dimension() {
        let (mut extended, mut fu) = (false, false);
        for index in 0..200u64 {
            let case = force_fault(CaseSpec::generate(0xD1FF, index));
            assert!(!case.fault.is_empty(), "index {index}");
            extended |= case.fault.as_single_permanent().is_none();
            fu |= case.fault.fu_fault().is_some();
        }
        assert!(extended && fu, "forced coverage: extended={extended} fu={fu}");
    }

    #[test]
    fn fabric_dimension_round_trips_and_is_forced_in_the_sweep() {
        let mut multi = false;
        for index in 0..200u64 {
            let case = CaseSpec::generate(0xFAB, index);
            let parsed: CaseSpec = case.to_string().parse().unwrap();
            assert_eq!(parsed, case, "index {index}");
            multi |= case.fabric > 1;
            if case.fabric > 1 {
                assert!(case.to_string().contains(" fabric="), "{case}");
            } else {
                assert!(!case.to_string().contains("fabric="), "{case}");
            }
            let forced = force_fabric(case);
            assert!((2..=4).contains(&forced.fabric), "index {index}: P={}", forced.fabric);
            assert_eq!(forced.frame, FrameSize::Short, "the sweep demotes Normal frames");
            assert_ne!(forced.rate, CodeRate::R9_10, "R9/10 re-homes with the frame");
        }
        assert!(multi, "the generator must draw multi-core fabrics");
        // Legacy strings parse with fabric defaulting to the single core;
        // a zero core count is rejected, not defaulted.
        let legacy = "seed=7 rate=2/3 frame=short ebn0=2.4 q=6 arith=lut iters=6 early=true";
        assert_eq!(legacy.parse::<CaseSpec>().unwrap().fabric, 1);
        assert_eq!(format!("{legacy} fabric=4").parse::<CaseSpec>().unwrap().fabric, 4);
        assert!(format!("{legacy} fabric=0").parse::<CaseSpec>().is_err(), "zero cores");
    }

    #[test]
    fn simd_dimension_round_trips_and_defaults_to_auto() {
        // The generator never draws the dimension (append-only RNG
        // discipline: adding `simd=` must not shift any existing stream),
        // so a generated case omits the key and its string stays the
        // pre-SIMD canonical spelling.
        let case = CaseSpec::generate(0x51D, 11);
        assert_eq!(case.simd, None);
        assert!(!case.to_string().contains("simd="), "{case}");
        // A forced tier prints, round-trips, and shrinks back to auto.
        for (tier, name) in
            [(SimdTier::Scalar, "scalar"), (SimdTier::Avx2, "avx2"), (SimdTier::Avx512, "avx512")]
        {
            let forced = CaseSpec { simd: Some(tier), ..case };
            assert!(forced.to_string().contains(&format!(" simd={name}")), "{forced}");
            let parsed: CaseSpec = forced.to_string().parse().unwrap();
            assert_eq!(parsed, forced);
            assert_eq!(shrink_case(&forced, |_| true).simd, None, "tier must shrink away");
        }
        // Legacy strings parse with the tier defaulting to auto-detect;
        // an unknown tier is rejected, not defaulted.
        let legacy = "seed=7 rate=2/3 frame=short ebn0=2.4 q=6 arith=lut iters=6 early=true";
        assert_eq!(legacy.parse::<CaseSpec>().unwrap().simd, None);
        assert_eq!(
            format!("{legacy} simd=avx2").parse::<CaseSpec>().unwrap().simd,
            Some(SimdTier::Avx2)
        );
        assert!(format!("{legacy} simd=sse2").parse::<CaseSpec>().is_err(), "unknown tier");
    }

    #[test]
    fn shrinker_reduces_a_scenario_one_dimension_at_a_time() {
        // A failure that only needs one permanent stuck word must shrink a
        // three-part scenario down to exactly that fault.
        let start = CaseSpec {
            fault: FaultScenario::none()
                .with_ram(TimedRamFault {
                    fault: RamFault::StuckWord { word: 5, value: -9 },
                    activation: FaultActivation::Window { from: 0, until: 9 },
                })
                .with_ram(TimedRamFault::permanent(RamFault::FlippedBits { word: 80, mask: 6 }))
                .with_fu(Some(FuFault::StuckMag { unit: 12, value: 3 })),
            ..CaseSpec::generate(7, 3)
        };
        let shrunk = shrink_case(&start, |c| {
            c.fault.ram_faults().any(|t| matches!(t.fault, RamFault::StuckWord { word: 5, .. }))
        });
        assert_eq!(shrunk.fault.fu_fault(), None, "FU fault must shrink away");
        assert_eq!(shrunk.fault.ram_fault_count(), 1, "second RAM fault must shrink away");
        let kept = shrunk.fault.ram_faults().next().unwrap();
        assert_eq!(kept.activation, FaultActivation::Permanent, "activation must simplify");
        assert_eq!(kept.fault, RamFault::StuckWord { word: 5, value: 0 }, "value must shrink");
    }

    #[test]
    fn qpsk_demapper_path_matches_bpsk_per_dimension() {
        // QPSK maps and demaps per real dimension exactly like BPSK (same
        // ±1 samples, same noise sigma, same exact 2y/σ² LLR), so the same
        // RNG stream must yield the identical transmitted frame — and that
        // frame must decode through the standard chain.
        let system = Dvbs2System::new(SystemConfig {
            rate: CodeRate::R1_2,
            frame: FrameSize::Short,
            ..SystemConfig::default()
        })
        .unwrap();
        let mk = |modulation| {
            let mut rng = SmallRng::seed_from_u64(0x9A57);
            system.transmit_frame_with(&mut rng, 3.0, modulation)
        };
        let qpsk = mk(Modulation::Qpsk);
        assert_eq!(qpsk, mk(Modulation::Bpsk), "QPSK and BPSK paths must agree per dimension");
        let out = system.make_decoder().decode(&qpsk.llrs);
        assert_eq!(out.bits, qpsk.codeword, "QPSK frame must decode at 3 dB");
    }
}
