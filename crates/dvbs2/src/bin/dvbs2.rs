//! `dvbs2` — command-line front end for the DVB-S2 LDPC IP-core
//! reproduction.
//!
//! ```text
//! dvbs2 info  [RATE] [--short]                    code parameters
//! dvbs2 ber   RATE EBN0_DB [--frames N] [--short] [--decoder NAME]
//! dvbs2 hw    [RATE]                              cycles/throughput/area
//! dvbs2 vectors RATE EBN0_DB FRAMES SEED          golden vectors to stdout
//! ```

use dvbs2::channel::{default_threads, shannon_limit_biawgn_db, StopRule};
use dvbs2::decoder::{DecoderConfig, Quantizer};
use dvbs2::hardware::{
    AreaModel, ConnectivityRom, CoreConfig, HardwareDecoder, TestVectorSet, ThroughputModel,
    ST_0_13_UM,
};
use dvbs2::ldpc::{CodeParams, CodeRate, DvbS2Code, FrameSize};
use dvbs2::{DecoderKind, Dvbs2System, SystemConfig};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  dvbs2 info  [RATE] [--short]\n  dvbs2 ber   RATE EBN0_DB [--frames N] \
         [--short] [--decoder zigzag|flooding|layered|quantized|bitflip]\n  dvbs2 hw    [RATE]\n  \
         dvbs2 vectors RATE EBN0_DB FRAMES SEED\nRATE is one of 1/4 1/3 2/5 1/2 3/5 2/3 3/4 4/5 \
         5/6 8/9 9/10"
    );
    ExitCode::FAILURE
}

fn parse_rate(s: &str) -> Option<CodeRate> {
    s.parse().ok()
}

fn parse_decoder(s: &str) -> Option<DecoderKind> {
    match s {
        "zigzag" => Some(DecoderKind::Zigzag),
        "flooding" => Some(DecoderKind::Flooding),
        "layered" => Some(DecoderKind::Layered),
        "quantized" => Some(DecoderKind::Quantized(Quantizer::paper_6bit())),
        "bitflip" => Some(DecoderKind::BitFlipping),
        _ => None,
    }
}

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn option<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn cmd_info(args: &[String]) -> Option<()> {
    let frame = if flag(args, "--short") { FrameSize::Short } else { FrameSize::Normal };
    let rates: Vec<CodeRate> = match args.first().filter(|a| !a.starts_with("--")) {
        Some(r) => vec![parse_rate(r)?],
        None => CodeRate::ALL.to_vec(),
    };
    println!(
        "{:>6} {:>8} {:>8} {:>4} {:>4} {:>8} {:>6} {:>12}",
        "rate", "K", "N-K", "j", "k", "E_IN", "Addr", "Shannon [dB]"
    );
    for rate in rates {
        let p = CodeParams::new(rate, frame).ok()?;
        println!(
            "{:>6} {:>8} {:>8} {:>4} {:>4} {:>8} {:>6} {:>12.3}",
            rate.to_string(),
            p.k,
            p.n_check,
            p.hi.degree,
            p.check_degree,
            p.e_in(),
            p.addr_entries(),
            shannon_limit_biawgn_db(p.k as f64 / p.n as f64)
        );
    }
    Some(())
}

fn cmd_ber(args: &[String]) -> Option<()> {
    let rate = parse_rate(args.first()?)?;
    let ebn0: f64 = args.get(1)?.parse().ok()?;
    let frames: usize = option(args, "--frames").map_or(Some(50), |v| v.parse().ok())?;
    let frame = if flag(args, "--short") { FrameSize::Short } else { FrameSize::Normal };
    let decoder = option(args, "--decoder").map_or(Some(DecoderKind::Zigzag), parse_decoder)?;
    let system = Dvbs2System::new(SystemConfig {
        rate,
        frame,
        decoder,
        decoder_config: DecoderConfig::default(),
        ..SystemConfig::default()
    })
    .ok()?;
    let est = system.simulate_ber(
        ebn0,
        StopRule { max_frames: frames, target_frame_errors: 50 },
        default_threads(),
    );
    println!(
        "rate {rate} {frame} @ {ebn0} dB ({decoder:?}): BER {:.3e}  FER {:.3e}  \
         over {} frames, {:.1} iterations/frame",
        est.ber(),
        est.fer(),
        est.frames,
        est.avg_iterations()
    );
    Some(())
}

fn cmd_hw(args: &[String]) -> Option<()> {
    let rate = match args.first() {
        Some(r) => parse_rate(r)?,
        None => CodeRate::R1_2,
    };
    let code = DvbS2Code::new(rate, FrameSize::Normal).ok()?;
    let params = *code.params();
    let model = ThroughputModel::paper(&ST_0_13_UM);
    let mut hw = HardwareDecoder::with_natural_schedule(&code, CoreConfig::default());
    let channel = vec![15i32; params.n]; // any frame: cycle counts are data-independent
    let out = hw.decode_quantized(&channel);
    let rom = ConnectivityRom::build(&params, code.table());
    println!("rate {rate} normal frame, 30 iterations @ {} MHz:", model.clock_mhz);
    println!(
        "  cycles: measured {} (Eq. 8: {}), throughput {:.1} Mbit/s (Eq. 8: {:.1})",
        out.cycles.total_cycles,
        model.cycles(&params),
        out.cycles.throughput_mbps(model.clock_mhz, params.k),
        model.throughput_mbps(&params)
    );
    println!(
        "  connectivity: {} (shift, address) entries = {} bits",
        rom.words(),
        rom.storage_bits()
    );
    println!("  multi-rate core area ({}):", ST_0_13_UM.name);
    print!("{}", AreaModel::paper().report(FrameSize::Normal));
    Some(())
}

fn cmd_vectors(args: &[String]) -> Option<()> {
    let rate = parse_rate(args.first()?)?;
    let ebn0: f64 = args.get(1)?.parse().ok()?;
    let frames: usize = args.get(2)?.parse().ok()?;
    let seed: u64 = args.get(3)?.parse().ok()?;
    let set = TestVectorSet::generate(
        rate,
        FrameSize::Short,
        Quantizer::paper_6bit(),
        frames,
        ebn0,
        seed,
    );
    print!("{}", set.to_text());
    Some(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return usage();
    };
    let ok = match cmd.as_str() {
        "info" => cmd_info(rest),
        "ber" => cmd_ber(rest),
        "hw" => cmd_hw(rest),
        "vectors" => cmd_vectors(rest),
        _ => None,
    };
    match ok {
        Some(()) => ExitCode::SUCCESS,
        None => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_parse() {
        assert_eq!(parse_rate("1/2"), Some(CodeRate::R1_2));
        assert_eq!(parse_rate("9/10"), Some(CodeRate::R9_10));
        assert_eq!(parse_rate("7/8"), None);
    }

    #[test]
    fn decoders_parse() {
        assert!(matches!(parse_decoder("zigzag"), Some(DecoderKind::Zigzag)));
        assert!(matches!(parse_decoder("bitflip"), Some(DecoderKind::BitFlipping)));
        assert!(parse_decoder("magic").is_none());
    }

    #[test]
    fn flags_and_options() {
        let args: Vec<String> =
            ["--short", "--frames", "25"].iter().map(|s| s.to_string()).collect();
        assert!(flag(&args, "--short"));
        assert!(!flag(&args, "--long"));
        assert_eq!(option(&args, "--frames"), Some("25"));
        assert_eq!(option(&args, "--seed"), None);
    }

    #[test]
    fn info_runs_for_every_rate() {
        assert!(cmd_info(&[]).is_some());
        assert!(cmd_info(&["1/2".into(), "--short".into()]).is_some());
        assert!(cmd_info(&["7/8".into()]).is_none());
    }
}
