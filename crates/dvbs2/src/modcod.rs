//! MODCOD dispatch: mapping stream MODCOD slots onto code contexts and
//! decoder profiles.
//!
//! A DVB-S2 receiver learns each frame's MODCOD (modulation + code rate,
//! plus the frame-size flag) from the PLHEADER, then must decode the
//! payload with the matching code. [`ModcodTable`] is the service-layer
//! form of that dispatch: a dense slot-indexed table where every entry
//! owns a ready [`Dvbs2System`] (code, Tanner graph, encoder) and a
//! [`DecoderProfile`] saying *which* decoder the pipeline should
//! instantiate for frames of that slot. Entries are `Arc`-shared so a
//! worker pool can hold per-worker decoder instances over one shared
//! graph without rebuilding code contexts.

use crate::{DecoderKind, Dvbs2System, SystemConfig};
use dvbs2_channel::Modulation;
use dvbs2_decoder::{
    CheckRule, Decoder, DecoderConfig, Precision, Quantizer, TileSchedule, TiledBatchDecoder,
};
use dvbs2_ldpc::{CodeError, CodeParams, CodeRate, FrameSize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// One MODCOD: the transmission parameters a PLHEADER announces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Modcod {
    /// Payload modulation.
    pub modulation: Modulation,
    /// Inner LDPC code rate.
    pub rate: CodeRate,
    /// FECFRAME size (normal 64 800 / short 16 200).
    pub frame: FrameSize,
}

impl Modcod {
    /// Convenience constructor.
    pub fn new(modulation: Modulation, rate: CodeRate, frame: FrameSize) -> Self {
        Modcod { modulation, rate, frame }
    }
}

/// Which decoder a MODCOD slot runs, and under what iteration policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecoderProfile {
    /// Decoder algorithm / arithmetic.
    pub kind: DecoderKind,
    /// Iteration cap, early-stop policy, check rule, precision.
    pub config: DecoderConfig,
}

impl DecoderProfile {
    /// The default service profile for a code point.
    ///
    /// The mapping mirrors how the paper's core would be provisioned in a
    /// receiver: the highest rates (R 8/9, R 9/10) run the fixed-point
    /// 6-bit zigzag decoder (the synthesized datapath, cheapest per
    /// iteration), the lowest rates (≤ 2/5, where check degrees are small
    /// and waterfalls are steep) keep the flooding reference, and the
    /// mid rates use the zigzag schedule in the f32 fast path.
    pub fn default_for(rate: CodeRate, frame: FrameSize) -> Self {
        let _ = frame; // profile choice is rate-driven; frame sets only sizes
        let fast = DecoderConfig::default().with_precision(Precision::F32);
        match rate {
            CodeRate::R1_4 | CodeRate::R1_3 | CodeRate::R2_5 => {
                DecoderProfile { kind: DecoderKind::Flooding, config: fast }
            }
            CodeRate::R8_9 | CodeRate::R9_10 => DecoderProfile {
                kind: DecoderKind::Quantized(Quantizer::paper_6bit()),
                config: DecoderConfig::default(),
            },
            _ => DecoderProfile { kind: DecoderKind::Zigzag, config: fast },
        }
    }
}

/// One dispatch-table entry: a MODCOD, its decoder profile, and a fully
/// built code context.
#[derive(Debug)]
pub struct ModcodEntry {
    /// The MODCOD this entry serves.
    pub modcod: Modcod,
    /// The decoder the pipeline instantiates for this slot.
    pub profile: DecoderProfile,
    system: Dvbs2System,
}

impl ModcodEntry {
    /// Builds the code context for one MODCOD/profile pair.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError`] for undefined rate/frame combinations.
    pub fn new(modcod: Modcod, profile: DecoderProfile) -> Result<Self, CodeError> {
        let system = Dvbs2System::new(SystemConfig {
            rate: modcod.rate,
            frame: modcod.frame,
            modulation: modcod.modulation,
            decoder: profile.kind,
            decoder_config: profile.config,
            ..SystemConfig::default()
        })?;
        Ok(ModcodEntry { modcod, profile, system })
    }

    /// The underlying simulation system (code, graph, encoder).
    pub fn system(&self) -> &Dvbs2System {
        &self.system
    }

    /// Code parameters (`n`, `k`) of this slot's LDPC code.
    pub fn params(&self) -> &CodeParams {
        self.system.params()
    }

    /// Channel LLRs per frame for this slot (`N_ldpc`).
    pub fn frame_len(&self) -> usize {
        self.system.params().n
    }

    /// Information bits per frame for this slot (`K_ldpc`).
    pub fn info_len(&self) -> usize {
        self.system.params().k
    }

    /// Creates a fresh decoder following this entry's profile (one per
    /// worker thread; decoders own their scratch state).
    pub fn make_decoder(&self) -> Box<dyn Decoder + Send> {
        self.system.make_decoder_for(self.profile.kind, self.profile.config)
    }

    /// Creates a multi-frame [`TiledBatchDecoder`] for this slot, or `None`
    /// when the profile cannot be batched.
    ///
    /// Batched decoding is available exactly when it is *transparent*: the
    /// tiled kernels replay the profile's own schedule (flooding, zigzag or
    /// layered) with a min-sum rule and are bit-identical, frame for frame,
    /// to the single-frame decoder — so exactly those three kinds with
    /// `NormalizedMinSum`/`OffsetMinSum` rules qualify. Pipeline workers
    /// probe this once per slot and fall back to [`Self::make_decoder`] on
    /// `None`.
    pub fn make_batch_decoder(&self, max_batch: usize) -> Option<TiledBatchDecoder> {
        let schedule = match self.profile.kind {
            DecoderKind::Flooding => TileSchedule::Flooding,
            DecoderKind::Zigzag => TileSchedule::Zigzag,
            DecoderKind::Layered => TileSchedule::Layered,
            _ => return None,
        };
        let batchable = matches!(
            self.profile.config.rule,
            CheckRule::NormalizedMinSum(_) | CheckRule::OffsetMinSum(_)
        );
        batchable.then(|| {
            TiledBatchDecoder::new(
                Arc::clone(self.system.graph()),
                self.profile.config,
                schedule,
                max_batch,
            )
        })
    }
}

/// A dense, slot-indexed MODCOD dispatch table.
///
/// Slot `i` of the table serves frames tagged `modcod == i` (see
/// `dvbs2_channel::FrameTag`). Entries are `Arc`-shared: the pipeline's
/// ingress validates frame lengths against the entry, and each worker
/// lazily builds its own decoder from the shared entry on first use.
#[derive(Debug, Clone, Default)]
pub struct ModcodTable {
    entries: Vec<Arc<ModcodEntry>>,
}

impl ModcodTable {
    /// Builds a table from MODCODs using [`DecoderProfile::default_for`].
    ///
    /// # Errors
    ///
    /// Returns [`CodeError`] if any rate/frame combination is undefined.
    pub fn build(modcods: &[Modcod]) -> Result<Self, CodeError> {
        Self::with_profiles(
            modcods
                .iter()
                .map(|&m| (m, DecoderProfile::default_for(m.rate, m.frame)))
                .collect::<Vec<_>>()
                .as_slice(),
        )
    }

    /// Builds a table with explicit per-slot decoder profiles.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError`] if any rate/frame combination is undefined.
    pub fn with_profiles(slots: &[(Modcod, DecoderProfile)]) -> Result<Self, CodeError> {
        let mut entries = Vec::with_capacity(slots.len());
        for &(modcod, profile) in slots {
            entries.push(Arc::new(ModcodEntry::new(modcod, profile)?));
        }
        Ok(ModcodTable { entries })
    }

    /// The entry serving slot `slot`, or `None` for an unknown slot.
    pub fn lookup(&self, slot: usize) -> Option<&Arc<ModcodEntry>> {
        self.entries.get(slot)
    }

    /// The entry serving slot `slot`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown slot; use [`ModcodTable::lookup`] to probe.
    pub fn entry(&self, slot: usize) -> &Arc<ModcodEntry> {
        self.lookup(slot).unwrap_or_else(|| panic!("unknown MODCOD slot {slot}"))
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no slots.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in slot order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<ModcodEntry>> {
        self.entries.iter()
    }

    /// The largest frame length any slot can produce (0 for an empty
    /// table) — what an ingress stage sizes its scratch buffers to.
    pub fn max_frame_len(&self) -> usize {
        self.entries.iter().map(|e| e.frame_len()).max().unwrap_or(0)
    }
}

/// A point-in-time view of a [`ModcodRegistry`]: the table plus the epoch
/// it was installed under.
#[derive(Debug, Clone)]
pub struct ModcodSnapshot {
    /// Monotonic reconfiguration epoch (0 for the initial table).
    pub epoch: u64,
    /// The table active at that epoch, shared without copying entries.
    pub table: Arc<ModcodTable>,
}

/// A hot-swappable MODCOD table: the reconfiguration point of a long-lived
/// decode service.
///
/// Readers take cheap epoch-tagged [`ModcodSnapshot`]s; a swap installs a
/// whole new table under the next epoch atomically (readers see either the
/// old snapshot or the new one, never a torn mix). Snapshots are `Arc`s, so
/// in-flight work started under an old epoch keeps its table alive until it
/// finishes — exactly the drain semantics a rolling shard replacement
/// needs.
#[derive(Debug)]
pub struct ModcodRegistry {
    inner: RwLock<Arc<ModcodTable>>,
    epoch: AtomicU64,
}

impl ModcodRegistry {
    /// Installs the initial table at epoch 0.
    pub fn new(table: ModcodTable) -> Self {
        ModcodRegistry { inner: RwLock::new(Arc::new(table)), epoch: AtomicU64::new(0) }
    }

    /// The current table and its epoch.
    pub fn snapshot(&self) -> ModcodSnapshot {
        let guard = self.inner.read().expect("no panics hold the registry lock");
        // Epoch is read under the same lock a swap writes it under, so the
        // pair is consistent.
        ModcodSnapshot { epoch: self.epoch.load(Ordering::Relaxed), table: Arc::clone(&guard) }
    }

    /// The current epoch without snapshotting the table.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Atomically replaces the table, bumping the epoch. Returns the new
    /// epoch.
    pub fn swap(&self, table: ModcodTable) -> u64 {
        let mut guard = self.inner.write().expect("no panics hold the registry lock");
        *guard = Arc::new(table);
        self.epoch.fetch_add(1, Ordering::Relaxed) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> ModcodTable {
        ModcodTable::build(&[
            Modcod::new(Modulation::Bpsk, CodeRate::R1_2, FrameSize::Short),
            Modcod::new(Modulation::Psk8, CodeRate::R3_4, FrameSize::Short),
            Modcod::new(Modulation::Bpsk, CodeRate::R8_9, FrameSize::Short),
            Modcod::new(Modulation::Bpsk, CodeRate::R1_4, FrameSize::Short),
        ])
        .unwrap()
    }

    #[test]
    fn slots_resolve_to_matching_codes() {
        let t = table();
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        assert_eq!(t.entry(0).frame_len(), 16_200);
        assert_eq!(t.entry(0).info_len(), 7_200);
        assert_eq!(t.entry(1).modcod.rate, CodeRate::R3_4);
        assert!(t.lookup(4).is_none());
        assert_eq!(t.max_frame_len(), 16_200);
    }

    #[test]
    fn default_profiles_follow_the_rate_mapping() {
        let t = table();
        assert!(matches!(t.entry(0).profile.kind, DecoderKind::Zigzag));
        assert!(matches!(t.entry(1).profile.kind, DecoderKind::Zigzag));
        assert!(matches!(t.entry(2).profile.kind, DecoderKind::Quantized(_)));
        assert!(matches!(t.entry(3).profile.kind, DecoderKind::Flooding));
        assert_eq!(t.entry(0).profile.config.precision, Precision::F32);
    }

    #[test]
    fn entries_make_working_decoders() {
        let t = table();
        for slot in 0..t.len() {
            let entry = t.entry(slot);
            let mut dec = entry.make_decoder();
            // The all-zero codeword with confident LLRs must decode clean.
            let llrs = vec![5.0; entry.frame_len()];
            let out = dec.decode(&llrs);
            assert!(out.converged, "slot {slot} ({})", dec.name());
            assert!(out.bits.iter().all(|b| !b), "slot {slot}");
        }
    }

    #[test]
    fn batch_decoders_exist_exactly_for_batchable_profiles() {
        // Default profiles never batch: the floating-point slots keep the
        // exact sum-product rule (not min-sum), and the quantized slot is
        // not a tiled schedule at all.
        let t = table();
        for slot in 0..t.len() {
            assert!(t.entry(slot).make_batch_decoder(8).is_none(), "slot {slot}");
        }
        // Min-sum profiles batch for all three tiled schedules, and the
        // batch decoder matches the slot's single-frame decoder on a clean
        // frame.
        let m = Modcod::new(Modulation::Bpsk, CodeRate::R1_2, FrameSize::Short);
        for (kind, schedule) in [
            (DecoderKind::Flooding, TileSchedule::Flooding),
            (DecoderKind::Zigzag, TileSchedule::Zigzag),
            (DecoderKind::Layered, TileSchedule::Layered),
        ] {
            let profile = DecoderProfile {
                kind,
                config: DecoderConfig::default()
                    .with_rule(CheckRule::NormalizedMinSum(0.8))
                    .with_precision(Precision::F32),
            };
            let t = ModcodTable::with_profiles(&[(m, profile)]).unwrap();
            let entry = t.entry(0);
            let mut batch = entry.make_batch_decoder(4).expect("min-sum profiles batch");
            assert_eq!(batch.schedule(), schedule);
            let llrs = vec![5.0; entry.frame_len()];
            let single = entry.make_decoder().decode(&llrs);
            let outs = batch.decode_batch(&[&llrs, &llrs, &llrs]);
            for (i, out) in outs.iter().enumerate() {
                assert_eq!(*out, single, "{schedule:?} lane {i}");
            }
        }
    }

    #[test]
    fn apsk_modcods_build_working_entries() {
        let t = ModcodTable::build(&[
            Modcod::new(Modulation::Apsk16, CodeRate::R2_3, FrameSize::Short),
            Modcod::new(Modulation::Apsk32, CodeRate::R3_4, FrameSize::Short),
        ])
        .unwrap();
        for slot in 0..t.len() {
            let entry = t.entry(slot);
            let out = entry.make_decoder().decode(&vec![5.0; entry.frame_len()]);
            assert!(out.converged && out.bits.iter().all(|b| !b), "slot {slot}");
        }
    }

    #[test]
    fn registry_swaps_are_epoch_tagged_and_keep_old_snapshots_alive() {
        let registry = ModcodRegistry::new(table());
        let before = registry.snapshot();
        assert_eq!(before.epoch, 0);
        assert_eq!(before.table.len(), 4);
        let new_epoch = registry.swap(
            ModcodTable::build(&[Modcod::new(Modulation::Qpsk, CodeRate::R1_2, FrameSize::Short)])
                .unwrap(),
        );
        assert_eq!(new_epoch, 1);
        assert_eq!(registry.epoch(), 1);
        let after = registry.snapshot();
        assert_eq!((after.epoch, after.table.len()), (1, 1));
        // The pre-swap snapshot still serves its (replaced) table.
        assert_eq!(before.table.len(), 4);
        assert_eq!(before.table.entry(1).modcod.rate, CodeRate::R3_4);
    }

    #[test]
    fn explicit_profiles_override_the_defaults() {
        let m = Modcod::new(Modulation::Bpsk, CodeRate::R1_2, FrameSize::Short);
        let profile = DecoderProfile {
            kind: DecoderKind::Layered,
            config: DecoderConfig::default().with_max_iterations(12),
        };
        let t = ModcodTable::with_profiles(&[(m, profile)]).unwrap();
        assert!(matches!(t.entry(0).profile.kind, DecoderKind::Layered));
        assert_eq!(t.entry(0).profile.config.max_iterations, 12);
        let mut dec = t.entry(0).make_decoder();
        assert_eq!(dec.name(), "layered");
        let out = dec.decode(&vec![4.0; t.entry(0).frame_len()]);
        assert!(out.converged);
    }
}
