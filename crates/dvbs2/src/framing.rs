//! Stream adaptation: BBFRAMEs (EN 302 307 §5.1–5.2).
//!
//! Upstream of the FEC chain, DVB-S2 packs user data into baseband frames:
//! an 80-bit BBHEADER (mode/stream fields protected by CRC-8) followed by
//! the data field and zero padding up to `K_bch`. This module implements
//! the header, its CRC, and frame assembly/extraction, completing the
//! transmit path from user bits to the LDPC codeword the paper's decoder
//! receives.

use dvbs2_ldpc::BitVec;
use std::fmt;

/// The DVB-S2 CRC-8 generator `x^8 + x^7 + x^6 + x^4 + x^2 + 1`
/// (feedback taps 0xD5), MSB-first over the 72 header bits.
pub fn crc8_dvbs2(bits: impl IntoIterator<Item = bool>) -> u8 {
    let mut crc = 0u8;
    for bit in bits {
        let msb = (crc >> 7) & 1 == 1;
        crc <<= 1;
        if msb ^ bit {
            crc ^= 0xD5;
        }
    }
    crc
}

/// Errors from BBFRAME parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FramingError {
    /// The header CRC-8 check failed (the frame was corrupted).
    HeaderCrc {
        /// CRC computed over the received header fields.
        computed: u8,
        /// CRC carried in the received header.
        received: u8,
    },
    /// The declared data-field length exceeds the frame capacity.
    DataFieldTooLong {
        /// Declared length in bits.
        dfl: usize,
        /// Frame capacity in bits.
        capacity: usize,
    },
    /// The frame is shorter than one BBHEADER.
    FrameTooShort,
}

impl fmt::Display for FramingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FramingError::HeaderCrc { computed, received } => {
                write!(
                    f,
                    "BBHEADER CRC mismatch: computed {computed:#04x}, received {received:#04x}"
                )
            }
            FramingError::DataFieldTooLong { dfl, capacity } => {
                write!(f, "data field of {dfl} bits exceeds frame capacity {capacity}")
            }
            FramingError::FrameTooShort => write!(f, "frame shorter than one BBHEADER"),
        }
    }
}

impl std::error::Error for FramingError {}

/// The 80-bit baseband header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BbHeader {
    /// MATYPE: stream/mode flags (16 bits).
    pub matype: u16,
    /// User-packet length in bits (16 bits).
    pub upl: u16,
    /// Data-field length in bits (16 bits).
    pub dfl: u16,
    /// SYNC byte of the user packets (8 bits).
    pub sync: u8,
    /// Distance to the first user-packet start in the data field (16 bits).
    pub syncd: u16,
}

/// Bits of the BBHEADER including CRC.
pub const BBHEADER_BITS: usize = 80;

impl BbHeader {
    /// Serializes to 80 bits (72 field bits + CRC-8), MSB-first per field.
    pub fn to_bits(&self) -> BitVec {
        let mut bits = BitVec::zeros(0);
        push_u16(&mut bits, self.matype);
        push_u16(&mut bits, self.upl);
        push_u16(&mut bits, self.dfl);
        push_u8(&mut bits, self.sync);
        push_u16(&mut bits, self.syncd);
        let crc = crc8_dvbs2(bits.iter());
        push_u8(&mut bits, crc);
        debug_assert_eq!(bits.len(), BBHEADER_BITS);
        bits
    }

    /// Parses and CRC-checks the first 80 bits of a frame.
    ///
    /// # Errors
    ///
    /// Returns [`FramingError::FrameTooShort`] or [`FramingError::HeaderCrc`].
    pub fn parse(frame: &BitVec) -> Result<Self, FramingError> {
        if frame.len() < BBHEADER_BITS {
            return Err(FramingError::FrameTooShort);
        }
        let field = |start: usize, width: usize| -> u32 {
            (0..width).fold(0u32, |acc, i| (acc << 1) | u32::from(frame.get(start + i)))
        };
        let computed = crc8_dvbs2((0..72).map(|i| frame.get(i)));
        let received = field(72, 8) as u8;
        if computed != received {
            return Err(FramingError::HeaderCrc { computed, received });
        }
        Ok(BbHeader {
            matype: field(0, 16) as u16,
            upl: field(16, 16) as u16,
            dfl: field(32, 16) as u16,
            sync: field(48, 8) as u8,
            syncd: field(56, 16) as u16,
        })
    }
}

fn push_u16(bits: &mut BitVec, v: u16) {
    for i in (0..16).rev() {
        bits.push((v >> i) & 1 == 1);
    }
}

fn push_u8(bits: &mut BitVec, v: u8) {
    for i in (0..8).rev() {
        bits.push((v >> i) & 1 == 1);
    }
}

/// Assembles a BBFRAME of exactly `k_bch` bits: header, data field, zero
/// padding. The header's `dfl` is set to the payload length.
///
/// # Errors
///
/// Returns [`FramingError::DataFieldTooLong`] if the payload does not fit.
pub fn assemble_bbframe(
    mut header: BbHeader,
    payload: &BitVec,
    k_bch: usize,
) -> Result<BitVec, FramingError> {
    let capacity = k_bch - BBHEADER_BITS;
    if payload.len() > capacity || payload.len() > u16::MAX as usize {
        return Err(FramingError::DataFieldTooLong { dfl: payload.len(), capacity });
    }
    header.dfl = payload.len() as u16;
    let mut frame = header.to_bits();
    frame.extend(payload.iter());
    while frame.len() < k_bch {
        frame.push(false);
    }
    Ok(frame)
}

/// Extracts the header and data field from a received BBFRAME.
///
/// # Errors
///
/// Returns [`FramingError`] on CRC failure or an impossible `dfl`.
pub fn extract_bbframe(frame: &BitVec) -> Result<(BbHeader, BitVec), FramingError> {
    let header = BbHeader::parse(frame)?;
    let dfl = header.dfl as usize;
    if BBHEADER_BITS + dfl > frame.len() {
        return Err(FramingError::DataFieldTooLong { dfl, capacity: frame.len() - BBHEADER_BITS });
    }
    let payload = (0..dfl).map(|i| frame.get(BBHEADER_BITS + i)).collect();
    Ok((header, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> BbHeader {
        BbHeader { matype: 0xF000, upl: 1504, dfl: 0, sync: 0x47, syncd: 42 }
    }

    #[test]
    fn header_round_trips() {
        let h = header();
        let bits = h.to_bits();
        assert_eq!(bits.len(), BBHEADER_BITS);
        let parsed = BbHeader::parse(&bits).unwrap();
        assert_eq!(parsed.matype, h.matype);
        assert_eq!(parsed.sync, 0x47);
        assert_eq!(parsed.syncd, 42);
    }

    #[test]
    fn corrupted_header_fails_crc() {
        let mut bits = header().to_bits();
        bits.toggle(5);
        assert!(matches!(BbHeader::parse(&bits), Err(FramingError::HeaderCrc { .. })));
    }

    #[test]
    fn crc8_known_properties() {
        // All-zero input gives zero; a single leading 1 gives the generator
        // remainder pattern.
        assert_eq!(crc8_dvbs2(std::iter::repeat_n(false, 72)), 0);
        assert_ne!(crc8_dvbs2(std::iter::once(true).chain(std::iter::repeat_n(false, 71))), 0);
        // Linearity over GF(2): crc(a ^ b) = crc(a) ^ crc(b).
        let a: Vec<bool> = (0..72).map(|i| i % 3 == 0).collect();
        let b: Vec<bool> = (0..72).map(|i| i % 5 == 0).collect();
        let ab: Vec<bool> = a.iter().zip(&b).map(|(&x, &y)| x ^ y).collect();
        assert_eq!(crc8_dvbs2(ab), crc8_dvbs2(a.iter().copied()) ^ crc8_dvbs2(b.iter().copied()));
    }

    #[test]
    fn bbframe_assembles_and_extracts() {
        let payload: BitVec = (0..1000).map(|i| i % 7 == 0).collect();
        let frame = assemble_bbframe(header(), &payload, 7032).unwrap();
        assert_eq!(frame.len(), 7032);
        let (h, data) = extract_bbframe(&frame).unwrap();
        assert_eq!(h.dfl, 1000);
        assert_eq!(data, payload);
    }

    #[test]
    fn oversized_payload_is_rejected() {
        let payload = BitVec::zeros(7032);
        assert!(matches!(
            assemble_bbframe(header(), &payload, 7032),
            Err(FramingError::DataFieldTooLong { .. })
        ));
    }

    #[test]
    fn padding_is_zero() {
        let payload: BitVec = (0..100).map(|_| true).collect();
        let frame = assemble_bbframe(header(), &payload, 7032).unwrap();
        for i in BBHEADER_BITS + 100..7032 {
            assert!(!frame.get(i), "padding bit {i} set");
        }
    }
}
