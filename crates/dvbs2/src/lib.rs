//! End-to-end DVB-S2 LDPC decoding — the facade over the workspace that
//! reproduces *"A Synthesizable IP Core for DVB-S2 LDPC Code Decoding"*
//! (Kienle, Brack, Wehn — DATE 2005).
//!
//! The sub-crates remain available as modules:
//!
//! * [`ldpc`] — code construction, Tanner graph, IRA encoder;
//! * [`channel`] — modulation, AWGN, Shannon limits, Monte-Carlo harness;
//! * [`decoder`] — flooding/zigzag/layered and fixed-point decoders;
//! * [`hardware`] — the cycle-accurate IP-core model, throughput and area.
//!
//! [`Dvbs2System`] wires a complete transmit→receive chain for simulation.
//!
//! # Example
//!
//! ```
//! use dvbs2::{DecoderKind, Dvbs2System, SystemConfig};
//! use dvbs2::ldpc::{CodeRate, FrameSize};
//! # fn main() -> Result<(), dvbs2::ldpc::CodeError> {
//! let system = Dvbs2System::new(SystemConfig {
//!     rate: CodeRate::R1_2,
//!     frame: FrameSize::Short,
//!     ..SystemConfig::default()
//! })?;
//! let mut decoder = system.make_decoder();
//! let mut rng = rand::rng();
//! let frame = system.transmit_frame(&mut rng, 3.0);
//! let out = decoder.decode(&frame.llrs);
//! assert_eq!(out.bits, frame.codeword);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use dvbs2_bch as bch;
pub use dvbs2_channel as channel;
pub use dvbs2_decoder as decoder;
pub use dvbs2_hardware as hardware;
pub use dvbs2_ldpc as ldpc;

mod fec;
pub mod framing;
mod modcod;
pub mod oracle;
pub use fec::{FecChain, FecDecodeResult};
pub use modcod::{
    DecoderProfile, Modcod, ModcodEntry, ModcodRegistry, ModcodSnapshot, ModcodTable,
};

/// The workspace's most commonly used items in one import.
pub mod prelude {
    pub use crate::{
        DecoderKind, DecoderProfile, Dvbs2System, FecChain, FecDecodeResult, Modcod, ModcodEntry,
        ModcodRegistry, ModcodSnapshot, ModcodTable, SystemConfig, TransmittedFrame,
    };
    pub use dvbs2_bch::{BchCode, BchDecoder, BchEncoder};
    pub use dvbs2_channel::{
        mix_seed, monte_carlo_batches, monte_carlo_frames, noise_sigma, shannon_limit_biawgn_db,
        AwgnChannel, BerEstimate, FrameOutcome, Modulation, StopRule,
    };
    pub use dvbs2_decoder::{
        CheckRule, DecodeResult, Decoder, DecoderConfig, FloodingDecoder, LayeredDecoder,
        Precision, QuantizedZigzagDecoder, Quantizer, SimdTier, TileSchedule, TiledBatchDecoder,
        ZigzagDecoder,
    };
    pub use dvbs2_hardware::{
        optimize_schedule, AnnealOptions, AreaModel, CnSchedule, ConnectivityRom, CoreConfig,
        HardwareDecoder, MemoryConfig, ThroughputModel,
    };
    pub use dvbs2_ldpc::{BitVec, CodeParams, CodeRate, DvbS2Code, Encoder, FrameSize};
}

use dvbs2_channel::{AwgnChannel, FrameOutcome, Modulation};
use dvbs2_decoder::{
    Decoder, DecoderConfig, FloodingDecoder, LayeredDecoder, QuantizedZigzagDecoder, Quantizer,
    ZigzagDecoder,
};
use dvbs2_ldpc::{
    BitVec, CodeError, CodeParams, CodeRate, DvbS2Code, Encoder, FrameSize, TannerGraph,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Which decoder the system instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum DecoderKind {
    /// Conventional flooding schedule (Fig. 2a baseline).
    Flooding,
    /// The paper's optimized zigzag schedule (Fig. 2b).
    #[default]
    Zigzag,
    /// Layered schedule (extension).
    Layered,
    /// Fixed-point zigzag with the given quantizer.
    Quantized(Quantizer),
    /// Hard-decision Gallager-B bit flipping (baseline, several dB worse).
    BitFlipping,
}

/// Configuration of a complete simulation chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConfig {
    /// Code rate.
    pub rate: CodeRate,
    /// Frame size.
    pub frame: FrameSize,
    /// Modulation (per-dimension equivalent under AWGN).
    pub modulation: Modulation,
    /// Decoder selection.
    pub decoder: DecoderKind,
    /// Iteration policy and check rule.
    pub decoder_config: DecoderConfig,
    /// Base seed for reproducible simulations.
    pub seed: u64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            rate: CodeRate::R1_2,
            frame: FrameSize::Normal,
            modulation: Modulation::Bpsk,
            decoder: DecoderKind::default(),
            decoder_config: DecoderConfig::default(),
            seed: 0xD5B2,
        }
    }
}

/// One transmitted frame: the reference codeword and its received LLRs.
#[derive(Debug, Clone, PartialEq)]
pub struct TransmittedFrame {
    /// The encoded codeword (ground truth).
    pub codeword: BitVec,
    /// Channel LLRs after modulation, AWGN and demapping.
    pub llrs: Vec<f64>,
}

/// A full encode → modulate → AWGN → demap → decode chain.
#[derive(Debug, Clone)]
pub struct Dvbs2System {
    config: SystemConfig,
    code: DvbS2Code,
    graph: Arc<TannerGraph>,
    encoder: Encoder,
}

impl Dvbs2System {
    /// Builds the system for a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError`] if the rate/frame combination is undefined.
    pub fn new(config: SystemConfig) -> Result<Self, CodeError> {
        let code = DvbS2Code::new(config.rate, config.frame)?;
        let graph = Arc::new(code.tanner_graph());
        let encoder = code.encoder()?;
        Ok(Dvbs2System { config, code, graph, encoder })
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The underlying code.
    pub fn code(&self) -> &DvbS2Code {
        &self.code
    }

    /// Code parameters (Table 1 row).
    pub fn params(&self) -> &CodeParams {
        self.code.params()
    }

    /// The shared Tanner graph.
    pub fn graph(&self) -> &Arc<TannerGraph> {
        &self.graph
    }

    /// Creates a fresh decoder instance (one per thread; decoders own their
    /// scratch state).
    pub fn make_decoder(&self) -> Box<dyn Decoder + Send> {
        self.make_decoder_for(self.config.decoder, self.config.decoder_config)
    }

    /// Creates a decoder of an explicit kind/config over this system's
    /// graph, independent of the configured [`SystemConfig::decoder`] — the
    /// MODCOD dispatch table uses this to attach per-MODCOD decoder
    /// profiles to one shared code context.
    pub fn make_decoder_for(
        &self,
        kind: DecoderKind,
        config: DecoderConfig,
    ) -> Box<dyn Decoder + Send> {
        let graph = Arc::clone(&self.graph);
        match kind {
            DecoderKind::Flooding => Box::new(FloodingDecoder::new(graph, config)),
            DecoderKind::Zigzag => Box::new(ZigzagDecoder::new(graph, config)),
            DecoderKind::Layered => Box::new(LayeredDecoder::new(graph, config)),
            DecoderKind::Quantized(q) => Box::new(QuantizedZigzagDecoder::new(graph, q, config)),
            DecoderKind::BitFlipping => {
                Box::new(dvbs2_decoder::BitFlippingDecoder::new(graph, config))
            }
        }
    }

    /// Noise standard deviation for an `Eb/N0` under this configuration.
    ///
    /// Uses the *true* code rate `K/N` (short frames have a lower true rate
    /// than their nominal label, e.g. "1/2" short is really 4/9) and the
    /// configured modulation's normalization.
    pub fn noise_sigma(&self, ebn0_db: f64) -> f64 {
        let p = self.code.params();
        self.config.modulation.noise_sigma(ebn0_db, p.k as f64 / p.n as f64)
    }

    /// Encodes a random message and passes it through the channel.
    ///
    /// For the symbol modulations (8PSK, 16APSK, 32APSK) the DVB-S2 block
    /// bit interleaver is applied before mapping and inverted on the
    /// received LLRs, as the standard specifies.
    pub fn transmit_frame<R: Rng + ?Sized>(&self, rng: &mut R, ebn0_db: f64) -> TransmittedFrame {
        self.transmit_frame_with(rng, ebn0_db, self.config.modulation)
    }

    /// [`transmit_frame`](Self::transmit_frame) for a *specific* message of
    /// length `K` instead of a random one — the service tier's BBFRAME
    /// round-trip uses this to carry assembled baseband frames through the
    /// channel.
    ///
    /// # Panics
    ///
    /// Panics unless `message.len() == K`.
    pub fn transmit_message<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        ebn0_db: f64,
        message: &BitVec,
    ) -> TransmittedFrame {
        let codeword = self.encoder.encode(message).expect("message has length K");
        self.transmit_codeword(rng, ebn0_db, self.config.modulation, codeword)
    }

    /// [`transmit_frame`](Self::transmit_frame) with an explicit modulation,
    /// overriding the configured one — the differential oracle uses this to
    /// fuzz modulations without rebuilding the (cache-shared) system.
    pub fn transmit_frame_with<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        ebn0_db: f64,
        modulation: Modulation,
    ) -> TransmittedFrame {
        let msg = self.encoder.random_message(rng);
        let codeword = self.encoder.encode(&msg).expect("message has length K");
        self.transmit_codeword(rng, ebn0_db, modulation, codeword)
    }

    fn transmit_codeword<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        ebn0_db: f64,
        modulation: Modulation,
        codeword: BitVec,
    ) -> TransmittedFrame {
        let interleaver = modulation.interleaver(codeword.len());
        let mapped: BitVec = match &interleaver {
            Some(il) => {
                il.interleave(&codeword.iter().collect::<Vec<bool>>()).into_iter().collect()
            }
            None => codeword.clone(),
        };
        let mut samples = modulation.modulate(&mapped);
        let p = self.code.params();
        let sigma = modulation.noise_sigma(ebn0_db, p.k as f64 / p.n as f64);
        AwgnChannel::new(sigma).corrupt(rng, &mut samples);
        let llrs = modulation.demap(&samples, sigma);
        let llrs = match &interleaver {
            Some(il) => il.deinterleave(&llrs),
            None => llrs,
        };
        TransmittedFrame { codeword, llrs }
    }

    /// Frames per work-stealing chunk in [`simulate_ber`](Self::simulate_ber).
    ///
    /// Part of the run's deterministic identity: the early-out merges whole
    /// chunks, so changing this value changes how many frames a
    /// target-frame-errors run covers (never *which* noise realization a
    /// frame sees — that depends only on the seed and the frame index).
    pub const BER_CHUNK_FRAMES: usize = 8;

    /// Estimates BER/FER at one `Eb/N0` with the chunked work-stealing
    /// Monte-Carlo harness.
    ///
    /// Every global frame index gets its own RNG stream derived from the
    /// configured seed, so the estimate is bit-reproducible for a given
    /// seed regardless of `threads` or scheduling; with a
    /// `target_frame_errors` early-out, at most one in-flight chunk per
    /// thread is wasted.
    pub fn simulate_ber(
        &self,
        ebn0_db: f64,
        stop: dvbs2_channel::StopRule,
        threads: usize,
    ) -> dvbs2_channel::BerEstimate {
        let k = self.params().k;
        let base = self.config.seed ^ ebn0_db.to_bits();
        dvbs2_channel::monte_carlo_frames(threads, stop, Self::BER_CHUNK_FRAMES, |_thread| {
            let mut decoder = self.make_decoder();
            move |frame: u64| {
                let mut rng = SmallRng::seed_from_u64(dvbs2_channel::mix_seed(base, frame));
                let tx = self.transmit_frame(&mut rng, ebn0_db);
                let out = decoder.decode(&tx.llrs);
                let bit_errors = out.info_bit_errors(&tx.codeword, k);
                FrameOutcome {
                    bit_errors,
                    info_bits: k,
                    frame_error: bit_errors > 0,
                    iterations: out.iterations,
                }
            }
        })
    }

    /// [`simulate_ber`](Self::simulate_ber) with a multi-frame
    /// [`TiledBatchDecoder`](dvbs2_decoder::TiledBatchDecoder): each
    /// work-stealing chunk of `batch` frames is generated per-index (same
    /// RNG streams as the per-frame path) and decoded as cache-sized tiles,
    /// replaying the configured schedule (flooding, zigzag or layered).
    ///
    /// Tiled decodes are bit-identical frame for frame to the matching
    /// single-frame decoder, so with a min-sum rule and
    /// `batch == BER_CHUNK_FRAMES` this returns *exactly* the
    /// [`simulate_ber`](Self::simulate_ber) estimate. Other batch sizes
    /// still count every frame identically; only the whole-chunk early-out
    /// granularity (and hence a `target_frame_errors` run's frame total)
    /// changes.
    ///
    /// # Panics
    ///
    /// Panics if the configured decoder kind is not a tiled schedule
    /// (flooding, zigzag or layered), if the rule is not a min-sum variant
    /// (the tiled kernels are min-sum only), or if `batch` is 0 or above
    /// 1024.
    pub fn simulate_ber_batched(
        &self,
        ebn0_db: f64,
        stop: dvbs2_channel::StopRule,
        threads: usize,
        batch: usize,
    ) -> dvbs2_channel::BerEstimate {
        let k = self.params().k;
        let base = self.config.seed ^ ebn0_db.to_bits();
        let schedule = match self.config.decoder {
            DecoderKind::Flooding => dvbs2_decoder::TileSchedule::Flooding,
            DecoderKind::Zigzag => dvbs2_decoder::TileSchedule::Zigzag,
            DecoderKind::Layered => dvbs2_decoder::TileSchedule::Layered,
            kind => panic!("decoder kind {kind:?} has no tiled batch schedule"),
        };
        dvbs2_channel::monte_carlo_batches(threads, stop, batch, |_thread| {
            let mut decoder = dvbs2_decoder::TiledBatchDecoder::new(
                Arc::clone(&self.graph),
                self.config.decoder_config,
                schedule,
                batch,
            );
            let mut results = Vec::new();
            move |first: u64, count: usize| {
                let frames: Vec<TransmittedFrame> = (first..first + count as u64)
                    .map(|frame| {
                        let seed = dvbs2_channel::mix_seed(base, frame);
                        let mut rng = SmallRng::seed_from_u64(seed);
                        self.transmit_frame(&mut rng, ebn0_db)
                    })
                    .collect();
                let llrs: Vec<&[f64]> = frames.iter().map(|f| f.llrs.as_slice()).collect();
                results.resize(count, dvbs2_decoder::DecodeResult::default());
                decoder.decode_batch_into(&llrs, &mut results[..count]);
                results
                    .iter()
                    .zip(&frames)
                    .map(|(out, tx)| {
                        let bit_errors = out.info_bit_errors(&tx.codeword, k);
                        FrameOutcome {
                            bit_errors,
                            info_bits: k,
                            frame_error: bit_errors > 0,
                            iterations: out.iterations,
                        }
                    })
                    .collect()
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvbs2_channel::StopRule;

    fn short_system(decoder: DecoderKind) -> Dvbs2System {
        Dvbs2System::new(SystemConfig {
            frame: FrameSize::Short,
            decoder,
            ..SystemConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn every_decoder_kind_decodes_a_clean_frame() {
        for kind in [
            DecoderKind::Flooding,
            DecoderKind::Zigzag,
            DecoderKind::Layered,
            DecoderKind::Quantized(Quantizer::paper_6bit()),
        ] {
            let system = short_system(kind);
            let mut rng = SmallRng::seed_from_u64(1);
            let frame = system.transmit_frame(&mut rng, 3.5);
            let out = system.make_decoder().decode(&frame.llrs);
            assert_eq!(out.bits, frame.codeword, "{kind:?}");
        }
    }

    #[test]
    fn apsk_frames_decode_at_high_snr() {
        // The interleaved APSK transmit paths feed decodable LLRs: at a
        // comfortable Eb/N0 above each constellation's waterfall the
        // decoder recovers the codeword exactly.
        for (modulation, ebn0_db) in [(Modulation::Apsk16, 9.0), (Modulation::Apsk32, 12.0)] {
            let system = Dvbs2System::new(SystemConfig {
                frame: FrameSize::Short,
                modulation,
                ..SystemConfig::default()
            })
            .unwrap();
            let mut rng = SmallRng::seed_from_u64(11);
            let frame = system.transmit_frame(&mut rng, ebn0_db);
            assert_eq!(frame.llrs.len(), system.params().n, "{modulation:?}");
            let out = system.make_decoder().decode(&frame.llrs);
            assert_eq!(out.bits, frame.codeword, "{modulation:?}");
        }
    }

    #[test]
    fn transmit_message_carries_the_chosen_payload() {
        let system = short_system(DecoderKind::Zigzag);
        let k = system.params().k;
        let message: BitVec = (0..k).map(|i| i % 5 == 2).collect();
        let mut rng = SmallRng::seed_from_u64(2);
        let frame = system.transmit_message(&mut rng, 3.5, &message);
        // The systematic prefix of the codeword is the message itself.
        for i in 0..k {
            assert_eq!(frame.codeword.get(i), message.get(i), "bit {i}");
        }
        let out = system.make_decoder().decode(&frame.llrs);
        assert_eq!(out.bits, frame.codeword);
    }

    #[test]
    fn simulate_ber_is_reproducible() {
        let system = short_system(DecoderKind::Zigzag);
        let a = system.simulate_ber(2.0, StopRule::frames(4), 2);
        let b = system.simulate_ber(2.0, StopRule::frames(4), 2);
        assert_eq!(a, b);
    }

    #[test]
    fn simulate_ber_is_independent_of_thread_count() {
        // Per-frame RNG streams + deterministic chunk-prefix early-out: the
        // counts must be identical however the frames are scheduled.
        let system = short_system(DecoderKind::Zigzag);
        let one = system.simulate_ber(1.5, StopRule::frames(6), 1);
        let four = system.simulate_ber(1.5, StopRule::frames(6), 4);
        assert_eq!(one, four);
    }

    #[test]
    fn batched_ber_matches_per_frame_ber() {
        // Tiled min-sum decodes are bit-identical per frame for every
        // schedule, and batch == BER_CHUNK_FRAMES reproduces the chunk
        // geometry, so the whole estimate — errors, iterations, early-out
        // point — must match.
        use dvbs2_decoder::{CheckRule, Precision};
        for kind in [DecoderKind::Flooding, DecoderKind::Zigzag, DecoderKind::Layered] {
            let system = Dvbs2System::new(SystemConfig {
                frame: FrameSize::Short,
                decoder: kind,
                decoder_config: DecoderConfig::default()
                    .with_rule(CheckRule::NormalizedMinSum(0.8))
                    .with_precision(Precision::F32),
                ..SystemConfig::default()
            })
            .unwrap();
            let stop = StopRule { max_frames: 24, target_frame_errors: 2 };
            let reference = system.simulate_ber(1.2, stop, 2);
            for threads in [1, 4] {
                let batched =
                    system.simulate_ber_batched(1.2, stop, threads, Dvbs2System::BER_CHUNK_FRAMES);
                assert_eq!(batched, reference, "{kind:?} threads {threads}");
            }
        }
    }

    #[test]
    fn ber_improves_with_snr() {
        let system = short_system(DecoderKind::Zigzag);
        let low = system.simulate_ber(0.0, StopRule::frames(6), 2);
        let high = system.simulate_ber(3.5, StopRule::frames(6), 2);
        assert!(high.ber() <= low.ber(), "{} vs {}", high.ber(), low.ber());
        assert_eq!(high.frame_errors, 0, "3.5 dB frames must be clean");
    }
}
