//! Code-rate dependent parameters of the DVB-S2 LDPC Tanner graph.
//!
//! [`CodeParams`] carries everything Table 1 and Table 2 of the paper list:
//! the information/parity split, the two information-node degree classes, the
//! constant check-node degree `k`, the group factor `q = (N-K)/360`, and the
//! derived edge counts `E_IN`, `E_PN` and connectivity-storage size `Addr`.

use crate::error::CodeError;
use crate::rate::{CodeRate, FrameSize, PARALLELISM};

/// One class of information nodes: `count` nodes of identical `degree`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DegreeClass {
    /// Number of information nodes in this class (a multiple of 360).
    pub count: usize,
    /// Variable-node degree of every node in this class.
    pub degree: usize,
}

/// Structural parameters of one DVB-S2 LDPC code (one row of Table 1).
///
/// The DVB-S2 information nodes split into exactly two degree classes: a
/// high-degree class (degree `j` in the paper, 4–13 depending on rate) and a
/// degree-3 class. Parity nodes are all degree 2 (zigzag), and check nodes
/// all have the same degree `k` (the paper's `k`), except check 0 which has
/// one fewer parity edge because the accumulator chain starts there.
///
/// ```
/// use dvbs2_ldpc::{CodeParams, CodeRate, FrameSize};
/// # fn main() -> Result<(), dvbs2_ldpc::CodeError> {
/// let p = CodeParams::new(CodeRate::R1_2, FrameSize::Normal)?;
/// assert_eq!(p.k, 32_400);
/// assert_eq!(p.q, 90);
/// assert_eq!(p.check_degree, 7);
/// assert_eq!(p.addr_entries(), 450); // Table 2, R = 1/2
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CodeParams {
    /// The nominal code rate.
    pub rate: CodeRate,
    /// Frame size this parameter set belongs to.
    pub frame: FrameSize,
    /// Codeword length `N` in bits.
    pub n: usize,
    /// Number of information bits `K`.
    pub k: usize,
    /// Number of parity bits = number of check nodes, `N - K`.
    pub n_check: usize,
    /// Group factor `q = (N-K)/360` from the DVB-S2 encoding rule.
    pub q: usize,
    /// Constant check-node degree (the paper's `k`).
    pub check_degree: usize,
    /// High-degree information-node class (the paper's `f_j` nodes of degree `j`).
    pub hi: DegreeClass,
    /// Degree-3 information-node class (the paper's `f_3`).
    pub lo: DegreeClass,
}

/// Normal-frame parameters straight from the standard:
/// (rate, K, high-degree count, high degree, check degree).
/// The degree-3 count is `K - hi_count`.
const NORMAL: [(CodeRate, usize, usize, usize, usize); 11] = [
    (CodeRate::R1_4, 16_200, 5_400, 12, 4),
    (CodeRate::R1_3, 21_600, 7_200, 12, 5),
    (CodeRate::R2_5, 25_920, 8_640, 12, 6),
    (CodeRate::R1_2, 32_400, 12_960, 8, 7),
    (CodeRate::R3_5, 38_880, 12_960, 12, 11),
    (CodeRate::R2_3, 43_200, 4_320, 13, 10),
    (CodeRate::R3_4, 48_600, 5_400, 12, 14),
    (CodeRate::R4_5, 51_840, 6_480, 11, 18),
    (CodeRate::R5_6, 54_000, 5_400, 13, 22),
    (CodeRate::R8_9, 57_600, 7_200, 4, 27),
    (CodeRate::R9_10, 58_320, 6_480, 4, 30),
];

/// Short-frame information lengths from the standard (`K_ldpc`); 9/10 is not
/// defined for short frames. The degree split for short frames is solved by
/// [`solve_short_degrees`] (extension — the paper only covers normal frames).
const SHORT_K: [(CodeRate, usize); 10] = [
    (CodeRate::R1_4, 3_240),
    (CodeRate::R1_3, 5_400),
    (CodeRate::R2_5, 6_480),
    (CodeRate::R1_2, 7_200),
    (CodeRate::R3_5, 9_720),
    (CodeRate::R2_3, 10_800),
    (CodeRate::R3_4, 11_880),
    (CodeRate::R4_5, 12_600),
    (CodeRate::R5_6, 13_320),
    (CodeRate::R8_9, 14_400),
];

/// Finds a `(hi_count, hi_degree, check_degree)` triple for a short frame
/// such that `E_IN = hi_count * hi_degree + (k - hi_count) * 3` is exactly
/// `n_check * (check_degree - 2)` and `hi_count` is a multiple of 360.
///
/// Preference order mirrors the normal-frame design: high degree 12 first,
/// then 13, 11, 8, 4; smallest feasible check degree wins.
fn solve_short_degrees(k: usize, n_check: usize) -> Option<(usize, usize, usize)> {
    for &hi_degree in &[12usize, 13, 11, 8, 4] {
        for check_degree in 4..=32usize {
            let e_in = n_check * (check_degree - 2);
            let base = 3 * k;
            if e_in <= base {
                continue;
            }
            let extra = e_in - base;
            let per_group = (hi_degree - 3) * PARALLELISM;
            if !extra.is_multiple_of(per_group) {
                continue;
            }
            let hi_groups = extra / per_group;
            let hi_count = hi_groups * PARALLELISM;
            if hi_count > 0 && hi_count < k {
                return Some((hi_count, hi_degree, check_degree));
            }
        }
    }
    None
}

impl CodeParams {
    /// Looks up (normal frames) or derives (short frames) the parameters for
    /// a rate/frame combination.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::UnsupportedCombination`] for rate 9/10 with short
    /// frames, which the standard does not define.
    pub fn new(rate: CodeRate, frame: FrameSize) -> Result<Self, CodeError> {
        let n = frame.codeword_len();
        match frame {
            FrameSize::Normal => {
                let &(_, k, hi_count, hi_degree, check_degree) = NORMAL
                    .iter()
                    .find(|row| row.0 == rate)
                    .expect("all rates are defined for normal frames");
                Ok(Self::assemble(rate, frame, n, k, hi_count, hi_degree, check_degree))
            }
            FrameSize::Short => {
                let &(_, k) = SHORT_K.iter().find(|row| row.0 == rate).ok_or_else(|| {
                    CodeError::UnsupportedCombination {
                        rate: rate.to_string(),
                        frame: frame.to_string(),
                    }
                })?;
                let n_check = n - k;
                let (hi_count, hi_degree, check_degree) = solve_short_degrees(k, n_check)
                    .expect("a feasible short-frame degree split exists for every rate");
                Ok(Self::assemble(rate, frame, n, k, hi_count, hi_degree, check_degree))
            }
        }
    }

    fn assemble(
        rate: CodeRate,
        frame: FrameSize,
        n: usize,
        k: usize,
        hi_count: usize,
        hi_degree: usize,
        check_degree: usize,
    ) -> Self {
        let n_check = n - k;
        let params = CodeParams {
            rate,
            frame,
            n,
            k,
            n_check,
            q: n_check / PARALLELISM,
            check_degree,
            hi: DegreeClass { count: hi_count, degree: hi_degree },
            lo: DegreeClass { count: k - hi_count, degree: 3 },
        };
        debug_assert!(params.is_consistent());
        params
    }

    /// Parameters for every rate of a frame size, in rate order.
    pub fn all(frame: FrameSize) -> Vec<CodeParams> {
        CodeRate::ALL.iter().filter_map(|&rate| CodeParams::new(rate, frame).ok()).collect()
    }

    /// Total number of edges between information and check nodes
    /// (`E_IN` in Table 2 of the paper).
    pub fn e_in(&self) -> usize {
        self.hi.count * self.hi.degree + self.lo.count * self.lo.degree
    }

    /// Total number of edges between parity and check nodes
    /// (`E_PN` in Table 2). The zigzag accumulator gives every parity node
    /// degree 2 except the last, hence `2(N-K) - 1`.
    pub fn e_pn(&self) -> usize {
        2 * self.n_check - 1
    }

    /// Number of `(shift, address)` entries needed to store the Tanner-graph
    /// connectivity for this rate (`Addr = E_IN / 360` in Table 2).
    pub fn addr_entries(&self) -> usize {
        self.e_in() / PARALLELISM
    }

    /// Number of 360-node information groups, `K / 360`.
    pub fn groups(&self) -> usize {
        self.k / PARALLELISM
    }

    /// Number of groups whose nodes have the high degree; the remaining
    /// groups have degree 3.
    pub fn hi_groups(&self) -> usize {
        self.hi.count / PARALLELISM
    }

    /// Variable-node degree of information group `g` (groups are ordered
    /// high-degree first, as in the standard's table layout).
    ///
    /// # Panics
    ///
    /// Panics if `g >= self.groups()`.
    pub fn group_degree(&self, g: usize) -> usize {
        assert!(g < self.groups(), "group index {g} out of range");
        if g < self.hi_groups() {
            self.hi.degree
        } else {
            self.lo.degree
        }
    }

    /// Checks every structural identity the construction relies on:
    /// `q*360 = N-K`, class counts are multiples of 360, counts sum to `K`,
    /// and `E_IN = (N-K)(k-2)` (each check node has `k-2` information edges
    /// plus 2 parity edges).
    pub fn is_consistent(&self) -> bool {
        self.n == self.k + self.n_check
            && self.q * PARALLELISM == self.n_check
            && self.k.is_multiple_of(PARALLELISM)
            && self.hi.count.is_multiple_of(PARALLELISM)
            && self.hi.count + self.lo.count == self.k
            && self.lo.degree == 3
            && self.e_in() == self.n_check * (self.check_degree - 2)
            && self.e_in().is_multiple_of(PARALLELISM)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_frame_parameters_match_table1() {
        // Spot values stated or implied by the paper.
        let p = CodeParams::new(CodeRate::R1_2, FrameSize::Normal).unwrap();
        assert_eq!(p.q, 90);
        assert_eq!(p.e_in(), 162_000);
        assert_eq!(p.addr_entries(), 450);

        let p = CodeParams::new(CodeRate::R9_10, FrameSize::Normal).unwrap();
        assert_eq!(p.check_degree, 30); // largest check degree

        let p = CodeParams::new(CodeRate::R2_3, FrameSize::Normal).unwrap();
        assert_eq!(p.hi.degree, 13); // largest information-node degree
    }

    #[test]
    fn all_normal_rates_are_consistent() {
        for p in CodeParams::all(FrameSize::Normal) {
            assert!(p.is_consistent(), "inconsistent params for {}", p.rate);
            assert_eq!(p.n, 64_800);
        }
    }

    #[test]
    fn all_short_rates_are_consistent() {
        let all = CodeParams::all(FrameSize::Short);
        assert_eq!(all.len(), 10, "9/10 must be excluded for short frames");
        for p in all {
            assert!(p.is_consistent(), "inconsistent params for {}", p.rate);
            assert_eq!(p.n, 16_200);
        }
    }

    #[test]
    fn short_9_10_is_rejected() {
        assert!(matches!(
            CodeParams::new(CodeRate::R9_10, FrameSize::Short),
            Err(CodeError::UnsupportedCombination { .. })
        ));
    }

    #[test]
    fn rate_3_5_has_most_information_edges() {
        // The paper: "the rate R = 3/5 has the most edges to the information
        // nodes and hence determines the size of the IN message memory banks".
        let all = CodeParams::all(FrameSize::Normal);
        let max = all.iter().max_by_key(|p| p.e_in()).unwrap();
        assert_eq!(max.rate, CodeRate::R3_5);
        assert_eq!(max.e_in(), 233_280);
    }

    #[test]
    fn rate_1_4_has_largest_parity_set() {
        // The paper: "R = 1/4 has the largest set of parity nodes and defines
        // the size of the PN message memories".
        let all = CodeParams::all(FrameSize::Normal);
        let max = all.iter().max_by_key(|p| p.n_check).unwrap();
        assert_eq!(max.rate, CodeRate::R1_4);
        assert_eq!(max.n_check, 48_600);
    }

    #[test]
    fn group_degree_is_hi_then_lo() {
        let p = CodeParams::new(CodeRate::R1_2, FrameSize::Normal).unwrap();
        assert_eq!(p.hi_groups(), 36);
        assert_eq!(p.groups(), 90);
        assert_eq!(p.group_degree(0), 8);
        assert_eq!(p.group_degree(35), 8);
        assert_eq!(p.group_degree(36), 3);
        assert_eq!(p.group_degree(89), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn group_degree_panics_out_of_range() {
        let p = CodeParams::new(CodeRate::R1_2, FrameSize::Normal).unwrap();
        let _ = p.group_degree(90);
    }

    #[test]
    fn total_message_count_matches_paper_magnitude() {
        // "about 300000 messages are processed and reordered in each of the
        // 30 iterations" — worst case across rates.
        let max_edges =
            CodeParams::all(FrameSize::Normal).iter().map(|p| p.e_in() + p.e_pn()).max().unwrap();
        assert!((280_000..320_000).contains(&max_edges), "{max_edges}");
    }
}
