//! A compact bit vector used for messages, codewords and syndromes.

use std::fmt;
use std::ops::BitXorAssign;

/// A fixed-length, heap-allocated bit vector packed into 64-bit words.
///
/// ```
/// use dvbs2_ldpc::BitVec;
/// let mut bits = BitVec::zeros(100);
/// bits.set(3, true);
/// bits.set(99, true);
/// assert_eq!(bits.count_ones(), 2);
/// assert!(bits.get(3) && !bits.get(4));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates an all-zero bit vector of length `len`.
    pub fn zeros(len: usize) -> Self {
        BitVec { words: vec![0; len.div_ceil(64)], len }
    }

    /// Builds a bit vector from an iterator of booleans.
    pub fn from_bools<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut v = BitVec::default();
        v.extend(iter);
        v
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the vector holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range (len {})", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range (len {})", self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Flips bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn toggle(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range (len {})", self.len);
        self.words[i / 64] ^= 1u64 << (i % 64);
    }

    /// Number of set bits (Hamming weight).
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Hamming distance to another vector of the same length.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn hamming_distance(&self, other: &BitVec) -> usize {
        assert_eq!(self.len, other.len, "length mismatch");
        self.words.iter().zip(&other.words).map(|(a, b)| (a ^ b).count_ones() as usize).sum()
    }

    /// Iterates over the bits as booleans.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Appends one bit.
    pub fn push(&mut self, value: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        self.len += 1;
        self.set(self.len - 1, value);
    }
}

impl Extend<bool> for BitVec {
    fn extend<I: IntoIterator<Item = bool>>(&mut self, iter: I) {
        for b in iter {
            self.push(b);
        }
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        BitVec::from_bools(iter)
    }
}

impl BitXorAssign<&BitVec> for BitVec {
    /// XORs another vector of the same length into this one.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    fn bitxor_assign(&mut self, rhs: &BitVec) {
        assert_eq!(self.len, rhs.len, "length mismatch");
        for (a, b) in self.words.iter_mut().zip(&rhs.words) {
            *a ^= b;
        }
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[{} bits, weight {}]", self.len, self.count_ones())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_toggle_round_trip() {
        let mut v = BitVec::zeros(130);
        for i in (0..130).step_by(7) {
            v.set(i, true);
        }
        for i in 0..130 {
            assert_eq!(v.get(i), i % 7 == 0);
        }
        v.toggle(0);
        assert!(!v.get(0));
        assert_eq!(v.count_ones(), (0..130).filter(|i| i % 7 == 0).count() - 1);
    }

    #[test]
    fn xor_is_self_inverse() {
        let a: BitVec = (0..200).map(|i| i % 3 == 0).collect();
        let b: BitVec = (0..200).map(|i| i % 5 == 0).collect();
        let mut c = a.clone();
        c ^= &b;
        c ^= &b;
        assert_eq!(c, a);
    }

    #[test]
    fn hamming_distance_counts_differences() {
        let a: BitVec = (0..64).map(|i| i < 10).collect();
        let b: BitVec = (0..64).map(|i| i < 13).collect();
        assert_eq!(a.hamming_distance(&b), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let v = BitVec::zeros(10);
        let _ = v.get(10);
    }

    #[test]
    fn push_and_extend() {
        let mut v = BitVec::zeros(0);
        v.extend([true, false, true]);
        assert_eq!(v.len(), 3);
        assert!(v.get(0) && !v.get(1) && v.get(2));
    }

    #[test]
    fn from_iterator_collect() {
        let v: BitVec = std::iter::repeat_n(true, 65).collect();
        assert_eq!(v.count_ones(), 65);
    }
}
