//! Tanner-graph representation optimized for message-passing decoders.
//!
//! Decoders index messages by *edge*. This module flattens the bipartite
//! graph into two views over a single edge numbering:
//!
//! * check-side: edges grouped contiguously by check node (`check_edges`),
//!   with the variable endpoint of each edge in `var_of_edge`;
//! * variable-side: for each variable node, the list of its edge ids
//!   (`var_edges`).
//!
//! For DVB-S2 codes, within each check the information edges come first and
//! the (up to two) parity edges last, which the zigzag decoder relies on.

use crate::params::CodeParams;
use crate::tables::AddressTable;

/// A bipartite variable/check graph with a flat edge numbering.
///
/// ```
/// use dvbs2_ldpc::TannerGraph;
/// // A tiny 3-variable, 2-check graph: c0–{v0,v1}, c1–{v1,v2}.
/// let g = TannerGraph::from_edges(3, 2, &[(0, 0), (0, 1), (1, 1), (1, 2)]);
/// assert_eq!(g.edge_count(), 4);
/// assert_eq!(g.var_degree(1), 2);
/// assert_eq!(g.check_degree(0), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TannerGraph {
    n_vars: usize,
    n_checks: usize,
    /// Number of information (systematic) variables; variables `>= info_len`
    /// are parity variables. Equal to `n_vars` for generic graphs.
    info_len: usize,
    check_ptr: Vec<u32>,
    var_of_edge: Vec<u32>,
    var_ptr: Vec<u32>,
    edge_of_var: Vec<u32>,
}

impl TannerGraph {
    /// Builds a graph from `(check, var)` edge pairs.
    ///
    /// Edge ids follow the order of `edges` after a stable grouping by check
    /// node (within one check, edges keep their relative order from `edges`).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn from_edges(n_vars: usize, n_checks: usize, edges: &[(u32, u32)]) -> Self {
        let mut counts = vec![0u32; n_checks + 1];
        for &(c, v) in edges {
            assert!(
                (c as usize) < n_checks && (v as usize) < n_vars,
                "edge ({c},{v}) out of range"
            );
            counts[c as usize + 1] += 1;
        }
        for i in 1..=n_checks {
            counts[i] += counts[i - 1];
        }
        let check_ptr = counts.clone();
        let mut fill = counts;
        let mut var_of_edge = vec![0u32; edges.len()];
        for &(c, v) in edges {
            var_of_edge[fill[c as usize] as usize] = v;
            fill[c as usize] += 1;
        }

        let mut vcounts = vec![0u32; n_vars + 1];
        for &v in &var_of_edge {
            vcounts[v as usize + 1] += 1;
        }
        for i in 1..=n_vars {
            vcounts[i] += vcounts[i - 1];
        }
        let var_ptr = vcounts.clone();
        let mut vfill = vcounts;
        let mut edge_of_var = vec![0u32; edges.len()];
        for (e, &v) in var_of_edge.iter().enumerate() {
            edge_of_var[vfill[v as usize] as usize] = e as u32;
            vfill[v as usize] += 1;
        }

        TannerGraph {
            n_vars,
            n_checks,
            info_len: n_vars,
            check_ptr,
            var_of_edge,
            var_ptr,
            edge_of_var,
        }
    }

    /// Builds the Tanner graph of a DVB-S2 code. Information edges of every
    /// check precede its parity edges, and `info_len` is set to `K`.
    pub fn for_code(params: &CodeParams, table: &AddressTable) -> Self {
        let mut edges = Vec::with_capacity(params.e_in() + params.e_pn());
        for m in 0..params.k {
            for j in table.check_indices(params, m) {
                edges.push((j as u32, m as u32));
            }
        }
        // Parity edges appended last so the stable grouping puts them at the
        // end of each check's edge range.
        for j in 0..params.n_check {
            edges.push((j as u32, (params.k + j) as u32));
            if j + 1 < params.n_check {
                edges.push(((j + 1) as u32, (params.k + j) as u32));
            }
        }
        let mut graph = Self::from_edges(params.n, params.n_check, &edges);
        graph.info_len = params.k;
        graph
    }

    /// Number of variable nodes.
    pub fn var_count(&self) -> usize {
        self.n_vars
    }

    /// Number of check nodes.
    pub fn check_count(&self) -> usize {
        self.n_checks
    }

    /// Total number of edges (= messages per half-iteration direction).
    pub fn edge_count(&self) -> usize {
        self.var_of_edge.len()
    }

    /// Number of information (systematic) variables; for DVB-S2 graphs this
    /// is `K` and variables `K..N` are parity nodes.
    pub fn info_len(&self) -> usize {
        self.info_len
    }

    /// Edge-id range of check node `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.check_count()`.
    #[inline]
    pub fn check_edges(&self, c: usize) -> std::ops::Range<usize> {
        self.check_ptr[c] as usize..self.check_ptr[c + 1] as usize
    }

    /// Check-major CSR offsets: edges of check `c` are
    /// `check_offsets()[c]..check_offsets()[c + 1]`. Length is
    /// `check_count() + 1`.
    ///
    /// Message-passing inner loops stream this slice directly instead of
    /// calling [`check_edges`](Self::check_edges) per node.
    #[inline]
    pub fn check_offsets(&self) -> &[u32] {
        &self.check_ptr
    }

    /// Variable endpoint of every edge, indexed by edge id (check-major
    /// order). Length is `edge_count()`.
    ///
    /// This is the scatter/gather table of the variable-node half-iteration:
    /// iterating it in edge order visits each check's edges contiguously
    /// while touching each variable's edges in ascending edge-id order —
    /// the same per-variable summation order as
    /// [`var_edges`](Self::var_edges).
    #[inline]
    pub fn edge_vars(&self) -> &[u32] {
        &self.var_of_edge
    }

    /// Variable-major CSR offsets into [`var_edge_table`](Self::var_edge_table):
    /// edges of variable `v` are `var_offsets()[v]..var_offsets()[v + 1]`.
    /// Length is `var_count() + 1`.
    #[inline]
    pub fn var_offsets(&self) -> &[u32] {
        &self.var_ptr
    }

    /// Edge ids grouped by variable (the var→edge gather table backing
    /// [`var_edges`](Self::var_edges)). Within one variable the ids are
    /// ascending. Length is `edge_count()`.
    #[inline]
    pub fn var_edge_table(&self) -> &[u32] {
        &self.edge_of_var
    }

    /// Largest check-node degree (0 for a graph without checks). Decoders
    /// size their per-check scratch storage from this.
    pub fn max_check_degree(&self) -> usize {
        (0..self.n_checks).map(|c| self.check_degree(c)).max().unwrap_or(0)
    }

    /// Variable endpoint of edge `e`.
    #[inline]
    pub fn var_of_edge(&self, e: usize) -> usize {
        self.var_of_edge[e] as usize
    }

    /// Edge ids incident to variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= self.var_count()`.
    #[inline]
    pub fn var_edges(&self, v: usize) -> &[u32] {
        &self.edge_of_var[self.var_ptr[v] as usize..self.var_ptr[v + 1] as usize]
    }

    /// Degree of variable node `v`.
    pub fn var_degree(&self, v: usize) -> usize {
        self.var_edges(v).len()
    }

    /// Degree of check node `c`.
    pub fn check_degree(&self, c: usize) -> usize {
        self.check_edges(c).len()
    }

    /// Histogram of variable degrees as `(degree, count)` pairs, ascending.
    pub fn var_degree_histogram(&self) -> Vec<(usize, usize)> {
        let mut hist = std::collections::BTreeMap::new();
        for v in 0..self.n_vars {
            *hist.entry(self.var_degree(v)).or_insert(0usize) += 1;
        }
        hist.into_iter().collect()
    }

    /// `true` if some length-4 cycle passes through variable `v` (two of its
    /// checks share another variable).
    pub fn has_4cycle_through(&self, v: usize) -> bool {
        let checks: Vec<usize> =
            self.var_edges(v).iter().map(|&e| self.check_of_edge(e as usize)).collect();
        for (i, &c1) in checks.iter().enumerate() {
            for &c2 in &checks[i + 1..] {
                let vars1: std::collections::HashSet<u32> = self
                    .check_edges(c1)
                    .map(|e| self.var_of_edge[e])
                    .filter(|&u| u as usize != v)
                    .collect();
                if self
                    .check_edges(c2)
                    .map(|e| self.var_of_edge[e])
                    .any(|u| u as usize != v && vars1.contains(&u))
                {
                    return true;
                }
            }
        }
        false
    }

    /// BFS cycle estimate rooted at variable `v`: the length of the first
    /// cycle the search closes, if at most `cap` (bipartite graphs only
    /// have even cycles: 4, 6, 8, …).
    ///
    /// Exact for length-4 detection (a return of `Some(4)` iff a 4-cycle
    /// passes through `v`); for longer cycles the value is an upper bound
    /// on the graph girth (search paths may share a prefix). The minimum
    /// over all roots is the exact girth — the standard LDPC girth
    /// computation.
    pub fn local_girth(&self, v: usize, cap: usize) -> Option<usize> {
        let n_vars = self.n_vars;
        let total = n_vars + self.n_checks;
        let mut dist = vec![u32::MAX; total];
        let mut entry_edge = vec![u32::MAX; total];
        let mut queue = std::collections::VecDeque::new();
        dist[v] = 0;
        queue.push_back(v);
        let mut best: Option<usize> = None;

        while let Some(u) = queue.pop_front() {
            let du = dist[u] as usize;
            if 2 * du >= best.unwrap_or(cap + 1) {
                break;
            }
            // Neighbors of u with the edge used to reach them.
            let neighbors: Vec<(usize, u32)> = if u < n_vars {
                self.var_edges(u)
                    .iter()
                    .map(|&e| (n_vars + self.check_of_edge(e as usize), e))
                    .collect()
            } else {
                self.check_edges(u - n_vars).map(|e| (self.var_of_edge(e), e as u32)).collect()
            };
            for (w, e) in neighbors {
                if e == entry_edge[u] {
                    continue;
                }
                if dist[w] == u32::MAX {
                    dist[w] = du as u32 + 1;
                    entry_edge[w] = e;
                    queue.push_back(w);
                } else {
                    let cycle = du + dist[w] as usize + 1;
                    if cycle <= cap && best.is_none_or(|b| cycle < b) {
                        best = Some(cycle);
                    }
                }
            }
        }
        best
    }

    /// Check endpoint of edge `e` (binary search over the check ranges).
    pub fn check_of_edge(&self, e: usize) -> usize {
        debug_assert!(e < self.edge_count());
        match self.check_ptr.binary_search(&(e as u32)) {
            Ok(mut c) => {
                // Skip empty checks that share the same offset.
                while self.check_ptr[c + 1] as usize == e {
                    c += 1;
                }
                c
            }
            Err(i) => i - 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate::{CodeRate, FrameSize};
    use crate::tables::TableOptions;

    fn graph(rate: CodeRate) -> (CodeParams, TannerGraph) {
        let p = CodeParams::new(rate, FrameSize::Normal).unwrap();
        let t = AddressTable::generate(&p, TableOptions::default());
        (p, TannerGraph::for_code(&p, &t))
    }

    #[test]
    fn counts_match_params() {
        let (p, g) = graph(CodeRate::R9_10);
        assert_eq!(g.var_count(), p.n);
        assert_eq!(g.check_count(), p.n_check);
        assert_eq!(g.edge_count(), p.e_in() + p.e_pn());
        assert_eq!(g.info_len(), p.k);
    }

    #[test]
    fn degree_histogram_matches_table1() {
        let (p, g) = graph(CodeRate::R9_10);
        let hist = g.var_degree_histogram();
        // Degree 1: the last parity node. Degree 2: the other parity nodes.
        // Degree 3 and the high degree: information classes.
        let lookup = |d: usize| hist.iter().find(|&&(deg, _)| deg == d).map_or(0, |&(_, c)| c);
        assert_eq!(lookup(1), 1);
        assert_eq!(lookup(2), p.n_check - 1);
        assert_eq!(lookup(3), p.lo.count);
        assert_eq!(lookup(p.hi.degree), p.hi.count);
    }

    #[test]
    fn parity_edges_are_last_in_each_check() {
        let (p, g) = graph(CodeRate::R8_9);
        for c in [0usize, 1, p.n_check / 2, p.n_check - 1] {
            let range = g.check_edges(c);
            let vars: Vec<usize> = range.map(|e| g.var_of_edge(e)).collect();
            let n_parity = vars.iter().filter(|&&v| v >= p.k).count();
            assert_eq!(n_parity, if c == 0 { 1 } else { 2 }, "check {c}");
            // Parity endpoints occupy the tail of the range.
            for &v in &vars[vars.len() - n_parity..] {
                assert!(v >= p.k);
            }
            for &v in &vars[..vars.len() - n_parity] {
                assert!(v < p.k);
            }
        }
    }

    #[test]
    fn check_of_edge_inverts_check_edges() {
        let (_, g) = graph(CodeRate::R9_10);
        for c in (0..g.check_count()).step_by(997) {
            for e in g.check_edges(c) {
                assert_eq!(g.check_of_edge(e), c);
            }
        }
    }

    #[test]
    fn var_edges_are_consistent_with_check_side() {
        let (_, g) = graph(CodeRate::R8_9);
        for v in (0..g.var_count()).step_by(1009) {
            for &e in g.var_edges(v) {
                assert_eq!(g.var_of_edge(e as usize), v);
            }
        }
    }

    #[test]
    fn conditioned_code_has_no_4cycles_sampled() {
        let (_, g) = graph(CodeRate::R9_10);
        for v in (0..g.var_count()).step_by(2003) {
            assert!(!g.has_4cycle_through(v), "4-cycle through variable {v}");
        }
    }

    #[test]
    fn local_girth_agrees_with_pairwise_4cycle_check() {
        let (_, g) = graph(CodeRate::R9_10);
        for v in (0..g.var_count()).step_by(4001) {
            assert_eq!(g.local_girth(v, 4).is_some(), g.has_4cycle_through(v), "var {v}");
        }
    }

    #[test]
    fn local_girth_finds_cycles_in_a_known_graph() {
        // A 6-cycle: v0-c0-v1-c1-v2-c2-v0.
        let g = TannerGraph::from_edges(3, 3, &[(0, 0), (0, 1), (1, 1), (1, 2), (2, 2), (2, 0)]);
        assert_eq!(g.local_girth(0, 10), Some(6));
        assert_eq!(g.local_girth(0, 4), None);
        // A tree has no cycles at all.
        let tree = TannerGraph::from_edges(3, 2, &[(0, 0), (0, 1), (1, 1), (1, 2)]);
        assert_eq!(tree.local_girth(0, 100), None);
    }

    #[test]
    fn unconditioned_tables_contain_4cycles() {
        use crate::tables::TableOptions;
        let p = CodeParams::new(CodeRate::R9_10, FrameSize::Normal).unwrap();
        let t = AddressTable::generate(&p, TableOptions { avoid_girth4: false, seed: 7 });
        let g = TannerGraph::for_code(&p, &t);
        let found = (0..g.var_count()).step_by(431).any(|v| g.local_girth(v, 4) == Some(4));
        assert!(found, "a dense unconditioned code should show sampled 4-cycles");
    }

    #[test]
    fn flat_layout_slices_agree_with_accessors() {
        let (_, g) = graph(CodeRate::R8_9);
        let offsets = g.check_offsets();
        assert_eq!(offsets.len(), g.check_count() + 1);
        for c in (0..g.check_count()).step_by(1013) {
            let range = g.check_edges(c);
            assert_eq!(offsets[c] as usize, range.start);
            assert_eq!(offsets[c + 1] as usize, range.end);
        }
        assert_eq!(g.edge_vars().len(), g.edge_count());
        for e in (0..g.edge_count()).step_by(997) {
            assert_eq!(g.edge_vars()[e] as usize, g.var_of_edge(e));
        }
        let var_offsets = g.var_offsets();
        assert_eq!(var_offsets.len(), g.var_count() + 1);
        for v in (0..g.var_count()).step_by(1009) {
            let edges = &g.var_edge_table()[var_offsets[v] as usize..var_offsets[v + 1] as usize];
            assert_eq!(edges, g.var_edges(v));
            // Ascending ids per variable: scatter-add over edge order then
            // sums each variable's messages in the same order var_edges does.
            assert!(edges.windows(2).all(|w| w[0] < w[1]), "var {v}");
        }
        let max = g.max_check_degree();
        assert!((0..g.check_count()).all(|c| g.check_degree(c) <= max));
        assert!((0..g.check_count()).any(|c| g.check_degree(c) == max));
    }

    #[test]
    fn generic_graph_from_edges() {
        let g = TannerGraph::from_edges(4, 2, &[(0, 0), (0, 1), (1, 1), (1, 2), (1, 3)]);
        assert_eq!(g.check_degree(0), 2);
        assert_eq!(g.check_degree(1), 3);
        assert_eq!(g.var_degree(1), 2);
        assert_eq!(g.var_degree(0), 1);
        assert_eq!(g.check_of_edge(0), 0);
        assert_eq!(g.check_of_edge(4), 1);
    }
}
