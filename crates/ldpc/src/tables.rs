//! Address tables describing the random (information) part of the DVB-S2
//! parity-check matrix.
//!
//! The standard's Annex B/C list, for each group of 360 consecutive
//! information bits, a row of base check-node addresses `x`. Bit `m` of a
//! group then connects to check nodes
//!
//! ```text
//! j = (x + q * (m mod 360)) mod (N - K)          (Eq. 2 of the paper)
//! ```
//!
//! We do not ship the copyrighted annex tables; instead [`AddressTable::generate`]
//! draws structurally identical tables deterministically from a seed (see
//! DESIGN.md §2 for why this preserves every behaviour the paper evaluates).
//! Two structural properties of the standard's tables are enforced:
//!
//! * **residue balance** — exactly `k - 2` entries fall in every residue
//!   class mod `q`, so every check node has constant degree `k` and every
//!   functional unit of the hardware processes the same number of edges
//!   (the paper's Eq. 6 constraint);
//! * optionally **girth ≥ 6** (no length-4 cycles through information or
//!   parity nodes).

use crate::error::CodeError;
use crate::params::CodeParams;
use crate::rate::PARALLELISM;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Options controlling synthetic address-table generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableOptions {
    /// RNG seed; tables are a pure function of `(params, options)`.
    pub seed: u64,
    /// Reject base addresses that would create length-4 cycles in the
    /// Tanner graph (through information or parity nodes).
    pub avoid_girth4: bool,
}

impl Default for TableOptions {
    fn default() -> Self {
        TableOptions { seed: 0x5D_B5_2D_05, avoid_girth4: true }
    }
}

/// Base-address table: one row per information-node group, `d_v` entries per
/// row, each in `[0, N-K)`.
///
/// ```
/// use dvbs2_ldpc::{AddressTable, CodeParams, CodeRate, FrameSize};
/// # fn main() -> Result<(), dvbs2_ldpc::CodeError> {
/// let params = CodeParams::new(CodeRate::R1_2, FrameSize::Normal)?;
/// let table = AddressTable::generate(&params, Default::default());
/// assert_eq!(table.rows().len(), params.groups());
/// table.validate(&params)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressTable {
    rows: Vec<Vec<u32>>,
}

impl AddressTable {
    /// Generates a table for `params` with the given options.
    ///
    /// Deterministic: the same `(params, options)` always yields the same
    /// table. Each row `g` receives `params.group_degree(g)` distinct base
    /// addresses; with `avoid_girth4` the resulting Tanner graph has girth
    /// at least 6.
    pub fn generate(params: &CodeParams, options: TableOptions) -> Self {
        let n_check = params.n_check as u32;
        let q = params.q as u32;
        let mut rng = SmallRng::seed_from_u64(
            options.seed ^ ((params.rate as u64) << 32) ^ ((params.n as u64) << 8),
        );
        // Keys of all ordered in-group pairs seen so far:
        // (x_i mod q, (x_i - x_j) mod N_check). A new pair colliding with an
        // existing key closes a length-4 cycle through two information nodes.
        let mut pair_keys: HashSet<(u32, u32)> = HashSet::new();
        // Residue balance: each residue class mod q may receive exactly
        // `check_degree - 2` entries so every check node ends up with
        // constant degree (Eq. 6 of the paper). `slots` lists residues with
        // remaining capacity, one occurrence per free slot.
        let per_class = (params.check_degree - 2) as u32;
        let mut slots: Vec<u32> =
            (0..q).flat_map(|r| std::iter::repeat_n(r, per_class as usize)).collect();
        let mut rows = Vec::with_capacity(params.groups());

        for g in 0..params.groups() {
            let degree = params.group_degree(g);
            let mut row: Vec<u32> = Vec::with_capacity(degree);
            while row.len() < degree {
                let slot = rng.random_range(0..slots.len());
                let shift = rng.random_range(0..super::rate::PARALLELISM as u32);
                let x = shift * q + slots[slot];
                if options.avoid_girth4 {
                    if !Self::candidate_ok(x, &row, n_check, q, &pair_keys) {
                        continue;
                    }
                } else if row.contains(&x) {
                    continue;
                }
                for &y in &row {
                    pair_keys.insert((x % q, (n_check + x - y) % n_check));
                    pair_keys.insert((y % q, (n_check + y - x) % n_check));
                }
                row.push(x);
                slots.swap_remove(slot);
            }
            rows.push(row);
        }
        debug_assert!(slots.is_empty());
        AddressTable { rows }
    }

    /// Tests whether adding `x` to the partially-built `row` keeps the
    /// graph free of length-4 cycles.
    fn candidate_ok(
        x: u32,
        row: &[u32],
        n_check: u32,
        q: u32,
        pair_keys: &HashSet<(u32, u32)>,
    ) -> bool {
        for &y in row {
            if x == y {
                return false;
            }
            let d = (n_check + x - y) % n_check;
            // A node adjacent to two consecutive checks forms a 4-cycle with
            // the parity node between them.
            if d == 1 || d == n_check - 1 {
                return false;
            }
            // Difference of exactly half the cycle length pairs node t with
            // node t+180 on the same two checks.
            if 2 * d == n_check {
                return false;
            }
            // A repeated (residue, difference) pair closes a 4-cycle with an
            // earlier information-node pair.
            if pair_keys.contains(&(x % q, d))
                || pair_keys.contains(&(y % q, (n_check - d) % n_check))
            {
                return false;
            }
        }
        true
    }

    /// Builds a table from explicit rows (e.g. the standard's own annex
    /// values, if available to the user).
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::TableShape`] if the rows do not match `params`
    /// (wrong row count, wrong row degree, or out-of-range address).
    pub fn from_rows(params: &CodeParams, rows: Vec<Vec<u32>>) -> Result<Self, CodeError> {
        let table = AddressTable { rows };
        table.validate(params)?;
        Ok(table)
    }

    /// The base-address rows, one per 360-bit information group.
    pub fn rows(&self) -> &[Vec<u32>] {
        &self.rows
    }

    /// Base addresses of group `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn row(&self, g: usize) -> &[u32] {
        &self.rows[g]
    }

    /// Total number of base-address entries, equal to `E_IN / 360`
    /// (the `Addr` column of Table 2).
    pub fn entry_count(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// Check-node indices of information bit `m` under Eq. 2.
    ///
    /// # Panics
    ///
    /// Panics if `m >= params.k`.
    pub fn check_indices<'a>(
        &'a self,
        params: &CodeParams,
        m: usize,
    ) -> impl Iterator<Item = usize> + 'a {
        assert!(m < params.k, "information bit {m} out of range");
        let n_check = params.n_check;
        let offset = params.q * (m % PARALLELISM);
        self.rows[m / PARALLELISM].iter().map(move |&x| (x as usize + offset) % n_check)
    }

    /// Verifies that the table matches `params`.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::TableShape`] describing the first mismatch found.
    pub fn validate(&self, params: &CodeParams) -> Result<(), CodeError> {
        if self.rows.len() != params.groups() {
            return Err(CodeError::TableShape {
                detail: format!("expected {} rows, got {}", params.groups(), self.rows.len()),
            });
        }
        for (g, row) in self.rows.iter().enumerate() {
            let want = params.group_degree(g);
            if row.len() != want {
                return Err(CodeError::TableShape {
                    detail: format!("row {g}: expected degree {want}, got {}", row.len()),
                });
            }
            let mut seen = HashSet::new();
            for &x in row {
                if x as usize >= params.n_check {
                    return Err(CodeError::TableShape {
                        detail: format!("row {g}: address {x} >= {}", params.n_check),
                    });
                }
                if !seen.insert(x) {
                    return Err(CodeError::TableShape {
                        detail: format!("row {g}: duplicate address {x}"),
                    });
                }
            }
        }
        if self.entry_count() != params.addr_entries() {
            return Err(CodeError::TableShape {
                detail: format!(
                    "expected {} entries, got {}",
                    params.addr_entries(),
                    self.entry_count()
                ),
            });
        }
        // Residue balance guarantees constant check degree (Eq. 6).
        let mut per_class = vec![0usize; params.q];
        for row in &self.rows {
            for &x in row {
                per_class[x as usize % params.q] += 1;
            }
        }
        if let Some(r) = per_class.iter().position(|&c| c != params.check_degree - 2) {
            return Err(CodeError::TableShape {
                detail: format!(
                    "residue class {r} has {} entries, expected {}",
                    per_class[r],
                    params.check_degree - 2
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate::{CodeRate, FrameSize};

    fn params(rate: CodeRate) -> CodeParams {
        CodeParams::new(rate, FrameSize::Normal).unwrap()
    }

    #[test]
    fn generation_is_deterministic() {
        let p = params(CodeRate::R1_2);
        let a = AddressTable::generate(&p, TableOptions::default());
        let b = AddressTable::generate(&p, TableOptions::default());
        assert_eq!(a, b);
        let c = AddressTable::generate(&p, TableOptions { seed: 1, ..Default::default() });
        assert_ne!(a, c);
    }

    #[test]
    fn generated_tables_validate_for_all_rates() {
        for rate in CodeRate::ALL {
            let p = params(rate);
            let t = AddressTable::generate(&p, TableOptions::default());
            t.validate(&p).unwrap();
            assert_eq!(t.entry_count(), p.addr_entries(), "rate {rate}");
        }
    }

    #[test]
    fn entry_count_matches_table2_for_r12() {
        let p = params(CodeRate::R1_2);
        let t = AddressTable::generate(&p, TableOptions::default());
        assert_eq!(t.entry_count(), 450);
    }

    #[test]
    fn check_indices_follow_eq2() {
        let p = params(CodeRate::R1_2);
        let t = AddressTable::generate(&p, TableOptions::default());
        // Bit 0 of group 0: the base addresses themselves.
        let got: Vec<usize> = t.check_indices(&p, 0).collect();
        let want: Vec<usize> = t.row(0).iter().map(|&x| x as usize).collect();
        assert_eq!(got, want);
        // Bit 1: shifted by q.
        let got: Vec<usize> = t.check_indices(&p, 1).collect();
        let want: Vec<usize> = t.row(0).iter().map(|&x| (x as usize + p.q) % p.n_check).collect();
        assert_eq!(got, want);
        // First bit of group 1 uses row 1 unshifted.
        let got: Vec<usize> = t.check_indices(&p, 360).collect();
        let want: Vec<usize> = t.row(1).iter().map(|&x| x as usize).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn no_adjacent_check_pairs_when_conditioned() {
        let p = params(CodeRate::R9_10); // densest case
        let t = AddressTable::generate(&p, TableOptions::default());
        for row in t.rows() {
            for (i, &x) in row.iter().enumerate() {
                for &y in &row[i + 1..] {
                    let d = (p.n_check as u32 + x - y) % p.n_check as u32;
                    assert!(d != 1 && d != p.n_check as u32 - 1);
                    assert_ne!(2 * d as usize, p.n_check);
                }
            }
        }
    }

    #[test]
    fn from_rows_rejects_bad_shapes() {
        let p = params(CodeRate::R1_2);
        let t = AddressTable::generate(&p, TableOptions::default());
        let mut rows = t.rows().to_vec();
        rows[0].pop();
        assert!(matches!(AddressTable::from_rows(&p, rows), Err(CodeError::TableShape { .. })));

        let mut rows = t.rows().to_vec();
        rows[5][0] = p.n_check as u32; // out of range
        assert!(AddressTable::from_rows(&p, rows).is_err());

        let mut rows = t.rows().to_vec();
        rows[3][1] = rows[3][0]; // duplicate
        assert!(AddressTable::from_rows(&p, rows).is_err());
    }

    #[test]
    fn short_frame_generation_works() {
        let p = CodeParams::new(CodeRate::R1_2, FrameSize::Short).unwrap();
        let t = AddressTable::generate(&p, TableOptions::default());
        t.validate(&p).unwrap();
    }
}
