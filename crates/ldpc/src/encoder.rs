//! Linear-time IRA encoder (Eq. 2 and Eq. 3 of the paper).
//!
//! DVB-S2 LDPC codes are irregular repeat-accumulate codes: each parity
//! check accumulates a handful of information bits (Eq. 2), and the parity
//! bits are the running XOR of the check sums (Eq. 3):
//!
//! ```text
//! p_j = p_j XOR i_m            for every table edge (m -> j)
//! p_j = p_j XOR p_{j-1}        j = 1 .. N-K-1   (the accumulator)
//! ```
//!
//! Encoding is `O(E)` — the "very simple (linear) encoding complexity" the
//! paper highlights as the reason DVB-S2 chose IRA codes.

use crate::bits::BitVec;
use crate::error::CodeError;
use crate::params::CodeParams;
use crate::tables::AddressTable;
use rand::Rng;

/// Systematic IRA encoder for one DVB-S2 code.
///
/// ```
/// use dvbs2_ldpc::{AddressTable, CodeParams, CodeRate, Encoder, FrameSize, BitVec};
/// # fn main() -> Result<(), dvbs2_ldpc::CodeError> {
/// let params = CodeParams::new(CodeRate::R9_10, FrameSize::Normal)?;
/// let table = AddressTable::generate(&params, Default::default());
/// let encoder = Encoder::new(params, &table)?;
/// let message = BitVec::zeros(params.k);
/// let codeword = encoder.encode(&message)?;
/// assert_eq!(codeword.len(), params.n);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Encoder {
    params: CodeParams,
    /// Flattened per-bit check targets: for information bit `m`, its checks
    /// are `targets[target_ptr[m]..target_ptr[m+1]]`. Precomputing this makes
    /// `encode` a pure sequential sweep.
    target_ptr: Vec<u32>,
    targets: Vec<u32>,
}

impl Encoder {
    /// Creates an encoder for `params` using `table`.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::TableShape`] if the table does not match the
    /// parameters.
    pub fn new(params: CodeParams, table: &AddressTable) -> Result<Self, CodeError> {
        table.validate(&params)?;
        let mut target_ptr = Vec::with_capacity(params.k + 1);
        let mut targets = Vec::with_capacity(params.e_in());
        target_ptr.push(0);
        for m in 0..params.k {
            targets.extend(table.check_indices(&params, m).map(|j| j as u32));
            target_ptr.push(targets.len() as u32);
        }
        Ok(Encoder { params, target_ptr, targets })
    }

    /// The code parameters this encoder was built for.
    pub fn params(&self) -> &CodeParams {
        &self.params
    }

    /// Encodes a `K`-bit message into an `N`-bit systematic codeword
    /// (information bits first, parity bits last).
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::MessageLength`] if `message.len() != K`.
    pub fn encode(&self, message: &BitVec) -> Result<BitVec, CodeError> {
        if message.len() != self.params.k {
            return Err(CodeError::MessageLength {
                expected: self.params.k,
                actual: message.len(),
            });
        }
        let mut parity = vec![0u8; self.params.n_check];
        for m in 0..self.params.k {
            if message.get(m) {
                let range = self.target_ptr[m] as usize..self.target_ptr[m + 1] as usize;
                for &j in &self.targets[range] {
                    parity[j as usize] ^= 1;
                }
            }
        }
        // The accumulator (Eq. 3).
        for j in 1..self.params.n_check {
            parity[j] ^= parity[j - 1];
        }
        let mut codeword = BitVec::zeros(self.params.n);
        for m in 0..self.params.k {
            if message.get(m) {
                codeword.set(m, true);
            }
        }
        for (j, &p) in parity.iter().enumerate() {
            if p == 1 {
                codeword.set(self.params.k + j, true);
            }
        }
        Ok(codeword)
    }

    /// Draws a uniformly random `K`-bit message.
    pub fn random_message<R: Rng + ?Sized>(&self, rng: &mut R) -> BitVec {
        (0..self.params.k).map(|_| rng.random::<bool>()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::ParityCheckMatrix;
    use crate::rate::{CodeRate, FrameSize};
    use crate::tables::TableOptions;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn setup(rate: CodeRate) -> (CodeParams, AddressTable, Encoder) {
        let p = CodeParams::new(rate, FrameSize::Normal).unwrap();
        let t = AddressTable::generate(&p, TableOptions::default());
        let e = Encoder::new(p, &t).unwrap();
        (p, t, e)
    }

    #[test]
    fn encoded_words_satisfy_all_parity_checks() {
        let mut rng = SmallRng::seed_from_u64(7);
        for rate in [CodeRate::R1_4, CodeRate::R1_2, CodeRate::R9_10] {
            let (p, t, enc) = setup(rate);
            let h = ParityCheckMatrix::for_code(&p, &t);
            for _ in 0..3 {
                let msg = enc.random_message(&mut rng);
                let cw = enc.encode(&msg).unwrap();
                assert!(h.is_codeword(&cw), "rate {rate}");
            }
        }
    }

    #[test]
    fn encoding_is_systematic() {
        let mut rng = SmallRng::seed_from_u64(11);
        let (p, _, enc) = setup(CodeRate::R9_10);
        let msg = enc.random_message(&mut rng);
        let cw = enc.encode(&msg).unwrap();
        for m in 0..p.k {
            assert_eq!(cw.get(m), msg.get(m));
        }
    }

    #[test]
    fn encoding_is_linear() {
        // encode(a ^ b) == encode(a) ^ encode(b) for a linear code.
        let mut rng = SmallRng::seed_from_u64(13);
        let (_, _, enc) = setup(CodeRate::R8_9);
        let a = enc.random_message(&mut rng);
        let b = enc.random_message(&mut rng);
        let mut ab = a.clone();
        ab ^= &b;
        let mut sum = enc.encode(&a).unwrap();
        sum ^= &enc.encode(&b).unwrap();
        assert_eq!(enc.encode(&ab).unwrap(), sum);
    }

    #[test]
    fn zero_message_gives_zero_codeword() {
        let (p, _, enc) = setup(CodeRate::R1_2);
        let cw = enc.encode(&BitVec::zeros(p.k)).unwrap();
        assert_eq!(cw.count_ones(), 0);
    }

    #[test]
    fn wrong_message_length_is_rejected() {
        let (p, _, enc) = setup(CodeRate::R1_2);
        let err = enc.encode(&BitVec::zeros(p.k - 1)).unwrap_err();
        assert!(matches!(err, CodeError::MessageLength { .. }));
    }

    #[test]
    fn single_bit_parity_response_matches_eq2_eq3() {
        // Setting only information bit m must flip exactly the parity bits
        // downstream of its checks (prefix-XOR of the check impulse).
        let (p, t, enc) = setup(CodeRate::R9_10);
        let mut msg = BitVec::zeros(p.k);
        let m = 723;
        msg.set(m, true);
        let cw = enc.encode(&msg).unwrap();

        let mut impulse = vec![0u8; p.n_check];
        for j in t.check_indices(&p, m) {
            impulse[j] ^= 1;
        }
        let mut acc = 0u8;
        for (j, &i) in impulse.iter().enumerate() {
            acc ^= i;
            assert_eq!(cw.get(p.k + j), acc == 1, "parity {j}");
        }
    }
}
