//! DVB-S2 code rates and frame sizes.
//!
//! The DVB-S2 standard (ETSI EN 302 307) defines eleven LDPC code rates for
//! the normal 64 800-bit frame and ten for the short 16 200-bit frame. The
//! paper evaluates the normal frame exclusively; short frames are supported
//! here as a documented extension.

use crate::error::CodeError;
use std::fmt;
use std::str::FromStr;

/// Number of information/parity nodes processed in parallel by the decoder
/// hardware, and the fundamental period of the DVB-S2 code construction.
///
/// Every structural quantity of the code (`K`, `N-K`) is a multiple of this
/// value, which is what makes the 360-way partly-parallel architecture of the
/// paper possible.
pub const PARALLELISM: usize = 360;

/// The eleven LDPC code rates defined by DVB-S2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum CodeRate {
    R1_4,
    R1_3,
    R2_5,
    R1_2,
    R3_5,
    R2_3,
    R3_4,
    R4_5,
    R5_6,
    R8_9,
    R9_10,
}

impl CodeRate {
    /// All rates, in increasing order, as listed in Table 1 of the paper.
    pub const ALL: [CodeRate; 11] = [
        CodeRate::R1_4,
        CodeRate::R1_3,
        CodeRate::R2_5,
        CodeRate::R1_2,
        CodeRate::R3_5,
        CodeRate::R2_3,
        CodeRate::R3_4,
        CodeRate::R4_5,
        CodeRate::R5_6,
        CodeRate::R8_9,
        CodeRate::R9_10,
    ];

    /// Numerator and denominator of the nominal rate, e.g. `(2, 3)`.
    ///
    /// ```
    /// use dvbs2_ldpc::CodeRate;
    /// assert_eq!(CodeRate::R2_3.fraction(), (2, 3));
    /// ```
    pub fn fraction(self) -> (u32, u32) {
        match self {
            CodeRate::R1_4 => (1, 4),
            CodeRate::R1_3 => (1, 3),
            CodeRate::R2_5 => (2, 5),
            CodeRate::R1_2 => (1, 2),
            CodeRate::R3_5 => (3, 5),
            CodeRate::R2_3 => (2, 3),
            CodeRate::R3_4 => (3, 4),
            CodeRate::R4_5 => (4, 5),
            CodeRate::R5_6 => (5, 6),
            CodeRate::R8_9 => (8, 9),
            CodeRate::R9_10 => (9, 10),
        }
    }

    /// Nominal rate as a float, e.g. `0.5` for `R1_2`.
    pub fn as_f64(self) -> f64 {
        let (num, den) = self.fraction();
        f64::from(num) / f64::from(den)
    }
}

impl fmt::Display for CodeRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (num, den) = self.fraction();
        write!(f, "{num}/{den}")
    }
}

impl FromStr for CodeRate {
    type Err = CodeError;

    /// Parses `"1/2"`, `"9/10"`, etc.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        CodeRate::ALL
            .iter()
            .copied()
            .find(|r| r.to_string() == s)
            .ok_or_else(|| CodeError::ParseRate(s.to_owned()))
    }
}

/// DVB-S2 LDPC frame (codeword) sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FrameSize {
    /// The 64 800-bit normal frame evaluated by the paper.
    #[default]
    Normal,
    /// The 16 200-bit short frame (extension; not evaluated by the paper).
    Short,
}

impl FrameSize {
    /// Codeword length `N` in bits.
    ///
    /// ```
    /// use dvbs2_ldpc::FrameSize;
    /// assert_eq!(FrameSize::Normal.codeword_len(), 64_800);
    /// assert_eq!(FrameSize::Short.codeword_len(), 16_200);
    /// ```
    pub fn codeword_len(self) -> usize {
        match self {
            FrameSize::Normal => 64_800,
            FrameSize::Short => 16_200,
        }
    }
}

impl fmt::Display for FrameSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameSize::Normal => write!(f, "normal (64800)"),
            FrameSize::Short => write!(f, "short (16200)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_round_trip_through_strings() {
        for rate in CodeRate::ALL {
            let s = rate.to_string();
            assert_eq!(s.parse::<CodeRate>().unwrap(), rate);
        }
    }

    #[test]
    fn parse_rejects_unknown_rate() {
        assert!(matches!("7/8".parse::<CodeRate>(), Err(CodeError::ParseRate(_))));
    }

    #[test]
    fn rates_are_strictly_increasing() {
        for pair in CodeRate::ALL.windows(2) {
            assert!(pair[0].as_f64() < pair[1].as_f64());
        }
    }

    #[test]
    fn rate_span_matches_paper() {
        // "ranging from R = 1/4 up to 9/10"
        assert_eq!(CodeRate::ALL.first(), Some(&CodeRate::R1_4));
        assert_eq!(CodeRate::ALL.last(), Some(&CodeRate::R9_10));
        assert_eq!(CodeRate::ALL.len(), 11);
    }

    #[test]
    fn frame_sizes_are_multiples_of_parallelism() {
        assert_eq!(FrameSize::Normal.codeword_len() % PARALLELISM, 0);
        assert_eq!(FrameSize::Short.codeword_len() % PARALLELISM, 0);
    }
}
