//! Error types for DVB-S2 code construction.

use std::fmt;

/// Errors produced while constructing or validating DVB-S2 LDPC codes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodeError {
    /// The requested code rate string could not be parsed.
    ParseRate(String),
    /// The rate/frame-size combination is not defined by the standard
    /// (9/10 does not exist for short frames).
    UnsupportedCombination {
        /// Display form of the requested rate.
        rate: String,
        /// Display form of the requested frame size.
        frame: String,
    },
    /// An address table does not match the code parameters it is used with.
    TableShape {
        /// What was wrong, e.g. "expected 90 rows, got 80".
        detail: String,
    },
    /// A message block had the wrong length for the encoder.
    MessageLength {
        /// Expected number of information bits `K`.
        expected: usize,
        /// Length actually provided.
        actual: usize,
    },
    /// A codeword had the wrong length.
    CodewordLength {
        /// Expected codeword length `N`.
        expected: usize,
        /// Length actually provided.
        actual: usize,
    },
}

impl fmt::Display for CodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeError::ParseRate(s) => write!(f, "unrecognized DVB-S2 code rate `{s}`"),
            CodeError::UnsupportedCombination { rate, frame } => {
                write!(f, "rate {rate} is not defined for {frame} frames")
            }
            CodeError::TableShape { detail } => {
                write!(f, "address table does not match code parameters: {detail}")
            }
            CodeError::MessageLength { expected, actual } => {
                write!(f, "message must have {expected} bits, got {actual}")
            }
            CodeError::CodewordLength { expected, actual } => {
                write!(f, "codeword must have {expected} bits, got {actual}")
            }
        }
    }
}

impl std::error::Error for CodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = CodeError::ParseRate("7/8".into());
        let msg = e.to_string();
        assert!(msg.contains("7/8"));
        assert!(msg.starts_with(char::is_lowercase));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CodeError>();
    }
}
