//! Sparse parity-check matrix representation.
//!
//! `H` for DVB-S2 consists of a random part (information columns, defined by
//! the address table) and a fixed staircase part (parity columns from the
//! accumulator). This module materializes `H` in compressed sparse row form
//! for syndrome computation and structural validation.

use crate::bits::BitVec;
use crate::params::CodeParams;
use crate::tables::AddressTable;

/// A binary parity-check matrix in CSR layout (rows = check equations).
///
/// ```
/// use dvbs2_ldpc::{AddressTable, CodeParams, CodeRate, FrameSize, ParityCheckMatrix};
/// # fn main() -> Result<(), dvbs2_ldpc::CodeError> {
/// let params = CodeParams::new(CodeRate::R1_4, FrameSize::Normal)?;
/// let table = AddressTable::generate(&params, Default::default());
/// let h = ParityCheckMatrix::for_code(&params, &table);
/// assert_eq!(h.rows(), params.n_check);
/// assert_eq!(h.cols(), params.n);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParityCheckMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
}

impl ParityCheckMatrix {
    /// Builds `H` from explicit (row, col) entries.
    ///
    /// Entries may be given in any order; duplicates are kept (a duplicate
    /// entry would mean a double edge, which [`Self::has_duplicate_entries`]
    /// can detect).
    ///
    /// # Panics
    ///
    /// Panics if an entry is out of range.
    pub fn from_entries(rows: usize, cols: usize, entries: &[(u32, u32)]) -> Self {
        let mut counts = vec![0usize; rows + 1];
        for &(r, c) in entries {
            assert!((r as usize) < rows && (c as usize) < cols, "entry ({r},{c}) out of range");
            counts[r as usize + 1] += 1;
        }
        for i in 1..=rows {
            counts[i] += counts[i - 1];
        }
        let row_ptr = counts.clone();
        let mut fill = counts;
        let mut col_idx = vec![0u32; entries.len()];
        for &(r, c) in entries {
            col_idx[fill[r as usize]] = c;
            fill[r as usize] += 1;
        }
        for r in 0..rows {
            col_idx[row_ptr[r]..row_ptr[r + 1]].sort_unstable();
        }
        ParityCheckMatrix { rows, cols, row_ptr, col_idx }
    }

    /// Builds the DVB-S2 parity-check matrix for a code: information columns
    /// from the address table (Eq. 2) plus the staircase parity columns
    /// (Eq. 3: column `K+j` has ones in rows `j` and `j+1`).
    pub fn for_code(params: &CodeParams, table: &AddressTable) -> Self {
        let mut entries = Vec::with_capacity(params.e_in() + params.e_pn());
        for m in 0..params.k {
            for j in table.check_indices(params, m) {
                entries.push((j as u32, m as u32));
            }
        }
        for j in 0..params.n_check {
            entries.push((j as u32, (params.k + j) as u32));
            if j + 1 < params.n_check {
                entries.push(((j + 1) as u32, (params.k + j) as u32));
            }
        }
        Self::from_entries(params.n_check, params.n, &entries)
    }

    /// Number of check equations (rows).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Codeword length (columns).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of nonzero entries.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Column indices of row `r`, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[u32] {
        &self.col_idx[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// Computes the syndrome `H x^T` of a word.
    ///
    /// # Panics
    ///
    /// Panics if `word.len() != self.cols()`.
    pub fn syndrome(&self, word: &BitVec) -> BitVec {
        assert_eq!(word.len(), self.cols, "word length mismatch");
        let mut s = BitVec::zeros(self.rows);
        for r in 0..self.rows {
            let parity = self.row(r).iter().filter(|&&c| word.get(c as usize)).count();
            if parity % 2 == 1 {
                s.set(r, true);
            }
        }
        s
    }

    /// `true` when `H x^T = 0` (Eq. 1 of the paper).
    pub fn is_codeword(&self, word: &BitVec) -> bool {
        assert_eq!(word.len(), self.cols, "word length mismatch");
        (0..self.rows)
            .all(|r| self.row(r).iter().filter(|&&c| word.get(c as usize)).count() % 2 == 0)
    }

    /// Fraction of nonzero entries — LDPC matrices must be sparse.
    pub fn density(&self) -> f64 {
        self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
    }

    /// `true` if any row contains the same column twice (a double edge).
    pub fn has_duplicate_entries(&self) -> bool {
        (0..self.rows).any(|r| self.row(r).windows(2).any(|w| w[0] == w[1]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate::{CodeRate, FrameSize};
    use crate::tables::TableOptions;

    fn small_code() -> (CodeParams, AddressTable, ParityCheckMatrix) {
        let p = CodeParams::new(CodeRate::R9_10, FrameSize::Normal).unwrap();
        let t = AddressTable::generate(&p, TableOptions::default());
        let h = ParityCheckMatrix::for_code(&p, &t);
        (p, t, h)
    }

    #[test]
    fn shape_and_edge_count() {
        let (p, _, h) = small_code();
        assert_eq!(h.rows(), p.n_check);
        assert_eq!(h.cols(), p.n);
        assert_eq!(h.nnz(), p.e_in() + p.e_pn());
        assert!(!h.has_duplicate_entries());
    }

    #[test]
    fn row_weights_are_constant_check_degree() {
        let (p, _, h) = small_code();
        // Check 0 is the accumulator head: one parity edge fewer.
        assert_eq!(h.row(0).len(), p.check_degree - 1);
        for r in 1..h.rows() {
            assert_eq!(h.row(r).len(), p.check_degree, "row {r}");
        }
    }

    #[test]
    fn staircase_structure_present() {
        let (p, _, h) = small_code();
        // Row j must contain parity columns K+j and K+j-1.
        for j in [1usize, 2, p.n_check / 2, p.n_check - 1] {
            let row = h.row(j);
            assert!(row.contains(&((p.k + j) as u32)));
            assert!(row.contains(&((p.k + j - 1) as u32)));
        }
        assert!(h.row(0).contains(&(p.k as u32)));
    }

    #[test]
    fn all_zero_word_is_codeword() {
        let (p, _, h) = small_code();
        assert!(h.is_codeword(&BitVec::zeros(p.n)));
    }

    #[test]
    fn single_one_is_not_codeword() {
        let (p, _, h) = small_code();
        let mut w = BitVec::zeros(p.n);
        w.set(0, true);
        assert!(!h.is_codeword(&w));
        assert!(h.syndrome(&w).count_ones() > 0);
    }

    #[test]
    fn density_is_low() {
        let (_, _, h) = small_code();
        assert!(h.density() < 1e-2, "density {}", h.density());
    }

    #[test]
    fn from_entries_tiny_matrix() {
        // H = [1 1 0; 0 1 1]: codewords are the constant words.
        let h = ParityCheckMatrix::from_entries(2, 3, &[(0, 0), (0, 1), (1, 1), (1, 2)]);
        let w = BitVec::from_bools([true, true, true]);
        assert!(h.is_codeword(&w));
        let w = BitVec::from_bools([true, false, false]);
        assert!(!h.is_codeword(&w));
        let s = h.syndrome(&w);
        assert!(s.get(0) && !s.get(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_entries_rejects_out_of_range() {
        let _ = ParityCheckMatrix::from_entries(2, 3, &[(2, 0)]);
    }
}
