//! DVB-S2 LDPC code construction: the substrate of the DATE 2005 paper
//! *"A Synthesizable IP Core for DVB-S2 LDPC Code Decoding"*.
//!
//! This crate builds the irregular repeat-accumulate (IRA) LDPC codes of the
//! DVB-S2 standard for all eleven code rates at the 64 800-bit normal frame
//! (and, as an extension, the 16 200-bit short frame):
//!
//! * [`CodeRate`] / [`FrameSize`] / [`CodeParams`] — the Table 1 parameters;
//! * [`AddressTable`] — the random connectivity (Eq. 2), generated
//!   synthetically with the standard's exact structure (see `DESIGN.md`);
//! * [`ParityCheckMatrix`] and [`TannerGraph`] — sparse views for syndrome
//!   checks and message-passing decoders;
//! * [`Encoder`] — linear-time IRA encoding (Eq. 2–3).
//!
//! # Example
//!
//! ```
//! use dvbs2_ldpc::{CodeRate, DvbS2Code, FrameSize};
//! # fn main() -> Result<(), dvbs2_ldpc::CodeError> {
//! let code = DvbS2Code::new(CodeRate::R1_2, FrameSize::Normal)?;
//! assert_eq!(code.params().n, 64_800);
//! assert_eq!(code.params().q, 90);
//!
//! let encoder = code.encoder()?;
//! let mut rng = rand::rng();
//! let message = encoder.random_message(&mut rng);
//! let codeword = encoder.encode(&message)?;
//! assert!(code.parity_check_matrix().is_codeword(&codeword));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod bits;
mod encoder;
mod error;
mod matrix;
mod params;
mod rate;
mod tables;
mod tanner;

pub use bits::BitVec;
pub use encoder::Encoder;
pub use error::CodeError;
pub use matrix::ParityCheckMatrix;
pub use params::{CodeParams, DegreeClass};
pub use rate::{CodeRate, FrameSize, PARALLELISM};
pub use tables::{AddressTable, TableOptions};
pub use tanner::TannerGraph;

/// A fully-constructed DVB-S2 LDPC code: parameters plus address table.
///
/// This is the convenient entry point; the individual pieces remain available
/// for callers that need to supply their own tables or tweak generation.
#[derive(Debug, Clone)]
pub struct DvbS2Code {
    params: CodeParams,
    table: AddressTable,
}

impl DvbS2Code {
    /// Constructs the code for a rate/frame combination with default
    /// (deterministic, girth-conditioned) table generation.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::UnsupportedCombination`] for rate 9/10 with
    /// short frames.
    pub fn new(rate: CodeRate, frame: FrameSize) -> Result<Self, CodeError> {
        Self::with_options(rate, frame, TableOptions::default())
    }

    /// Constructs the code with explicit table-generation options.
    ///
    /// # Errors
    ///
    /// Same as [`DvbS2Code::new`].
    pub fn with_options(
        rate: CodeRate,
        frame: FrameSize,
        options: TableOptions,
    ) -> Result<Self, CodeError> {
        let params = CodeParams::new(rate, frame)?;
        let table = AddressTable::generate(&params, options);
        Ok(DvbS2Code { params, table })
    }

    /// Constructs the code from an externally supplied address table (for
    /// example the standard's own annex values).
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::TableShape`] if the table does not match.
    pub fn from_table(
        rate: CodeRate,
        frame: FrameSize,
        rows: Vec<Vec<u32>>,
    ) -> Result<Self, CodeError> {
        let params = CodeParams::new(rate, frame)?;
        let table = AddressTable::from_rows(&params, rows)?;
        Ok(DvbS2Code { params, table })
    }

    /// The structural parameters (Table 1 row).
    pub fn params(&self) -> &CodeParams {
        &self.params
    }

    /// The base-address table (Eq. 2 connectivity).
    pub fn table(&self) -> &AddressTable {
        &self.table
    }

    /// Builds the IRA encoder.
    ///
    /// # Errors
    ///
    /// Never fails for a code constructed through this type; the `Result`
    /// mirrors [`Encoder::new`] for symmetry with external tables.
    pub fn encoder(&self) -> Result<Encoder, CodeError> {
        Encoder::new(self.params, &self.table)
    }

    /// Materializes the sparse parity-check matrix.
    pub fn parity_check_matrix(&self) -> ParityCheckMatrix {
        ParityCheckMatrix::for_code(&self.params, &self.table)
    }

    /// Builds the Tanner graph for message-passing decoders.
    pub fn tanner_graph(&self) -> TannerGraph {
        TannerGraph::for_code(&self.params, &self.table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_pieces_are_mutually_consistent() {
        let code = DvbS2Code::new(CodeRate::R8_9, FrameSize::Normal).unwrap();
        let h = code.parity_check_matrix();
        let g = code.tanner_graph();
        assert_eq!(h.nnz(), g.edge_count());
        assert_eq!(h.rows(), g.check_count());
        assert_eq!(h.cols(), g.var_count());
    }

    #[test]
    fn from_table_round_trips_generated_rows() {
        let code = DvbS2Code::new(CodeRate::R9_10, FrameSize::Normal).unwrap();
        let rows = code.table().rows().to_vec();
        let rebuilt = DvbS2Code::from_table(CodeRate::R9_10, FrameSize::Normal, rows).unwrap();
        assert_eq!(rebuilt.table(), code.table());
    }
}
