//! Property-based tests for the DVB-S2 code construction.

use dvbs2_ldpc::{
    AddressTable, BitVec, CodeParams, CodeRate, DvbS2Code, Encoder, FrameSize, TableOptions,
    PARALLELISM,
};
use proptest::prelude::*;

fn any_rate() -> impl Strategy<Value = CodeRate> {
    prop::sample::select(CodeRate::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every structural identity of Table 1/2 holds for every rate and both
    /// frame sizes.
    #[test]
    fn params_identities(rate in any_rate(), short in any::<bool>()) {
        let frame = if short { FrameSize::Short } else { FrameSize::Normal };
        let Ok(p) = CodeParams::new(rate, frame) else {
            // Only 9/10-short is undefined.
            prop_assert!(short && rate == CodeRate::R9_10);
            return Ok(());
        };
        prop_assert!(p.is_consistent());
        prop_assert_eq!(p.e_in(), p.n_check * (p.check_degree - 2));
        prop_assert_eq!(p.e_pn(), 2 * p.n_check - 1);
        prop_assert_eq!(p.addr_entries() , p.q * (p.check_degree - 2));
        prop_assert_eq!(p.groups() * PARALLELISM, p.k);
    }

    /// Table generation with arbitrary seeds always validates and stays
    /// girth-4 free at the base-address level.
    #[test]
    fn tables_validate_for_any_seed(seed in any::<u64>()) {
        let p = CodeParams::new(CodeRate::R9_10, FrameSize::Normal).unwrap();
        let t = AddressTable::generate(&p, TableOptions { seed, avoid_girth4: true });
        prop_assert!(t.validate(&p).is_ok());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Encoder linearity: encode(a ^ b) == encode(a) ^ encode(b), and every
    /// output is a codeword of H.
    #[test]
    fn encoder_is_linear_and_valid(seed in any::<u64>()) {
        use rand::{SeedableRng, rngs::SmallRng};
        let code = DvbS2Code::new(CodeRate::R9_10, FrameSize::Normal).unwrap();
        let enc: Encoder = code.encoder().unwrap();
        let h = code.parity_check_matrix();
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = enc.random_message(&mut rng);
        let b = enc.random_message(&mut rng);
        let ca = enc.encode(&a).unwrap();
        let cb = enc.encode(&b).unwrap();
        prop_assert!(h.is_codeword(&ca));
        prop_assert!(h.is_codeword(&cb));
        let mut ab = a;
        ab ^= &b;
        let mut sum = ca;
        sum ^= &cb;
        prop_assert_eq!(enc.encode(&ab).unwrap(), sum);
    }

    /// BitVec push/get/count agree with a plain Vec<bool> model.
    #[test]
    fn bitvec_models_vec_of_bool(bits in prop::collection::vec(any::<bool>(), 0..300)) {
        let v: BitVec = bits.iter().copied().collect();
        prop_assert_eq!(v.len(), bits.len());
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(v.get(i), b);
        }
        prop_assert_eq!(v.count_ones(), bits.iter().filter(|&&b| b).count());
    }
}
