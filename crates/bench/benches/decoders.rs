//! Criterion micro-benchmarks of the decoding algorithms (one short frame
//! per iteration; fixed 10 decoder iterations so runs are comparable).

use criterion::{criterion_group, criterion_main, Criterion};
use dvbs2::decoder::{
    CheckRule, Decoder, DecoderConfig, FloodingDecoder, LayeredDecoder, Precision,
    QuantizedZigzagDecoder, Quantizer, ZigzagDecoder,
};
use dvbs2::ldpc::{CodeRate, FrameSize};
use dvbs2::{Dvbs2System, SystemConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

fn bench_decoders(c: &mut Criterion) {
    let system = Dvbs2System::new(SystemConfig {
        rate: CodeRate::R1_2,
        frame: FrameSize::Short,
        ..SystemConfig::default()
    })
    .unwrap();
    let graph = Arc::clone(system.graph());
    let mut rng = SmallRng::seed_from_u64(77);
    let frame = system.transmit_frame(&mut rng, 2.0);
    let config = DecoderConfig::default().with_max_iterations(10).with_early_stop(false);

    let mut group = c.benchmark_group("decode_short_r12_10iters");
    group.sample_size(10).measurement_time(Duration::from_secs(4));

    let mut flooding = FloodingDecoder::new(Arc::clone(&graph), config);
    group.bench_function("flooding_sum_product", |b| {
        b.iter(|| flooding.decode(std::hint::black_box(&frame.llrs)))
    });

    let mut zigzag = ZigzagDecoder::new(Arc::clone(&graph), config);
    group.bench_function("zigzag_sum_product", |b| {
        b.iter(|| zigzag.decode(std::hint::black_box(&frame.llrs)))
    });

    let mut layered = LayeredDecoder::new(Arc::clone(&graph), config);
    group.bench_function("layered_sum_product", |b| {
        b.iter(|| layered.decode(std::hint::black_box(&frame.llrs)))
    });

    let mut minsum = FloodingDecoder::new(
        Arc::clone(&graph),
        config.with_rule(CheckRule::NormalizedMinSum(0.8)),
    );
    group.bench_function("flooding_min_sum", |b| {
        b.iter(|| minsum.decode(std::hint::black_box(&frame.llrs)))
    });

    // f32 fast path: same schedules on the single-precision message planes.
    let mut flooding_f32 =
        FloodingDecoder::new(Arc::clone(&graph), config.with_precision(Precision::F32));
    group.bench_function("flooding_sum_product_f32", |b| {
        b.iter(|| flooding_f32.decode(std::hint::black_box(&frame.llrs)))
    });

    let mut zigzag_f32 =
        ZigzagDecoder::new(Arc::clone(&graph), config.with_precision(Precision::F32));
    group.bench_function("zigzag_sum_product_f32", |b| {
        b.iter(|| zigzag_f32.decode(std::hint::black_box(&frame.llrs)))
    });

    let mut minsum_f32 = FloodingDecoder::new(
        Arc::clone(&graph),
        config.with_rule(CheckRule::NormalizedMinSum(0.8)).with_precision(Precision::F32),
    );
    group.bench_function("flooding_min_sum_f32", |b| {
        b.iter(|| minsum_f32.decode(std::hint::black_box(&frame.llrs)))
    });

    let mut quantized =
        QuantizedZigzagDecoder::new(Arc::clone(&graph), Quantizer::paper_6bit(), config);
    let channel = quantized.quantize_channel(&frame.llrs);
    group.bench_function("quantized_zigzag_6bit", |b| {
        b.iter(|| quantized.decode_quantized(std::hint::black_box(&channel)))
    });

    group.finish();
}

criterion_group!(benches, bench_decoders);
criterion_main!(benches);
