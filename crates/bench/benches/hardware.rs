//! Criterion micro-benchmarks of the hardware model: the cycle-accurate
//! core, the golden model, the shuffle network and the schedule annealer.

use criterion::{criterion_group, criterion_main, Criterion};
use dvbs2::hardware::{
    optimize_schedule, AnnealOptions, CnSchedule, ConnectivityRom, CoreConfig, GoldenModel,
    HardwareDecoder, MemoryConfig, ShuffleNetwork,
};
use dvbs2::ldpc::{CodeRate, DvbS2Code, FrameSize, PARALLELISM};
use dvbs2::{Dvbs2System, SystemConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_hardware(c: &mut Criterion) {
    let code = DvbS2Code::new(CodeRate::R1_2, FrameSize::Short).unwrap();
    let system = Dvbs2System::new(SystemConfig {
        rate: CodeRate::R1_2,
        frame: FrameSize::Short,
        ..SystemConfig::default()
    })
    .unwrap();
    let mut rng = SmallRng::seed_from_u64(3);
    let tx = system.transmit_frame(&mut rng, 2.0);
    let rom = ConnectivityRom::build(code.params(), code.table());
    let config = CoreConfig { max_iterations: 5, ..CoreConfig::default() };

    let mut group = c.benchmark_group("hardware_model");
    group.sample_size(10).measurement_time(Duration::from_secs(4));

    let mut hw = HardwareDecoder::with_natural_schedule(&code, config);
    let channel = hw.quantize_channel(&tx.llrs);
    group.bench_function("cycle_accurate_core_5iters", |b| {
        b.iter(|| hw.decode_quantized(std::hint::black_box(&channel)))
    });

    let mut golden = GoldenModel::new(
        &code,
        CnSchedule::natural(&rom),
        config.quantizer,
        config.max_iterations,
        false,
    );
    group.bench_function("golden_model_5iters", |b| {
        b.iter(|| golden.decode_quantized(std::hint::black_box(&channel)))
    });

    let net = ShuffleNetwork::new(PARALLELISM);
    let data: Vec<i32> = (0..PARALLELISM as i32).collect();
    let mut out = vec![0i32; PARALLELISM];
    group.bench_function("shuffle_rotate_360", |b| {
        b.iter(|| net.rotate(std::hint::black_box(&data), 123, &mut out))
    });

    group.bench_function("anneal_500_moves", |b| {
        b.iter(|| {
            optimize_schedule(
                &rom,
                MemoryConfig::default(),
                AnnealOptions { moves: 500, ..AnnealOptions::default() },
            )
        })
    });

    group.finish();
}

criterion_group!(benches, bench_hardware);
criterion_main!(benches);
