//! Criterion micro-benchmarks of the check-node kernels in isolation:
//! the O(d) prefix/suffix sum-product sweep and the two-smallest min-sum
//! pass, at both message precisions and at the degrees that dominate the
//! DVB-S2 rate-1/2 graphs (7 for the combined info+parity check rows, 30
//! for the densest standard checks).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dvbs2::decoder::{CheckRule, LlrFloat};
use std::time::Duration;

/// Deterministic pseudo-LLR fill so every run measures identical data.
fn inputs<F: LlrFloat>(degree: usize) -> Vec<F> {
    let mut state = 0x9E3779B97F4A7C15u64;
    (0..degree)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            // Map to roughly [-12, 12) — the live range of working LLRs.
            F::from_f64(((state >> 11) as f64 / (1u64 << 53) as f64) * 24.0 - 12.0)
        })
        .collect()
}

fn bench_kernel<F: LlrFloat>(c: &mut Criterion, label: &str) {
    let mut group = c.benchmark_group(format!("check_kernel_{label}"));
    group.sample_size(40).measurement_time(Duration::from_secs(2));
    for degree in [7usize, 30] {
        let incoming = inputs::<F>(degree);
        let mut out = vec![F::ZERO; degree];
        group.bench_function(format!("sum_product_d{degree}"), |b| {
            b.iter(|| {
                CheckRule::SumProduct.extrinsic_t(black_box(&incoming), &mut out);
                black_box(&out);
            })
        });
        group.bench_function(format!("min_sum_d{degree}"), |b| {
            b.iter(|| {
                CheckRule::NormalizedMinSum(0.8).extrinsic_t(black_box(&incoming), &mut out);
                black_box(&out);
            })
        });
    }
    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    bench_kernel::<f64>(c, "f64");
    bench_kernel::<f32>(c, "f32");
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
