//! Criterion micro-benchmarks of code construction and encoding — the
//! "linear encoding complexity" of IRA codes the paper highlights.

use criterion::{criterion_group, criterion_main, Criterion};
use dvbs2::ldpc::{CodeRate, DvbS2Code, FrameSize};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction");
    group.sample_size(10).measurement_time(Duration::from_secs(4));

    group.bench_function("build_code_r12_normal", |b| {
        b.iter(|| DvbS2Code::new(CodeRate::R1_2, FrameSize::Normal).unwrap())
    });

    let code = DvbS2Code::new(CodeRate::R1_2, FrameSize::Normal).unwrap();
    group.bench_function("build_tanner_graph_r12_normal", |b| b.iter(|| code.tanner_graph()));

    let encoder = code.encoder().unwrap();
    let mut rng = SmallRng::seed_from_u64(5);
    let msg = encoder.random_message(&mut rng);
    group.bench_function("ira_encode_r12_normal", |b| {
        b.iter(|| encoder.encode(std::hint::black_box(&msg)).unwrap())
    });

    let h = code.parity_check_matrix();
    let cw = encoder.encode(&msg).unwrap();
    group.bench_function("syndrome_check_r12_normal", |b| {
        b.iter(|| h.is_codeword(std::hint::black_box(&cw)))
    });

    group.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
