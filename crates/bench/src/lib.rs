//! Shared helpers for the table/figure regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one artifact of the paper (see
//! DESIGN.md §4 for the experiment index); `EXPERIMENTS.md` records their
//! output against the paper's numbers.

use dvbs2::channel::StopRule;
use dvbs2::prelude::*;
use dvbs2::{DecoderKind, Dvbs2System, SystemConfig};

/// A measured BER point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BerPoint {
    /// Operating point in dB.
    pub ebn0_db: f64,
    /// Bit error rate.
    pub ber: f64,
    /// Frame error rate.
    pub fer: f64,
    /// Frames simulated.
    pub frames: usize,
    /// Information bits simulated (the measurement floor is `1/(2·bits)`).
    pub info_bits: usize,
    /// Mean iterations per frame.
    pub avg_iterations: f64,
}

impl BerPoint {
    /// BER clamped to the half-an-error measurement floor, so error-free
    /// points can still participate in log-domain interpolation.
    pub fn ber_floored(&self) -> f64 {
        let floor = 0.5 / self.info_bits.max(1) as f64;
        self.ber.max(floor)
    }
}

/// Runs one BER point through the facade's Monte-Carlo harness.
pub fn ber_point(
    system: &Dvbs2System,
    ebn0_db: f64,
    max_frames: usize,
    target_frame_errors: usize,
) -> BerPoint {
    let est = system.simulate_ber(
        ebn0_db,
        StopRule { max_frames, target_frame_errors },
        dvbs2::channel::default_threads(),
    );
    BerPoint {
        ebn0_db,
        ber: est.ber(),
        fer: est.fer(),
        frames: est.frames,
        info_bits: est.info_bits,
        avg_iterations: est.avg_iterations(),
    }
}

/// Builds a simulation system for a rate/frame/decoder triple with the
/// given iteration cap.
pub fn system(
    rate: CodeRate,
    frame: FrameSize,
    decoder: DecoderKind,
    max_iterations: usize,
) -> Dvbs2System {
    Dvbs2System::new(SystemConfig {
        rate,
        frame,
        decoder,
        decoder_config: DecoderConfig::default().with_max_iterations(max_iterations),
        ..SystemConfig::default()
    })
    .expect("valid configuration")
}

/// Linear interpolation of the `Eb/N0` at which `log10(BER)` crosses a
/// target, given measured points sorted by `ebn0_db`. Returns `None` when
/// the target is not bracketed.
pub fn ebn0_at_ber(points: &[BerPoint], target_ber: f64) -> Option<f64> {
    let target = target_ber.log10();
    for pair in points.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        let (la, lb) = (a.ber_floored().log10(), b.ber_floored().log10());
        if la == lb {
            continue;
        }
        if (la >= target && lb <= target) || (la <= target && lb >= target) {
            let frac = (target - la) / (lb - la);
            return Some(a.ebn0_db + frac * (b.ebn0_db - a.ebn0_db));
        }
    }
    None
}

/// Compact scientific formatting for tables.
pub fn sci(x: f64) -> String {
    if x == 0.0 {
        "<floor".to_owned()
    } else {
        format!("{x:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolation_finds_crossing() {
        let points = [
            BerPoint {
                ebn0_db: 1.0,
                ber: 1e-2,
                fer: 0.0,
                frames: 1,
                info_bits: 1_000_000,
                avg_iterations: 0.0,
            },
            BerPoint {
                ebn0_db: 2.0,
                ber: 1e-4,
                fer: 0.0,
                frames: 1,
                info_bits: 1_000_000,
                avg_iterations: 0.0,
            },
        ];
        let x = ebn0_at_ber(&points, 1e-3).unwrap();
        assert!((x - 1.5).abs() < 1e-9);
    }

    #[test]
    fn interpolation_handles_zero_tail() {
        // The zero point interpolates against its half-an-error floor
        // (0.5 / 1e6 = 5e-7), so the 1e-3 crossing lands inside the segment.
        let points = [
            BerPoint {
                ebn0_db: 1.0,
                ber: 1e-2,
                fer: 0.0,
                frames: 1,
                info_bits: 1_000_000,
                avg_iterations: 0.0,
            },
            BerPoint {
                ebn0_db: 2.0,
                ber: 0.0,
                fer: 0.0,
                frames: 1,
                info_bits: 1_000_000,
                avg_iterations: 0.0,
            },
        ];
        let x = ebn0_at_ber(&points, 1e-3).unwrap();
        assert!(x > 1.0 && x < 1.5, "{x}");
    }

    #[test]
    fn interpolation_rejects_unbracketed() {
        let points = [
            BerPoint {
                ebn0_db: 1.0,
                ber: 1e-2,
                fer: 0.0,
                frames: 1,
                info_bits: 1_000_000,
                avg_iterations: 0.0,
            },
            BerPoint {
                ebn0_db: 2.0,
                ber: 1e-3,
                fer: 0.0,
                frames: 1,
                info_bits: 1_000_000,
                avg_iterations: 0.0,
            },
        ];
        assert_eq!(ebn0_at_ber(&points, 1e-6), None);
    }
}
