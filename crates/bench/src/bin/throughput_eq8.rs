//! Regenerates the **Eq. 8 throughput result**: 255 Mbit/s at 270 MHz with
//! 30 iterations for the rate-1/2 code, for every code rate — analytic
//! model versus cycles measured on the cycle-accurate core (Figure 4).
//!
//! Run: `cargo run --release -p dvbs2-bench --bin throughput_eq8 [--fast]`
//! (`--fast` skips the cycle-accurate measurement and prints only Eq. 8.)

use dvbs2::hardware::{CoreConfig, HardwareDecoder, ThroughputModel, ST_0_13_UM};
use dvbs2::ldpc::{CodeRate, DvbS2Code, FrameSize};
use dvbs2::{Dvbs2System, SystemConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fast = std::env::args().any(|a| a == "--fast");
    let model = ThroughputModel::paper(&ST_0_13_UM);
    println!(
        "Eq. 8 throughput at {} MHz, {} iterations, P = {}, P_IO = {}\n",
        model.clock_mhz, model.iterations, model.p, model.p_io
    );
    println!(
        "{:>6} {:>10} {:>12} {:>10} {:>12} {:>10} {:>8}",
        "rate", "Eq8 cycles", "Eq8 [Mbit/s]", "HW cycles", "HW [Mbit/s]", "err [%]", "buffer"
    );

    for rate in CodeRate::ALL {
        let code = DvbS2Code::new(rate, FrameSize::Normal)?;
        let p = *code.params();
        let analytic_cycles = model.cycles(&p);
        let analytic = model.throughput_mbps(&p);

        if fast {
            println!(
                "{:>6} {:>10} {:>12.1} {:>10} {:>12} {:>10} {:>8}",
                rate.to_string(),
                analytic_cycles,
                analytic,
                "-",
                "-",
                "-",
                "-"
            );
            continue;
        }

        // Measure one frame on the cycle-accurate core (fixed 30 iterations,
        // matching the paper's accounting).
        let sys = Dvbs2System::new(SystemConfig { rate, ..SystemConfig::default() })?;
        let mut rng = SmallRng::seed_from_u64(1 + rate as u64);
        let tx = sys.transmit_frame(&mut rng, 6.0);
        let mut hw = HardwareDecoder::with_natural_schedule(&code, CoreConfig::default());
        let out = hw.decode(&tx.llrs);
        let measured = out.cycles.throughput_mbps(model.clock_mhz, p.k);
        let err = (out.cycles.total_cycles as f64 / analytic_cycles as f64 - 1.0) * 100.0;
        println!(
            "{:>6} {:>10} {:>12.1} {:>10} {:>12.1} {:>10.2} {:>8}",
            rate.to_string(),
            analytic_cycles,
            analytic,
            out.cycles.total_cycles,
            measured,
            err,
            out.cycles.max_buffer
        );
    }
    println!(
        "\nPaper: \"the decoder is capable to process all specified code rates ... with the \
         required throughput of 255 Mbit/s\" — satisfied by R = 1/2 and above at the paper's \
         reference point; lower rates carry fewer information bits per frame."
    );
    Ok(())
}
