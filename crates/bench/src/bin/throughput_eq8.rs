//! Regenerates the **Eq. 8 throughput result**: 255 Mbit/s at 270 MHz with
//! 30 iterations for the rate-1/2 code, for every code rate — analytic
//! model versus cycles measured on the cycle-accurate core (Figure 4),
//! plus the calibrated fabric model's zero-error cross-check.
//!
//! The flat `T_latency` of Eq. 8 is an approximation (the `err` column);
//! [`FabricModel::calibrated`] replaces it with the measured per-iteration
//! cost, after which the extended Eq. 8 must reproduce the core's cycle
//! count *exactly* — any off-by-one in the fractional-cycle accounting is
//! a hard failure here, and the single-core fabric's measured makespan
//! must equal the model's frame count times that exact figure.
//!
//! Run: `cargo run --release -p dvbs2-bench --bin throughput_eq8 [--fast]`
//! (`--fast` skips the cycle-accurate measurement and prints only Eq. 8.)

use dvbs2::hardware::{
    CoreConfig, DecoderFabric, FabricConfig, FabricModel, HardwareDecoder, ThroughputModel,
    ST_0_13_UM,
};
use dvbs2::ldpc::{CodeRate, DvbS2Code, FrameSize};
use dvbs2::{Dvbs2System, SystemConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fast = std::env::args().any(|a| a == "--fast");
    let model = ThroughputModel::paper(&ST_0_13_UM);
    println!(
        "Eq. 8 throughput at {} MHz, {} iterations, P = {}, P_IO = {}\n",
        model.clock_mhz, model.iterations, model.p, model.p_io
    );
    println!(
        "{:>6} {:>10} {:>12} {:>10} {:>12} {:>10} {:>8} {:>11}",
        "rate",
        "Eq8 cycles",
        "Eq8 [Mbit/s]",
        "HW cycles",
        "HW [Mbit/s]",
        "err [%]",
        "buffer",
        "calibrated"
    );

    let mut mismatches = 0usize;
    for rate in CodeRate::ALL {
        let code = DvbS2Code::new(rate, FrameSize::Normal)?;
        let p = *code.params();
        let analytic_cycles = model.cycles(&p);
        let analytic = model.throughput_mbps(&p);

        // Rounding audit: every cycle-count path shares the same ceil on
        // the I/O term and the same (exact — E_IN is a multiple of P)
        // division in the half-iteration term, so the fractional-iteration
        // path, the overlapped-I/O path, and the uncalibrated single-core
        // fabric model must all agree with Eq. 8 at integral iterations.
        assert_eq!(
            model.cycles_at_iterations(&p, model.iterations as f64),
            analytic_cycles as f64,
            "{rate}: cycles_at_iterations diverges from Eq. 8 at integral iterations"
        );
        assert_eq!(
            model.cycles_overlapped(&p),
            (analytic_cycles - p.n.div_ceil(model.p_io)).max(p.n.div_ceil(model.p_io)),
            "{rate}: cycles_overlapped must be max(decode, io) with the shared rounding"
        );
        assert_eq!(
            FabricModel::single(&ST_0_13_UM).frame_cycles(&p),
            analytic_cycles,
            "{rate}: the uncalibrated single-core fabric model must reduce to Eq. 8"
        );

        if fast {
            println!(
                "{:>6} {:>10} {:>12.1} {:>10} {:>12} {:>10} {:>8} {:>11}",
                rate.to_string(),
                analytic_cycles,
                analytic,
                "-",
                "-",
                "-",
                "-",
                "-"
            );
            continue;
        }

        // Measure one frame on the cycle-accurate core (fixed 30 iterations,
        // matching the paper's accounting).
        let sys = Dvbs2System::new(SystemConfig { rate, ..SystemConfig::default() })?;
        let mut rng = SmallRng::seed_from_u64(1 + rate as u64);
        let tx = sys.transmit_frame(&mut rng, 6.0);
        let mut hw = HardwareDecoder::with_natural_schedule(&code, CoreConfig::default());
        let out = hw.decode(&tx.llrs);
        let measured = out.cycles.throughput_mbps(model.clock_mhz, p.k);
        let err = (out.cycles.total_cycles as f64 / analytic_cycles as f64 - 1.0) * 100.0;

        // Calibrated extended Eq. 8: must reproduce the measured total
        // exactly — no rounding slack.
        let calibrated = FabricModel::single(&ST_0_13_UM)
            .with_iterations(out.cycles.iterations)
            .calibrated(&out.cycles);
        let cal_cycles = calibrated.frame_cycles(&p);
        let exact = cal_cycles == out.cycles.total_cycles;
        if !exact {
            mismatches += 1;
        }
        println!(
            "{:>6} {:>10} {:>12.1} {:>10} {:>12.1} {:>10.2} {:>8} {:>11}",
            rate.to_string(),
            analytic_cycles,
            analytic,
            out.cycles.total_cycles,
            measured,
            err,
            out.cycles.max_buffer,
            if exact { "exact".to_string() } else { format!("{cal_cycles}!") },
        );
    }

    if !fast {
        // Single-core fabric pin: a P = 1, zero-link fabric must take
        // exactly `frames x total_cycles` for a batch — the fabric adds no
        // hidden cycles and drops none.
        let code = DvbS2Code::new(CodeRate::R1_2, FrameSize::Normal)?;
        let sys =
            Dvbs2System::new(SystemConfig { rate: CodeRate::R1_2, ..SystemConfig::default() })?;
        let mut rng = SmallRng::seed_from_u64(0xE08);
        let frames: Vec<Vec<f64>> =
            (0..3).map(|_| sys.transmit_frame(&mut rng, 6.0).llrs).collect();
        let mut fabric = DecoderFabric::with_natural_schedule(
            &code,
            FabricConfig::single(CoreConfig::default()),
        );
        let out = fabric.decode_batch(&frames);
        let serial = DecoderFabric::serial_cycles(&out.outputs);
        if out.stats.makespan_cycles == serial {
            println!(
                "\nP = 1 fabric makespan: exact ({} cycles for {} frames)",
                out.stats.makespan_cycles,
                out.outputs.len()
            );
        } else {
            mismatches += 1;
            println!(
                "\nP = 1 fabric makespan MISMATCH: {} != serial {serial}",
                out.stats.makespan_cycles
            );
        }
        if mismatches > 0 {
            println!("throughput_eq8: FAIL ({mismatches} calibrated-model mismatches)");
            std::process::exit(1);
        }
    }
    println!(
        "\nPaper: \"the decoder is capable to process all specified code rates ... with the \
         required throughput of 255 Mbit/s\" — satisfied by R = 1/2 and above at the paper's \
         reference point; lower rates carry fewer information bits per frame."
    );
    Ok(())
}
