//! Regenerates **Table 3** of the paper: the synthesis-area breakdown of
//! the multi-rate decoder on the (calibrated) ST 0.13 µm node, side by side
//! with the paper's published values.
//!
//! Run: `cargo run --release -p dvbs2-bench --bin table3_area`

use dvbs2::hardware::{AreaModel, ST_0_13_UM};
use dvbs2::ldpc::FrameSize;

/// The paper's Table 3 (channel-RAM row inferred as the remainder of the
/// published 22.74 mm² total; the other rows are printed in the paper).
const PAPER: &[(&str, f64)] = &[
    ("Channel LLR RAMs", 2.00),
    ("Message RAMs", 9.12),
    ("Address/Shuffling ROM", 0.075),
    ("Functional units (logic)", 10.8),
    ("Control logic", 0.2),
    ("Shuffling network", 0.55),
];

fn main() {
    let report = AreaModel::paper().report(FrameSize::Normal);
    println!("Table 3: area of the DVB-S2 LDPC decoder, {} (6-bit messages)\n", ST_0_13_UM.name);
    println!(
        "{:<28} {:>11} {:>11} {:>8}   derivation",
        "component", "model [mm2]", "paper [mm2]", "ratio"
    );
    for item in &report.items {
        let paper =
            PAPER.iter().find(|&&(name, _)| name == item.name).map(|&(_, v)| v).unwrap_or(f64::NAN);
        println!(
            "{:<28} {:>11.3} {:>11.3} {:>8.2}   {}",
            item.name,
            item.mm2,
            paper,
            item.mm2 / paper,
            item.detail
        );
    }
    let total = report.total_mm2();
    println!("{:<28} {:>11.2} {:>11.2} {:>8.2}", "Total", total, 22.74, total / 22.74);
    println!(
        "\nMax clock (worst case): {} MHz; throughput requirement 255 Mbit/s (see throughput_eq8).",
        ST_0_13_UM.max_clock_mhz
    );
    println!("Sizing rationale: PN memories sized by R = 1/4 (largest parity set), IN message");
    println!("banks by R = 3/5 (most information edges), FU datapath by R = 2/3 / 9/10 degrees.");
}
