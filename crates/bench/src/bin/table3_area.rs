//! Regenerates **Table 3** of the paper: the synthesis-area breakdown of
//! the multi-rate decoder on the (calibrated) ST 0.13 µm node, side by side
//! with the paper's published values — then extends it to the multi-core
//! fabric (core replication plus the shared frame buffer, interconnect
//! FIFOs, and bus arbitration) for P ∈ {1, 2, 4, 8, 16}.
//!
//! Run: `cargo run --release -p dvbs2-bench --bin table3_area`

use dvbs2::hardware::{AreaModel, FabricConfig, ST_0_13_UM};
use dvbs2::ldpc::FrameSize;

/// The paper's Table 3 (channel-RAM row inferred as the remainder of the
/// published 22.74 mm² total; the other rows are printed in the paper).
const PAPER: &[(&str, f64)] = &[
    ("Channel LLR RAMs", 2.00),
    ("Message RAMs", 9.12),
    ("Address/Shuffling ROM", 0.075),
    ("Functional units (logic)", 10.8),
    ("Control logic", 0.2),
    ("Shuffling network", 0.55),
];

fn main() {
    let report = AreaModel::paper().report(FrameSize::Normal);
    println!("Table 3: area of the DVB-S2 LDPC decoder, {} (6-bit messages)\n", ST_0_13_UM.name);
    println!(
        "{:<28} {:>11} {:>11} {:>8}   derivation",
        "component", "model [mm2]", "paper [mm2]", "ratio"
    );
    for item in &report.items {
        let paper =
            PAPER.iter().find(|&&(name, _)| name == item.name).map(|&(_, v)| v).unwrap_or(f64::NAN);
        println!(
            "{:<28} {:>11.3} {:>11.3} {:>8.2}   {}",
            item.name,
            item.mm2,
            paper,
            item.mm2 / paper,
            item.detail
        );
    }
    let total = report.total_mm2();
    println!("{:<28} {:>11.2} {:>11.2} {:>8.2}", "Total", total, 22.74, total / 22.74);
    println!(
        "\nMax clock (worst case): {} MHz; throughput requirement 255 Mbit/s (see throughput_eq8).",
        ST_0_13_UM.max_clock_mhz
    );
    println!("Sizing rationale: PN memories sized by R = 1/4 (largest parity set), IN message");
    println!("banks by R = 3/5 (most information edges), FU datapath by R = 2/3 / 9/10 degrees.");

    // Fabric extension: what the modeled interconnect costs in silicon as
    // the core count grows. The interconnect share stays small — area
    // scales essentially linearly in P while the shared front end is
    // amortized, which is why the throughput limit (see fabric_scaling) is
    // the bus, not the floorplan.
    println!(
        "\nFabric area, Normal frames (cores + shared buffer + interconnect + arbitration):\n"
    );
    println!(
        "{:>4} {:>12} {:>14} {:>14} {:>9}",
        "P", "total [mm2]", "cores [mm2]", "fabric [mm2]", "overhead"
    );
    let single = AreaModel::paper().report(FrameSize::Normal).total_mm2();
    for cores in [1usize, 2, 4, 8, 16] {
        let config = FabricConfig { cores, ..FabricConfig::default() };
        let report = AreaModel::paper().fabric_report(FrameSize::Normal, &config);
        let total = report.total_mm2();
        let core_area = single * cores as f64;
        let fabric_area = total - core_area;
        println!(
            "{:>4} {:>12.2} {:>14.2} {:>14.2} {:>8.1}%",
            cores,
            total,
            core_area,
            fabric_area,
            100.0 * fabric_area / total
        );
    }
}
