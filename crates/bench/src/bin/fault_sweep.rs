//! Fault-tolerance sweep: how decode quality degrades as hardware faults
//! accumulate, and how fast the pipeline's syndrome-anomaly detector
//! contains a faulted worker.
//!
//! Three measurements, all recorded in `BENCH_fault.json`:
//!
//! 1. **Fault-count curves** — FER/BER of the cycle-accurate hardware
//!    decoder under 0, 1, 2 and 4 permanently stuck RAM words, per rate.
//! 2. **Upset-rate curves** — FER/BER under a transient bit-flip fault
//!    whose per-commit activation probability sweeps upward, per rate.
//! 3. **Quarantine latency** — frames a permanently-faulted pipeline
//!    worker corrupts before the detector takes it out of rotation, plus
//!    the wall-clock time to the quarantine transition.
//!
//! Sanity contracts (enforced in every mode, exercised by the `--quick`
//! CI smoke): FER/BER lie in `[0, 1]`, quality degrades monotonically
//! between the fault-free baseline and the heaviest fault point of each
//! curve, and containment drops or reorders nothing.

use dvbs2::channel::mix_seed;
use dvbs2::hardware::{
    ConnectivityRom, CoreConfig, FaultActivation, FaultScenario, HardwareDecoder, RamFault,
    TimedRamFault,
};
use dvbs2::ldpc::CodeRate;
use dvbs2::{Modcod, ModcodTable};
use dvbs2_pipeline::{
    DecodePipeline, PipelineConfig, QuarantinePolicy, SoftFrame, WorkerFaultInjection,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: fault_sweep [--frames N] [--seed S] [--quick]\n\
         \n\
         --frames N  channel frames per sweep point (default 24)\n\
         --seed S    stream seed, decimal or 0x-hex (default 0xFA17)\n\
         --quick     CI budget: 6 frames per point, 200 latency frames"
    );
    std::process::exit(2);
}

struct Options {
    frames: u64,
    latency_frames: u64,
    seed: u64,
}

fn parse_u64(text: &str) -> Option<u64> {
    match text.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => text.parse().ok(),
    }
}

fn parse_args() -> Options {
    let mut options = Options { frames: 24, latency_frames: 400, seed: 0xFA17 };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--frames" => match args.next().as_deref().and_then(parse_u64) {
                Some(n) if n > 0 => options.frames = n,
                _ => usage(),
            },
            "--seed" => match args.next().as_deref().and_then(parse_u64) {
                Some(s) => options.seed = s,
                None => usage(),
            },
            "--quick" => {
                options.frames = 6;
                options.latency_frames = 200;
            }
            _ => usage(),
        }
    }
    options
}

fn anchor_db(rate: CodeRate) -> f64 {
    match rate {
        CodeRate::R1_2 => 1.4,
        CodeRate::R3_4 => 2.8,
        CodeRate::R8_9 => 4.2,
        _ => 2.0,
    }
}

fn sweep_table() -> ModcodTable {
    use dvbs2::channel::Modulation;
    use dvbs2::ldpc::FrameSize;
    ModcodTable::build(&[
        Modcod::new(Modulation::Bpsk, CodeRate::R1_2, FrameSize::Short),
        Modcod::new(Modulation::Bpsk, CodeRate::R3_4, FrameSize::Short),
        Modcod::new(Modulation::Bpsk, CodeRate::R8_9, FrameSize::Short),
    ])
    .unwrap()
}

/// One measured sweep point.
struct Point {
    label: String,
    fer: f64,
    ber: f64,
    mean_iterations: f64,
}

/// Decodes `frames` seeded noisy transmissions on the cycle-accurate
/// hardware model under `scenario` and measures FER/BER against the
/// transmitted codewords. A frame error is either non-convergence or a
/// converged-but-wrong word; BER counts raw bit mismatches over all `n`.
fn measure(
    table: &ModcodTable,
    slot: usize,
    scenario: FaultScenario,
    label: &str,
    frames: u64,
    seed: u64,
) -> Point {
    let entry = table.entry(slot);
    let system = entry.system();
    let code = system.code();
    // The paper's core runs a fixed 30 iterations; the sweep trades depth
    // for points (12 iterations, syndrome early stop) — degradation curves
    // compare points against the same budget, not against the paper.
    let config = CoreConfig { max_iterations: 12, early_stop: true, ..CoreConfig::default() };
    let mut hw = HardwareDecoder::with_natural_schedule(code, config);
    hw.set_scenario(scenario);
    let ebn0 = anchor_db(entry.modcod.rate) + 0.8;
    let n = entry.frame_len();
    let mut frame_errors = 0u64;
    let mut bit_errors = 0u64;
    let mut iterations = 0u64;
    for i in 0..frames {
        let mut rng = SmallRng::seed_from_u64(mix_seed(seed, i));
        let tx = system.transmit_frame(&mut rng, ebn0);
        let out = hw.decode(&tx.llrs);
        iterations += out.result.iterations as u64;
        let wrong = (0..n).filter(|&b| out.result.bits.get(b) != tx.codeword.get(b)).count() as u64;
        bit_errors += wrong;
        frame_errors += u64::from(!out.result.converged || wrong > 0);
    }
    Point {
        label: label.to_string(),
        fer: frame_errors as f64 / frames as f64,
        ber: bit_errors as f64 / (frames * n as u64) as f64,
        mean_iterations: iterations as f64 / frames as f64,
    }
}

/// `count` permanently stuck RAM words spread across the address space.
fn stuck_scenario(words: usize, count: usize) -> FaultScenario {
    let mut scenario = FaultScenario::none();
    for k in 0..count {
        let word = words * (2 * k + 1) / (2 * count);
        assert!(
            scenario.push_ram(TimedRamFault::permanent(RamFault::StuckWord { word, value: -25 })),
            "scenario capacity"
        );
    }
    scenario
}

/// Two transient full-lane bit-flip faults with a seeded per-commit
/// probability each.
fn upset_scenario(words: usize, per_mille: u32, seed: u64) -> FaultScenario {
    FaultScenario::none()
        .with_ram(TimedRamFault {
            fault: RamFault::FlippedBits { word: words / 3, mask: 0b11_1111 },
            activation: FaultActivation::Random { seed: seed as u32, per_mille },
        })
        .with_ram(TimedRamFault {
            fault: RamFault::FlippedBits { word: 2 * words / 3, mask: 0b11_1111 },
            activation: FaultActivation::Random { seed: (seed >> 32) as u32, per_mille },
        })
}

struct LatencyOutcome {
    frames: u64,
    corrupted_frames: u64,
    detection_ms: f64,
    quarantines: u64,
    faults_suspected: u64,
    probes_run: u64,
    dropped: u64,
    out_of_order: bool,
}

/// Streams strongly-received all-zero codewords through a 3-worker
/// pipeline whose worker 0 has a permanently corrupted input datapath,
/// and measures how long the fault lives before containment.
fn measure_quarantine_latency(table: &ModcodTable, frames: u64) -> LatencyOutcome {
    let n = table.entry(0).frame_len();
    let policy = QuarantinePolicy {
        alpha: 0.5,
        nonconv_threshold: 0.5,
        syndrome_threshold: 0.01,
        min_decodes: 3,
        probe_interval_ms: 1,
        ..QuarantinePolicy::enabled()
    };
    let pipeline = DecodePipeline::start(
        table.clone(),
        PipelineConfig {
            workers: 3,
            quarantine: policy,
            fault_injection: Some(WorkerFaultInjection::permanent(0)),
            ..PipelineConfig::default()
        },
    );
    let started = Instant::now();
    let (corrupted, detection_ms, out_of_order) = std::thread::scope(|scope| {
        let consumer = scope.spawn(|| {
            let mut corrupted = 0u64;
            let mut detection_ms = f64::NAN;
            let mut out_of_order = false;
            let mut seen = 0u64;
            while let Some(frame) = pipeline.next_decoded() {
                out_of_order |= frame.seq != seen;
                seen += 1;
                corrupted += u64::from(!frame.converged);
                if detection_ms.is_nan() && pipeline.stats().quarantines >= 1 {
                    detection_ms = started.elapsed().as_secs_f64() * 1e3;
                }
                if seen == frames {
                    break;
                }
            }
            (corrupted, detection_ms, out_of_order)
        });
        for i in 0..frames {
            pipeline.submit(SoftFrame { modcod: 0, stream_index: i, llrs: vec![6.0; n] }).unwrap();
        }
        consumer.join().expect("consumer thread")
    });
    let stats = pipeline.finish();
    LatencyOutcome {
        frames,
        corrupted_frames: corrupted,
        detection_ms,
        quarantines: stats.quarantines,
        faults_suspected: stats.faults_suspected,
        probes_run: stats.probes_run,
        dropped: stats.dropped,
        out_of_order,
    }
}

fn push_points(json: &mut String, points: &[Point]) {
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"point\": \"{}\", \"fer\": {:.4}, \"ber\": {:.6}, \
             \"mean_iterations\": {:.2}}}{}\n",
            p.label,
            p.fer,
            p.ber,
            p.mean_iterations,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
}

fn check_curve(
    rate: &str,
    curve: &str,
    points: &[Point],
    frames: u64,
    violations: &mut Vec<String>,
) {
    for p in points {
        if !(0.0..=1.0).contains(&p.fer) || !(0.0..=1.0).contains(&p.ber) {
            violations.push(format!(
                "[{rate}/{curve}] point {}: FER {:.4} / BER {:.6} outside [0, 1]",
                p.label, p.fer, p.ber
            ));
        }
    }
    // End-to-end monotonicity with one frame of sampling slack: the code
    // corrects low-rate transient upsets outright (flat curves are an
    // honest result), so only a baseline that decodes *better* than the
    // heaviest fault point by more than chance is a violation.
    let first = &points[0];
    let last = &points[points.len() - 1];
    let fer_slack = 1.0 / frames as f64;
    if last.fer + fer_slack < first.fer || last.ber + 1e-4 < first.ber {
        violations.push(format!(
            "[{rate}/{curve}] degradation is not monotone end to end: \
             {} (FER {:.4}, BER {:.6}) vs {} (FER {:.4}, BER {:.6})",
            first.label, first.fer, first.ber, last.label, last.fer, last.ber
        ));
    }
}

fn main() {
    let options = parse_args();
    let table = sweep_table();
    let mut violations: Vec<String> = Vec::new();
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"fault_sweep\",\n");
    json.push_str(&format!("  \"seed\": {},\n", options.seed));
    json.push_str(&format!("  \"frames_per_point\": {},\n", options.frames));
    json.push_str(
        "  \"decoder\": \"cycle-accurate hardware core, natural schedule, \
         12 iterations, syndrome early stop\",\n",
    );
    json.push_str("  \"operating_point_db\": \"rate anchor + 0.8 dB\",\n");
    json.push_str("  \"rates\": [\n");

    let stuck_counts = [0usize, 1, 2, 4];
    let upset_rates = [0u32, 50, 200, 500];
    for slot in 0..table.len() {
        let entry = table.entry(slot);
        let rate = format!("{:?}", entry.modcod.rate);
        let code = entry.system().code();
        let words = ConnectivityRom::build(code.params(), code.table()).words();
        println!("rate {rate}: {} RAM words, n = {}", words, entry.frame_len());

        let count_points: Vec<Point> = stuck_counts
            .iter()
            .map(|&count| {
                let p = measure(
                    &table,
                    slot,
                    stuck_scenario(words, count),
                    &format!("{count} stuck"),
                    options.frames,
                    mix_seed(options.seed, slot as u64),
                );
                println!(
                    "  {:>8}: FER {:.3}  BER {:.5}  {:.1} iterations",
                    p.label, p.fer, p.ber, p.mean_iterations
                );
                p
            })
            .collect();
        check_curve(&rate, "stuck-count", &count_points, options.frames, &mut violations);

        let upset_points: Vec<Point> = upset_rates
            .iter()
            .map(|&per_mille| {
                let scenario = if per_mille == 0 {
                    FaultScenario::none()
                } else {
                    upset_scenario(words, per_mille, mix_seed(options.seed, 0xF11F))
                };
                let p = measure(
                    &table,
                    slot,
                    scenario,
                    &format!("{per_mille}/1000 upsets"),
                    options.frames,
                    mix_seed(options.seed, slot as u64),
                );
                println!(
                    "  {:>15}: FER {:.3}  BER {:.5}  {:.1} iterations",
                    p.label, p.fer, p.ber, p.mean_iterations
                );
                p
            })
            .collect();
        check_curve(&rate, "upset-rate", &upset_points, options.frames, &mut violations);

        json.push_str(&format!(
            "    {{\"rate\": \"{rate}\", \"ram_words\": {words},\n     \"stuck_count_curve\": [\n"
        ));
        push_points(&mut json, &count_points);
        json.push_str("    ],\n     \"upset_rate_curve\": [\n");
        push_points(&mut json, &upset_points);
        json.push_str(&format!("    ]}}{}\n", if slot + 1 < table.len() { "," } else { "" }));
    }
    json.push_str("  ],\n");

    println!("quarantine latency: {} frames, worker 0 permanently faulted", options.latency_frames);
    let latency = measure_quarantine_latency(&table, options.latency_frames);
    println!(
        "  contained after {} corrupted frames ({:.1} ms); {} quarantine(s), \
         {} suspicion(s), {} probe(s)",
        latency.corrupted_frames,
        latency.detection_ms,
        latency.quarantines,
        latency.faults_suspected,
        latency.probes_run,
    );
    if latency.quarantines < 1 {
        violations.push("[latency] the faulted worker was never quarantined".into());
    }
    if latency.dropped != 0 {
        violations.push(format!("[latency] containment dropped {} frames", latency.dropped));
    }
    if latency.out_of_order {
        violations.push("[latency] containment reordered egress".into());
    }
    if latency.corrupted_frames >= latency.frames / 2 {
        violations.push(format!(
            "[latency] detection too slow: {} of {} frames corrupted",
            latency.corrupted_frames, latency.frames
        ));
    }
    json.push_str(&format!(
        "  \"quarantine_latency\": {{\"frames\": {}, \"corrupted_frames\": {}, \
         \"detection_ms\": {:.2}, \"quarantines\": {}, \"faults_suspected\": {}, \
         \"probes_run\": {}, \"dropped\": {}}}\n",
        latency.frames,
        latency.corrupted_frames,
        latency.detection_ms,
        latency.quarantines,
        latency.faults_suspected,
        latency.probes_run,
        latency.dropped,
    ));
    json.push_str("}\n");

    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fault.json");
    std::fs::write(out_path, &json).expect("writing BENCH_fault.json");
    println!("wrote {out_path}");

    if !violations.is_empty() {
        eprintln!("\n{} contract violation(s):", violations.len());
        for v in &violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }
    println!("fault sweep clean");
}
