//! Regenerates **Table 1** of the paper: the parameters describing the
//! DVB-S2 LDPC Tanner graph for the different code rates (normal frames).
//!
//! Columns: rate, number of high-degree information nodes `f_j` and their
//! degree `j`, number of degree-3 nodes `f_3`, check degree `k`, parity
//! count `N-K`, information count `K`. Every row is derived from the code
//! construction, and the generated address tables are validated against it.
//!
//! Run: `cargo run --release -p dvbs2-bench --bin table1`

use dvbs2::ldpc::{CodeRate, DvbS2Code, FrameSize};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Table 1: parameters of the DVB-S2 LDPC Tanner graph (N = 64800)\n");
    println!(
        "{:>6} {:>8} {:>4} {:>8} {:>4} {:>8} {:>8}",
        "Rate", "f_j", "j", "f_3", "k", "N-K", "K"
    );
    for rate in CodeRate::ALL {
        let code = DvbS2Code::new(rate, FrameSize::Normal)?;
        let p = code.params();
        // Cross-check the realized graph against the tabulated parameters.
        code.table().validate(p)?;
        let graph = code.tanner_graph();
        let hist = graph.var_degree_histogram();
        let count = |d: usize| hist.iter().find(|&&(deg, _)| deg == d).map_or(0, |&(_, c)| c);
        assert_eq!(count(p.hi.degree), p.hi.count, "graph disagrees with Table 1 at {rate}");
        assert_eq!(count(3), p.lo.count);

        println!(
            "{:>6} {:>8} {:>4} {:>8} {:>4} {:>8} {:>8}",
            rate.to_string(),
            p.hi.count,
            p.hi.degree,
            p.lo.count,
            p.check_degree,
            p.n_check,
            p.k
        );
    }
    println!("\nAll rows verified against the realized Tanner graphs.");
    Ok(())
}
