//! Fabric scaling sweep: the cycle-accurate multi-core [`DecoderFabric`]
//! against the extended Eq. 8 [`FabricModel`], for P ∈ {1, 2, 4, 8, 16}
//! cores across rate and frame-size points.
//!
//! For every point the sweep decodes one batch through the modeled
//! interconnect (shared front-end bus, link latency 2, round-robin
//! arbitration), records the measured makespan next to the calibrated
//! model's prediction, and reports the contention counters (stall cycles,
//! arbitration losses, queue high-water, bus utilization). A final section
//! answers the ROADMAP question: what P — and what front-end width — would
//! 10 Gbit/s take?
//!
//! Results land in `BENCH_fabric.json` at the repository root. Exits
//! non-zero when the model misses a measured makespan by more than the
//! gate, when throughput is not monotone in P, or when a fabric run breaks
//! the serial bound.
//!
//! Run: `cargo run --release -p dvbs2-bench --bin fabric_scaling [--quick]`
//! (`--quick` trims the point list and batch size for CI.)

use dvbs2::decoder::{DecoderConfig, QCheckArithmetic, QuantizedZigzagDecoder, Quantizer};
use dvbs2::hardware::{
    hw_chain_partition, Arbitration, CnSchedule, ConnectivityRom, CoreConfig, DecoderFabric,
    FabricConfig, FabricModel, ST_0_13_UM,
};
use dvbs2::ldpc::{CodeRate, DvbS2Code, FrameSize};
use dvbs2::{Dvbs2System, SystemConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

const CORES: [usize; 5] = [1, 2, 4, 8, 16];
/// Accept up to this much relative error between the extended Eq. 8
/// makespan and the cycle-accurate measurement. The model idealizes the
/// wave structure (it has no per-frame arbitration jitter), so it is not
/// exact under contention — but it must stay a *model*, not a guess.
const MAKESPAN_GATE_PCT: f64 = 5.0;

struct Row {
    rate: CodeRate,
    frame: FrameSize,
    cores: usize,
    frames: usize,
    measured_makespan: u64,
    predicted_makespan: f64,
    err_pct: f64,
    serial_cycles: u64,
    stall_cycles: u64,
    arbitration_losses: u64,
    queue_high_water: usize,
    bus_utilization: f64,
    measured_mbps: f64,
    model_mbps: f64,
    io_ceiling_mbps: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::args().any(|a| a == "--quick");
    let points: &[(CodeRate, FrameSize)] = if quick {
        &[(CodeRate::R1_2, FrameSize::Short), (CodeRate::R3_4, FrameSize::Short)]
    } else {
        &[
            (CodeRate::R1_4, FrameSize::Short),
            (CodeRate::R1_2, FrameSize::Short),
            (CodeRate::R3_4, FrameSize::Short),
            (CodeRate::R1_2, FrameSize::Normal),
            (CodeRate::R9_10, FrameSize::Normal),
        ]
    };
    let iterations = if quick { 3 } else { 8 };
    let batch = if quick { 16 } else { 32 };
    let clock = ST_0_13_UM.max_clock_mhz;

    println!(
        "fabric scaling: {} points x P in {CORES:?}, {batch}-frame batches, \
         {iterations} iterations, link latency 2, round-robin bus, {clock} MHz\n",
        points.len()
    );

    let mut rows: Vec<Row> = Vec::new();
    let mut violations: Vec<String> = Vec::new();

    for &(rate, frame) in points {
        let code = DvbS2Code::new(rate, frame)?;
        let params = *code.params();
        let sys = Dvbs2System::new(SystemConfig { rate, frame, ..SystemConfig::default() })?;
        let mut rng = SmallRng::seed_from_u64(0xFAB5 ^ rate as u64);
        let core =
            CoreConfig { max_iterations: iterations, early_stop: false, ..CoreConfig::default() };
        // Fabric timing is data-independent, so the channel content only
        // has to be realistic, not varied: one noisy frame per slot.
        let frames: Vec<Vec<f64>> =
            (0..batch).map(|_| sys.transmit_frame(&mut rng, 6.0).llrs).collect();

        println!("{rate} {frame:?} ({} info bits, {} channel values):", params.k, params.n);
        println!(
            "  {:>3} {:>12} {:>12} {:>7} {:>8} {:>7} {:>5} {:>6} {:>10} {:>10}",
            "P",
            "measured",
            "predicted",
            "err%",
            "stalls",
            "arblos",
            "hiwat",
            "bus%",
            "Mbit/s",
            "model"
        );

        let mut last_mbps = 0.0;
        for &cores in &CORES {
            let config = FabricConfig {
                cores,
                core,
                link_latency: 2,
                arbitration: Arbitration::RoundRobin { start: 0 },
                double_buffer: false,
            };
            let mut fabric = DecoderFabric::with_natural_schedule(&code, config);
            let quantized: Vec<Vec<i32>> =
                frames.iter().map(|llrs| fabric.quantize_channel(llrs)).collect();
            let out = fabric.decode_quantized_batch(&quantized);

            let model = FabricModel::paper(&ST_0_13_UM, cores)
                .with_iterations(iterations)
                .calibrated(&out.outputs[0].cycles);
            let predicted = model.makespan_cycles(&params, batch);
            let measured = out.stats.makespan_cycles;
            let err_pct = (measured as f64 / predicted - 1.0) * 100.0;
            let serial = DecoderFabric::serial_cycles(&out.outputs)
                + out.outputs.len() as u64 * 2 * config.link_latency as u64;
            let measured_mbps = out.stats.aggregate_throughput_mbps(clock, params.k);
            let model_mbps = model.aggregate_mbps(&params);
            let row = Row {
                rate,
                frame,
                cores,
                frames: batch,
                measured_makespan: measured,
                predicted_makespan: predicted,
                err_pct,
                serial_cycles: serial,
                stall_cycles: out.stats.stall_cycles,
                arbitration_losses: out.stats.arbitration_losses,
                queue_high_water: out.stats.queue_high_water,
                bus_utilization: out.stats.bus_utilization(),
                measured_mbps,
                model_mbps,
                io_ceiling_mbps: model.io_ceiling_mbps(&params),
            };
            println!(
                "  {:>3} {:>12} {:>12.0} {:>6.2}% {:>8} {:>7} {:>5} {:>5.1}% {:>10.1} {:>10.1}",
                row.cores,
                row.measured_makespan,
                row.predicted_makespan,
                row.err_pct,
                row.stall_cycles,
                row.arbitration_losses,
                row.queue_high_water,
                100.0 * row.bus_utilization,
                row.measured_mbps,
                row.model_mbps,
            );

            if row.err_pct.abs() > MAKESPAN_GATE_PCT {
                violations.push(format!(
                    "[{rate} {frame:?} P={cores}] model missed the makespan by {:.2}% \
                     (measured {measured}, predicted {predicted:.0})",
                    row.err_pct
                ));
            }
            if measured > serial {
                violations.push(format!(
                    "[{rate} {frame:?} P={cores}] makespan {measured} above the serial \
                     bound {serial}"
                ));
            }
            if measured_mbps + 1e-9 < last_mbps {
                violations.push(format!(
                    "[{rate} {frame:?} P={cores}] throughput regressed: {measured_mbps:.1} \
                     after {last_mbps:.1} Mbit/s"
                ));
            }
            last_mbps = measured_mbps;
            rows.push(row);
        }
        println!();
    }

    // The 10 Gbit/s question, answered on the calibrated R 1/2 Normal
    // model: at the paper's P_IO = 10 front end the I/O ceiling sits far
    // below 10 Gbit/s, so *no* core count suffices; the front end must
    // widen first, and then the required core count is finite.
    let target_mbps = 10_000.0;
    let tp = dvbs2::ldpc::CodeParams::new(CodeRate::R1_2, FrameSize::Normal)?;
    let base = FabricModel::paper(&ST_0_13_UM, 1);
    let at_paper_width = base.cores_for_throughput(&tp, target_mbps);
    let ceiling = base.io_ceiling_mbps(&tp);
    // Size the front end for the target with 20% headroom: at exactly the
    // ceiling the required core count diverges.
    let wide_p_io = base
        .p_io_for_throughput(&tp, target_mbps / 0.8)
        .expect("positive target always yields a width");
    let wide = base.with_p_io(wide_p_io);
    let wide_cores = wide
        .cores_for_throughput(&tp, target_mbps)
        .expect("the widened front end puts the target below the ceiling");
    println!("10 Gbit/s at R 1/2 Normal, 30 iterations:");
    match at_paper_width {
        None => {
            println!("  P_IO = 10: unreachable at any core count (I/O ceiling {ceiling:.0} Mbit/s)")
        }
        Some(p) => println!("  P_IO = 10: {p} cores"),
    }
    println!(
        "  P_IO = {wide_p_io}: {wide_cores} cores ({:.0} Mbit/s modeled, ceiling {:.0})",
        wide.with_cores(wide_cores).aggregate_mbps(&tp),
        wide.io_ceiling_mbps(&tp),
    );
    if at_paper_width.is_some() {
        violations.push(format!(
            "10 Gbit/s must be I/O-bound at P_IO = 10, got {at_paper_width:?} cores"
        ));
    }

    // Software lane-path reference: the differential sweeps that verify
    // this fabric bit-exact now run the quantized datapath through the
    // sub-chain-major SIMD planes. Measure that kernel's per-iteration
    // cost on the reference point (R 1/2 Normal, the same partition the
    // oracle pins against the golden model) and record it next to the
    // hardware calibration, so the model context names the software that
    // cross-checked it and sweep-turnaround changes stay visible across
    // kernel swaps.
    let ref_code = DvbS2Code::new(CodeRate::R1_2, FrameSize::Normal)?;
    let ref_graph = Arc::new(ref_code.tanner_graph());
    let ref_rom = ConnectivityRom::build(ref_code.params(), ref_code.table());
    let ref_schedule = CnSchedule::natural(&ref_rom);
    let ref_partition = hw_chain_partition(&ref_rom, &ref_schedule, &ref_graph);
    let sw_iterations = 30usize;
    let mut sw = QuantizedZigzagDecoder::with_partition(
        Arc::clone(&ref_graph),
        QCheckArithmetic::lut(Quantizer::paper_6bit()),
        DecoderConfig::default().with_max_iterations(sw_iterations).with_early_stop(false),
        ref_partition,
    );
    let sw_tier = sw.simd_tier().map_or("fused-scalar", |t| t.name());
    let ref_sys = Dvbs2System::new(SystemConfig {
        rate: CodeRate::R1_2,
        frame: FrameSize::Normal,
        ..SystemConfig::default()
    })?;
    let mut ref_rng = SmallRng::seed_from_u64(0x51D0);
    let ref_channel = sw.quantize_channel(&ref_sys.transmit_frame(&mut ref_rng, 2.0).llrs);
    let sw_reps = if quick { 2 } else { 4 };
    let mut sw_best = f64::INFINITY;
    for _ in 0..sw_reps {
        let t = Instant::now();
        std::hint::black_box(sw.decode_quantized(std::hint::black_box(&ref_channel)));
        sw_best = sw_best.min(t.elapsed().as_secs_f64());
    }
    let sw_frame_ms = sw_best * 1e3;
    let sw_per_iteration_us = sw_best / sw_iterations as f64 * 1e6;
    let sw_info_mbps = ref_code.params().k as f64 / sw_best / 1e6;
    println!(
        "\nsw lane reference (R 1/2 Normal, {sw_iterations} fixed iterations, tier {sw_tier}): \
         {sw_frame_ms:.2} ms/frame, {sw_per_iteration_us:.1} us/iteration, \
         {sw_info_mbps:.2} Mbit/s info"
    );

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"bench\": \"fabric_scaling\", \"quick\": {quick}, \"clock_mhz\": {clock}, \
         \"iterations\": {iterations}, \"link_latency\": 2,\n"
    ));
    json.push_str(&format!(
        "  \"sw_lane_reference\": {{\"rate\": \"1/2\", \"frame\": \"Normal\", \
         \"tier\": \"{sw_tier}\", \"iterations\": {sw_iterations}, \
         \"frame_ms\": {sw_frame_ms:.3}, \"per_iteration_us\": {sw_per_iteration_us:.2}, \
         \"info_mbps\": {sw_info_mbps:.3}}},\n"
    ));
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"rate\": \"{}\", \"frame\": \"{:?}\", \"cores\": {}, \"frames\": {}, \
             \"measured_makespan\": {}, \"predicted_makespan\": {:.1}, \"err_pct\": {:.3}, \
             \"serial_cycles\": {}, \"stall_cycles\": {}, \"arbitration_losses\": {}, \
             \"queue_high_water\": {}, \"bus_utilization\": {:.4}, \"measured_mbps\": {:.2}, \
             \"model_mbps\": {:.2}, \"io_ceiling_mbps\": {:.2}}}{}\n",
            r.rate,
            r.frame,
            r.cores,
            r.frames,
            r.measured_makespan,
            r.predicted_makespan,
            r.err_pct,
            r.serial_cycles,
            r.stall_cycles,
            r.arbitration_losses,
            r.queue_high_water,
            r.bus_utilization,
            r.measured_mbps,
            r.model_mbps,
            r.io_ceiling_mbps,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"ten_gbps\": {{\"rate\": \"1/2\", \"frame\": \"Normal\", \"target_mbps\": {target_mbps}, \
         \"cores_at_p_io_10\": null, \"io_ceiling_at_p_io_10_mbps\": {ceiling:.1}, \
         \"required_p_io\": {wide_p_io}, \"required_cores\": {wide_cores}}},\n"
    ));
    json.push_str(&format!("  \"violations\": {}\n}}\n", violations.len()));

    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fabric.json");
    std::fs::write(out_path, &json).expect("writing BENCH_fabric.json");
    println!("\nwrote {}", out_path);

    if violations.is_empty() {
        println!("fabric scaling: PASS ({} rows)", rows.len());
        Ok(())
    } else {
        println!("fabric scaling: FAIL ({} violations)", violations.len());
        for v in &violations {
            println!("  VIOLATION {v}");
        }
        std::process::exit(1);
    }
}
