//! Regenerates the **"≈ 0.7 dB to Shannon" framing** of the paper's
//! introduction: BER waterfalls for selected rates against the binary-input
//! AWGN Shannon limit of each true code rate.
//!
//! Run: `cargo run --release -p dvbs2-bench --bin ber_waterfall [--normal] [--frames N]`

use dvbs2::channel::shannon_limit_biawgn_db;
use dvbs2::ldpc::{CodeRate, FrameSize};
use dvbs2::DecoderKind;
use dvbs2_bench::{ber_point, sci, system};

fn main() {
    let normal = std::env::args().any(|a| a == "--normal");
    let frames: usize = std::env::args()
        .skip_while(|a| a != "--frames")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(if normal { 15 } else { 80 });
    let frame = if normal { FrameSize::Normal } else { FrameSize::Short };

    println!("Gap to Shannon, {frame} frames, zigzag sum-product, 30 iterations");
    println!("({frames} frames per point)\n");

    let rates = [CodeRate::R1_4, CodeRate::R1_2, CodeRate::R3_4];
    for rate in rates {
        let sys = system(rate, frame, DecoderKind::Zigzag, 30);
        let p = sys.params();
        let true_rate = p.k as f64 / p.n as f64;
        let limit = shannon_limit_biawgn_db(true_rate);
        println!("rate {rate} (true {true_rate:.3}), Shannon limit {limit:+.3} dB:");
        println!("{:>9} {:>9} {:>12} {:>12} {:>8}", "Eb/N0[dB]", "gap[dB]", "BER", "FER", "iters");
        // Points straddling the waterfall: start near the limit.
        let offsets = if normal { [0.4, 0.6, 0.8, 1.0] } else { [0.4, 0.8, 1.2, 1.6] };
        for off in offsets {
            let ebn0 = limit + off;
            let pt = ber_point(&sys, ebn0, frames, 25);
            println!(
                "{:>9.2} {:>9.2} {:>12} {:>12} {:>8.1}",
                ebn0,
                off,
                sci(pt.ber),
                sci(pt.fer),
                pt.avg_iterations
            );
        }
        println!();
    }
    println!(
        "Paper framing: the N = 64800 codes operate ≈ 0.7 dB from the Shannon limit; short \
         frames (our fast default) sit slightly further out, as expected from block length."
    );
}
